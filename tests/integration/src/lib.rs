//! Integration test crate for the Sato workspace (tests live in tests/).
