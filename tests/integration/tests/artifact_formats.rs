//! Integration tests for the two on-disk formats of the serving stack:
//! the `SATOART1` binary predictor artifact and the `SATOCOL1` columnar
//! corpus. The binary artifact must describe exactly the same model as the
//! JSON interchange format (bit-identical predictions, byte-identical
//! re-serialization), corrupted inputs of either format must fail with
//! typed errors rather than panics, and streaming annotation straight off
//! colstore bytes must match the in-memory batched path bit for bit.

use std::sync::OnceLock;

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use sato::{PredictorError, SamplerKind, SatoConfig, SatoModel, SatoPredictor, SatoVariant};
use sato_tabular::colstore::{corpus_from_bytes, corpus_to_bytes, ColStoreError};
use sato_tabular::corpus::default_corpus;
use sato_tabular::table::{Column, Corpus, Table};

/// Same deliberately tiny configuration as `predictor_serving.rs`: the
/// format round-trip properties hold at any scale, so train the smallest
/// model that exercises every section of the artifact (scalers, network,
/// head, topic model, alias tables, CRF potentials).
fn tiny_config(seed: u64) -> SatoConfig {
    let mut config = SatoConfig::fast().with_seed(seed);
    config.network.epochs = 4;
    config.lda.train_iterations = 15;
    config.lda.infer_iterations = 10;
    config.crf.epochs = 2;
    config
}

/// One shared Full-variant predictor for the colstore serving tests, so
/// the proptest cases pay for training once.
fn full_predictor() -> &'static SatoPredictor {
    static FULL: OnceLock<SatoPredictor> = OnceLock::new();
    FULL.get_or_init(|| {
        SatoModel::train(&default_corpus(25, 77), tiny_config(77), SatoVariant::Full)
            .into_predictor()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// `SATOART1` round trip for every Table-1 variant crossed with both
    /// topic samplers: the reloaded predictor re-serializes to the exact
    /// JSON of the source predictor and reproduces its predictions bit
    /// for bit.
    #[test]
    fn binary_round_trip_is_bit_identical_for_all_variants(seed in 0u64..1000) {
        let corpus = default_corpus(25, seed);
        for variant in SatoVariant::ALL {
            let mut predictor =
                SatoModel::train(&corpus, tiny_config(seed ^ 0xb1a2), variant).into_predictor();
            for kind in [
                SamplerKind::Dense,
                SamplerKind::SparseAlias,
                SamplerKind::MetropolisHastings,
            ] {
                predictor = predictor.with_sampler(kind);
                let loaded = SatoPredictor::from_bytes(&predictor.to_bytes())
                    .expect("artifact written by to_bytes must load");
                prop_assert_eq!(loaded.variant(), variant);
                prop_assert_eq!(loaded.sampler_kind(), kind);
                // The strongest parity statement available: the binary
                // round trip loses nothing the JSON format records, so
                // JSON -> binary -> JSON is the identity on artifacts.
                prop_assert_eq!(
                    loaded.to_json(),
                    predictor.to_json(),
                    "binary round trip changed the artifact for {:?}/{:?}",
                    variant,
                    kind
                );
                for table in corpus.iter().take(6) {
                    prop_assert_eq!(
                        predictor.predict_proba(table),
                        loaded.predict_proba(table),
                        "probabilities drifted through the binary artifact for {:?}/{:?}",
                        variant,
                        kind
                    );
                    prop_assert_eq!(
                        predictor.predict(table),
                        loaded.predict(table),
                        "decoded types drifted through the binary artifact for {:?}/{:?}",
                        variant,
                        kind
                    );
                }
            }
        }
    }

    /// `SATOCOL1` round trip on arbitrary ragged corpora — empty corpora,
    /// zero-column tables, empty columns, unicode, embedded quotes and
    /// separators — plus streaming-annotation parity: predicting straight
    /// off the colstore bytes matches the in-memory batched path exactly.
    #[test]
    fn colstore_round_trips_and_serves_arbitrary_corpora(seed in 0u64..10_000) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pool = [
            "", "42", "-1.5", "2020-01-01", "naïve", "ΟΔΟΣ", "café ☕",
            "hello, world", "\"quoted\"", "line\nbreak", "tab\tsep", "repeat",
        ];
        let tables = (0..rng.gen_range(0..8usize))
            .map(|t| {
                let columns = (0..rng.gen_range(0..5usize))
                    .map(|_| {
                        Column::new(
                            (0..rng.gen_range(0..7usize))
                                .map(|_| pool[rng.gen_range(0..pool.len())]),
                        )
                    })
                    .collect();
                Table::unlabelled(seed * 100 + t as u64, columns)
            })
            .collect();
        let corpus = Corpus::new(tables);
        let bytes = corpus_to_bytes(&corpus);

        let back = corpus_from_bytes(&bytes).expect("colstore written by corpus_to_bytes");
        prop_assert_eq!(&back.tables, &corpus.tables);

        let predictor = full_predictor();
        for batch_cols in [1usize, 256] {
            let streamed = predictor
                .predict_colstore_bytes(&bytes, batch_cols)
                .expect("serving off valid colstore bytes");
            prop_assert_eq!(
                streamed,
                predictor.predict_corpus_batched(&corpus, batch_cols),
                "colstore streaming drifted from the in-memory path at batch {}",
                batch_cols
            );
        }
    }
}

#[test]
fn corrupted_binary_artifacts_fail_with_typed_errors_not_panics() {
    let corpus = default_corpus(20, 11);
    let predictor = SatoModel::train(&corpus, tiny_config(11), SatoVariant::Base).into_predictor();
    let bytes = predictor.to_bytes();

    // Truncations at every depth: inside the magic, inside the header,
    // inside the section table, and inside a payload.
    for cut in [0, 4, 15, bytes.len() / 3, bytes.len() - 1] {
        let err = SatoPredictor::from_bytes(&bytes[..cut]).err();
        assert!(
            matches!(
                err,
                Some(PredictorError::Truncated(_)) | Some(PredictorError::Checksum(_))
            ),
            "truncated artifact (cut at {cut}) must be a Truncated/Checksum error, got {err:?}"
        );
    }

    let mut bad_magic = bytes.clone();
    bad_magic[0] = b'X';
    assert!(matches!(
        SatoPredictor::from_bytes(&bad_magic),
        Err(PredictorError::BadMagic)
    ));

    let mut future = bytes.clone();
    future[8] = 99; // version field is little-endian at offset 8
    assert!(matches!(
        SatoPredictor::from_bytes(&future),
        Err(PredictorError::UnsupportedVersion(99))
    ));

    let mut flipped = bytes.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x40;
    assert!(matches!(
        SatoPredictor::from_bytes(&flipped),
        Err(PredictorError::Checksum(_))
    ));

    // The JSON interchange format keeps the same guarantee (the deeper
    // JSON negative cases live in predictor_serving.rs).
    assert!(matches!(
        SatoPredictor::from_json("not an artifact"),
        Err(PredictorError::Json(_))
    ));
}

#[test]
fn corrupted_colstore_streams_fail_with_typed_errors_not_panics() {
    let corpus = default_corpus(5, 3);
    let bytes = corpus_to_bytes(&corpus);
    let predictor = full_predictor();

    // Cutting into the final frame must surface as an error, not a short
    // silent read.
    let err = predictor
        .predict_colstore_bytes(&bytes[..bytes.len() - 1], 256)
        .err();
    assert!(
        matches!(
            err,
            Some(ColStoreError::Truncated { .. }) | Some(ColStoreError::Checksum { .. })
        ),
        "truncated colstore must be a Truncated/Checksum error, got {err:?}"
    );

    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(
        predictor.predict_colstore_bytes(&bad_magic, 256),
        Err(ColStoreError::BadMagic)
    ));

    // A bit flip inside the first frame's payload (16-byte header + 8-byte
    // frame length, then payload) is caught by the frame checksum.
    let mut flipped = bytes.clone();
    flipped[16 + 8 + 2] ^= 0x01;
    assert!(matches!(
        predictor.predict_colstore_bytes(&flipped, 256),
        Err(ColStoreError::Checksum { table_index: 0 })
    ));
}

#[test]
fn binary_file_round_trip_and_missing_file_error() {
    let predictor = full_predictor();
    let path = std::env::temp_dir().join("sato_integration_artifact_roundtrip.satoart");
    predictor.save_binary(&path).expect("save binary artifact");
    let loaded = SatoPredictor::load_binary(&path).expect("load binary artifact");
    std::fs::remove_file(&path).ok();
    let corpus = default_corpus(10, 78);
    for table in corpus.iter().take(5) {
        assert_eq!(predictor.predict(table), loaded.predict(table));
    }
    assert!(matches!(
        SatoPredictor::load_binary(std::env::temp_dir().join("sato_no_such_artifact.satoart")),
        Err(PredictorError::Io(_))
    ));
}
