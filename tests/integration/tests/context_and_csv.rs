//! Integration tests for the context-dependent behaviour the paper motivates
//! (Figure 1) and for the CSV annotation workflow used by the examples.

use sato::{ColumnwiseInference, SatoConfig, SatoModel, SatoVariant, StructuredLayer};
use sato_tabular::corpus::{default_corpus, figure1_tables};
use sato_tabular::csv::{table_from_csv, table_to_csv};
use sato_tabular::table::Table;
use sato_tabular::types::{SemanticType, NUM_TYPES};

#[test]
fn base_model_gives_identical_scores_to_identical_columns_regardless_of_context() {
    // The single-column model's defining limitation: the same values always
    // produce the same probability vector, no matter the table.
    let corpus = default_corpus(60, 201);
    let base = SatoModel::train(&corpus, SatoConfig::fast(), SatoVariant::Base);
    let (table_a, table_b) = figure1_tables();
    let proba_a = base.predict_proba(&table_a);
    let proba_b = base.predict_proba(&table_b);
    let shared_a = proba_a.last().unwrap();
    let shared_b = &proba_b[0];
    for (x, y) in shared_a.iter().zip(shared_b) {
        assert!(
            (x - y).abs() < 1e-5,
            "Base scores differ for identical columns"
        );
    }
}

#[test]
fn topic_aware_model_scores_depend_on_table_context() {
    // Sato's topic vector differs between the biography table and the city
    // table, so the shared column's scores must differ.
    let corpus = default_corpus(100, 202);
    let sato = SatoModel::train(&corpus, SatoConfig::fast(), SatoVariant::SatoNoStruct);
    let (table_a, table_b) = figure1_tables();
    let proba_a = sato.predict_proba(&table_a);
    let proba_b = sato.predict_proba(&table_b);
    let shared_a = proba_a.last().unwrap();
    let shared_b = &proba_b[0];
    let l1: f32 = shared_a
        .iter()
        .zip(shared_b)
        .map(|(x, y)| (x - y).abs())
        .sum();
    assert!(
        l1 > 1e-4,
        "topic-aware scores identical across contexts (L1 diff {l1})"
    );
}

#[test]
fn structured_layer_with_confident_gold_unaries_reproduces_gold_labels() {
    struct GoldPredictor;
    impl ColumnwiseInference for GoldPredictor {
        fn predict_proba(&self, table: &Table) -> Vec<Vec<f32>> {
            table
                .labels
                .iter()
                .map(|l| {
                    let mut row = vec![1e-4f32; NUM_TYPES];
                    row[l.index()] = 1.0;
                    let s: f32 = row.iter().sum();
                    row.iter_mut().for_each(|x| *x /= s);
                    row
                })
                .collect()
        }
    }
    let corpus = default_corpus(40, 203);
    let config = SatoConfig::fast();
    let layer = StructuredLayer::fit(&GoldPredictor, &corpus, &config);
    for table in corpus.iter().filter(|t| t.is_multi_column()).take(10) {
        assert_eq!(layer.predict(&GoldPredictor, table), table.labels);
    }
}

#[test]
fn csv_round_trip_and_annotation_workflow() {
    // Serialize a labelled synthetic table to CSV, reload it without the
    // header, and annotate it with a trained model: shapes must line up and
    // the reload must preserve the cell values exactly.
    let corpus = default_corpus(60, 204);
    let source = corpus
        .iter()
        .find(|t| t.is_multi_column())
        .expect("multi-column table");
    let csv = table_to_csv(source);
    let relabelled = table_from_csv(source.id, &csv, true);
    assert_eq!(relabelled.labels, source.labels);
    assert_eq!(relabelled.columns, source.columns);

    let headerless = {
        let body = csv.lines().skip(1).collect::<Vec<_>>().join("\n");
        table_from_csv(source.id, &body, false)
    };
    assert!(!headerless.is_labelled());
    assert_eq!(headerless.num_columns(), source.num_columns());

    let model = SatoModel::train(&corpus, SatoConfig::fast(), SatoVariant::Full);
    let types = model.predict(&headerless);
    assert_eq!(types.len(), source.num_columns());
    assert!(types.iter().all(|t| SemanticType::ALL.contains(t)));
}
