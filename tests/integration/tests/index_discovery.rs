//! Cross-crate integration tests for the `sato-index` ANN layer: HNSW
//! recall against the exact brute-force oracle over ragged synthetic
//! lakes, determinism under seed, incremental-insert vs bulk-build
//! equivalence, `SATOIDX1` sidecar round-trips with typed corruption
//! errors, and the end-to-end pairing with a trained `SatoPredictor`'s
//! column embeddings (including the artifact-hash gate).

use proptest::prelude::*;
use sato::{SatoConfig, SatoModel, SatoPredictor, SatoVariant, ServingScratch};
use sato_index::{ColumnRef, HnswConfig, HnswIndex, IndexError, INDEX_MAGIC};
use sato_tabular::corpus::default_corpus;
use std::sync::OnceLock;

/// Deterministic pseudo-random vectors without pulling in a generator
/// crate: splitmix64 bits folded into roughly-uniform floats in [-1, 1).
fn vectors(dim: usize, n: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = state;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x >> 40) as f32 / (1u64 << 23) as f32 * 2.0 - 1.0
    };
    (0..n).map(|_| (0..dim).map(|_| next()).collect()).collect()
}

fn key(i: usize) -> ColumnRef {
    ColumnRef {
        table_id: (i / 4) as u64,
        col_idx: (i % 4) as u32,
    }
}

fn build(dim: usize, vecs: &[Vec<f32>], config: HnswConfig) -> HnswIndex {
    let mut index = HnswIndex::new(dim, 0xfeed, config);
    for (i, v) in vecs.iter().enumerate() {
        assert!(index.insert(key(i), v));
    }
    index
}

/// One shared tiny Full-variant predictor for the trained-embedding tests.
fn full_predictor() -> &'static SatoPredictor {
    static FULL: OnceLock<SatoPredictor> = OnceLock::new();
    FULL.get_or_init(|| {
        let mut config = SatoConfig::fast().with_seed(4242);
        config.network.epochs = 5;
        config.lda.train_iterations = 15;
        config.crf.epochs = 2;
        SatoModel::train(&default_corpus(24, 19), config, SatoVariant::Full).into_predictor()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Recall@10 of the graph search stays at or above 0.9 of the exact
    /// brute-force oracle across lake sizes, dimensions and seeds —
    /// queries are held-out vectors that were never inserted.
    #[test]
    fn recall_at_10_beats_the_floor_on_random_lakes(
        dim in 4usize..24,
        n in 40usize..300,
        seed in 0u64..1000,
    ) {
        let lake = vectors(dim, n, seed);
        let index = build(dim, &lake, HnswConfig::default());
        let queries = vectors(dim, 25, seed ^ 0x5151);
        let k = 10;
        let mut hits = 0usize;
        let mut possible = 0usize;
        for q in &queries {
            let exact = index.search_exact(q, k);
            let approx = index.search_knn_with_ef(q, k, 128);
            possible += exact.len();
            hits += approx
                .iter()
                .filter(|a| exact.iter().any(|e| e.key == a.key))
                .count();
        }
        let recall = hits as f64 / possible.max(1) as f64;
        prop_assert!(recall >= 0.9, "recall@10 {recall:.3} over {n} x {dim} lake");
    }

    /// Graph construction is a pure function of (vectors, order, config):
    /// two builds with the same seed serialize to identical bytes and
    /// answer queries identically; a different seed still satisfies the
    /// same search contract.
    #[test]
    fn construction_is_deterministic_under_seed(
        dim in 4usize..16,
        n in 20usize..150,
        seed in 0u64..1000,
    ) {
        let lake = vectors(dim, n, seed);
        let config = HnswConfig { seed: seed ^ 0xabcd, ..HnswConfig::default() };
        let a = build(dim, &lake, config);
        let b = build(dim, &lake, config);
        prop_assert_eq!(a.to_bytes(), b.to_bytes());
        let other = build(dim, &lake, HnswConfig { seed: seed ^ 0x1234, ..config });
        for q in vectors(dim, 8, seed ^ 0x77) {
            let got = a.search_knn(&q, 5);
            prop_assert_eq!(&got, &b.search_knn(&q, 5));
            // A different level-sampler seed grows a different graph, but
            // the nearest self-evident neighbour contract still holds.
            prop_assert_eq!(got[0].key, other.search_knn(&q, 5)[0].key);
        }
    }

    /// Incremental insertion — including a save/load round-trip mid-build,
    /// with queries interleaved — grows byte-for-byte the same index as
    /// one uninterrupted bulk build: searches never perturb the sampler
    /// and `SATOIDX1` persists its state exactly.
    #[test]
    fn incremental_insert_equals_bulk_build(
        dim in 4usize..16,
        n in 20usize..120,
        seed in 0u64..1000,
    ) {
        let lake = vectors(dim, n, seed);
        let bulk = build(dim, &lake, HnswConfig::default());

        let mut incremental = HnswIndex::new(dim, 0xfeed, HnswConfig::default());
        let half = n / 2;
        for (i, v) in lake.iter().take(half).enumerate() {
            prop_assert!(incremental.insert(key(i), v));
            if i % 7 == 0 {
                // Interleaved queries must not affect construction.
                incremental.search_knn(v, 3);
            }
        }
        let mut resumed = HnswIndex::from_bytes(&incremental.to_bytes())
            .expect("mid-build snapshot must round-trip");
        for (i, v) in lake.iter().enumerate().skip(half) {
            prop_assert!(resumed.insert(key(i), v));
        }
        prop_assert_eq!(resumed.to_bytes(), bulk.to_bytes());
        // Idempotent replay: re-inserting everything changes nothing.
        for (i, v) in lake.iter().enumerate() {
            prop_assert!(!resumed.insert(key(i), v));
        }
        prop_assert_eq!(resumed.to_bytes(), bulk.to_bytes());
    }

    /// `SATOIDX1` sidecars fail with *typed* errors on every corruption
    /// class — truncation at any prefix, wrong magic, unsupported
    /// version, flipped payload bytes — and never panic.
    #[test]
    fn corrupted_sidecars_fail_typed(seed in 0u64..1000) {
        let lake = vectors(8, 60, seed);
        let index = build(8, &lake, HnswConfig::default());
        let bytes = index.to_bytes();

        for cut in [0, 4, 7, 15, 16, 43, bytes.len() / 2, bytes.len() - 1] {
            let err = HnswIndex::from_bytes(&bytes[..cut]).unwrap_err();
            prop_assert!(
                matches!(
                    err,
                    IndexError::Truncated(_)
                        | IndexError::BadMagic
                        | IndexError::Checksum(_)
                        | IndexError::MissingSection(_)
                        | IndexError::Corrupt(_)
                ),
                "truncation at {cut} produced {err:?}"
            );
        }

        let mut magic = bytes.clone();
        magic[..8].copy_from_slice(b"SATOART1");
        prop_assert!(matches!(
            HnswIndex::from_bytes(&magic).unwrap_err(),
            IndexError::BadMagic
        ));

        let mut version = bytes.clone();
        version[8..12].copy_from_slice(&99u32.to_le_bytes());
        prop_assert!(matches!(
            HnswIndex::from_bytes(&version).unwrap_err(),
            IndexError::UnsupportedVersion(99)
        ));

        // Flip one byte in every section's payload region.
        for offset in [INDEX_MAGIC.len() + 9, bytes.len() / 3, bytes.len() - 2] {
            let mut flipped = bytes.clone();
            flipped[offset] ^= 0x40;
            prop_assert!(
                HnswIndex::from_bytes(&flipped).is_err(),
                "flipping byte {offset} must not load cleanly"
            );
        }
    }
}

/// Trained-model pairing: embeddings streamed out of the batched predictor
/// path build an index whose searches match the exact oracle, whose
/// self-queries return the column itself at distance zero, and whose
/// sidecar is gated by the predictor's content hash.
#[test]
fn trained_embeddings_index_end_to_end() {
    let predictor = full_predictor();
    let lake = default_corpus(30, 21);
    let mut index = HnswIndex::new(
        predictor.embedding_dim(),
        predictor.content_hash(),
        HnswConfig::default(),
    );
    let mut scratch = ServingScratch::new();
    predictor.embed_corpus_batched_with(&lake, 16, &mut scratch, |table_id, col_idx, embedding| {
        assert!(index.insert(ColumnRef { table_id, col_idx }, embedding));
    });
    let lake_cols: usize = lake.iter().map(|t| t.num_columns()).sum();
    assert_eq!(index.len(), lake_cols);

    // Self-queries: the per-table allocation-free embedding path produces
    // the exact vectors that the corpus-batched path indexed.
    for table in lake.iter().take(8) {
        let rows = predictor.column_embeddings_into(table, &mut scratch);
        for c in 0..rows.rows() {
            let hits = index.search_knn(rows.row(c), 1);
            assert_eq!(
                hits[0].key,
                ColumnRef {
                    table_id: table.id,
                    col_idx: c as u32
                }
            );
            assert_eq!(hits[0].distance, 0.0, "self-distance must be exactly zero");
        }
    }

    // Sidecar pairing: loads next to its artifact, is rejected anywhere else.
    let path = std::env::temp_dir().join(format!(
        "sato_integration_index_{}.satoidx",
        std::process::id()
    ));
    index.save(&path).unwrap();
    let reloaded = HnswIndex::load_sidecar(&path, predictor.content_hash()).unwrap();
    assert_eq!(reloaded.to_bytes(), index.to_bytes());
    match HnswIndex::load_sidecar(&path, predictor.content_hash() ^ 1) {
        Err(IndexError::ArtifactMismatch { expected, found }) => {
            assert_eq!(found, predictor.content_hash());
            assert_eq!(expected, predictor.content_hash() ^ 1);
        }
        other => panic!("wrong artifact hash must be rejected, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}
