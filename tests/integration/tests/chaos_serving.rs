//! Chaos suite for the fault-tolerant serving stack (`faults` feature
//! only): deterministic injected panics, delays and I/O errors — armed
//! through `sato-faults` — must degrade exactly one request (or one swap
//! attempt) at a time, while every innocent response stays bit-identical
//! to the sequential `predict_corpus_batched` oracle and the service
//! always drains cleanly on shutdown.
//!
//! Run with: `cargo test -p sato-integration --features faults --test
//! chaos_serving`. Without the feature this file compiles to nothing.

#![cfg(feature = "faults")]

use proptest::prelude::*;
use sato::{PredictorError, SatoModel, SatoPredictor, SatoVariant, TablePrediction};
use sato_faults::{self as faults, FaultSpec};
use sato_serve::{
    ColumnRef, HnswConfig, IndexError, RequestOptions, SatoService, ServeError, ServiceConfig,
    MAX_CONSECUTIVE_RESTARTS,
};
use sato_tabular::colstore;
use sato_tabular::table::{Column, Corpus, Table};
use std::sync::{Mutex, MutexGuard, Once, OnceLock, PoisonError};
use std::time::Duration;

fn tiny_config() -> sato::SatoConfig {
    let mut config = sato::SatoConfig::fast();
    config.network.epochs = 5;
    config.lda.train_iterations = 15;
    config.crf.epochs = 3;
    config
}

/// Two generations of a trained Full-variant predictor (topic + CRF — the
/// whole serving pipeline in play) as canonical artifact bytes.
fn fixture_bytes() -> &'static (Vec<u8>, Vec<u8>) {
    static FIXTURE: OnceLock<(Vec<u8>, Vec<u8>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let train = |seed: u64| {
            SatoModel::train(
                &sato_tabular::corpus::default_corpus(20, seed),
                tiny_config(),
                SatoVariant::Full,
            )
            .into_predictor()
            .to_bytes()
        };
        (train(7), train(8))
    })
}

fn predictor(second_generation: bool) -> SatoPredictor {
    let (a, b) = fixture_bytes();
    SatoPredictor::from_bytes(if second_generation { b } else { a }).expect("fixture loads")
}

/// The fault registry is process-global and the test harness runs tests
/// concurrently, so every chaos test holds this gate for its whole body.
fn serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Injected panics are this suite's working fluid; silence their default
/// stderr backtraces (anything else still reports normally).
fn quiet_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let message = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&'static str>().copied());
            if message.is_some_and(|m| m.contains("injected fault")) {
                return;
            }
            previous(info);
        }));
    });
}

/// Deterministic cell pool mixing in-vocabulary words, numerics, blanks
/// and out-of-vocabulary noise (same pool as the serving-exactness suite).
fn cell_value(entropy: usize) -> &'static str {
    const POOL: [&str; 10] = [
        "Warsaw",
        "London",
        "Poland",
        "Rock",
        "12.5",
        "1,777,972",
        "",
        "alpha beta gamma",
        "zzzzqq",
        "2020-11-05",
    ];
    POOL[entropy % POOL.len()]
}

/// Build one request's tables from per-table column counts; `first_id`
/// keeps table ids unique across a test's requests (the id is also the
/// `core.feature_extract` injection key).
fn request_tables(col_counts: &[usize], first_id: u64, salt: usize) -> Vec<Table> {
    col_counts
        .iter()
        .enumerate()
        .map(|(t, &cols)| {
            let columns = (0..cols)
                .map(|c| {
                    let rows = 1 + (salt + t * 5 + c * 3) % 4;
                    Column::new((0..rows).map(|r| cell_value(salt + t * 31 + c * 7 + r)))
                })
                .collect();
            Table::unlabelled(first_id + t as u64, columns)
        })
        .collect()
}

/// The sequential oracle every non-culprit response must match bit for bit.
fn oracle(p: &SatoPredictor, tables: &[Table], batch_cols: usize) -> Vec<TablePrediction> {
    p.predict_corpus_batched(&Corpus::new(tables.to_vec()), batch_cols)
}

/// A unique temp-file path for this test binary.
fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("sato_chaos_{}_{name}", std::process::id()))
}

/// The tentpole acceptance test, end to end in one service run:
///
/// 1. a `serve.round_formation` panic kills the batcher mid-round (before
///    any request is lost) — the supervisor restarts it
///    (`worker_restarts`), and no client sees the crash;
/// 2. one request carries a poison-pill table (`core.feature_extract`
///    panics on its id, every time): quarantine bisection fails exactly
///    that request with `ServeError::Poisoned` (`quarantined`), and every
///    other in-flight request is re-served **bit-identical** to the
///    sequential oracle;
/// 3. a corrupt-artifact hot-swap during the same run rolls back
///    (`swap_rollbacks`) — not a single response carries a wrong artifact
///    tag;
/// 4. afterwards, a *good* artifact file swaps in and serves.
#[test]
fn poison_pill_worker_crash_and_corrupt_swap_in_one_run() {
    let _gate = serial();
    quiet_injected_panics();
    let _faults = faults::scoped();
    let a = predictor(false);
    let b = predictor(true);

    // Request 3 is the culprit: its middle table (id 301) panics feature
    // extraction on every attempt, so bisection must converge on it.
    let shapes: [&[usize]; 8] = [
        &[2],
        &[1, 2],
        &[3],
        &[1, 1, 1],
        &[2, 1],
        &[1],
        &[4],
        &[2, 2],
    ];
    let requests: Vec<Vec<Table>> = shapes
        .iter()
        .enumerate()
        .map(|(r, cols)| request_tables(cols, (r * 100) as u64, r))
        .collect();
    const CULPRIT: usize = 3;
    faults::set("core.feature_extract", FaultSpec::panic().with_key(301));
    faults::set("serve.round_formation", FaultSpec::panic().once());

    let batch_cols = 4; // small target → rounds coalesce several requests
    let service = SatoService::start(
        predictor(false),
        ServiceConfig {
            batch_cols,
            ..ServiceConfig::default()
        },
    );
    service.pause(); // everything queues, then drains through chaos at once
    let handles: Vec<_> = requests
        .iter()
        .map(|tables| {
            service
                .submit(tables.clone(), RequestOptions::default())
                .expect("admitted")
        })
        .collect();
    service.resume();

    // While the queue drains through the crash/quarantine, a corrupt
    // artifact (a torn write: valid magic, half the bytes) tries to swap
    // in — and must roll back without touching the incumbent.
    let corrupt = temp_path("acceptance_corrupt.satoart");
    let bytes_b = b.to_bytes();
    std::fs::write(&corrupt, &bytes_b[..bytes_b.len() / 2]).unwrap();
    let swap_err = service.load_artifact(&corrupt).unwrap_err();
    assert!(matches!(swap_err, ServeError::Swap(_)), "{swap_err}");
    assert_eq!(service.artifact_meta(), a.artifact_meta());

    for (r, handle) in handles.into_iter().enumerate() {
        if r == CULPRIT {
            assert!(
                matches!(handle.wait(), Err(ServeError::Poisoned)),
                "culprit request must be quarantined"
            );
        } else {
            let response = handle.wait().unwrap_or_else(|e| {
                panic!("innocent request {r} must serve, got {e}");
            });
            assert_eq!(
                response.artifact_hash,
                a.content_hash(),
                "request {r} tagged with an artifact that never finished swapping in"
            );
            assert_eq!(
                response.predictions,
                oracle(&a, &requests[r], batch_cols),
                "innocent request {r} must stay bit-identical to the oracle"
            );
        }
    }

    // The service took a worker crash, a quarantine and a rolled-back swap
    // — and still serves new work.
    let followup = request_tables(&[2], 900, 17);
    let response = service.annotate(followup.clone()).expect("still serving");
    assert_eq!(response.predictions, oracle(&a, &followup, batch_cols));

    // A healthy artifact file still swaps in and serves under its own tag.
    let good = temp_path("acceptance_good.satoart");
    std::fs::write(&good, &bytes_b).unwrap();
    assert_eq!(service.load_artifact(&good).unwrap(), b.artifact_meta());
    let swapped = service.annotate(followup.clone()).expect("serving on B");
    assert_eq!(swapped.artifact_hash, b.content_hash());
    assert_eq!(swapped.predictions, oracle(&b, &followup, batch_cols));

    let stats = service.shutdown();
    assert_eq!(stats.worker_restarts, 1, "exactly one injected crash");
    assert_eq!(stats.quarantined, 1, "exactly one poison pill");
    assert_eq!(stats.swap_rollbacks, 1, "exactly one corrupt swap");
    assert_eq!(stats.swaps, 1, "exactly one good swap");
    assert_eq!(stats.completed, requests.len() as u64 - 1 + 2);
    for path in [corrupt, good] {
        let _ = std::fs::remove_file(path);
    }
}

/// A crash loop that never completes a round is a systemic fault, not a
/// poison pill: after `MAX_CONSECUTIVE_RESTARTS` no-progress crashes the
/// supervisor fail-stops — queued requests are answered `Stopped` (which
/// `wait_timeout` pollers observe instead of spinning on `None` forever),
/// new submissions are refused, and shutdown still returns.
#[test]
fn supervisor_gives_up_on_a_no_progress_crash_loop() {
    let _gate = serial();
    quiet_injected_panics();
    let _faults = faults::scoped();
    faults::set("serve.round_formation", FaultSpec::panic());

    let service = SatoService::start(predictor(false), ServiceConfig::default());
    let handle = service
        .submit(request_tables(&[1], 0, 0), RequestOptions::default())
        .expect("admitted");

    // Poll like a real client: must resolve to Stopped, never hang.
    let mut verdict = None;
    for _ in 0..3000 {
        if let Some(result) = handle.wait_timeout(Duration::from_millis(10)) {
            verdict = Some(result);
            break;
        }
    }
    assert!(matches!(
        verdict.expect("fail-stop resolves the poller within 30 s"),
        Err(ServeError::Stopped)
    ));
    // The terminal result is spent: polling again is Stopped immediately.
    assert!(matches!(
        handle.wait_timeout(Duration::from_millis(1)),
        Some(Err(ServeError::Stopped))
    ));

    assert!(matches!(
        service.submit(request_tables(&[1], 10, 1), RequestOptions::default()),
        Err(ServeError::ShuttingDown)
    ));
    let stats = service.shutdown();
    assert_eq!(stats.worker_restarts, u64::from(MAX_CONSECUTIVE_RESTARTS));
    assert_eq!(stats.completed, 0);
    assert_eq!(stats.quarantined, 0);
}

/// `load_artifact` retries transient I/O with backoff: two injected I/O
/// failures are absorbed and the swap lands; more failures than the retry
/// budget roll the swap back while the incumbent keeps serving.
#[test]
fn transient_artifact_io_is_retried_with_backoff() {
    let _gate = serial();
    quiet_injected_panics();
    let _faults = faults::scoped();
    let b = predictor(true);
    let good = temp_path("transient_good.satoart");
    std::fs::write(&good, b.to_bytes()).unwrap();

    let service = SatoService::start(predictor(false), ServiceConfig::default());

    // Two transient failures, then the read succeeds within the budget.
    faults::set("core.artifact_load", FaultSpec::error().times(2));
    let meta = service.load_artifact(&good).expect("retries absorb it");
    assert_eq!(meta, b.artifact_meta());
    assert_eq!(faults::fired("core.artifact_load"), 2);

    // Persistent failure: the budget runs out, the swap rolls back, and
    // generation B (the incumbent by now) keeps serving.
    faults::set("core.artifact_load", FaultSpec::error());
    assert!(matches!(
        service.load_artifact(&good),
        Err(ServeError::Swap(PredictorError::Io(_)))
    ));
    assert_eq!(service.artifact_meta(), b.artifact_meta());
    faults::clear("core.artifact_load");
    let table = request_tables(&[2], 0, 3);
    let response = service.annotate(table.clone()).expect("still serving");
    assert_eq!(response.artifact_hash, b.content_hash());
    assert_eq!(response.predictions, oracle(&b, &table, 64));

    let stats = service.shutdown();
    assert_eq!(stats.swaps, 1);
    assert_eq!(stats.swap_rollbacks, 1);
    assert_eq!(stats.artifact.content_hash, b.content_hash());
    let _ = std::fs::remove_file(good);
}

/// A colstore decode fault fails exactly the submission that hit it — the
/// ingest path parses before anything queues — and the service serves the
/// identical bytes normally once the fault clears.
#[test]
fn colstore_decode_fault_degrades_one_submission_not_the_service() {
    let _gate = serial();
    quiet_injected_panics();
    let _faults = faults::scoped();
    let a = predictor(false);
    let tables = request_tables(&[2, 3, 1], 0, 5);
    let bytes = colstore::corpus_to_bytes(&Corpus::new(tables.clone()));

    let service = SatoService::start(predictor(false), ServiceConfig::default());
    faults::set("tabular.colstore_decode", FaultSpec::error().nth(2));
    assert!(matches!(
        service.submit_colstore_bytes(&bytes, RequestOptions::default()),
        Err(ServeError::Corpus(_))
    ));
    assert_eq!(faults::fired("tabular.colstore_decode"), 1);

    faults::clear("tabular.colstore_decode");
    let response = service
        .submit_colstore_bytes(&bytes, RequestOptions::default())
        .expect("admitted")
        .wait()
        .expect("served");
    assert_eq!(response.predictions, oracle(&a, &tables, 64));
    let stats = service.shutdown();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.admitted, 1);
}

/// The validated index-load path rolls back on every failure class —
/// injected sidecar I/O, a torn write, a flipped payload byte — while the
/// incumbent in-memory index keeps answering searches, and the untouched
/// sidecar still loads cleanly once the fault clears.
#[test]
fn corrupt_index_load_rolls_back_and_the_incumbent_keeps_serving() {
    let _gate = serial();
    quiet_injected_panics();
    let _faults = faults::scoped();
    let a = predictor(false);

    let service = SatoService::start(
        predictor(false),
        ServiceConfig {
            batch_cols: 4,
            index_on_annotate: Some(HnswConfig::default()),
            ..ServiceConfig::default()
        },
    );
    let tables = request_tables(&[2, 1, 3], 0, 11);
    service.annotate(tables.clone()).expect("served");
    let indexed = service.index_len();
    assert_eq!(indexed, 6, "every annotated column is indexed");

    let sidecar = temp_path("index_sidecar.satoidx");
    service.save_index(&sidecar).expect("sidecar saved");

    // Injected I/O on the sidecar read fails the load typed ...
    faults::set("index.load", FaultSpec::error());
    assert!(matches!(
        service.load_index(&sidecar),
        Err(ServeError::Index(IndexError::Io(_)))
    ));
    assert_eq!(faults::fired("index.load"), 1);
    faults::clear("index.load");

    // ... as do a torn write (truncation) and a flipped payload byte ...
    let bytes = std::fs::read(&sidecar).unwrap();
    let torn = temp_path("index_torn.satoidx");
    std::fs::write(&torn, &bytes[..bytes.len() / 2]).unwrap();
    assert!(matches!(
        service.load_index(&torn),
        Err(ServeError::Index(_))
    ));
    let mut flipped = bytes.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x20;
    std::fs::write(&torn, &flipped).unwrap();
    assert!(matches!(
        service.load_index(&torn),
        Err(ServeError::Index(IndexError::Checksum(_)))
    ));

    // ... and every rollback left the incumbent index answering queries.
    assert_eq!(service.index_len(), indexed);
    let query = a.column_embeddings(&tables[0]);
    let hits = service
        .search_index(&query[0], 1)
        .expect("still searchable");
    assert_eq!(
        hits[0].key,
        ColumnRef {
            table_id: 0,
            col_idx: 0
        }
    );
    assert_eq!(hits[0].distance, 0.0, "self-query must be exact");

    // The untouched sidecar still loads cleanly.
    assert_eq!(service.load_index(&sidecar).expect("healthy load"), indexed);

    let stats = service.shutdown();
    assert_eq!(stats.index_rollbacks, 3, "one rollback per failed load");
    assert_eq!(stats.indexed_columns, 6);
    for path in [sidecar, torn] {
        let _ = std::fs::remove_file(path);
    }
}

/// An injected panic inside a graph insert must never fail annotation: the
/// round's client is answered bit-identical to the oracle, the
/// possibly-torn index is dropped whole (`index_rollbacks`), and later
/// traffic rebuilds it from scratch.
#[test]
fn index_insert_panic_drops_the_index_but_never_the_response() {
    let _gate = serial();
    quiet_injected_panics();
    let _faults = faults::scoped();
    let a = predictor(false);
    faults::set("index.insert", FaultSpec::panic().once());

    let batch_cols = 4;
    let service = SatoService::start(
        predictor(false),
        ServiceConfig {
            batch_cols,
            index_on_annotate: Some(HnswConfig::default()),
            ..ServiceConfig::default()
        },
    );

    // The round that hits the insert fault still answers its client.
    let poisoned_round = request_tables(&[2, 2], 0, 3);
    let response = service
        .annotate(poisoned_round.clone())
        .expect("indexing failures never fail annotation");
    assert_eq!(
        response.predictions,
        oracle(&a, &poisoned_round, batch_cols)
    );
    assert_eq!(faults::fired("index.insert"), 1);
    assert_eq!(service.index_len(), 0, "torn index must be dropped whole");
    assert!(matches!(
        service.search_index(&[0.0; 4], 1),
        Err(ServeError::IndexUnavailable)
    ));

    // The fault is spent: fresh traffic rebuilds the index from scratch.
    let rebuild = request_tables(&[1, 2], 100, 4);
    service.annotate(rebuild.clone()).expect("served");
    assert_eq!(service.index_len(), 3);
    let query = a.column_embeddings(&rebuild[1]);
    let hits = service
        .search_index(&query[1], 1)
        .expect("searchable again");
    assert_eq!(
        hits[0].key,
        ColumnRef {
            table_id: 101,
            col_idx: 1
        }
    );

    let stats = service.shutdown();
    assert_eq!(stats.index_rollbacks, 1);
    assert_eq!(
        stats.indexed_columns, 3,
        "only the rebuilt round's inserts count"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Concurrent clients under chaos: delayed rounds (`serve.round`
    /// Delay), a worker crash at an arbitrary round (`serve.round_formation`
    /// Panic), and a corrupt hot-swap racing the submissions. No request
    /// may be lost, every response must be tagged with the only artifact
    /// that ever served and stay bit-identical to its sequential oracle,
    /// and the service must drain cleanly on shutdown.
    #[test]
    fn chaos_rounds_lose_no_request_and_stay_bit_identical(
        batch_cols in 1usize..16,
        shapes in proptest::collection::vec(
            proptest::collection::vec(0usize..4, 0..4), 2..8),
        salt in 0usize..10_000,
        delay_every in 1u64..4,
        crash_on_round in 1u64..5,
    ) {
        let _gate = serial();
        quiet_injected_panics();
        let _faults = faults::scoped();
        faults::set(
            "serve.round",
            FaultSpec::delay(Duration::from_micros(300)).every(delay_every),
        );
        faults::set("serve.round_formation", FaultSpec::panic().nth(crash_on_round));

        let a = predictor(false);
        let requests: Vec<Vec<Table>> = shapes
            .iter()
            .enumerate()
            .map(|(r, cols)| request_tables(cols, (r * 100) as u64, salt + r))
            .collect();
        let service = SatoService::start(
            predictor(false),
            ServiceConfig {
                batch_cols,
                ..ServiceConfig::default()
            },
        );
        let corrupt = temp_path("proptest_corrupt.satoart");
        let bytes = a.to_bytes();
        std::fs::write(&corrupt, &bytes[..bytes.len() / 3]).unwrap();

        let responses = std::thread::scope(|scope| {
            let clients: Vec<_> = (0..2)
                .map(|parity| {
                    let service = &service;
                    let requests = &requests;
                    scope.spawn(move || {
                        requests
                            .iter()
                            .enumerate()
                            .filter(|(r, _)| r % 2 == parity)
                            .map(|(r, tables)| {
                                let handle = service
                                    .submit(tables.clone(), RequestOptions::default())
                                    .expect("queue never fills in this test");
                                (r, handle.wait().expect("no request may be lost"))
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            // The failing hot-swap races the clients from this thread.
            let swap = service.load_artifact(&corrupt);
            assert!(matches!(swap, Err(ServeError::Swap(_))));
            clients
                .into_iter()
                .flat_map(|c| c.join().expect("client thread panicked"))
                .collect::<Vec<_>>()
        });

        prop_assert_eq!(responses.len(), requests.len());
        for (r, response) in responses {
            prop_assert_eq!(
                response.artifact_hash,
                a.content_hash(),
                "request {} tagged with an artifact that never swapped in",
                r
            );
            prop_assert_eq!(
                &response.predictions,
                &oracle(&a, &requests[r], batch_cols),
                "request {} must stay bit-identical under chaos",
                r
            );
        }
        let stats = service.shutdown();
        prop_assert_eq!(stats.completed, requests.len() as u64);
        prop_assert_eq!(stats.quarantined, 0);
        prop_assert_eq!(stats.swap_rollbacks, 1);
        let _ = std::fs::remove_file(corrupt);
    }
}
