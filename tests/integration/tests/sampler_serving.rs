//! Serving-level tests of the pluggable topic-sampler layer: the
//! sparse/alias and Metropolis–Hastings samplers must be deterministic,
//! internally consistent across every serving entry point, quantifiably
//! close to the dense parity oracle, and faithfully round-tripped through
//! the predictor artifact (including artifacts that predate the sampler
//! field).

use proptest::prelude::*;
use sato::{SamplerKind, SatoConfig, SatoModel, SatoVariant, ServingScratch};
use sato_tabular::corpus::default_corpus;
use sato_tabular::table::{Column, Corpus, Table};
use sato_topic::{LdaConfig, TableIntentEstimator, TopicSampler, TopicScratch};
use std::sync::OnceLock;

fn tiny_config() -> SatoConfig {
    let mut config = SatoConfig::fast();
    config.network.epochs = 5;
    config.lda.train_iterations = 15;
    config.crf.epochs = 3;
    config
}

/// One pre-trained intent estimator shared across cases (LDA training cost
/// paid once).
fn estimator() -> &'static TableIntentEstimator {
    static ESTIMATOR: OnceLock<TableIntentEstimator> = OnceLock::new();
    ESTIMATOR.get_or_init(|| {
        let corpus = default_corpus(60, 21);
        TableIntentEstimator::fit(&corpus, LdaConfig::tiny())
    })
}

/// Deterministic cell content mixing in-vocabulary words, numerics, blanks
/// and out-of-vocabulary noise (mirrors `topic_parity.rs`).
fn cell_value(entropy: usize) -> &'static str {
    const POOL: [&str; 10] = [
        "Warsaw",
        "London",
        "Poland",
        "12.5",
        "",
        "Rock",
        "alpha beta gamma",
        "zzzzqq",    // OOV token
        "qqxx yyzz", // OOV-only multi-token cell
        "2020-11-05",
    ];
    POOL[entropy % POOL.len()]
}

fn ragged_corpus(shapes: &[Vec<usize>], salt: usize) -> Corpus {
    let tables = shapes
        .iter()
        .enumerate()
        .map(|(t, cols)| {
            let columns = cols
                .iter()
                .enumerate()
                .map(|(c, &rows)| {
                    Column::new((0..rows).map(|r| cell_value(salt + t * 31 + c * 7 + r * 3)))
                })
                .collect();
            Table::unlabelled(t as u64, columns)
        })
        .collect();
    Corpus::new(tables)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// All three samplers yield valid probability distributions
    /// (non-negative, summing to one) over arbitrarily ragged corpora —
    /// zero-column tables, OOV-only documents and one-token documents
    /// included — and the approximate samplers are deterministic across
    /// repeated estimates.
    #[test]
    fn all_samplers_yield_valid_distributions_on_ragged_corpora(
        shapes in proptest::collection::vec(
            proptest::collection::vec(0usize..5, 0..5), 1..8),
        salt in 0usize..10_000,
    ) {
        let est = estimator();
        let sparse = est.build_sampler(SamplerKind::SparseAlias);
        let mh = est.build_sampler(SamplerKind::MetropolisHastings);
        let corpus = ragged_corpus(&shapes, salt);
        let mut scratch = TopicScratch::new();
        for table in corpus.iter() {
            for sampler in [&TopicSampler::Dense, &sparse, &mh] {
                let theta = est.estimate_with(table, sampler, &mut scratch);
                prop_assert_eq!(theta.len(), est.num_topics());
                let sum: f32 = theta.iter().sum();
                prop_assert!(
                    (sum - 1.0).abs() < 1e-3,
                    "{:?} sampler: theta sums to {} on table {}",
                    sampler.kind(), sum, table.id
                );
                prop_assert!(theta.iter().all(|&x| (0.0..=1.0 + 1e-6).contains(&x)));
            }
            // Determinism under the fixed serving seed.
            for sampler in [&sparse, &mh] {
                let a = est.estimate_with(table, sampler, &mut scratch);
                prop_assert_eq!(&a, &est.estimate_with(table, sampler, &mut scratch));
                prop_assert_eq!(&a, &est.estimate_sampled(table, sampler));
            }
        }
    }
}

/// The approximation is quantified, not assumed: on a fixed corpus the mean
/// L1 distance between dense and sparse/alias thetas stays under a
/// tolerance comparable to the dense sampler's own seed-to-seed Monte-Carlo
/// noise (both samplers draw from the same per-token conditional; only the
/// RNG consumption pattern differs).
#[test]
fn sparse_sampler_thetas_are_statistically_close_to_dense() {
    let est = estimator();
    let sparse = est.build_sampler(SamplerKind::SparseAlias);
    let corpus = default_corpus(40, 77);
    let mut scratch = TopicScratch::new();
    let dense_thetas = est.estimate_corpus_with(&corpus, &TopicSampler::Dense, &mut scratch);
    let sparse_thetas = est.estimate_corpus_with(&corpus, &sparse, &mut scratch);
    let mean_l1 = dense_thetas
        .iter()
        .zip(&sparse_thetas)
        .map(|(a, b)| a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f32>())
        .sum::<f32>()
        / corpus.len() as f32;
    assert!(
        mean_l1 < 0.5,
        "sparse sampler drifted from dense: mean L1 = {mean_l1}"
    );
    // Sanity: the thetas genuinely differ (the sampler is not accidentally
    // routing through the dense path).
    assert_ne!(dense_thetas, sparse_thetas);
}

/// The Metropolis–Hastings sampler targets the same per-token conditional
/// through cycle proposals, so its thetas must stay within the same
/// Monte-Carlo band of the dense oracle. The tolerance is looser than the
/// sparse sampler's: MH resolves each token with accept/reject noise on
/// top of the shared proposal tables, so per-seed drift sits closer to the
/// dense sampler's own seed-to-seed spread.
#[test]
fn mh_sampler_thetas_are_statistically_close_to_dense() {
    let est = estimator();
    let mh = est.build_sampler(SamplerKind::MetropolisHastings);
    let corpus = default_corpus(40, 77);
    let mut scratch = TopicScratch::new();
    let dense_thetas = est.estimate_corpus_with(&corpus, &TopicSampler::Dense, &mut scratch);
    let mh_thetas = est.estimate_corpus_with(&corpus, &mh, &mut scratch);
    let mean_l1 = dense_thetas
        .iter()
        .zip(&mh_thetas)
        .map(|(a, b)| a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f32>())
        .sum::<f32>()
        / corpus.len() as f32;
    assert!(
        mean_l1 < 0.8,
        "MH sampler drifted from dense: mean L1 = {mean_l1}"
    );
    assert_ne!(dense_thetas, mh_thetas);
}

/// The approximate samplers are *serving modes*: every serving entry point
/// of a `with_sampler(SparseAlias)` or `with_sampler(MetropolisHastings)`
/// predictor agrees with every other — for all four variants — and
/// repeated serves are deterministic.
#[test]
fn approximate_serving_modes_are_consistent_across_entry_points() {
    let train = default_corpus(25, 13);
    let mut corpus = default_corpus(8, 99);
    corpus.tables.push(Table::unlabelled(800, vec![]));
    corpus
        .tables
        .push(Table::unlabelled(801, vec![Column::new(["Warsaw"])]));
    corpus.tables.push(Table::unlabelled(
        802,
        vec![Column::new(["zzzzqq"]), Column::new(["qqxx", "yyzz"])],
    ));
    for variant in SatoVariant::ALL {
        let mut predictor = SatoModel::train(&train, tiny_config(), variant).into_predictor();
        for kind in [SamplerKind::SparseAlias, SamplerKind::MetropolisHastings] {
            predictor = predictor.with_sampler(kind);
            assert_eq!(predictor.sampler_kind(), kind);
            let sequential = predictor.predict_corpus(&corpus);
            assert_eq!(
                sequential,
                predictor.predict_corpus(&corpus),
                "variant {} / {}: serving must be deterministic",
                variant.name(),
                kind.name()
            );
            let mut scratch = ServingScratch::new();
            let mut memo_scratch = ServingScratch::new().with_topic_memo();
            for batch_cols in [1, 7, 1000] {
                assert_eq!(
                    sequential,
                    predictor.predict_corpus_batched_with(&corpus, batch_cols, &mut scratch),
                    "variant {} / {} batch_cols {batch_cols}",
                    variant.name(),
                    kind.name()
                );
                assert_eq!(
                    sequential,
                    predictor.predict_corpus_batched_with(&corpus, batch_cols, &mut memo_scratch),
                    "variant {} / {} batch_cols {batch_cols} (memoised)",
                    variant.name(),
                    kind.name()
                );
            }
            assert_eq!(
                sequential,
                predictor.predict_corpus_parallel_batched(&corpus, 8, 3),
                "variant {} / {} parallel batched",
                variant.name(),
                kind.name()
            );
        }
    }
}

/// For a topic-aware variant the sampler choice actually changes the
/// pipeline's topic inputs (it is an axis, not a no-op), while a
/// topic-free variant is unaffected by construction.
#[test]
fn sampler_choice_affects_only_topic_aware_variants() {
    let train = default_corpus(25, 13);
    let corpus = default_corpus(10, 55);
    // Topic-free: identical predictions under any sampler.
    let base = SatoModel::train(&train, tiny_config(), SatoVariant::Base).into_predictor();
    let base_dense = base.predict_corpus(&corpus);
    let base_sparse = base.with_sampler(SamplerKind::SparseAlias);
    assert_eq!(base_dense, base_sparse.predict_corpus(&corpus));
    let base_mh = base_sparse.with_sampler(SamplerKind::MetropolisHastings);
    assert_eq!(base_dense, base_mh.predict_corpus(&corpus));
    // Topic-aware: the probability rows must differ somewhere (thetas are
    // close but not bit-identical, and the network consumes them).
    let full = SatoModel::train(&train, tiny_config(), SatoVariant::Full).into_predictor();
    let dense_probs: Vec<_> = corpus.iter().map(|t| full.predict_proba(t)).collect();
    let full_sparse = full.with_sampler(SamplerKind::SparseAlias);
    let sparse_probs: Vec<_> = corpus
        .iter()
        .map(|t| full_sparse.predict_proba(t))
        .collect();
    assert_ne!(
        dense_probs, sparse_probs,
        "sparse sampler did not change the topic inputs of a topic-aware model"
    );
    let full_mh = full_sparse.with_sampler(SamplerKind::MetropolisHastings);
    let mh_probs: Vec<_> = corpus.iter().map(|t| full_mh.predict_proba(t)).collect();
    assert_ne!(
        dense_probs, mh_probs,
        "MH sampler did not change the topic inputs of a topic-aware model"
    );
    assert_ne!(
        sparse_probs, mh_probs,
        "MH serving must be a distinct mode, not an alias of sparse"
    );
}

/// Artifact versioning: the sampler kind round-trips through JSON (and the
/// loaded predictor reproduces the saved one bit for bit, alias tables
/// rebuilt at load time); an artifact saved *without* a sampler field — the
/// pre-sampler format — loads as Dense; an unknown sampler name is a clear
/// load error, not a panic or a silent fallback.
#[test]
fn sampler_artifact_versioning() {
    use sato::{PredictorError, SatoPredictor};
    let train = default_corpus(25, 13);
    let predictor = SatoModel::train(&train, tiny_config(), SatoVariant::Full)
        .into_predictor()
        .with_sampler(SamplerKind::SparseAlias);
    let corpus = default_corpus(8, 99);
    let expected = predictor.predict_corpus(&corpus);

    // Round trip preserves the kind and the exact predictions.
    let json = predictor.to_json();
    assert!(json.contains("\"sampler\":\"SparseAlias\""));
    let loaded = SatoPredictor::from_json(&json).unwrap();
    assert_eq!(loaded.sampler_kind(), SamplerKind::SparseAlias);
    assert_eq!(expected, loaded.predict_corpus(&corpus));

    // The Metropolis–Hastings kind round-trips the same way.
    let mh = predictor.with_sampler(SamplerKind::MetropolisHastings);
    let mh_expected = mh.predict_corpus(&corpus);
    let mh_json = mh.to_json();
    assert!(mh_json.contains("\"sampler\":\"MetropolisHastings\""));
    let loaded = SatoPredictor::from_json(&mh_json).unwrap();
    assert_eq!(loaded.sampler_kind(), SamplerKind::MetropolisHastings);
    assert_eq!(mh_expected, loaded.predict_corpus(&corpus));

    // Pre-sampler-era artifact (no sampler field at all) → Dense.
    let dense = SatoModel::train(&train, tiny_config(), SatoVariant::Full).into_predictor();
    let dense_json = dense.to_json();
    let legacy = dense_json.replacen("\"sampler\":\"Dense\",", "", 1);
    assert!(!legacy.contains("\"sampler\""), "field not stripped");
    let loaded = SatoPredictor::from_json(&legacy).unwrap();
    assert_eq!(loaded.sampler_kind(), SamplerKind::Dense);
    assert_eq!(
        dense.predict_corpus(&corpus),
        loaded.predict_corpus(&corpus),
        "legacy artifact must serve bit-identically to its dense author"
    );

    // Unknown sampler kind → descriptive load error.
    let unknown = dense_json.replacen("\"sampler\":\"Dense\"", "\"sampler\":\"Turbo\"", 1);
    match SatoPredictor::from_json(&unknown) {
        Err(PredictorError::Json(e)) => {
            let msg = e.to_string();
            assert!(
                msg.contains("unknown SamplerKind variant"),
                "error should name the bad sampler kind, got: {msg}"
            );
        }
        Err(other) => panic!("expected a JSON load error, got: {other}"),
        Ok(_) => panic!("unknown sampler kind must fail to load"),
    }
}
