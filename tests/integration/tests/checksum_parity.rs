//! Cross-crate checksum parity: the workspace historically carried three
//! private copies of FNV-1a 64 (feature hashing, colstore framing, artifact
//! framing). All three now delegate to `sato_kernels::fnv1a64`, and these
//! tests pin the observable consequences: every `SATOCOL1` frame checksum
//! and every `SATOART1` content hash is reproducible by calling the shared
//! kernel directly on the raw bytes, and the kernel itself matches the
//! byte-at-a-time textbook definition on arbitrary input.

use proptest::prelude::*;
use sato::{SatoConfig, SatoModel, SatoPredictor, SatoVariant};
use sato_tabular::colstore::corpus_to_bytes;
use sato_tabular::corpus::default_corpus;

/// The textbook byte-at-a-time FNV-1a 64 — the definition the three
/// historical copies spelled out verbatim.
fn fnv1a64_reference(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The shared kernel (8-byte chunked) is bit-identical to the
    /// byte-at-a-time definition on arbitrary byte strings.
    #[test]
    fn kernel_fnv_matches_textbook_definition(
        bytes in proptest::collection::vec(0u8..=255, 64),
        n in 0usize..=64,
    ) {
        let bytes = &bytes[..n];
        prop_assert_eq!(sato_kernels::fnv1a64(bytes), fnv1a64_reference(bytes));
    }
}

/// Every frame of a `SATOCOL1` stream carries `fnv1a64(payload)` as its
/// trailing checksum — recomputable with the shared kernel straight off the
/// wire bytes, which proves `sato_tabular::colstore` frames with the same
/// function this test links from `sato-kernels`.
#[test]
fn colstore_frame_checksums_match_shared_kernel() {
    let corpus = default_corpus(12, 41);
    let bytes = corpus_to_bytes(&corpus);
    // header := magic (8) | version u32 | flags u32
    let mut off = 16usize;
    let mut frames = 0usize;
    loop {
        let len = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap()) as usize;
        off += 8;
        if len == 0 {
            break;
        }
        let payload = &bytes[off..off + len];
        off += len;
        let checksum = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
        off += 8;
        assert_eq!(
            checksum,
            sato_kernels::fnv1a64(payload),
            "frame {frames} checksum is not the shared kernel FNV of its payload"
        );
        frames += 1;
    }
    assert_eq!(frames, corpus.len(), "walked a different number of frames");
    assert_eq!(off, bytes.len(), "trailing bytes after the terminator");
}

/// The predictor's content hash — the identity the serving stack keys
/// hot-swap validation on — is `fnv1a64` of the full `SATOART1` byte
/// stream, recomputable with the shared kernel.
#[test]
fn artifact_content_hash_matches_shared_kernel() {
    let mut config = SatoConfig::fast().with_seed(23);
    config.network.epochs = 2;
    config.lda.train_iterations = 10;
    config.lda.infer_iterations = 5;
    config.crf.epochs = 1;
    let predictor =
        SatoModel::train(&default_corpus(15, 23), config, SatoVariant::Base).into_predictor();
    let bytes = predictor.to_bytes();
    assert_eq!(predictor.content_hash(), sato_kernels::fnv1a64(&bytes));
    // And the loaded artifact agrees with itself.
    let loaded = SatoPredictor::from_bytes(&bytes).expect("artifact must load");
    assert_eq!(loaded.content_hash(), predictor.content_hash());
}
