//! Serving-exactness suite for the always-on annotation service
//! (`sato-serve`): concurrent submissions under arbitrary interleavings,
//! batch widths and mid-stream artifact hot-swaps must return responses
//! **bit-identical** to a sequential `predict_corpus_batched` pass on
//! whichever artifact the service says served them — for all four model
//! variants and all three topic samplers. Plus direct regressions for the
//! queue's failure modes: admission-control rejection, deadline expiry, and
//! colstore submissions.

use proptest::prelude::*;
use sato::{SamplerKind, SatoConfig, SatoModel, SatoPredictor, SatoVariant, TablePrediction};
use sato_serve::{RequestOptions, SatoService, ServeError, ServiceConfig};
use sato_tabular::colstore;
use sato_tabular::table::{Column, Corpus, Table};
use std::sync::OnceLock;
use std::time::Duration;

fn tiny_config() -> SatoConfig {
    let mut config = SatoConfig::fast();
    config.network.epochs = 5;
    config.lda.train_iterations = 15;
    config.crf.epochs = 3;
    config
}

/// Per-variant fixture: two model generations (trained on different
/// corpora, so their content hashes differ) as canonical artifact bytes —
/// predictors are rebuilt per test via `from_bytes`, which is also the
/// hot-swap load path.
struct VariantFixture {
    generation_a: Vec<u8>,
    generation_b: Vec<u8>,
}

fn fixtures() -> &'static [VariantFixture; 4] {
    static FIXTURES: OnceLock<[VariantFixture; 4]> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        SatoVariant::ALL.map(|variant| {
            let train = |seed: u64| {
                SatoModel::train(
                    &sato_tabular::corpus::default_corpus(20, seed),
                    tiny_config(),
                    variant,
                )
                .into_predictor()
                .to_bytes()
            };
            let fixture = VariantFixture {
                generation_a: train(7),
                generation_b: train(8),
            };
            assert_ne!(
                fixture.generation_a,
                fixture.generation_b,
                "the two generations of {} must differ",
                variant.name()
            );
            fixture
        })
    })
}

/// Rebuild one generation of one variant, with the given serving sampler.
fn predictor(variant_idx: usize, sampler: SamplerKind, second_generation: bool) -> SatoPredictor {
    let fixture = &fixtures()[variant_idx];
    let bytes = if second_generation {
        &fixture.generation_b
    } else {
        &fixture.generation_a
    };
    SatoPredictor::from_bytes(bytes)
        .expect("fixture artifact loads")
        .with_sampler(sampler)
}

/// Deterministic cell pool mixing in-vocabulary words, numerics, blanks and
/// out-of-vocabulary noise (same shape as the topic-parity suite).
fn cell_value(entropy: usize) -> &'static str {
    const POOL: [&str; 10] = [
        "Warsaw",
        "London",
        "Poland",
        "Rock",
        "12.5",
        "1,777,972",
        "",
        "alpha beta gamma",
        "zzzzqq",
        "2020-11-05",
    ];
    POOL[entropy % POOL.len()]
}

/// Build one request's tables from per-table column counts; `first_id`
/// keeps ids unique across the requests of a case (the id is the topic-memo
/// key within an artifact).
fn request_tables(col_counts: &[usize], first_id: u64, salt: usize) -> Vec<Table> {
    col_counts
        .iter()
        .enumerate()
        .map(|(t, &cols)| {
            let columns = (0..cols)
                .map(|c| {
                    let rows = 1 + (salt + t * 5 + c * 3) % 4;
                    Column::new((0..rows).map(|r| cell_value(salt + t * 31 + c * 7 + r)))
                })
                .collect();
            Table::unlabelled(first_id + t as u64, columns)
        })
        .collect()
}

/// The sequential oracle the tentpole promises: `predict_corpus_batched` on
/// the request's own tables, on a specific artifact.
fn oracle(p: &SatoPredictor, tables: &[Table], batch_cols: usize) -> Vec<TablePrediction> {
    p.predict_corpus_batched(&Corpus::new(tables.to_vec()), batch_cols)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Requests submitted concurrently from two client threads — arbitrary
    /// per-request shapes, arbitrary service batch width, arbitrary
    /// topic-memo capacity, and a hot-swap racing the submissions at an
    /// arbitrary point — every response must be bit-identical to the
    /// sequential batched oracle of the artifact whose hash tagged it.
    #[test]
    fn concurrent_interleavings_with_racing_hot_swap_serve_bit_identically(
        variant_idx in 0usize..4,
        sampler_idx in 0usize..3,
        batch_cols in 1usize..48,
        shapes in proptest::collection::vec(
            proptest::collection::vec(0usize..4, 0..4), 2..8),
        salt in 0usize..10_000,
        swap_after in 0usize..8,
        memo in 0usize..2,
    ) {
        let sampler = [
            SamplerKind::Dense,
            SamplerKind::SparseAlias,
            SamplerKind::MetropolisHastings,
        ][sampler_idx];
        let a = predictor(variant_idx, sampler, false);
        let b = predictor(variant_idx, sampler, true);
        prop_assert_ne!(a.content_hash(), b.content_hash());

        let requests: Vec<Vec<Table>> = shapes
            .iter()
            .enumerate()
            .map(|(r, cols)| request_tables(cols, (r * 100) as u64, salt + r))
            .collect();

        let service = SatoService::start(
            predictor(variant_idx, sampler, false),
            ServiceConfig {
                batch_cols,
                topic_memo_capacity: if memo == 1 { 32 } else { 0 },
                ..ServiceConfig::default()
            },
        );
        let swap_after = swap_after.min(requests.len());
        let responses = std::thread::scope(|scope| {
            // Two client threads interleave their submissions while the
            // main thread swaps the artifact: which artifact serves which
            // request is a genuine race, resolved by each response's tag.
            let clients: Vec<_> = (0..2)
                .map(|parity| {
                    let service = &service;
                    let requests = &requests;
                    scope.spawn(move || {
                        requests
                            .iter()
                            .enumerate()
                            .filter(|(r, _)| r % 2 == parity)
                            .map(|(r, tables)| {
                                if r == swap_after {
                                    service.swap_predictor(predictor(variant_idx, sampler, true));
                                }
                                let handle = service
                                    .submit(tables.clone(), RequestOptions::default())
                                    .expect("queue never fills in this test");
                                (r, handle.wait().expect("request serves"))
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            clients
                .into_iter()
                .flat_map(|c| c.join().expect("client thread panicked"))
                .collect::<Vec<_>>()
        });

        prop_assert_eq!(responses.len(), requests.len());
        for (r, response) in responses {
            let served_by = if response.artifact_hash == a.content_hash() {
                &a
            } else {
                prop_assert_eq!(
                    response.artifact_hash,
                    b.content_hash(),
                    "response tagged with an unknown artifact"
                );
                &b
            };
            prop_assert_eq!(
                &response.predictions,
                &oracle(served_by, &requests[r], batch_cols),
                "request {} ({} tables, {} sampler, batch {})",
                r,
                requests[r].len(),
                sampler.name(),
                batch_cols
            );
        }
        service.shutdown();
    }
}

/// The full matrix, deterministically: for every variant × sampler, queued
/// requests coalesced into shared micro-batches before AND after a
/// mid-stream hot-swap reproduce each artifact's sequential batched oracle
/// bit for bit — with the topic memo enabled, so a stale memo entry
/// surviving the swap would surface here as a theta drift.
#[test]
fn all_variants_and_samplers_serve_bit_identically_across_a_hot_swap() {
    let batch_cols = 7;
    for variant_idx in 0..4 {
        for sampler in [
            SamplerKind::Dense,
            SamplerKind::SparseAlias,
            SamplerKind::MetropolisHastings,
        ] {
            let a = predictor(variant_idx, sampler, false);
            let b = predictor(variant_idx, sampler, true);
            let requests: Vec<Vec<Table>> = (0..4)
                .map(|r| request_tables(&[3, 1, 0, 2][..=r.min(3)], (r * 100) as u64, r))
                .collect();

            let service = SatoService::start(
                predictor(variant_idx, sampler, false),
                ServiceConfig {
                    batch_cols,
                    topic_memo_capacity: 32,
                    ..ServiceConfig::default()
                },
            );
            // Phase 1: all requests queue while paused, then drain together
            // (coalesced across requests) on generation A.
            service.pause();
            let handles: Vec<_> = requests
                .iter()
                .map(|tables| {
                    service
                        .submit(tables.clone(), RequestOptions::default())
                        .expect("admitted")
                })
                .collect();
            service.resume();
            for (r, handle) in handles.into_iter().enumerate() {
                let response = handle.wait().expect("served");
                assert_eq!(
                    response.artifact_hash,
                    a.content_hash(),
                    "phase 1 serves on generation A"
                );
                assert_eq!(
                    response.predictions,
                    oracle(&a, &requests[r], batch_cols),
                    "variant {variant_idx} {} phase 1 request {r}",
                    sampler.name()
                );
            }
            // Phase 2: hot-swap, then serve the *same tables* again. The
            // worker's topic memo is warm with generation-A thetas for
            // exactly these table ids; the artifact tag on the memo must
            // invalidate them, or topic-aware variants would reply with
            // generation-A topics under generation B's hash.
            service.swap_predictor(predictor(variant_idx, sampler, true));
            let handles: Vec<_> = requests
                .iter()
                .map(|tables| {
                    service
                        .submit(tables.clone(), RequestOptions::default())
                        .expect("admitted")
                })
                .collect();
            for (r, handle) in handles.into_iter().enumerate() {
                let response = handle.wait().expect("served");
                assert_eq!(
                    response.artifact_hash,
                    b.content_hash(),
                    "phase 2 serves on generation B"
                );
                assert_eq!(
                    response.predictions,
                    oracle(&b, &requests[r], batch_cols),
                    "variant {variant_idx} {} phase 2 request {r}",
                    sampler.name()
                );
            }
            let stats = service.shutdown();
            assert_eq!(stats.swaps, 1);
            assert_eq!(stats.completed, 2 * requests.len() as u64);
        }
    }
}

/// A colstore byte stream submitted to the service is decoded at submission
/// and served exactly like the equivalent in-memory corpus request.
#[test]
fn colstore_submissions_serve_bit_identically() {
    let a = predictor(1, SamplerKind::Dense, false); // Full variant
    let tables = request_tables(&[2, 3, 1], 0, 5);
    let corpus = Corpus::new(tables.clone());
    let bytes = colstore::corpus_to_bytes(&corpus);

    let service = SatoService::start(
        predictor(1, SamplerKind::Dense, false),
        ServiceConfig::default(),
    );
    let response = service
        .submit_colstore_bytes(&bytes, RequestOptions::default())
        .expect("admitted")
        .wait()
        .expect("served");
    assert_eq!(response.predictions, oracle(&a, &tables, 64));

    // Garbage bytes are rejected at submission, not in the worker.
    assert!(matches!(
        service.submit_colstore_bytes(b"not a colstore", RequestOptions::default()),
        Err(ServeError::Corpus(_))
    ));
    service.shutdown();
}

/// Admission control and deadlines, exercised deterministically through the
/// pause seam: the queue rejects beyond its depth, and an expired request
/// is answered with `Expired` without ever being batched.
#[test]
fn overload_and_deadline_failure_modes() {
    let service = SatoService::start(
        predictor(0, SamplerKind::Dense, false), // Base variant: cheapest
        ServiceConfig {
            queue_depth: 2,
            ..ServiceConfig::default()
        },
    );
    service.pause();
    let keep_a = service
        .submit(request_tables(&[1], 0, 0), RequestOptions::default())
        .expect("admitted");
    let doomed = service
        .submit(
            request_tables(&[1], 10, 1),
            RequestOptions {
                deadline: Some(Duration::ZERO),
            },
        )
        .expect("admitted");
    let rejected = service.submit(request_tables(&[1], 20, 2), RequestOptions::default());
    assert!(matches!(
        rejected,
        Err(ServeError::Overloaded { queued: 2 })
    ));
    service.resume();

    assert!(keep_a.wait().is_ok());
    assert!(matches!(doomed.wait(), Err(ServeError::Expired)));
    let stats = service.shutdown();
    assert_eq!(stats.admitted, 2);
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.expired, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.latency.count(), 1);
}
