//! Cross-crate parity tests for the corpus-batched serving pipeline:
//! `SatoPredictor::predict_corpus_batched` (and its thread-sharded
//! composition) must be bit-identical to the per-table `predict_corpus` for
//! every model variant, every micro-batch width, and arbitrarily ragged
//! corpora — including zero-column and single-column tables.

use proptest::prelude::*;
use sato::{SatoConfig, SatoModel, SatoPredictor, SatoVariant};
use sato_tabular::corpus::default_corpus;
use sato_tabular::table::{Column, Corpus, Table};
use std::sync::OnceLock;

fn tiny_config() -> SatoConfig {
    let mut config = SatoConfig::fast();
    config.network.epochs = 5;
    config.lda.train_iterations = 15;
    config.crf.epochs = 3;
    config
}

/// One trained Full predictor (topic + CRF, the most complex pipeline),
/// shared across the property cases so training cost is paid once.
fn full_predictor() -> &'static SatoPredictor {
    static PREDICTOR: OnceLock<SatoPredictor> = OnceLock::new();
    PREDICTOR.get_or_init(|| {
        let corpus = default_corpus(30, 41);
        SatoModel::train(&corpus, tiny_config(), SatoVariant::Full).into_predictor()
    })
}

/// Deterministic cell content for a synthetic ragged corpus: a mix of
/// wordy, numeric, formatted and blank cells.
fn cell_value(entropy: usize) -> &'static str {
    const POOL: [&str; 12] = [
        "Warsaw",
        "London",
        "12.5",
        "1,777,972",
        "",
        "Rock",
        "alpha beta",
        "75 kg",
        "-3",
        "  ",
        "Dr. Strange & Co.",
        "2020-11-05",
    ];
    POOL[entropy % POOL.len()]
}

/// Build a corpus from per-table column shapes: `shapes[t][c]` is the row
/// count of column `c` of table `t` (an empty inner vec is a zero-column
/// table).
fn ragged_corpus(shapes: &[Vec<usize>], salt: usize) -> Corpus {
    let tables = shapes
        .iter()
        .enumerate()
        .map(|(t, cols)| {
            let columns = cols
                .iter()
                .enumerate()
                .map(|(c, &rows)| {
                    Column::new((0..rows).map(|r| cell_value(salt + t * 31 + c * 7 + r * 3)))
                })
                .collect();
            Table::unlabelled(t as u64, columns)
        })
        .collect();
    Corpus::new(tables)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Batched serving is bit-identical to per-table serving on arbitrarily
    /// ragged corpora: tables with 0, 1 or many columns, columns with 0 to
    /// several rows, any micro-batch width, with and without thread
    /// sharding on top.
    #[test]
    fn batched_serving_parity_over_ragged_corpora(
        shapes in proptest::collection::vec(
            proptest::collection::vec(0usize..6, 0..5), 1..9),
        batch_cols in 1usize..40,
        threads in 1usize..5,
        salt in 0usize..10_000,
    ) {
        let predictor = full_predictor();
        let corpus = ragged_corpus(&shapes, salt);
        let sequential = predictor.predict_corpus(&corpus);
        let batched = predictor.predict_corpus_batched(&corpus, batch_cols);
        prop_assert_eq!(&sequential, &batched);
        let sharded = predictor.predict_corpus_parallel_batched(&corpus, batch_cols, threads);
        prop_assert_eq!(&sequential, &sharded);
        // Ragged or not, every table gets one prediction per column.
        for (pred, table) in sequential.iter().zip(corpus.iter()) {
            prop_assert_eq!(pred.predicted.len(), table.num_columns());
            prop_assert!(pred.gold.is_empty(), "unlabelled tables have empty gold");
        }
    }
}

/// Every variant agrees between the per-table and the batched path, for the
/// boundary batch widths the issue calls out: one column per batch and a
/// batch wider than the whole corpus.
#[test]
fn batched_parity_all_variants_boundary_batches() {
    let corpus = default_corpus(18, 77);
    let total_cols: usize = corpus.iter().map(|t| t.num_columns()).sum();
    for variant in SatoVariant::ALL {
        let predictor = SatoModel::train(&corpus, tiny_config(), variant).into_predictor();
        let sequential = predictor.predict_corpus(&corpus);
        for batch_cols in [1, total_cols + 1] {
            assert_eq!(
                sequential,
                predictor.predict_corpus_batched(&corpus, batch_cols),
                "variant {} batch_cols {batch_cols}",
                variant.name()
            );
        }
    }
}

/// The batched path survives a JSON round-trip of the predictor: a reloaded
/// artifact serves batched predictions bit-identical to the original.
#[test]
fn batched_parity_after_artifact_round_trip() {
    let corpus = default_corpus(16, 5);
    let predictor =
        SatoModel::train(&corpus, tiny_config(), SatoVariant::SatoNoTopic).into_predictor();
    let reloaded = SatoPredictor::from_json(&predictor.to_json()).unwrap();
    assert_eq!(
        predictor.predict_corpus(&corpus),
        reloaded.predict_corpus_batched(&corpus, 10)
    );
}
