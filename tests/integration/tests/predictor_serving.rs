//! Integration tests of the train → freeze → serve lifecycle: the
//! `SatoPredictor` artifact must be thread-safe by construction, reproduce
//! the source model bit for bit, round-trip through JSON for every variant,
//! and serve in parallel with output identical to the sequential path.

use proptest::prelude::*;
use sato::{PredictorError, SatoConfig, SatoModel, SatoPredictor, SatoVariant};
use sato_tabular::corpus::default_corpus;

/// Compile-time assertion: the frozen serving artifact is `Send + Sync`.
/// If a future change smuggles an `Rc`, `RefCell` or raw RNG back into the
/// inference path, this stops compiling.
const _ASSERT_PREDICTOR_IS_SEND_SYNC: fn() = || {
    fn requires_send_sync<T: Send + Sync>() {}
    requires_send_sync::<SatoPredictor>();
};

/// A deliberately tiny configuration: the round-trip properties hold at any
/// scale, so the tests train the smallest model that exercises every code
/// path (topic subnetwork, BatchNorm statistics, CRF potentials).
fn tiny_config(seed: u64) -> SatoConfig {
    let mut config = SatoConfig::fast().with_seed(seed);
    config.network.epochs = 4;
    config.lda.train_iterations = 15;
    config.lda.infer_iterations = 10;
    config.crf.epochs = 2;
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Save → load → bit-identical predictions, for all four variants of
    /// Table 1, on arbitrary corpus/model seeds.
    #[test]
    fn json_round_trip_reproduces_predictions_for_all_variants(seed in 0u64..1000) {
        let corpus = default_corpus(25, seed);
        for variant in SatoVariant::ALL {
            let predictor =
                SatoModel::train(&corpus, tiny_config(seed ^ 0x5a70), variant).into_predictor();
            let loaded = SatoPredictor::from_json(&predictor.to_json())
                .expect("artifact written by to_json must load");
            prop_assert_eq!(loaded.variant(), variant);
            for table in corpus.iter().take(8) {
                prop_assert_eq!(
                    predictor.predict_proba(table),
                    loaded.predict_proba(table),
                    "probabilities drifted through JSON for {:?}",
                    variant
                );
                prop_assert_eq!(
                    predictor.predict(table),
                    loaded.predict(table),
                    "decoded types drifted through JSON for {:?}",
                    variant
                );
            }
        }
    }
}

#[test]
fn corrupted_artifacts_fail_with_errors_not_panics() {
    let corpus = default_corpus(20, 9);
    let predictor = SatoModel::train(&corpus, tiny_config(9), SatoVariant::Base).into_predictor();
    let json = predictor.to_json();

    // Truncations of a valid artifact at various depths.
    for cut in [0, 1, json.len() / 4, json.len() / 2, json.len() - 1] {
        let err = SatoPredictor::from_json(&json[..cut]);
        assert!(
            matches!(err, Err(PredictorError::Json(_))),
            "truncated artifact (cut at {cut}) must be a Json error"
        );
    }
    // Structurally valid JSON of the wrong shape.
    assert!(matches!(
        SatoPredictor::from_json("{\"hello\": [1, 2, 3]}"),
        Err(PredictorError::Json(_))
    ));
    assert!(matches!(
        SatoPredictor::from_json("[]"),
        Err(PredictorError::Json(_))
    ));
}

#[test]
fn frozen_predictor_serves_identically_from_many_threads() {
    let corpus = default_corpus(30, 17);
    let model = SatoModel::train(&corpus, tiny_config(17), SatoVariant::Full);
    let expected: Vec<_> = corpus.iter().map(|t| model.predict(t)).collect();
    let predictor = model.into_predictor();

    // The built-in fan-out matches the sequential path exactly.
    let sequential = predictor.predict_corpus(&corpus);
    for n_threads in [2, 5, 32] {
        assert_eq!(
            sequential,
            predictor.predict_corpus_parallel(&corpus, n_threads)
        );
    }

    // A shared borrow serves concurrent ad-hoc requests with the same
    // answers the mutable-era API produced.
    let shared = &predictor;
    let corpus = &corpus;
    std::thread::scope(|scope| {
        for worker in 0..4 {
            let expected = &expected;
            scope.spawn(move || {
                for (i, table) in corpus.iter().enumerate().skip(worker).step_by(4) {
                    assert_eq!(shared.predict(table), expected[i]);
                }
            });
        }
    });
}

#[test]
fn file_save_load_round_trip() {
    let corpus = default_corpus(20, 23);
    let predictor =
        SatoModel::train(&corpus, tiny_config(23), SatoVariant::SatoNoStruct).into_predictor();
    let path = std::env::temp_dir().join("sato_predictor_roundtrip_test.json");
    predictor.save(&path).expect("save artifact");
    let loaded = SatoPredictor::load(&path).expect("load artifact");
    std::fs::remove_file(&path).ok();
    for table in corpus.iter().take(5) {
        assert_eq!(predictor.predict(table), loaded.predict(table));
    }
    assert!(matches!(
        SatoPredictor::load(std::env::temp_dir().join("sato_no_such_artifact.json")),
        Err(PredictorError::Io(_))
    ));
}
