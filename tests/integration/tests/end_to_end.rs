//! End-to-end integration tests across the workspace crates: corpus
//! generation → feature extraction → topic model → column-wise network →
//! CRF → evaluation, exercising the same pipeline the benchmark binaries run.

use sato::{SatoConfig, SatoModel, SatoVariant};
use sato_eval::crossval::evaluate_model;
use sato_eval::metrics::Evaluation;
use sato_tabular::corpus::default_corpus;
use sato_tabular::split::train_test_split;

fn fast_config(seed: u64) -> SatoConfig {
    SatoConfig::fast().with_seed(seed)
}

#[test]
fn every_variant_trains_and_produces_well_formed_predictions() {
    let corpus = default_corpus(60, 101);
    let split = train_test_split(&corpus, 0.25, 1);
    for variant in SatoVariant::ALL {
        let model = SatoModel::train(&split.train, fast_config(5), variant);
        assert_eq!(model.variant(), variant);
        assert_eq!(model.structured().is_some(), variant.uses_structure());
        let predictions = model.predict_corpus(&split.test);
        assert_eq!(predictions.len(), split.test.len());
        for (pred, table) in predictions.iter().zip(split.test.iter()) {
            assert_eq!(pred.predicted.len(), table.num_columns());
            assert_eq!(pred.gold, table.labels);
        }
    }
}

#[test]
fn trained_base_model_is_much_better_than_chance_on_held_out_tables() {
    let corpus = default_corpus(150, 103);
    let split = train_test_split(&corpus, 0.2, 2);
    let model = SatoModel::train(&split.train, fast_config(7), SatoVariant::Base);
    let (all, multi) = evaluate_model(&model, &split.test);
    // Chance level is 1/78 ≈ 0.013; even the fast configuration should land
    // far above it on the weighted metric.
    assert!(
        all.weighted_f1 > 0.3,
        "weighted F1 too low on D: {}",
        all.weighted_f1
    );
    assert!(multi.total > 0 && multi.total < all.total);
}

#[test]
fn full_sato_does_not_lose_to_base_on_multi_column_tables() {
    // The paper's headline claim (Table 1) is that context helps. On the
    // synthetic corpus the effect size varies with the fast configuration,
    // so the integration test asserts the ordering with a small tolerance
    // rather than a specific improvement.
    let corpus = default_corpus(200, 104).multi_column_only();
    let split = train_test_split(&corpus, 0.2, 3);
    let config = fast_config(11);

    let base = SatoModel::train(&split.train, config.clone(), SatoVariant::Base);
    let (_, base_eval) = evaluate_model(&base, &split.test);
    let full = SatoModel::train(&split.train, config, SatoVariant::Full);
    let (_, full_eval) = evaluate_model(&full, &split.test);

    assert!(
        full_eval.weighted_f1 >= base_eval.weighted_f1 - 0.03,
        "Sato ({:.3}) fell clearly below Base ({:.3}) on weighted F1",
        full_eval.weighted_f1,
        base_eval.weighted_f1
    );
    // The macro metric is dominated by rare types and is noisy at this tiny
    // scale, so the guard band is wider; the full-scale ordering is verified
    // by the table1_main_results benchmark (see EXPERIMENTS.md).
    assert!(
        full_eval.macro_f1 >= base_eval.macro_f1 - 0.10,
        "Sato ({:.3}) fell clearly below Base ({:.3}) on macro F1",
        full_eval.macro_f1,
        base_eval.macro_f1
    );
}

#[test]
fn prediction_is_deterministic_after_training() {
    let corpus = default_corpus(50, 105);
    let model = SatoModel::train(&corpus, fast_config(13), SatoVariant::Full);
    let table = &corpus.tables[3];
    let a = model.predict(table);
    let b = model.predict(table);
    assert_eq!(a, b);
}

#[test]
fn evaluation_of_gold_predictions_is_perfect() {
    // Wiring check between the prediction structs and the metrics crate.
    let corpus = default_corpus(30, 106);
    let eval = Evaluation::from_tables(
        corpus
            .iter()
            .map(|t| (t.labels.as_slice(), t.labels.as_slice())),
    );
    assert_eq!(eval.macro_f1, 1.0);
    assert_eq!(eval.weighted_f1, 1.0);
    assert_eq!(eval.total, corpus.num_columns());
}
