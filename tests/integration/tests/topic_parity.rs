//! Cross-crate parity tests for the allocation-lean topic-estimation path:
//! the streaming scratch/batched estimate (`TableIntentEstimator::
//! estimate_with` / `estimate_corpus_with`, and the serving pipeline built
//! on it) must be **bit-identical** to the reference
//! `TableIntentEstimator::estimate` (mega-string document + per-token
//! `String` encode + fresh inference buffers) — for every model variant and
//! for the edge cases the streaming encoder could plausibly get wrong:
//! empty tables, one-token documents, and documents whose every token is
//! out of vocabulary.

use proptest::prelude::*;
use sato::{SatoConfig, SatoModel, SatoVariant, ServingScratch};
use sato_tabular::corpus::default_corpus;
use sato_tabular::table::{Column, Corpus, Table};
use sato_topic::{LdaConfig, TableIntentEstimator, TopicSampler, TopicScratch};
use std::sync::OnceLock;

fn tiny_config() -> SatoConfig {
    let mut config = SatoConfig::fast();
    config.network.epochs = 5;
    config.lda.train_iterations = 15;
    config.crf.epochs = 3;
    config
}

/// One pre-trained intent estimator shared across the property cases so the
/// LDA training cost is paid once.
fn estimator() -> &'static TableIntentEstimator {
    static ESTIMATOR: OnceLock<TableIntentEstimator> = OnceLock::new();
    ESTIMATOR.get_or_init(|| {
        let corpus = default_corpus(60, 21);
        TableIntentEstimator::fit(&corpus, LdaConfig::tiny())
    })
}

/// Deterministic cell content mixing in-vocabulary words (the synthetic
/// corpus is built from city/country/music-style vocabularies), numerics,
/// multi-token cells, blanks, Unicode case edges and out-of-vocabulary
/// noise the streaming encoder must drop exactly like the reference.
fn cell_value(entropy: usize) -> &'static str {
    const POOL: [&str; 14] = [
        "Warsaw",
        "London",
        "Poland",
        "12.5",
        "1,777,972",
        "",
        "  ",
        "Rock",
        "alpha beta gamma",
        "zzzzqq",    // OOV token
        "qqxx yyzz", // OOV-only multi-token cell
        "ΟΔΟΣ",      // word-final capital sigma (exact-fold fallback)
        "Kelvin \u{212A}",
        "2020-11-05",
    ];
    POOL[entropy % POOL.len()]
}

/// Build a corpus from per-table column shapes: `shapes[t][c]` is the row
/// count of column `c` of table `t` (an empty inner vec is a zero-column
/// table, i.e. an empty document).
fn ragged_corpus(shapes: &[Vec<usize>], salt: usize) -> Corpus {
    let tables = shapes
        .iter()
        .enumerate()
        .map(|(t, cols)| {
            let columns = cols
                .iter()
                .enumerate()
                .map(|(c, &rows)| {
                    Column::new((0..rows).map(|r| cell_value(salt + t * 31 + c * 7 + r * 3)))
                })
                .collect();
            Table::unlabelled(t as u64, columns)
        })
        .collect();
    Corpus::new(tables)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The streaming scratch estimate is bit-identical to the reference
    /// estimate over arbitrarily ragged corpora, with one warm scratch
    /// shared across every table (and across property cases within a run).
    #[test]
    fn streaming_topic_estimation_parity_over_ragged_corpora(
        shapes in proptest::collection::vec(
            proptest::collection::vec(0usize..5, 0..5), 1..8),
        salt in 0usize..10_000,
    ) {
        let est = estimator();
        let corpus = ragged_corpus(&shapes, salt);
        let reference = est.estimate_corpus(&corpus);
        let mut scratch = TopicScratch::new();
        let streamed = est.estimate_corpus_with(&corpus, &TopicSampler::Dense, &mut scratch);
        prop_assert_eq!(&reference, &streamed);
        // Per-table entry point agrees too, and every vector has the
        // estimator's dimensionality.
        for (table, theta) in corpus.iter().zip(&reference) {
            prop_assert_eq!(theta.len(), est.num_topics());
            prop_assert_eq!(theta, &est.estimate_with(table, &TopicSampler::Dense, &mut scratch));
        }
    }
}

/// The explicit edge cases the issue calls out, checked directly: an empty
/// table (empty document → uniform distribution), a one-token document, and
/// an out-of-vocabulary-only document (encodes to nothing → uniform).
#[test]
fn streaming_estimate_edge_cases_match_reference() {
    let est = estimator();
    let mut scratch = TopicScratch::new();
    let k = est.num_topics() as f32;
    let empty = Table::unlabelled(0, vec![]);
    let one_token = Table::unlabelled(1, vec![Column::new(["Warsaw"])]);
    let oov_only = Table::unlabelled(2, vec![Column::new(["zzzzqq", "qqxx yyzz"])]);
    for table in [&empty, &one_token, &oov_only] {
        let reference = est.estimate(table);
        assert_eq!(
            reference,
            est.estimate_with(table, &TopicSampler::Dense, &mut scratch)
        );
    }
    // Empty and OOV-only documents are the uniform distribution.
    for table in [&empty, &oov_only] {
        let theta = est.estimate_with(table, &TopicSampler::Dense, &mut scratch);
        assert!(theta.iter().all(|&x| (x - 1.0 / k).abs() < 1e-6));
    }
}

/// End to end, for **all four model variants**: the scratch/batched serving
/// path (which runs the streaming topic estimate for topic-aware variants)
/// must reproduce the per-table reference path bit for bit on a corpus laced
/// with the topic edge cases — with and without the per-table topic memo.
#[test]
fn batched_topic_path_parity_all_variants_with_edge_tables() {
    let train = default_corpus(25, 13);
    let mut corpus = default_corpus(8, 99);
    corpus.tables.push(Table::unlabelled(800, vec![]));
    corpus
        .tables
        .push(Table::unlabelled(801, vec![Column::new(["Warsaw"])]));
    corpus.tables.push(Table::unlabelled(
        802,
        vec![Column::new(["zzzzqq"]), Column::new(["qqxx", "yyzz"])],
    ));
    for variant in SatoVariant::ALL {
        let predictor = SatoModel::train(&train, tiny_config(), variant).into_predictor();
        let reference = predictor.predict_corpus(&corpus);
        let mut scratch = ServingScratch::new();
        let mut memo_scratch = ServingScratch::new().with_topic_memo();
        for batch_cols in [1, 7, 1000] {
            assert_eq!(
                reference,
                predictor.predict_corpus_batched_with(&corpus, batch_cols, &mut scratch),
                "variant {} batch_cols {batch_cols}",
                variant.name()
            );
            assert_eq!(
                reference,
                predictor.predict_corpus_batched_with(&corpus, batch_cols, &mut memo_scratch),
                "variant {} batch_cols {batch_cols} (memoised)",
                variant.name()
            );
        }
        if predictor.uses_topic() {
            assert_eq!(memo_scratch.topic_memo_len(), corpus.len());
        } else {
            assert_eq!(memo_scratch.topic_memo_len(), 0);
        }
    }
}
