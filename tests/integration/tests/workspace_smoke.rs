//! Workspace smoke test: the `sato` crate-docs quickstart
//! (`SatoModel::train` → `predict`) must run end-to-end for every
//! [`SatoVariant`] on a tiny seeded corpus. This is the first test a fresh
//! checkout should be able to pass; everything else builds on the same
//! substrate.

use sato::{SatoConfig, SatoModel, SatoVariant};
use sato_tabular::corpus::default_corpus;
use sato_tabular::split::train_test_split;

#[test]
fn quickstart_runs_end_to_end_for_every_variant() {
    // Mirrors the crate-level docs of `sato`, shrunk to smoke-test size.
    let corpus = default_corpus(40, 42);
    let split = train_test_split(&corpus, 0.2, 0);
    assert!(!split.train.is_empty() && !split.test.is_empty());

    for variant in SatoVariant::ALL {
        let model = SatoModel::train(&split.train, SatoConfig::fast(), variant);
        assert_eq!(model.variant(), variant);
        for table in split.test.iter().take(3) {
            let types = model.predict(table);
            assert_eq!(
                types.len(),
                table.num_columns(),
                "{variant:?} predicted wrong arity for table {}",
                table.id
            );
        }
    }
}

#[test]
fn quickstart_is_deterministic_across_runs() {
    // The corpus generator and every model seed flow from explicit seeds,
    // so two identical runs must agree bit-for-bit.
    let run = || {
        let corpus = default_corpus(30, 7);
        let split = train_test_split(&corpus, 0.25, 1);
        let model = SatoModel::train(&split.train, SatoConfig::fast(), SatoVariant::Full);
        split
            .test
            .iter()
            .map(|t| model.predict(t))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
