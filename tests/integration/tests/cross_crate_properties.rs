//! Property-based integration tests spanning the substrate crates: corpus
//! generation, feature extraction, the topic model and the CRF must uphold
//! their invariants on arbitrary (seeded) inputs, not just the fixed
//! fixtures used elsewhere.

use proptest::prelude::*;
use sato_crf::LinearChainCrf;
use sato_features::{FeatureConfig, FeatureExtractor};
use sato_tabular::corpus::{CorpusConfig, CorpusGenerator};
use sato_tabular::types::{SemanticType, NUM_TYPES};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The corpus generator is a pure function of its configuration.
    #[test]
    fn corpus_generation_is_deterministic(seed in 0u64..1000, tables in 5usize..40) {
        let config = CorpusConfig { num_tables: tables, seed, ..CorpusConfig::tiny() };
        let a = CorpusGenerator::new(config.clone()).generate();
        let b = CorpusGenerator::new(config).generate();
        prop_assert_eq!(a.tables, b.tables);
    }

    /// Every generated table is internally consistent and within the
    /// configured shape bounds.
    #[test]
    fn generated_tables_are_well_formed(seed in 0u64..500) {
        let config = CorpusConfig { num_tables: 20, seed, ..CorpusConfig::tiny() };
        let corpus = CorpusGenerator::new(config.clone()).generate();
        for table in corpus.iter() {
            prop_assert!(table.is_labelled());
            prop_assert!(table.num_columns() >= 1);
            prop_assert!(table.num_columns() <= config.max_columns);
            prop_assert!(table.num_rows() >= config.min_rows);
            prop_assert!(table.num_rows() <= config.max_rows);
            for col in &table.columns {
                prop_assert_eq!(col.len(), table.num_rows());
            }
        }
    }

    /// Feature extraction never produces NaN/Inf and always matches the
    /// declared dimensionality, for every semantic type's value generator.
    #[test]
    fn features_are_finite_for_every_type(seed in 0u64..200, type_idx in 0usize..NUM_TYPES) {
        use rand::SeedableRng;
        let ty = SemanticType::from_index(type_idx).unwrap();
        let gen = sato_tabular::values::ValueGenerator::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let col = sato_tabular::table::Column::new(gen.generate_column(ty, 15, 0.1, &mut rng));
        let extractor = FeatureExtractor::new(FeatureConfig::small());
        let features = extractor.extract_column(&col);
        prop_assert_eq!(features.total_dim(), extractor.total_dim());
        prop_assert!(features.concatenated().iter().all(|x| x.is_finite()));
    }

    /// Viterbi decoding over the full 78-type state space returns valid type
    /// indices and scores at least as well as the per-column argmax path.
    #[test]
    fn viterbi_dominates_argmax_path_on_full_state_space(
        seed in 0u64..200,
        columns in 2usize..5,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let unary: Vec<Vec<f64>> = (0..columns)
            .map(|_| (0..NUM_TYPES).map(|_| rng.gen_range(-4.0..0.0)).collect())
            .collect();
        let pairwise: Vec<f64> = (0..NUM_TYPES * NUM_TYPES)
            .map(|_| rng.gen_range(-0.5..0.5))
            .collect();
        let crf = LinearChainCrf::with_pairwise(NUM_TYPES, pairwise);
        let map = crf.viterbi(&unary);
        prop_assert_eq!(map.len(), columns);
        prop_assert!(map.iter().all(|&s| s < NUM_TYPES));
        let argmax_path: Vec<usize> = unary
            .iter()
            .map(|u| {
                u.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(i, _)| i)
                    .unwrap()
            })
            .collect();
        prop_assert!(crf.score(&unary, &map) >= crf.score(&unary, &argmax_path) - 1e-9);
    }

    /// Header canonicalization always maps a type's canonical name (in
    /// various casings) back to the same type.
    #[test]
    fn canonicalization_round_trips_type_names(type_idx in 0usize..NUM_TYPES) {
        let ty = SemanticType::from_index(type_idx).unwrap();
        let name = ty.canonical_name();
        prop_assert_eq!(sato_tabular::canonical::header_to_type(name), Some(ty));
        // An upper-cased, space-separated rendering ("BIRTH PLACE") must also
        // canonicalize back to the same type.
        let mut spaced = String::new();
        for c in name.chars() {
            if c.is_uppercase() {
                spaced.push(' ');
            }
            spaced.push(c);
        }
        prop_assert_eq!(
            sato_tabular::canonical::header_to_type(&spaced.to_uppercase()),
            Some(ty)
        );
    }
}
