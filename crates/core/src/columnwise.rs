//! The column-wise prediction models: the Sherlock-style **Base** network
//! (Section 3.1) and its **topic-aware** extension (Section 3.2), which are
//! the same multi-input architecture with and without the additional topic
//! subnetwork.
//!
//! Architecture (following the paper): every high-dimensional feature group
//! (Char, Word, Para and, for topic-aware models, Topic) passes through its
//! own compression subnetwork; the 27 Stat features are concatenated
//! directly; the concatenation feeds a primary network of two
//! fully-connected ReLU layers with BatchNorm and Dropout, followed by a
//! 78-way output layer with softmax.

use crate::config::SatoConfig;
use crate::dataset::{Standardizer, TableInputs, TrainingData};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sato_features::{FeatureExtractor, FeatureGroup};
use sato_nn::layers::{BatchNorm, Dense, Dropout, Layer, ReLU};
use sato_nn::loss::{softmax, softmax_cross_entropy};
use sato_nn::network::{MultiInputNetwork, Sequential};
use sato_nn::optim::Adam;
use sato_nn::Matrix;
use sato_tabular::table::{Corpus, Table};
use sato_tabular::types::{SemanticType, NUM_TYPES};
use sato_topic::TableIntentEstimator;

/// Common interface of every single-column (column-wise) predictor, i.e. the
/// pluggable slot of Sato's extensible architecture (the paper swaps the
/// Sherlock model for BERT in Section 6 without touching the rest).
pub trait ColumnwisePredictor {
    /// Per-column class probabilities for every column of `table`
    /// (each inner vector has [`NUM_TYPES`] entries summing to one).
    fn predict_proba(&mut self, table: &Table) -> Vec<Vec<f32>>;

    /// Per-column hard predictions.
    fn predict_types(&mut self, table: &Table) -> Vec<SemanticType> {
        self.predict_proba(table)
            .iter()
            .map(|p| {
                let best = p
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                SemanticType::from_index(best).expect("class index in range")
            })
            .collect()
    }
}

/// The Sherlock/Sato column-wise neural model.
pub struct ColumnwiseModel {
    config: SatoConfig,
    use_topic: bool,
    extractor: FeatureExtractor,
    intent: Option<TableIntentEstimator>,
    /// Branch subnetworks + primary trunk (everything up to the last hidden
    /// representation, i.e. the *column embedding* of Section 5.6).
    net: Option<MultiInputNetwork>,
    /// Final classification layer on top of the trunk.
    head: Option<Sequential>,
    /// Per-group feature standardizers fitted on the training data.
    scalers: Vec<Standardizer>,
    group_widths: Vec<usize>,
    loss_history: Vec<f32>,
}

impl ColumnwiseModel {
    /// Create an untrained Base model (no topic subnetwork).
    pub fn base(config: SatoConfig) -> Self {
        Self::new(config, false)
    }

    /// Create an untrained topic-aware model.
    pub fn topic_aware(config: SatoConfig) -> Self {
        Self::new(config, true)
    }

    fn new(config: SatoConfig, use_topic: bool) -> Self {
        let extractor = FeatureExtractor::new(config.features.clone());
        ColumnwiseModel {
            config,
            use_topic,
            extractor,
            intent: None,
            net: None,
            head: None,
            scalers: Vec::new(),
            group_widths: Vec::new(),
            loss_history: Vec::new(),
        }
    }

    /// Whether this model uses the table topic vector (global context).
    pub fn uses_topic(&self) -> bool {
        self.use_topic
    }

    /// Whether the model has been trained.
    pub fn is_trained(&self) -> bool {
        self.net.is_some()
    }

    /// Mean training loss per epoch (available after [`Self::fit`]).
    pub fn loss_history(&self) -> &[f32] {
        &self.loss_history
    }

    /// The feature extractor used by this model.
    pub fn extractor(&self) -> &FeatureExtractor {
        &self.extractor
    }

    /// The table intent estimator (present after training a topic-aware model).
    pub fn intent_estimator(&self) -> Option<&TableIntentEstimator> {
        self.intent.as_ref()
    }

    /// Extract the network inputs for a table (features + topic vector).
    /// Exposed so the permutation-importance experiment can shuffle feature
    /// groups before calling [`Self::predict_proba_from_inputs`].
    pub fn extract_inputs(&self, table: &Table) -> TableInputs {
        TableInputs::extract(table, &self.extractor, self.intent.as_ref())
    }

    fn build_network(&mut self, widths: &[usize]) {
        let cfg = &self.config.network;
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut branches = Vec::new();
        let mut concat_dim = 0usize;
        // Branch order mirrors TrainingData: Char, Word, Para, Stat [, Topic].
        for (i, &w) in widths.iter().enumerate() {
            let is_stat = i == FeatureGroup::ALL.len() - 1; // Stat is the 4th group
            if is_stat {
                branches.push(Sequential::new());
                concat_dim += w;
            } else {
                branches.push(
                    Sequential::new()
                        .push(Dense::new(w, cfg.subnetwork_dim, &mut rng))
                        .push(ReLU::new())
                        .push(Dropout::new(
                            cfg.dropout,
                            StdRng::seed_from_u64(self.config.seed ^ (i as u64 + 1)),
                        )),
                );
                concat_dim += cfg.subnetwork_dim;
            }
        }
        let trunk = Sequential::new()
            .push(Dense::new(concat_dim, cfg.hidden_dim, &mut rng))
            .push(ReLU::new())
            .push(BatchNorm::new(cfg.hidden_dim))
            .push(Dropout::new(
                cfg.dropout,
                StdRng::seed_from_u64(self.config.seed ^ 0x100),
            ))
            .push(Dense::new(cfg.hidden_dim, cfg.hidden_dim, &mut rng))
            .push(ReLU::new())
            .push(BatchNorm::new(cfg.hidden_dim))
            .push(Dropout::new(
                cfg.dropout,
                StdRng::seed_from_u64(self.config.seed ^ 0x200),
            ));
        let head = Sequential::new().push(Dense::new(cfg.hidden_dim, NUM_TYPES, &mut rng));
        self.net = Some(MultiInputNetwork::new(branches, trunk));
        self.head = Some(head);
        self.group_widths = widths.to_vec();
    }

    /// Train on a labelled corpus. For topic-aware models the table intent
    /// estimator (LDA) is pre-trained on the same corpus first, using only
    /// cell values.
    pub fn fit(&mut self, corpus: &Corpus) -> &[f32] {
        if self.use_topic {
            let estimator = TableIntentEstimator::fit(corpus, self.config.lda.clone());
            self.intent = Some(estimator);
        }
        let mut data = TrainingData::build(corpus, &self.extractor, self.intent.as_ref());
        assert!(!data.is_empty(), "cannot train on an empty corpus");
        // Standardise every feature group (Sherlock-style preprocessing); the
        // fitted scalers are reused at prediction time.
        self.scalers = Standardizer::fit_groups(&data.groups);
        data.groups = Standardizer::transform_groups(&self.scalers, &data.groups);
        self.build_network(&data.group_widths());
        let net = self.net.as_mut().expect("network just built");
        let head = self.head.as_mut().expect("head just built");

        let cfg = &self.config.network;
        let mut adam = Adam::new(cfg.learning_rate, cfg.weight_decay);
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xbeef);
        let mut indices: Vec<usize> = (0..data.len()).collect();
        self.loss_history.clear();

        for _epoch in 0..cfg.epochs {
            indices.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for batch_idx in indices.chunks(cfg.batch_size) {
                let (groups, labels) = data.batch(batch_idx);
                let embedding = net.forward(&groups, true);
                let logits = head.forward(&embedding, true);
                let out = softmax_cross_entropy(&logits, &labels);
                let grad_embed = head.backward(&out.grad_logits);
                net.backward(&grad_embed);
                let mut params = net.params_mut();
                params.extend(head.params_mut());
                adam.step(&mut params);
                epoch_loss += out.loss;
                batches += 1;
            }
            self.loss_history.push(epoch_loss / batches.max(1) as f32);
        }
        &self.loss_history
    }

    /// Forward pass (evaluation mode) on pre-extracted inputs, returning the
    /// per-column probability rows.
    pub fn predict_proba_from_inputs(&mut self, inputs: &TableInputs) -> Vec<Vec<f32>> {
        let net = self.net.as_mut().expect("model must be trained first");
        let head = self.head.as_mut().expect("model must be trained first");
        if inputs.columns.is_empty() {
            return Vec::new();
        }
        let groups = inputs.to_matrices(self.use_topic);
        let groups = Standardizer::transform_groups(&self.scalers, &groups);
        let embedding = net.forward(&groups, false);
        let logits = head.forward(&embedding, false);
        let probs = softmax(&logits);
        (0..probs.rows()).map(|r| probs.row(r).to_vec()).collect()
    }

    /// Column embeddings (the final hidden representation before the output
    /// layer), used by the Col2Vec analysis of Section 5.6 / Figure 10.
    pub fn column_embeddings(&mut self, table: &Table) -> Vec<Vec<f32>> {
        let inputs = self.extract_inputs(table);
        let net = self.net.as_mut().expect("model must be trained first");
        if inputs.columns.is_empty() {
            return Vec::new();
        }
        let groups = inputs.to_matrices(self.use_topic);
        let groups = Standardizer::transform_groups(&self.scalers, &groups);
        let embedding: Matrix = net.forward(&groups, false);
        (0..embedding.rows())
            .map(|r| embedding.row(r).to_vec())
            .collect()
    }
}

impl ColumnwisePredictor for ColumnwiseModel {
    fn predict_proba(&mut self, table: &Table) -> Vec<Vec<f32>> {
        let inputs = self.extract_inputs(table);
        self.predict_proba_from_inputs(&inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sato_tabular::corpus::default_corpus;

    fn train_small(use_topic: bool) -> (ColumnwiseModel, Corpus) {
        let corpus = default_corpus(60, 11);
        let mut model = if use_topic {
            ColumnwiseModel::topic_aware(SatoConfig::fast())
        } else {
            ColumnwiseModel::base(SatoConfig::fast())
        };
        model.fit(&corpus);
        (model, corpus)
    }

    #[test]
    fn base_model_trains_and_loss_decreases() {
        let (model, _) = train_small(false);
        let history = model.loss_history();
        assert!(!history.is_empty());
        assert!(
            history.last().unwrap() < history.first().unwrap(),
            "loss did not decrease: {history:?}"
        );
        assert!(model.is_trained());
        assert!(!model.uses_topic());
        assert!(model.intent_estimator().is_none());
    }

    #[test]
    fn topic_model_trains_with_intent_estimator() {
        let (model, _) = train_small(true);
        assert!(model.uses_topic());
        assert!(model.intent_estimator().is_some());
    }

    #[test]
    fn probabilities_are_normalised_per_column() {
        let (mut model, corpus) = train_small(false);
        let table = &corpus.tables[0];
        let probs = model.predict_proba(table);
        assert_eq!(probs.len(), table.num_columns());
        for p in probs {
            assert_eq!(p.len(), NUM_TYPES);
            let s: f32 = p.iter().sum();
            assert!((s - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn predictions_beat_chance_on_training_data() {
        let (mut model, corpus) = train_small(false);
        let mut correct = 0usize;
        let mut total = 0usize;
        for table in corpus.iter().take(30) {
            let preds = model.predict_types(table);
            correct += preds
                .iter()
                .zip(&table.labels)
                .filter(|(a, b)| a == b)
                .count();
            total += table.labels.len();
        }
        let acc = correct as f32 / total as f32;
        assert!(
            acc > 0.3,
            "training accuracy {acc} barely above chance (1/78)"
        );
    }

    #[test]
    fn column_embeddings_have_hidden_dim() {
        let (mut model, corpus) = train_small(false);
        let table = &corpus.tables[1];
        let emb = model.column_embeddings(table);
        assert_eq!(emb.len(), table.num_columns());
        assert!(emb
            .iter()
            .all(|e| e.len() == SatoConfig::fast().network.hidden_dim));
    }

    #[test]
    fn prediction_is_deterministic_in_eval_mode() {
        let (mut model, corpus) = train_small(false);
        let table = &corpus.tables[2];
        assert_eq!(model.predict_proba(table), model.predict_proba(table));
    }

    #[test]
    #[should_panic(expected = "trained")]
    fn predicting_before_training_panics() {
        let corpus = default_corpus(3, 1);
        let mut model = ColumnwiseModel::base(SatoConfig::fast());
        model.predict_proba(&corpus.tables[0]);
    }

    #[test]
    #[should_panic(expected = "empty corpus")]
    fn training_on_empty_corpus_panics() {
        let mut model = ColumnwiseModel::base(SatoConfig::fast());
        model.fit(&Corpus::new(vec![]));
    }
}
