//! The column-wise prediction models: the Sherlock-style **Base** network
//! (Section 3.1) and its **topic-aware** extension (Section 3.2), which are
//! the same multi-input architecture with and without the additional topic
//! subnetwork.
//!
//! Architecture (following the paper): every high-dimensional feature group
//! (Char, Word, Para and, for topic-aware models, Topic) passes through its
//! own compression subnetwork; the 27 Stat features are concatenated
//! directly; the concatenation feeds a primary network of two
//! fully-connected ReLU layers with BatchNorm and Dropout, followed by a
//! 78-way output layer with softmax.
//!
//! The training and serving API surfaces are distinct: [`ColumnwiseTrainer`]
//! is the `&mut self` fitting interface, [`ColumnwiseInference`] is the
//! `&self` prediction interface, and a trained [`ColumnwiseModel`] can be
//! [frozen](ColumnwiseModel::freeze) into an immutable [`FrozenColumnwise`]
//! that drops all training-time state and serves predictions concurrently.

use crate::config::SatoConfig;
use crate::dataset::{Standardizer, TableInputs, TrainingData};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sato_features::{FeatureExtractor, FeatureGroup, FeatureScratch};
use sato_nn::layers::{BatchNorm, Dense, Dropout, Layer, ReLU};
use sato_nn::loss::{softmax_cross_entropy, softmax_in_place};
use sato_nn::network::{InferScratch, MultiInferScratch, MultiInputNetwork, Sequential};
use sato_nn::optim::Adam;
use sato_nn::serialize::{LoadError, StateDict};
use sato_nn::Matrix;
use sato_tabular::table::{Corpus, Table, TableCells};
use sato_tabular::types::{SemanticType, NUM_TYPES};
use sato_topic::{SamplerKind, TableIntentEstimator, TopicSampler, TopicScratch};
use std::collections::{HashMap, VecDeque};

/// Index of the maximum probability in one row (ties resolve to the last
/// maximal entry, matching `Iterator::max_by`).
#[inline]
fn argmax_row(row: &[f32]) -> usize {
    row.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Per-column hard predictions from probability rows (row-wise argmax).
pub fn types_from_proba(proba: &[Vec<f32>]) -> Vec<SemanticType> {
    proba
        .iter()
        .map(|p| SemanticType::from_index(argmax_row(p)).expect("class index in range"))
        .collect()
}

/// Per-column hard predictions from a row range of a flat probability
/// matrix — the batched counterpart of [`types_from_proba`].
pub(crate) fn types_from_rows(proba: &Matrix, start: usize, end: usize) -> Vec<SemanticType> {
    (start..end)
        .map(|r| SemanticType::from_index(argmax_row(proba.row(r))).expect("class index in range"))
        .collect()
}

/// The `&self` **inference** interface of a single-column (column-wise)
/// predictor: the pluggable slot of Sato's extensible architecture (the
/// paper swaps the Sherlock model for BERT in Section 6 without touching the
/// rest). Everything here is read-only, so a trained predictor can be shared
/// across threads.
pub trait ColumnwiseInference {
    /// Per-column class probabilities for every column of `table`
    /// (each inner vector has [`NUM_TYPES`] entries summing to one).
    fn predict_proba(&self, table: &Table) -> Vec<Vec<f32>>;

    /// Per-column hard predictions.
    fn predict_types(&self, table: &Table) -> Vec<SemanticType> {
        types_from_proba(&self.predict_proba(table))
    }
}

/// The `&mut self` **training** interface of a column-wise predictor,
/// deliberately separate from [`ColumnwiseInference`]: fitting mutates
/// (optimiser state, activation caches, RNG streams), serving must not.
pub trait ColumnwiseTrainer {
    /// Train on a labelled corpus, returning the per-epoch loss history.
    fn fit(&mut self, corpus: &Corpus) -> &[f32];
}

/// Build the Sherlock/Sato multi-input network (branch subnetworks + primary
/// trunk) and its classification head for the given feature-group widths.
///
/// Shared by training (fresh random weights that are then fitted) and by
/// predictor deserialization (fresh weights immediately overwritten by a
/// state dict), so both paths agree on the architecture.
pub(crate) fn build_network(
    config: &SatoConfig,
    widths: &[usize],
) -> (MultiInputNetwork, Sequential) {
    let cfg = &config.network;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut branches = Vec::new();
    let mut concat_dim = 0usize;
    // Branch order mirrors TrainingData: Char, Word, Para, Stat [, Topic].
    for (i, &w) in widths.iter().enumerate() {
        let is_stat = i == FeatureGroup::ALL.len() - 1; // Stat is the 4th group
        if is_stat {
            branches.push(Sequential::new());
            concat_dim += w;
        } else {
            branches.push(
                Sequential::new()
                    .push(Dense::new(w, cfg.subnetwork_dim, &mut rng))
                    .push(ReLU::new())
                    .push(Dropout::new(
                        cfg.dropout,
                        StdRng::seed_from_u64(config.seed ^ (i as u64 + 1)),
                    )),
            );
            concat_dim += cfg.subnetwork_dim;
        }
    }
    let trunk = Sequential::new()
        .push(Dense::new(concat_dim, cfg.hidden_dim, &mut rng))
        .push(ReLU::new())
        .push(BatchNorm::new(cfg.hidden_dim))
        .push(Dropout::new(
            cfg.dropout,
            StdRng::seed_from_u64(config.seed ^ 0x100),
        ))
        .push(Dense::new(cfg.hidden_dim, cfg.hidden_dim, &mut rng))
        .push(ReLU::new())
        .push(BatchNorm::new(cfg.hidden_dim))
        .push(Dropout::new(
            cfg.dropout,
            StdRng::seed_from_u64(config.seed ^ 0x200),
        ));
    let head = Sequential::new().push(Dense::new(cfg.hidden_dim, NUM_TYPES, &mut rng));
    (MultiInputNetwork::new(branches, trunk), head)
}

/// The Sherlock/Sato column-wise neural model (training-capable).
pub struct ColumnwiseModel {
    config: SatoConfig,
    use_topic: bool,
    extractor: FeatureExtractor,
    intent: Option<TableIntentEstimator>,
    /// Branch subnetworks + primary trunk (everything up to the last hidden
    /// representation, i.e. the *column embedding* of Section 5.6).
    net: Option<MultiInputNetwork>,
    /// Final classification layer on top of the trunk.
    head: Option<Sequential>,
    /// Per-group feature standardizers fitted on the training data.
    scalers: Vec<Standardizer>,
    group_widths: Vec<usize>,
    loss_history: Vec<f32>,
}

impl ColumnwiseModel {
    /// Create an untrained Base model (no topic subnetwork).
    pub fn base(config: SatoConfig) -> Self {
        Self::new(config, false)
    }

    /// Create an untrained topic-aware model.
    pub fn topic_aware(config: SatoConfig) -> Self {
        Self::new(config, true)
    }

    fn new(config: SatoConfig, use_topic: bool) -> Self {
        let extractor = FeatureExtractor::new(config.features.clone());
        ColumnwiseModel {
            config,
            use_topic,
            extractor,
            intent: None,
            net: None,
            head: None,
            scalers: Vec::new(),
            group_widths: Vec::new(),
            loss_history: Vec::new(),
        }
    }

    /// Whether this model uses the table topic vector (global context).
    pub fn uses_topic(&self) -> bool {
        self.use_topic
    }

    /// Whether the model has been trained.
    pub fn is_trained(&self) -> bool {
        self.net.is_some()
    }

    /// Mean training loss per epoch (available after [`ColumnwiseTrainer::fit`]).
    pub fn loss_history(&self) -> &[f32] {
        &self.loss_history
    }

    /// The feature extractor used by this model.
    pub fn extractor(&self) -> &FeatureExtractor {
        &self.extractor
    }

    /// The table intent estimator (present after training a topic-aware model).
    pub fn intent_estimator(&self) -> Option<&TableIntentEstimator> {
        self.intent.as_ref()
    }

    /// Extract the network inputs for a table (features + topic vector).
    /// Exposed so the permutation-importance experiment can shuffle feature
    /// groups before calling [`Self::predict_proba_from_inputs`].
    pub fn extract_inputs(&self, table: &Table) -> TableInputs {
        TableInputs::extract(table, &self.extractor, self.intent.as_ref())
    }

    /// Immutable forward pass (evaluation mode) on pre-extracted inputs,
    /// returning the per-column probability rows.
    pub fn predict_proba_from_inputs(&self, inputs: &TableInputs) -> Vec<Vec<f32>> {
        let net = self.net.as_ref().expect("model must be trained first");
        let head = self.head.as_ref().expect("model must be trained first");
        infer_proba(net, head, &self.scalers, self.use_topic, inputs)
    }

    /// Column embeddings (the final hidden representation before the output
    /// layer), used by the Col2Vec analysis of Section 5.6 / Figure 10.
    pub fn column_embeddings(&self, table: &Table) -> Vec<Vec<f32>> {
        let inputs = self.extract_inputs(table);
        let net = self.net.as_ref().expect("model must be trained first");
        infer_embeddings(net, &self.scalers, self.use_topic, &inputs)
    }

    /// Snapshot the trained model into an immutable [`FrozenColumnwise`]
    /// without consuming it (parameters and running statistics are copied).
    ///
    /// Panics if the model has not been trained.
    pub fn freeze(&self) -> FrozenColumnwise {
        let net = self.net.as_ref().expect("model must be trained first");
        let head = self.head.as_ref().expect("model must be trained first");
        FrozenColumnwise::from_state(
            &self.config,
            self.use_topic,
            self.intent.clone(),
            self.scalers.clone(),
            self.group_widths.clone(),
            &net.state_dict(),
            &head.state_dict(),
            SamplerKind::Dense,
        )
        .expect("snapshot of an identical architecture cannot fail")
    }

    /// Consume the trained model into an immutable [`FrozenColumnwise`],
    /// moving the network weights instead of copying them.
    ///
    /// Panics if the model has not been trained.
    pub fn into_frozen(self) -> FrozenColumnwise {
        let net = self.net.expect("model must be trained first");
        let head = self.head.expect("model must be trained first");
        FrozenColumnwise {
            use_topic: self.use_topic,
            extractor: self.extractor,
            intent: self.intent,
            net,
            head,
            scalers: self.scalers,
            group_widths: self.group_widths,
            sampler_kind: SamplerKind::Dense,
            sampler: TopicSampler::Dense,
        }
    }
}

impl ColumnwiseTrainer for ColumnwiseModel {
    /// Train on a labelled corpus. For topic-aware models the table intent
    /// estimator (LDA) is pre-trained on the same corpus first, using only
    /// cell values.
    fn fit(&mut self, corpus: &Corpus) -> &[f32] {
        if self.use_topic {
            let estimator = TableIntentEstimator::fit(corpus, self.config.lda.clone());
            self.intent = Some(estimator);
        }
        let mut data = TrainingData::build(corpus, &self.extractor, self.intent.as_ref());
        assert!(!data.is_empty(), "cannot train on an empty corpus");
        // Standardise every feature group (Sherlock-style preprocessing); the
        // fitted scalers are reused at prediction time.
        self.scalers = Standardizer::fit_groups(&data.groups);
        data.groups = Standardizer::transform_groups(&self.scalers, &data.groups);
        let widths = data.group_widths();
        let (net, head) = build_network(&self.config, &widths);
        self.net = Some(net);
        self.head = Some(head);
        self.group_widths = widths;
        let net = self.net.as_mut().expect("network just built");
        let head = self.head.as_mut().expect("head just built");

        let cfg = &self.config.network;
        let mut adam = Adam::new(cfg.learning_rate, cfg.weight_decay);
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xbeef);
        let mut indices: Vec<usize> = (0..data.len()).collect();
        self.loss_history.clear();

        for _epoch in 0..cfg.epochs {
            indices.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for batch_idx in indices.chunks(cfg.batch_size) {
                let (groups, labels) = data.batch(batch_idx);
                let embedding = net.forward(&groups, true);
                let logits = head.forward(&embedding, true);
                let out = softmax_cross_entropy(&logits, &labels);
                let grad_embed = head.backward(&out.grad_logits);
                net.backward(&grad_embed);
                let mut params = net.params_mut();
                params.extend(head.params_mut());
                adam.step(&mut params);
                epoch_loss += out.loss;
                batches += 1;
            }
            self.loss_history.push(epoch_loss / batches.max(1) as f32);
        }
        &self.loss_history
    }
}

impl ColumnwiseInference for ColumnwiseModel {
    fn predict_proba(&self, table: &Table) -> Vec<Vec<f32>> {
        let inputs = self.extract_inputs(table);
        self.predict_proba_from_inputs(&inputs)
    }
}

/// Evaluation-mode forward pass to the flat row-major probability matrix
/// (one row per column), shared by the live [`ColumnwiseModel`] and its
/// [`FrozenColumnwise`] snapshot so the two cannot drift apart (freeze
/// parity is structural, not by convention).
fn infer_proba_matrix(
    net: &MultiInputNetwork,
    head: &Sequential,
    scalers: &[Standardizer],
    use_topic: bool,
    inputs: &TableInputs,
) -> Matrix {
    if inputs.columns.is_empty() {
        return Matrix::zeros(0, NUM_TYPES);
    }
    let groups = inputs.to_matrices(use_topic);
    let groups = Standardizer::transform_groups(scalers, &groups);
    let embedding = net.infer(&groups);
    let mut probs = head.infer(&embedding);
    softmax_in_place(&mut probs);
    probs
}

/// [`infer_proba_matrix`], split into per-column probability rows (the
/// compatibility shape of [`ColumnwiseInference::predict_proba`]).
fn infer_proba(
    net: &MultiInputNetwork,
    head: &Sequential,
    scalers: &[Standardizer],
    use_topic: bool,
    inputs: &TableInputs,
) -> Vec<Vec<f32>> {
    let probs = infer_proba_matrix(net, head, scalers, use_topic, inputs);
    (0..probs.rows()).map(|r| probs.row(r).to_vec()).collect()
}

/// Evaluation-mode forward pass to column embeddings (the final hidden
/// representation before the output layer); see [`infer_proba`].
fn infer_embeddings(
    net: &MultiInputNetwork,
    scalers: &[Standardizer],
    use_topic: bool,
    inputs: &TableInputs,
) -> Vec<Vec<f32>> {
    if inputs.columns.is_empty() {
        return Vec::new();
    }
    let groups = inputs.to_matrices(use_topic);
    let groups = Standardizer::transform_groups(scalers, &groups);
    let embedding: Matrix = net.infer(&groups);
    (0..embedding.rows())
        .map(|r| embedding.row(r).to_vec())
        .collect()
}

/// Default capacity (distinct table ids) of the opt-in topic memo enabled
/// by [`ServingScratch::with_topic_memo`].
pub const DEFAULT_TOPIC_MEMO_CAPACITY: usize = 4096;

/// Bounded per-table-id topic cache: a hash map plus an insertion-order
/// queue. When a new id would exceed the capacity, the **oldest inserted**
/// id is evicted (FIFO — O(1), deterministic, no recency bookkeeping on the
/// hit path). An unbounded memo would grow without limit on long-lived
/// serving over ever-fresh table ids.
struct TopicMemo {
    map: HashMap<u64, Vec<f32>>,
    order: VecDeque<u64>,
    capacity: usize,
    /// Content hash of the artifact whose topic vectors are cached here
    /// (`None` until the first serve). A table id alone does not identify a
    /// cached vector — the same id yields different topics under different
    /// artifacts — so entries cached under another artifact are cleared
    /// rather than replayed (see [`ServingScratch::bind_artifact`]).
    artifact: Option<u64>,
}

impl TopicMemo {
    fn new(capacity: usize) -> Self {
        TopicMemo {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
            artifact: None,
        }
    }

    fn get(&self, id: u64) -> Option<&Vec<f32>> {
        self.map.get(&id)
    }

    fn insert(&mut self, id: u64, theta: Vec<f32>) {
        if self.map.insert(id, theta).is_some() {
            return; // refreshed an existing id; insertion order unchanged
        }
        if self.map.len() > self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.map.remove(&oldest);
            }
        }
        self.order.push_back(id);
    }
}

/// Reusable workspace for the corpus-batched serving path: feature
/// extraction buffers, per-group batch input matrices, the network's
/// ping-pong activation buffers, the flat probability matrix and the CRF
/// unary buffer. One scratch serves any number of micro-batches; after the
/// first batch has warmed the buffers, a batch's only steady-state
/// allocations are its per-table outputs.
#[derive(Default)]
pub struct ServingScratch {
    features: FeatureScratch,
    /// Streaming table-topic estimation workspace (token ids, token buffer,
    /// Gibbs-inference buffers — including the sparse-sampler structures).
    topic: TopicScratch,
    /// The current table's topic vector, reused across tables.
    topic_vec: Vec<f32>,
    /// Opt-in bounded memo of table id → topic vector (see
    /// [`Self::with_topic_memo`]).
    topic_memo: Option<TopicMemo>,
    net: MultiInferScratch,
    head: InferScratch,
    groups: Vec<Matrix>,
    /// Row-major column embeddings of the last batch (one row per column
    /// across all tables of the batch; the head reads it, never writes it).
    pub(crate) embedding: Matrix,
    /// Flat row-major probability matrix of the last batch (one row per
    /// column across all tables of the batch).
    pub(crate) probs: Matrix,
    /// Flat unary-potential buffer for CRF decoding.
    pub(crate) unary: Vec<f64>,
}

impl ServingScratch {
    /// A fresh workspace with empty (but growable) buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enable the per-table topic memo with the default capacity
    /// ([`DEFAULT_TOPIC_MEMO_CAPACITY`] distinct ids): the topic vector of
    /// every table id is cached in this scratch and reused when the same id
    /// is served again, skipping the (comparatively expensive) LDA Gibbs
    /// inference for repeated tables — the common shape of a serving loop
    /// that re-predicts a slowly-changing corpus.
    ///
    /// Within one artifact the memo is keyed by [`Table::id`], so it must
    /// only be used where a table id uniquely identifies the table's
    /// content — serving a *different* table under a previously seen id
    /// would reuse the stale topic vector. Across artifacts the memo is
    /// safe by construction: every batched entry point binds the memo to
    /// the serving predictor's content hash first, clearing entries cached
    /// under a different artifact (hot-swap, or one scratch shared across
    /// predictors), so stale vectors are never replayed. The default (no
    /// memo) has no requirement at all.
    pub fn with_topic_memo(self) -> Self {
        self.with_topic_memo_capacity(DEFAULT_TOPIC_MEMO_CAPACITY)
    }

    /// [`Self::with_topic_memo`] with an explicit capacity (clamped to at
    /// least 1). When a new table id would exceed it, the oldest *inserted*
    /// id is evicted (FIFO), bounding memory on long-lived serving loops
    /// that see an unbounded stream of distinct ids; evicted tables are
    /// simply re-estimated on their next serve.
    pub fn with_topic_memo_capacity(mut self, capacity: usize) -> Self {
        self.topic_memo = Some(TopicMemo::new(capacity));
        self
    }

    /// Number of distinct table ids currently memoised (0 when the memo is
    /// disabled).
    pub fn topic_memo_len(&self) -> usize {
        self.topic_memo.as_ref().map_or(0, |m| m.map.len())
    }

    /// The memo's id capacity (0 when the memo is disabled).
    pub fn topic_memo_capacity(&self) -> usize {
        self.topic_memo.as_ref().map_or(0, |m| m.capacity)
    }

    /// The column embeddings of the **last batch** run through this
    /// scratch: one row per column, table after table in batch order (the
    /// final hidden representation before the output layer). Valid after
    /// any batched entry point — `SatoPredictor::predict_batch` computes
    /// them on the way to its probabilities, so an annotate-and-index
    /// pipeline reads them here without a second forward pass. An empty
    /// batch leaves a 0-row matrix.
    pub fn embeddings(&self) -> &Matrix {
        &self.embedding
    }

    /// Bind the topic memo to the artifact identified by `content_hash`
    /// (called by every batched serving entry point before a batch runs):
    /// entries cached under a **different** artifact are cleared, so a
    /// scratch that outlives a hot-swap — the long-lived worker shape of
    /// `sato-serve` — re-estimates every table under the new artifact
    /// instead of replaying the old one's stale topic vectors. No-op when
    /// the memo is disabled or already bound to this artifact.
    pub(crate) fn bind_artifact(&mut self, content_hash: u64) {
        if let Some(memo) = &mut self.topic_memo {
            if memo.artifact != Some(content_hash) {
                memo.map.clear();
                memo.order.clear();
                memo.artifact = Some(content_hash);
            }
        }
    }
}

/// The immutable, `Send + Sync` inference core of a trained column-wise
/// model: feature extractor, optional topic estimator, fitted standardizers
/// and the network weights — and nothing else. No optimiser state, no
/// activation caches, no RNG; every method takes `&self`.
pub struct FrozenColumnwise {
    use_topic: bool,
    extractor: FeatureExtractor,
    intent: Option<TableIntentEstimator>,
    net: MultiInputNetwork,
    head: Sequential,
    scalers: Vec<Standardizer>,
    group_widths: Vec<usize>,
    /// The configured topic-sampler axis (serialized into artifacts).
    sampler_kind: SamplerKind,
    /// The ready-to-run sampling strategy, pre-built from `sampler_kind`
    /// against the intent estimator's frozen model at freeze/load time
    /// (`TopicSampler::Dense` for non-topic models, where the choice is
    /// moot).
    sampler: TopicSampler,
}

impl FrozenColumnwise {
    /// Whether the frozen model consumes the table topic vector.
    pub fn uses_topic(&self) -> bool {
        self.use_topic
    }

    /// The table intent estimator (present for topic-aware models).
    pub fn intent_estimator(&self) -> Option<&TableIntentEstimator> {
        self.intent.as_ref()
    }

    /// The configured topic-sampler variant.
    pub fn sampler_kind(&self) -> SamplerKind {
        self.sampler_kind
    }

    /// The pre-built sampling strategy serving inference runs with.
    pub fn sampler(&self) -> &TopicSampler {
        &self.sampler
    }

    /// Reconfigure the topic-sampler axis, rebuilding whatever pre-computed
    /// state the strategy needs (per-word alias tables for
    /// [`SamplerKind::SparseAlias`] and [`SamplerKind::MetropolisHastings`])
    /// from the frozen intent model. For models without a topic estimator
    /// the kind is recorded (and serialized) but has no effect on
    /// predictions.
    pub(crate) fn with_sampler_kind(mut self, kind: SamplerKind) -> Self {
        self.sampler_kind = kind;
        self.sampler = self
            .intent
            .as_ref()
            .map_or(TopicSampler::Dense, |est| est.build_sampler(kind));
        self
    }

    /// The per-group input widths the network was trained with.
    pub fn group_widths(&self) -> &[usize] {
        &self.group_widths
    }

    /// Extract the network inputs for a table (features + topic vector,
    /// estimated with the configured sampler).
    pub fn extract_inputs(&self, table: &Table) -> TableInputs {
        TableInputs::extract_sampled(table, &self.extractor, self.intent.as_ref(), &self.sampler)
    }

    /// Evaluation-mode forward pass on pre-extracted inputs.
    pub fn predict_proba_from_inputs(&self, inputs: &TableInputs) -> Vec<Vec<f32>> {
        infer_proba(&self.net, &self.head, &self.scalers, self.use_topic, inputs)
    }

    /// Per-column class probabilities of one table as a flat row-major
    /// matrix (one row per column, [`NUM_TYPES`] columns) — the hot-path
    /// shape; [`ColumnwiseInference::predict_proba`] wraps it.
    pub fn predict_proba_matrix(&self, table: &Table) -> Matrix {
        let inputs = self.extract_inputs(table);
        infer_proba_matrix(
            &self.net,
            &self.head,
            &self.scalers,
            self.use_topic,
            &inputs,
        )
    }

    /// Run the column-wise network over **many tables at once**: every
    /// column of every table becomes one row of one input matrix per feature
    /// group, the network runs a single forward pass, and
    /// `scratch.probs` ends up holding one probability row per column, table
    /// after table in order.
    ///
    /// Row-major batching is exact: every stage of the eval-mode pipeline
    /// (standardisation, dense layers, ReLU, BatchNorm running statistics,
    /// softmax) operates row-independently, so the batch output is
    /// bit-identical to per-table inference.
    ///
    /// Generic over any [`TableCells`] source — the seam that lets the
    /// colstore serving path feed decoded frames straight into the batched
    /// network without materializing `Table`s. Cells visit in the identical
    /// column/row order for every source, so the probability rows are
    /// bit-identical across sources describing the same table.
    pub(crate) fn infer_batch_cells<T: TableCells + ?Sized>(
        &self,
        tables: &[&T],
        scratch: &mut ServingScratch,
    ) {
        if !self.fill_batch_groups(tables, scratch) {
            scratch.embedding.resize(0, 0);
            scratch.probs.resize(0, NUM_TYPES);
            return;
        }
        self.net
            .infer_with(&scratch.groups, &mut scratch.net, &mut scratch.embedding);
        self.head
            .infer_with(&scratch.embedding, &mut scratch.head, &mut scratch.probs);
        softmax_in_place(&mut scratch.probs);
    }

    /// Run the batched pipeline only as far as the **column embeddings**
    /// (the final hidden representation before the output layer;
    /// Section 5.6 / Figure 10): identical feature extraction, topic
    /// estimation, standardisation and network trunk as
    /// [`Self::infer_batch_cells`], but the classification head and
    /// softmax never run. `scratch.embedding` ends up holding one
    /// embedding row per column, table after table in order — the batched,
    /// allocation-lean counterpart of [`Self::column_embeddings`], and
    /// bit-identical to it row for row (the per-table path differs only in
    /// buffer ownership; every numeric stage is shared).
    pub(crate) fn embed_batch_cells<T: TableCells + ?Sized>(
        &self,
        tables: &[&T],
        scratch: &mut ServingScratch,
    ) {
        if !self.fill_batch_groups(tables, scratch) {
            scratch.embedding.resize(0, 0);
            return;
        }
        self.net
            .infer_with(&scratch.groups, &mut scratch.net, &mut scratch.embedding);
    }

    /// Fill `scratch.groups` with one input-matrix row per column across
    /// all `tables` (the shared front half of [`Self::infer_batch_cells`]
    /// and [`Self::embed_batch_cells`]), then standardize in place.
    /// Returns `false` — leaving the group matrices untouched — when the
    /// batch carries no columns at all.
    fn fill_batch_groups<T: TableCells + ?Sized>(
        &self,
        tables: &[&T],
        scratch: &mut ServingScratch,
    ) -> bool {
        let widths = &self.group_widths;
        let total_rows: usize = tables.iter().map(|t| t.cell_columns()).sum();
        if total_rows == 0 {
            return false;
        }
        scratch.groups.resize_with(widths.len(), Matrix::default);
        for (group, &w) in scratch.groups.iter_mut().zip(widths) {
            group.resize(total_rows, w);
        }

        // Fill the batch matrices: features are extracted straight into the
        // matrix rows (no per-column feature vectors), the table's topic
        // vector is estimated through the scratch (streaming encoder + Gibbs
        // buffers, bit-identical to `TableIntentEstimator::estimate`) and
        // replicated across its rows.
        let mut row = 0usize;
        for table in tables {
            // Named injection point `core.feature_extract`, keyed by table
            // id (chaos builds only). There is no error channel this deep
            // in a prediction, so an armed Error escalates to a panic —
            // the serving layer contains it and quarantines the culprit.
            #[cfg(feature = "faults")]
            sato_faults::fire_panic("core.feature_extract", table.table_id());
            if self.use_topic {
                let est = self
                    .intent
                    .as_ref()
                    .expect("topic-aware model carries an intent estimator");
                if let Some(hit) = scratch
                    .topic_memo
                    .as_ref()
                    .and_then(|m| m.get(table.table_id()))
                {
                    scratch.topic_vec.clear();
                    scratch.topic_vec.extend_from_slice(hit);
                } else {
                    scratch.topic_vec.clear();
                    scratch.topic_vec.resize(est.num_topics(), 0.0);
                    est.estimate_cells_into(
                        *table,
                        &self.sampler,
                        &mut scratch.topic,
                        &mut scratch.topic_vec,
                    );
                    if let Some(memo) = &mut scratch.topic_memo {
                        memo.insert(table.table_id(), scratch.topic_vec.clone());
                    }
                }
            }
            for c in 0..table.cell_columns() {
                let column = table.cells(c);
                let (feature_groups, topic_group) =
                    scratch.groups.split_at_mut(FeatureGroup::ALL.len());
                let [g_char, g_word, g_para, g_stat] = feature_groups else {
                    unreachable!("batch matrices cover the four feature groups");
                };
                self.extractor.extract_column_into(
                    &column,
                    &mut scratch.features,
                    g_char.row_mut(row),
                    g_word.row_mut(row),
                    g_para.row_mut(row),
                    g_stat.row_mut(row),
                );
                if self.use_topic {
                    topic_group[0]
                        .row_mut(row)
                        .copy_from_slice(&scratch.topic_vec);
                }
                row += 1;
            }
        }

        for (scaler, group) in self.scalers.iter().zip(scratch.groups.iter_mut()) {
            scaler.transform_in_place(group);
        }
        true
    }

    /// Column embeddings (the final hidden representation before the output
    /// layer; Section 5.6 / Figure 10).
    pub fn column_embeddings(&self, table: &Table) -> Vec<Vec<f32>> {
        let inputs = self.extract_inputs(table);
        infer_embeddings(&self.net, &self.scalers, self.use_topic, &inputs)
    }

    /// State dict of the multi-input network (for serialization).
    pub(crate) fn net_state(&self) -> StateDict {
        self.net.state_dict()
    }

    /// State dict of the classification head (for serialization).
    pub(crate) fn head_state(&self) -> StateDict {
        self.head.state_dict()
    }

    /// Scalers fitted on the training data (for serialization).
    pub(crate) fn scalers(&self) -> &[Standardizer] {
        &self.scalers
    }

    /// Rebuild a frozen core from its serialized parts: the architecture is
    /// reconstructed from `config` + `group_widths`, the weights (and
    /// BatchNorm running statistics) loaded from the state dicts, and the
    /// sampler's pre-computed state rebuilt from its serialized kind.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_state(
        config: &SatoConfig,
        use_topic: bool,
        intent: Option<TableIntentEstimator>,
        scalers: Vec<Standardizer>,
        group_widths: Vec<usize>,
        net_state: &StateDict,
        head_state: &StateDict,
        sampler_kind: SamplerKind,
    ) -> Result<Self, LoadError> {
        let (mut net, mut head) = build_network(config, &group_widths);
        net.load_state_dict(net_state)?;
        head.load_state_dict(head_state)?;
        Ok(FrozenColumnwise {
            use_topic,
            extractor: FeatureExtractor::new(config.features.clone()),
            intent,
            net,
            head,
            scalers,
            group_widths,
            sampler_kind: SamplerKind::Dense,
            sampler: TopicSampler::Dense,
        }
        .with_sampler_kind(sampler_kind))
    }

    /// [`Self::from_state`] with an **already-built** [`TopicSampler`]
    /// (deserialized from a binary artifact's alias-table section), skipping
    /// the `O(topics × vocabulary)` sampler rebuild that
    /// [`Self::with_sampler_kind`] would perform. The caller vouches that
    /// `sampler` was built from the very intent model being loaded.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_state_with_sampler(
        config: &SatoConfig,
        use_topic: bool,
        intent: Option<TableIntentEstimator>,
        scalers: Vec<Standardizer>,
        group_widths: Vec<usize>,
        net_state: &StateDict,
        head_state: &StateDict,
        sampler_kind: SamplerKind,
        sampler: TopicSampler,
    ) -> Result<Self, LoadError> {
        let (mut net, mut head) = build_network(config, &group_widths);
        net.load_state_dict(net_state)?;
        head.load_state_dict(head_state)?;
        Ok(FrozenColumnwise {
            use_topic,
            extractor: FeatureExtractor::new(config.features.clone()),
            intent,
            net,
            head,
            scalers,
            group_widths,
            sampler_kind,
            sampler,
        })
    }
}

impl ColumnwiseInference for FrozenColumnwise {
    fn predict_proba(&self, table: &Table) -> Vec<Vec<f32>> {
        let inputs = self.extract_inputs(table);
        self.predict_proba_from_inputs(&inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sato_tabular::corpus::default_corpus;

    fn train_small(use_topic: bool) -> (ColumnwiseModel, Corpus) {
        let corpus = default_corpus(60, 11);
        let mut model = if use_topic {
            ColumnwiseModel::topic_aware(SatoConfig::fast())
        } else {
            ColumnwiseModel::base(SatoConfig::fast())
        };
        model.fit(&corpus);
        (model, corpus)
    }

    #[test]
    fn base_model_trains_and_loss_decreases() {
        let (model, _) = train_small(false);
        let history = model.loss_history();
        assert!(!history.is_empty());
        assert!(
            history.last().unwrap() < history.first().unwrap(),
            "loss did not decrease: {history:?}"
        );
        assert!(model.is_trained());
        assert!(!model.uses_topic());
        assert!(model.intent_estimator().is_none());
    }

    #[test]
    fn topic_model_trains_with_intent_estimator() {
        let (model, _) = train_small(true);
        assert!(model.uses_topic());
        assert!(model.intent_estimator().is_some());
    }

    #[test]
    fn probabilities_are_normalised_per_column() {
        let (model, corpus) = train_small(false);
        let table = &corpus.tables[0];
        let probs = model.predict_proba(table);
        assert_eq!(probs.len(), table.num_columns());
        for p in probs {
            assert_eq!(p.len(), NUM_TYPES);
            let s: f32 = p.iter().sum();
            assert!((s - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn predictions_beat_chance_on_training_data() {
        let (model, corpus) = train_small(false);
        let mut correct = 0usize;
        let mut total = 0usize;
        for table in corpus.iter().take(30) {
            let preds = model.predict_types(table);
            correct += preds
                .iter()
                .zip(&table.labels)
                .filter(|(a, b)| a == b)
                .count();
            total += table.labels.len();
        }
        let acc = correct as f32 / total as f32;
        assert!(
            acc > 0.3,
            "training accuracy {acc} barely above chance (1/78)"
        );
    }

    #[test]
    fn column_embeddings_have_hidden_dim() {
        let (model, corpus) = train_small(false);
        let table = &corpus.tables[1];
        let emb = model.column_embeddings(table);
        assert_eq!(emb.len(), table.num_columns());
        assert!(emb
            .iter()
            .all(|e| e.len() == SatoConfig::fast().network.hidden_dim));
    }

    #[test]
    fn prediction_is_deterministic_in_eval_mode() {
        let (model, corpus) = train_small(false);
        let table = &corpus.tables[2];
        assert_eq!(model.predict_proba(table), model.predict_proba(table));
    }

    #[test]
    fn frozen_model_matches_source_bit_for_bit() {
        let (model, corpus) = train_small(true);
        let snapshot = model.freeze();
        for table in corpus.iter().take(10) {
            assert_eq!(model.predict_proba(table), snapshot.predict_proba(table));
            assert_eq!(
                model.column_embeddings(table),
                snapshot.column_embeddings(table)
            );
        }
        // Consuming freeze agrees too (moves the very same weights).
        let frozen = model.into_frozen();
        let table = &corpus.tables[0];
        assert_eq!(frozen.predict_proba(table), snapshot.predict_proba(table));
        assert!(frozen.uses_topic());
        assert!(frozen.intent_estimator().is_some());
    }

    #[test]
    #[should_panic(expected = "trained")]
    fn predicting_before_training_panics() {
        let corpus = default_corpus(3, 1);
        let model = ColumnwiseModel::base(SatoConfig::fast());
        model.predict_proba(&corpus.tables[0]);
    }

    #[test]
    #[should_panic(expected = "trained")]
    fn freezing_before_training_panics() {
        ColumnwiseModel::base(SatoConfig::fast()).freeze();
    }

    #[test]
    #[should_panic(expected = "empty corpus")]
    fn training_on_empty_corpus_panics() {
        let mut model = ColumnwiseModel::base(SatoConfig::fast());
        model.fit(&Corpus::new(vec![]));
    }
}
