//! Configuration of the Sato models.
//!
//! The defaults follow the paper's hyper-parameters (Section 4.3) scaled to
//! the laptop-sized synthetic corpus: Adam with learning rate 1e-4 and weight
//! decay 1e-4 for the column-wise network, learning rate 1e-2 and batches of
//! 10 tables for the CRF layer, and an LDA table-intent estimator whose topic
//! count defaults to 64 (the paper uses 400 on the 80K-table corpus; the
//! count is configurable and swept in the ablation benches).

use sato_crf::CrfTrainConfig;
use sato_features::FeatureConfig;
use sato_topic::LdaConfig;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the column-wise (Sherlock-style) neural network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Output width of each feature-group compression subnetwork.
    pub subnetwork_dim: usize,
    /// Width of the two fully-connected layers of the primary network.
    pub hidden_dim: usize,
    /// Dropout probability in the primary network.
    pub dropout: f32,
    /// Training epochs (the paper uses 100).
    pub epochs: usize,
    /// Mini-batch size (in columns).
    pub batch_size: usize,
    /// Adam learning rate (the paper uses 1e-4).
    pub learning_rate: f32,
    /// Adam weight decay (the paper uses 1e-4).
    pub weight_decay: f32,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            subnetwork_dim: 64,
            hidden_dim: 128,
            dropout: 0.2,
            epochs: 40,
            batch_size: 64,
            learning_rate: 1e-3,
            weight_decay: 1e-4,
        }
    }
}

/// Full Sato configuration: feature extraction, topic model, column-wise
/// network and CRF training.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SatoConfig {
    /// Column feature extraction widths.
    pub features: FeatureConfig,
    /// LDA topic model configuration (table intent estimator).
    pub lda: LdaConfig,
    /// Column-wise network hyper-parameters.
    pub network: NetworkConfig,
    /// CRF layer training hyper-parameters.
    pub crf: CrfTrainParams,
    /// Global seed for weight initialisation and shuffling.
    pub seed: u64,
}

/// Serializable mirror of [`sato_crf::CrfTrainConfig`] so the whole Sato
/// configuration can be persisted as one JSON document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrfTrainParams {
    /// Learning rate of the CRF layer (paper: 1e-2).
    pub learning_rate: f64,
    /// Training epochs for the CRF layer (paper: 15).
    pub epochs: usize,
    /// Tables per CRF mini-batch (paper: 10).
    pub batch_size: usize,
    /// L2 regularisation on pairwise potentials.
    pub l2: f64,
}

impl Default for CrfTrainParams {
    fn default() -> Self {
        CrfTrainParams {
            learning_rate: 1e-2,
            epochs: 15,
            batch_size: 10,
            l2: 1e-4,
        }
    }
}

impl CrfTrainParams {
    /// Convert into the `sato-crf` trainer configuration.
    pub fn to_crf_config(&self, seed: u64) -> CrfTrainConfig {
        CrfTrainConfig {
            learning_rate: self.learning_rate,
            epochs: self.epochs,
            batch_size: self.batch_size,
            l2: self.l2,
            seed,
        }
    }
}

impl Default for SatoConfig {
    fn default() -> Self {
        SatoConfig {
            features: FeatureConfig::default(),
            lda: LdaConfig::default(),
            network: NetworkConfig::default(),
            crf: CrfTrainParams::default(),
            seed: 42,
        }
    }
}

impl SatoConfig {
    /// A configuration small enough for unit tests and doc examples: low
    /// feature dimensionality, few topics, few epochs.
    pub fn fast() -> Self {
        SatoConfig {
            features: FeatureConfig::small(),
            lda: LdaConfig {
                // Needs enough topics to separate the corpus's table
                // intents; fewer makes the topic signal noise that *hurts*
                // the topic-aware variants.
                num_topics: 32,
                train_iterations: 60,
                infer_iterations: 25,
                ..LdaConfig::default()
            },
            network: NetworkConfig {
                subnetwork_dim: 24,
                hidden_dim: 48,
                epochs: 30,
                batch_size: 32,
                ..NetworkConfig::default()
            },
            crf: CrfTrainParams {
                epochs: 8,
                ..CrfTrainParams::default()
            },
            seed: 42,
        }
    }

    /// Builder-style: change the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: change the topic count of the LDA model.
    pub fn with_topics(mut self, num_topics: usize) -> Self {
        self.lda.num_topics = num_topics;
        self
    }

    /// Builder-style: change the number of network training epochs.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.network.epochs = epochs;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_style_hyperparameters() {
        let cfg = SatoConfig::default();
        assert_eq!(cfg.crf.batch_size, 10);
        assert_eq!(cfg.crf.epochs, 15);
        assert!((cfg.crf.learning_rate - 1e-2).abs() < 1e-12);
        assert!(cfg.network.weight_decay > 0.0);
    }

    #[test]
    fn fast_config_is_smaller_than_default() {
        let fast = SatoConfig::fast();
        let full = SatoConfig::default();
        assert!(fast.lda.num_topics < full.lda.num_topics);
        assert!(fast.network.epochs < full.network.epochs);
    }

    #[test]
    fn builders_update_fields() {
        let cfg = SatoConfig::fast()
            .with_seed(7)
            .with_topics(5)
            .with_epochs(3);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.lda.num_topics, 5);
        assert_eq!(cfg.network.epochs, 3);
    }

    #[test]
    fn crf_params_convert_to_trainer_config() {
        let params = CrfTrainParams::default();
        let cfg = params.to_crf_config(99);
        assert_eq!(cfg.seed, 99);
        assert_eq!(cfg.epochs, params.epochs);
        assert_eq!(cfg.batch_size, params.batch_size);
    }

    #[test]
    fn config_serialises_to_json() {
        let cfg = SatoConfig::default();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: SatoConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.network, cfg.network);
        assert_eq!(back.seed, cfg.seed);
    }
}
