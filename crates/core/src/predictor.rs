//! The frozen serving artifact: [`SatoPredictor`], an immutable,
//! `Send + Sync` snapshot of a trained [`SatoModel`](crate::SatoModel).
//!
//! Training and serving have different needs — training mutates (optimiser
//! state, activation caches for backprop, RNG streams), serving must share
//! one set of weights across many threads. `SatoPredictor` is the
//! read-optimised side of that split: it owns the column-wise network
//! weights (with BatchNorm running statistics), the optional CRF layer and
//! the configuration, exposes every prediction entry point by `&self`,
//! round-trips through JSON as a deployable artifact, and fans a corpus out
//! over scoped threads with [`SatoPredictor::predict_corpus_parallel`].
//!
//! ```no_run
//! use sato::{SatoConfig, SatoModel, SatoVariant};
//! use sato_tabular::corpus::default_corpus;
//!
//! let corpus = default_corpus(200, 42);
//! let model = SatoModel::train(&corpus, SatoConfig::fast(), SatoVariant::Full);
//! let predictor = model.into_predictor(); // frozen, Send + Sync
//! let json = predictor.to_json(); // deployable artifact
//! let served = sato::SatoPredictor::from_json(&json).unwrap();
//! assert_eq!(
//!     served.predict(&corpus.tables[0]),
//!     predictor.predict(&corpus.tables[0])
//! );
//! ```

use crate::columnwise::{types_from_rows, ColumnwiseInference, FrozenColumnwise, ServingScratch};
use crate::config::SatoConfig;
use crate::dataset::Standardizer;
use crate::model::{gold_of, SatoVariant, TablePrediction};
use crate::structured::StructuredLayer;
use sato_crf::LinearChainCrf;
use sato_features::FeatureGroup;
use sato_nn::serialize::{LoadError, StateDict};
use sato_tabular::colstore::{ColStoreError, ColStoreReader, TableBuf};
use sato_tabular::table::{Corpus, Table, TableCells};
use sato_tabular::types::SemanticType;
use sato_topic::{SamplerKind, TableIntentEstimator};
use serde::{Deserialize, Serialize};

/// Version tag written into serialized predictor artifacts.
const FORMAT_VERSION: u64 = 1;

/// Error raised when loading a serialized [`SatoPredictor`] artifact.
#[derive(Debug)]
pub enum PredictorError {
    /// The artifact is not valid JSON or does not match the expected shape.
    Json(serde_json::Error),
    /// The artifact was written by an incompatible format version.
    UnsupportedVersion(u64),
    /// The stored weights do not fit the architecture described by the
    /// stored configuration (count/shape mismatch).
    State(LoadError),
    /// The artifact's fields are mutually inconsistent (e.g. a topic-aware
    /// model without its topic estimator), which would panic at predict
    /// time if loaded.
    Inconsistent(&'static str),
    /// Reading or writing the artifact file failed.
    Io(std::io::Error),
    /// A binary artifact ended before the named structure was complete.
    Truncated(&'static str),
    /// A binary artifact does not start with the `SATOART1` magic bytes.
    BadMagic,
    /// A binary artifact section's stored checksum does not match its
    /// payload (bit rot, torn write, or mid-file corruption).
    Checksum(&'static str),
    /// A binary artifact is missing a section the described model requires.
    MissingSection(&'static str),
    /// A binary artifact section decoded to structurally invalid data.
    Corrupt(String),
}

impl std::fmt::Display for PredictorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredictorError::Json(e) => write!(f, "predictor artifact: {e}"),
            PredictorError::UnsupportedVersion(v) => {
                write!(f, "predictor artifact: unsupported format version {v}")
            }
            PredictorError::State(e) => write!(f, "predictor artifact: {e}"),
            PredictorError::Inconsistent(msg) => write!(f, "predictor artifact: {msg}"),
            PredictorError::Io(e) => write!(f, "predictor artifact: {e}"),
            PredictorError::Truncated(what) => {
                write!(f, "predictor artifact: truncated while reading {what}")
            }
            PredictorError::BadMagic => {
                write!(f, "predictor artifact: bad magic (not a SATOART1 file)")
            }
            PredictorError::Checksum(section) => {
                write!(
                    f,
                    "predictor artifact: checksum mismatch in section {section}"
                )
            }
            PredictorError::MissingSection(section) => {
                write!(f, "predictor artifact: missing required section {section}")
            }
            PredictorError::Corrupt(msg) => write!(f, "predictor artifact: {msg}"),
        }
    }
}

impl std::error::Error for PredictorError {}

impl From<sato_topic::TopicBytesError> for PredictorError {
    fn from(e: sato_topic::TopicBytesError) -> Self {
        match e {
            sato_topic::TopicBytesError::Truncated(what) => PredictorError::Truncated(what),
            other => PredictorError::Corrupt(other.to_string()),
        }
    }
}

impl From<sato_nn::serialize::StateBytesError> for PredictorError {
    fn from(e: sato_nn::serialize::StateBytesError) -> Self {
        match e {
            sato_nn::serialize::StateBytesError::Truncated(what) => PredictorError::Truncated(what),
            other => PredictorError::Corrupt(other.to_string()),
        }
    }
}

impl From<serde_json::Error> for PredictorError {
    fn from(e: serde_json::Error) -> Self {
        PredictorError::Json(e)
    }
}

impl From<LoadError> for PredictorError {
    fn from(e: LoadError) -> Self {
        PredictorError::State(e)
    }
}

impl From<std::io::Error> for PredictorError {
    fn from(e: std::io::Error) -> Self {
        PredictorError::Io(e)
    }
}

/// The serialized form of a predictor: everything needed to rebuild the
/// frozen inference pipeline bit-for-bit (architecture from `config` +
/// `group_widths`, weights and running statistics from the state dicts).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PredictorArtifact {
    format_version: u64,
    variant: SatoVariant,
    config: SatoConfig,
    use_topic: bool,
    /// The topic-sampler axis ([`SatoPredictor::with_sampler`]). Artifacts
    /// written before this field existed deserialize as `Dense` (see
    /// [`SatoPredictor::from_json`]), which is bit-identical to their
    /// historical behaviour.
    sampler: SamplerKind,
    group_widths: Vec<usize>,
    scalers: Vec<Standardizer>,
    net: StateDict,
    head: StateDict,
    intent: Option<TableIntentEstimator>,
    crf: Option<LinearChainCrf>,
}

/// Stable identity of a serving artifact, reported by
/// [`SatoPredictor::artifact_meta`]: what hot-swap observability (the
/// `sato-serve` service, dashboards, response tagging) needs to name *which*
/// artifact served a request without holding the artifact itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArtifactMeta {
    /// FNV-1a 64 over the artifact's canonical `SATOART1` byte stream (see
    /// [`SatoPredictor::content_hash`]).
    pub content_hash: u64,
    /// The variant the source model was trained as.
    pub variant: SatoVariant,
    /// The configured serving-time topic sampler.
    pub sampler: SamplerKind,
    /// Whether the artifact consumes the table topic vector.
    pub uses_topic: bool,
    /// Whether the artifact carries a CRF structured layer.
    pub has_crf: bool,
}

/// An immutable, thread-safe (`Send + Sync`) serving artifact frozen from a
/// trained [`SatoModel`](crate::SatoModel).
///
/// Obtain one with [`SatoModel::into_predictor`](crate::SatoModel::into_predictor)
/// (consuming, zero-copy) or [`SatoModel::predictor`](crate::SatoModel::predictor)
/// (snapshot). Every prediction method takes `&self`, so one predictor can
/// be shared by reference across any number of threads — no locks, no
/// interior mutability, no training-time state.
pub struct SatoPredictor {
    variant: SatoVariant,
    config: SatoConfig,
    columnwise: FrozenColumnwise,
    structured: Option<StructuredLayer>,
    /// FNV-1a 64 over the `SATOART1` byte form, fixed at freeze/load time.
    content_hash: u64,
}

impl SatoPredictor {
    pub(crate) fn from_parts(
        variant: SatoVariant,
        config: SatoConfig,
        columnwise: FrozenColumnwise,
        crf: Option<LinearChainCrf>,
    ) -> Self {
        let mut predictor = SatoPredictor {
            variant,
            config,
            columnwise,
            structured: crf.map(StructuredLayer::from_crf),
            content_hash: 0,
        };
        predictor.content_hash = predictor.canonical_hash();
        predictor
    }

    /// [`Self::from_parts`] with the content hash already computed over the
    /// loaded bytes (the binary-load path, which would otherwise pay a full
    /// re-serialization just to recover the hash of what it just read).
    pub(crate) fn from_parts_hashed(
        variant: SatoVariant,
        config: SatoConfig,
        columnwise: FrozenColumnwise,
        crf: Option<LinearChainCrf>,
        content_hash: u64,
    ) -> Self {
        SatoPredictor {
            variant,
            config,
            columnwise,
            structured: crf.map(StructuredLayer::from_crf),
            content_hash,
        }
    }

    /// The content hash of this predictor's canonical binary form.
    fn canonical_hash(&self) -> u64 {
        crate::artifact::fnv1a64(&self.to_bytes())
    }

    /// FNV-1a 64 over the predictor's `SATOART1` byte stream
    /// ([`Self::to_bytes`]), computed once at freeze/load time.
    ///
    /// The hash is a stable *content* identity: freezing a model, loading
    /// its JSON artifact and loading its binary artifact all yield the same
    /// hash (the binary codec is canonical and round-trip-stable), while any
    /// change to the served weights or serving configuration — including
    /// [`Self::with_sampler`] — yields a different one. Hot-swap
    /// observability is built on it: `sato-serve` tags every response with
    /// the hash of the artifact that served it.
    pub fn content_hash(&self) -> u64 {
        self.content_hash
    }

    /// Stable identity snapshot of this artifact (hash, variant, sampler,
    /// layer presence) for hot-swap observability; see [`ArtifactMeta`].
    pub fn artifact_meta(&self) -> ArtifactMeta {
        ArtifactMeta {
            content_hash: self.content_hash,
            variant: self.variant,
            sampler: self.columnwise.sampler_kind(),
            uses_topic: self.columnwise.uses_topic(),
            has_crf: self.structured.is_some(),
        }
    }

    /// The variant the source model was trained as.
    pub fn variant(&self) -> SatoVariant {
        self.variant
    }

    /// The configuration the source model was trained with.
    pub fn config(&self) -> &SatoConfig {
        &self.config
    }

    /// Whether this predictor consumes the table topic vector.
    pub fn uses_topic(&self) -> bool {
        self.columnwise.uses_topic()
    }

    /// The configured topic-sampler variant (see [`Self::with_sampler`]).
    pub fn sampler_kind(&self) -> SamplerKind {
        self.columnwise.sampler_kind()
    }

    /// Reconfigure the serving-time topic sampler, the accuracy/speed axis
    /// of topic estimation:
    ///
    /// * [`SamplerKind::Dense`] (default) — the exact collapsed sweep,
    ///   bit-identical to historical predictions and to every saved
    ///   artifact that predates the sampler field.
    /// * [`SamplerKind::SparseAlias`] — `O(k_d)`-per-token sparse/alias
    ///   sampling; statistically close but not bit-identical. The per-word
    ///   alias tables are pre-built **here** (freeze time), never on the
    ///   serving hot path.
    /// * [`SamplerKind::MetropolisHastings`] — `O(1)`-amortized-per-token
    ///   LightLDA-style cycle proposals (alias word proposal + assignment
    ///   array doc proposal, each with a Metropolis–Hastings accept step).
    ///   Reuses the same pre-built alias tables; statistically close but
    ///   not bit-identical.
    ///
    /// The choice is respected by every serving entry point (`predict`,
    /// `predict_corpus`, `predict_corpus_batched`,
    /// `predict_corpus_parallel_batched`, …) and serialized into the JSON
    /// artifact, so a loaded predictor reproduces the saved one bit for
    /// bit. For variants without a topic estimator the kind is recorded but
    /// predictions are unaffected.
    pub fn with_sampler(mut self, kind: SamplerKind) -> Self {
        self.columnwise = self.columnwise.with_sampler_kind(kind);
        // The sampler is part of the serialized artifact, so the content
        // identity changes with it.
        self.content_hash = self.canonical_hash();
        self
    }

    /// The CRF layer, if the frozen variant has one.
    pub fn crf(&self) -> Option<&LinearChainCrf> {
        self.structured.as_ref().map(|s| s.crf())
    }

    /// The frozen column-wise inference core.
    pub fn columnwise(&self) -> &FrozenColumnwise {
        &self.columnwise
    }

    /// Per-column probability rows from the column-wise stage (before any
    /// structured decoding).
    pub fn predict_proba(&self, table: &Table) -> Vec<Vec<f32>> {
        self.columnwise.predict_proba(table)
    }

    /// Predict the semantic type of every column of a table.
    pub fn predict(&self, table: &Table) -> Vec<SemanticType> {
        // The probability rows stay in one flat row-major matrix end to end
        // (no per-column Vec<Vec<f32>> on this path).
        let probs = self.columnwise.predict_proba_matrix(table);
        match &self.structured {
            Some(layer) => layer.decode_matrix(&probs),
            None => types_from_rows(&probs, 0, probs.rows()),
        }
    }

    /// Column embeddings (the final hidden representation before the output
    /// layer; Section 5.6 / Figure 10).
    pub fn column_embeddings(&self, table: &Table) -> Vec<Vec<f32>> {
        self.columnwise.column_embeddings(table)
    }

    /// Width of the column-embedding space (the network's final hidden
    /// dimension) — the `dim` an ANN index over this predictor's
    /// embeddings must be created with.
    pub fn embedding_dim(&self) -> usize {
        self.config.network.hidden_dim
    }

    /// [`Self::column_embeddings`] through a caller-owned
    /// [`ServingScratch`]: the returned matrix (one row per column,
    /// [`Self::embedding_dim`] wide) borrows the scratch's reusable
    /// embedding buffer, so a warm loop extracts embeddings table after
    /// table with **zero steady-state allocations** — and every row is
    /// bit-identical to the allocating path.
    pub fn column_embeddings_into<'s>(
        &self,
        table: &Table,
        scratch: &'s mut ServingScratch,
    ) -> &'s sato_nn::Matrix {
        self.embed_batch(&[table], scratch)
    }

    /// Run exactly one micro-batch to the **column embeddings** (no
    /// classification head, no CRF): one row per column, table after table
    /// in order, borrowed from the scratch. The batched counterpart of
    /// [`Self::column_embeddings`] and the embedding sibling of
    /// [`Self::predict_batch`] — same feature extraction, topic
    /// estimation (memo included) and network trunk, so rows are
    /// bit-identical to the per-table path. An empty batch yields a 0-row
    /// matrix.
    pub fn embed_batch<'s, T: TableCells + ?Sized>(
        &self,
        batch: &[&T],
        scratch: &'s mut ServingScratch,
    ) -> &'s sato_nn::Matrix {
        scratch.bind_artifact(self.content_hash);
        self.columnwise.embed_batch_cells(batch, scratch);
        scratch.embeddings()
    }

    /// Stream the column embeddings of a whole corpus in column
    /// micro-batches (the same accumulation rule as
    /// [`Self::predict_corpus_batched`]): `on_column` is called once per
    /// column, table after table in corpus order, with the owning table's
    /// id, the column position and the embedding row — the feed an ANN
    /// index build consumes without materializing a `Vec` per column.
    pub fn embed_corpus_batched_with(
        &self,
        corpus: &Corpus,
        batch_cols: usize,
        scratch: &mut ServingScratch,
        mut on_column: impl FnMut(u64, u32, &[f32]),
    ) {
        let batch_cols = batch_cols.max(1);
        let mut batch: Vec<&Table> = Vec::new();
        let mut pending_cols = 0usize;
        for table in &corpus.tables {
            batch.push(table);
            pending_cols += table.num_columns();
            if pending_cols >= batch_cols {
                self.flush_embed_batch(&batch, scratch, &mut on_column);
                batch.clear();
                pending_cols = 0;
            }
        }
        if !batch.is_empty() {
            self.flush_embed_batch(&batch, scratch, &mut on_column);
        }
    }

    /// Embed one micro-batch and hand each row to `on_column` with its
    /// `(table_id, col_idx)` identity.
    fn flush_embed_batch<T: TableCells + ?Sized>(
        &self,
        batch: &[&T],
        scratch: &mut ServingScratch,
        on_column: &mut impl FnMut(u64, u32, &[f32]),
    ) {
        scratch.bind_artifact(self.content_hash);
        self.columnwise.embed_batch_cells(batch, scratch);
        let mut row = 0usize;
        for table in batch {
            for c in 0..table.cell_columns() {
                on_column(table.table_id(), c as u32, scratch.embedding.row(row));
                row += 1;
            }
        }
    }

    fn predict_table(&self, table: &Table) -> TablePrediction {
        TablePrediction {
            table_id: table.id,
            gold: gold_of(table),
            predicted: self.predict(table),
        }
    }

    /// Predict every table of a corpus sequentially (see
    /// [`TablePrediction::gold`] for the empty-gold convention).
    pub fn predict_corpus(&self, corpus: &Corpus) -> Vec<TablePrediction> {
        corpus.iter().map(|t| self.predict_table(t)).collect()
    }

    /// Predict every table of a corpus in **column micro-batches**: tables
    /// are accumulated until they carry at least `batch_cols` columns, the
    /// whole micro-batch runs through the column-wise network in a single
    /// forward pass (one input matrix per feature group, with per-table row
    /// offsets), and the probability rows are split back per table for CRF
    /// decoding.
    ///
    /// The output is exactly — bit for bit — the output of
    /// [`Self::predict_corpus`]; only the wall-clock time changes. Batching
    /// is exact because every eval-mode stage operates row-independently.
    /// `batch_cols` is clamped to at least 1; `1` degenerates to one batch
    /// per table, and a value larger than the corpus's total column count
    /// runs the whole corpus as a single batch.
    pub fn predict_corpus_batched(
        &self,
        corpus: &Corpus,
        batch_cols: usize,
    ) -> Vec<TablePrediction> {
        self.predict_tables_batched(&corpus.tables, batch_cols, &mut ServingScratch::new())
    }

    /// [`Self::predict_corpus_batched`] with a caller-owned
    /// [`ServingScratch`]: a serving loop that predicts corpus after corpus
    /// can keep one warm scratch and pay zero steady-state buffer
    /// allocations across calls. Output is identical.
    pub fn predict_corpus_batched_with(
        &self,
        corpus: &Corpus,
        batch_cols: usize,
        scratch: &mut ServingScratch,
    ) -> Vec<TablePrediction> {
        self.predict_tables_batched(&corpus.tables, batch_cols, scratch)
    }

    /// Batched prediction over a slice of tables, reusing one serving
    /// scratch across all micro-batches (shared by the sequential and
    /// parallel batched entry points).
    fn predict_tables_batched(
        &self,
        tables: &[Table],
        batch_cols: usize,
        scratch: &mut ServingScratch,
    ) -> Vec<TablePrediction> {
        let batch_cols = batch_cols.max(1);
        let mut out = Vec::with_capacity(tables.len());
        let mut batch: Vec<&Table> = Vec::new();
        let mut pending_cols = 0usize;
        for table in tables {
            batch.push(table);
            pending_cols += table.num_columns();
            if pending_cols >= batch_cols {
                self.flush_batch(&batch, scratch, &mut out);
                batch.clear();
                pending_cols = 0;
            }
        }
        if !batch.is_empty() {
            self.flush_batch(&batch, scratch, &mut out);
        }
        out
    }

    /// Run one micro-batch through the network and split the probability
    /// rows back per table for decoding. Generic over the cell source, so
    /// in-memory tables and decoded colstore frames share one code path
    /// (and therefore cannot drift): [`TableCells::gold_labels`] reproduces
    /// the [`gold_of`] empty-gold convention exactly.
    fn flush_batch<T: TableCells + ?Sized>(
        &self,
        batch: &[&T],
        scratch: &mut ServingScratch,
        out: &mut Vec<TablePrediction>,
    ) {
        // A scratch's topic memo caches *this predictor's* topic vectors; if
        // the scratch last served a different artifact (hot-swap, or a
        // caller sharing one scratch across predictors), its entries are
        // stale and must not be replayed.
        scratch.bind_artifact(self.content_hash);
        self.columnwise.infer_batch_cells(batch, scratch);
        // Disjoint borrows: the probability matrix is read row-range by row
        // range while the unary buffer is reused per table.
        let ServingScratch { probs, unary, .. } = scratch;
        let mut row = 0usize;
        for table in batch {
            let end = row + table.cell_columns();
            let predicted = match &self.structured {
                Some(layer) => layer.decode_rows(probs, row, end, unary),
                None => types_from_rows(probs, row, end),
            };
            out.push(TablePrediction {
                table_id: table.table_id(),
                gold: table.gold_labels().to_vec(),
                predicted,
            });
            row = end;
        }
    }

    /// Run exactly **one micro-batch** through the column-wise network (a
    /// single forward pass over every column of every table in `batch`) and
    /// return one [`TablePrediction`] per table, in order.
    ///
    /// This is the public seam for *external batchers* — callers that form
    /// their own micro-batches, like the `sato-serve` service coalescing
    /// columns from different requests into one shared batch. Because every
    /// eval-mode stage operates row-independently, any table-granularity
    /// batching composition built on this method is bit-identical to
    /// [`Self::predict_corpus`] (and therefore to
    /// [`Self::predict_corpus_batched`] at any `batch_cols`).
    ///
    /// The scratch's topic memo (if enabled) is automatically invalidated
    /// when the scratch last served a different artifact, so reusing one
    /// warm scratch across a hot-swap cannot replay stale topic vectors.
    pub fn predict_batch<T: TableCells + ?Sized>(
        &self,
        batch: &[&T],
        scratch: &mut ServingScratch,
    ) -> Vec<TablePrediction> {
        let mut out = Vec::with_capacity(batch.len());
        self.flush_batch(batch, scratch, &mut out);
        out
    }

    /// Serve a corpus **straight off its columnar on-disk form**: frames are
    /// decoded one at a time into reusable [`TableBuf`]s (the column pool and
    /// string arena warm up once and are recycled), accumulated into the same
    /// column micro-batches as [`Self::predict_corpus_batched`] and fed to
    /// the network without ever materializing a [`Table`].
    ///
    /// Batch boundaries follow the identical accumulate-until-`batch_cols`
    /// rule, so the output is — bit for bit — what
    /// [`Self::predict_corpus_batched`] produces on the decoded corpus.
    pub fn predict_colstore<R: std::io::Read>(
        &self,
        reader: &mut ColStoreReader<R>,
        batch_cols: usize,
        scratch: &mut ServingScratch,
    ) -> Result<Vec<TablePrediction>, ColStoreError> {
        let batch_cols = batch_cols.max(1);
        let mut out = Vec::new();
        // Decoded-frame pool: `used` buffers hold the pending micro-batch;
        // buffers past `used` are warm spares from earlier batches.
        let mut pool: Vec<TableBuf> = Vec::new();
        let mut used = 0usize;
        let mut pending_cols = 0usize;
        loop {
            if used == pool.len() {
                pool.push(TableBuf::new());
            }
            if !reader.read_into(&mut pool[used])? {
                break;
            }
            pending_cols += pool[used].num_columns();
            used += 1;
            if pending_cols >= batch_cols {
                let batch: Vec<&TableBuf> = pool[..used].iter().collect();
                self.flush_batch(&batch, scratch, &mut out);
                used = 0;
                pending_cols = 0;
            }
        }
        if used > 0 {
            let batch: Vec<&TableBuf> = pool[..used].iter().collect();
            self.flush_batch(&batch, scratch, &mut out);
        }
        Ok(out)
    }

    /// [`Self::predict_colstore`] over an in-memory colstore byte buffer
    /// (fresh scratch) — the convenience shape for artifacts already read
    /// or mapped into memory.
    pub fn predict_colstore_bytes(
        &self,
        bytes: &[u8],
        batch_cols: usize,
    ) -> Result<Vec<TablePrediction>, ColStoreError> {
        let mut reader = ColStoreReader::new(bytes)?;
        self.predict_colstore(&mut reader, batch_cols, &mut ServingScratch::new())
    }

    /// [`Self::predict_colstore`] over a colstore file on disk (buffered
    /// reads, fresh scratch).
    pub fn predict_colstore_path(
        &self,
        path: impl AsRef<std::path::Path>,
        batch_cols: usize,
    ) -> Result<Vec<TablePrediction>, ColStoreError> {
        let mut reader = sato_tabular::colstore::open_path(path)?;
        self.predict_colstore(&mut reader, batch_cols, &mut ServingScratch::new())
    }

    /// Batched prediction sharded over `n_threads` scoped OS threads: each
    /// thread serves a contiguous chunk of the corpus with
    /// [`Self::predict_corpus_batched`]'s micro-batching and its own
    /// scratch. Output is bit-identical to [`Self::predict_corpus`] (and
    /// therefore to every other serving entry point), in corpus order.
    pub fn predict_corpus_parallel_batched(
        &self,
        corpus: &Corpus,
        batch_cols: usize,
        n_threads: usize,
    ) -> Vec<TablePrediction> {
        let n_threads = n_threads.max(1);
        let tables = &corpus.tables;
        if n_threads == 1 || tables.len() < 2 {
            return self.predict_tables_batched(tables, batch_cols, &mut ServingScratch::new());
        }
        let chunk_size = tables.len().div_ceil(n_threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = tables
                .chunks(chunk_size)
                .map(|chunk| {
                    scope.spawn(move || {
                        self.predict_tables_batched(chunk, batch_cols, &mut ServingScratch::new())
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("prediction thread panicked"))
                .collect()
        })
    }

    /// Predict every table of a corpus on `n_threads` scoped OS threads,
    /// sharing `self` by reference. The output is exactly — bit for bit —
    /// the output of [`Self::predict_corpus`], in the same order; only the
    /// wall-clock time changes.
    ///
    /// `n_threads` is clamped to at least 1; with 1 thread (or at most one
    /// table) this falls back to the sequential path.
    pub fn predict_corpus_parallel(
        &self,
        corpus: &Corpus,
        n_threads: usize,
    ) -> Vec<TablePrediction> {
        let n_threads = n_threads.max(1);
        let tables = &corpus.tables;
        if n_threads == 1 || tables.len() < 2 {
            return self.predict_corpus(corpus);
        }
        // Contiguous chunks keep the output order: chunk i's results are
        // appended before chunk i+1's. Each thread borrows `self` — this is
        // exactly the Send + Sync guarantee the frozen artifact exists for.
        let chunk_size = tables.len().div_ceil(n_threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = tables
                .chunks(chunk_size)
                .map(|chunk| {
                    scope.spawn(move || {
                        chunk
                            .iter()
                            .map(|t| self.predict_table(t))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("prediction thread panicked"))
                .collect()
        })
    }

    /// Serialize the whole predictor (config, weights, running statistics,
    /// scalers, topic model, CRF) into a deployable JSON artifact.
    pub fn to_json(&self) -> String {
        let artifact = PredictorArtifact {
            format_version: FORMAT_VERSION,
            variant: self.variant,
            config: self.config.clone(),
            use_topic: self.columnwise.uses_topic(),
            sampler: self.columnwise.sampler_kind(),
            group_widths: self.columnwise.group_widths().to_vec(),
            scalers: self.columnwise.scalers().to_vec(),
            net: self.columnwise.net_state(),
            head: self.columnwise.head_state(),
            intent: self.columnwise.intent_estimator().cloned(),
            crf: self.structured.as_ref().map(|s| s.crf().clone()),
        };
        serde_json::to_string(&artifact).expect("predictor artifact serialization cannot fail")
    }

    /// Rebuild a predictor from a JSON artifact written by
    /// [`Self::to_json`]. The loaded predictor reproduces the predictions of
    /// the saved one bit for bit.
    ///
    /// Artifacts written before the sampler axis existed carry no `sampler`
    /// field; they load as [`SamplerKind::Dense`], which is exactly the
    /// sampler they were serving with. An *unknown* sampler name, by
    /// contrast, is a hard load error — silently falling back could serve a
    /// different accuracy/latency trade-off than the artifact's author
    /// chose.
    pub fn from_json(json: &str) -> Result<Self, PredictorError> {
        // Parse to the raw value tree first so the missing-field default can
        // be injected without weakening any other field's presence check.
        let mut value: serde::Value = serde_json::from_str(json)?;
        if let serde::Value::Map(entries) = &mut value {
            if !entries.iter().any(|(key, _)| key == "sampler") {
                entries.push((
                    "sampler".to_string(),
                    serde::Value::Str("Dense".to_string()),
                ));
            }
        }
        let artifact = PredictorArtifact::from_value(&value).map_err(serde_json::Error::from)?;
        if artifact.format_version != FORMAT_VERSION {
            return Err(PredictorError::UnsupportedVersion(artifact.format_version));
        }
        // Cross-field consistency: a schema-valid artifact must not be able
        // to panic at predict time (errors-not-panics contract).
        if artifact.use_topic && artifact.intent.is_none() {
            return Err(PredictorError::Inconsistent(
                "topic-aware artifact is missing its table intent estimator",
            ));
        }
        let expected_groups = FeatureGroup::ALL.len() + usize::from(artifact.use_topic);
        if artifact.group_widths.len() != expected_groups {
            return Err(PredictorError::Inconsistent(
                "group_widths count does not match the feature groups of the model",
            ));
        }
        if artifact.scalers.len() != artifact.group_widths.len() {
            return Err(PredictorError::Inconsistent(
                "scaler count does not match the input group count",
            ));
        }
        let columnwise = FrozenColumnwise::from_state(
            &artifact.config,
            artifact.use_topic,
            artifact.intent,
            artifact.scalers,
            artifact.group_widths,
            &artifact.net,
            &artifact.head,
            artifact.sampler,
        )?;
        // `from_parts` computes the content hash over the canonical binary
        // form, so a JSON-loaded predictor hashes identically to the same
        // artifact loaded from its `SATOART1` file.
        Ok(SatoPredictor::from_parts(
            artifact.variant,
            artifact.config,
            columnwise,
            artifact.crf,
        ))
    }

    /// Write the JSON artifact to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), PredictorError> {
        std::fs::write(path, self.to_json())?;
        Ok(())
    }

    /// Load a predictor from a JSON artifact file.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, PredictorError> {
        let json = std::fs::read_to_string(path)?;
        Self::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SatoModel;
    use sato_tabular::corpus::default_corpus;

    /// Compile-time proof that the frozen artifact is shareable across
    /// threads; this is part of the public API contract.
    const _: fn() = || {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SatoPredictor>();
    };

    fn tiny_config() -> SatoConfig {
        let mut config = SatoConfig::fast();
        config.network.epochs = 6;
        config.lda.train_iterations = 20;
        config.crf.epochs = 3;
        config
    }

    #[test]
    fn frozen_predictor_matches_source_model() {
        let corpus = default_corpus(40, 3);
        let model = SatoModel::train(&corpus, tiny_config(), SatoVariant::Full);
        let by_snapshot = model.predictor();
        let model_preds: Vec<_> = corpus.iter().take(8).map(|t| model.predict(t)).collect();
        let by_move = model.into_predictor();
        for (i, table) in corpus.iter().take(8).enumerate() {
            assert_eq!(by_snapshot.predict(table), model_preds[i]);
            assert_eq!(by_move.predict(table), model_preds[i]);
            assert_eq!(
                by_snapshot.predict_proba(table),
                by_move.predict_proba(table)
            );
        }
        assert_eq!(by_move.variant(), SatoVariant::Full);
        assert!(by_move.crf().is_some());
        assert!(by_move.uses_topic());
    }

    #[test]
    fn json_round_trip_is_bit_identical() {
        let corpus = default_corpus(35, 5);
        let predictor =
            SatoModel::train(&corpus, tiny_config(), SatoVariant::SatoNoTopic).into_predictor();
        let loaded = SatoPredictor::from_json(&predictor.to_json()).unwrap();
        for table in corpus.iter().take(10) {
            assert_eq!(predictor.predict_proba(table), loaded.predict_proba(table));
            assert_eq!(predictor.predict(table), loaded.predict(table));
        }
        assert_eq!(loaded.variant(), SatoVariant::SatoNoTopic);
    }

    #[test]
    fn corrupted_artifacts_are_rejected() {
        assert!(matches!(
            SatoPredictor::from_json("not json at all"),
            Err(PredictorError::Json(_))
        ));
        assert!(matches!(
            SatoPredictor::from_json("{\"format_version\": 1}"),
            Err(PredictorError::Json(_))
        ));
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let corpus = default_corpus(30, 6);
        let predictor =
            SatoModel::train(&corpus, tiny_config(), SatoVariant::Base).into_predictor();
        let json =
            predictor
                .to_json()
                .replacen("\"format_version\":1", "\"format_version\":999", 1);
        assert!(matches!(
            SatoPredictor::from_json(&json),
            Err(PredictorError::UnsupportedVersion(999))
        ));
    }

    #[test]
    fn inconsistent_artifacts_are_rejected_not_panicking() {
        let corpus = default_corpus(30, 6);
        let predictor =
            SatoModel::train(&corpus, tiny_config(), SatoVariant::Base).into_predictor();
        // A schema-valid artifact claiming to be topic-aware but carrying no
        // intent estimator must fail at load time, not panic at predict time.
        let json = predictor
            .to_json()
            .replacen("\"use_topic\":false", "\"use_topic\":true", 1);
        assert!(matches!(
            SatoPredictor::from_json(&json),
            Err(PredictorError::Inconsistent(_))
        ));
    }

    #[test]
    fn batched_prediction_matches_sequential_exactly() {
        // All four variants, several micro-batch widths including the
        // degenerate ones (1 column per batch, whole corpus in one batch).
        let corpus = default_corpus(25, 9);
        let total_cols: usize = corpus.iter().map(|t| t.num_columns()).sum();
        for variant in SatoVariant::ALL {
            let predictor = SatoModel::train(&corpus, tiny_config(), variant).into_predictor();
            let sequential = predictor.predict_corpus(&corpus);
            for batch_cols in [1, 3, 16, total_cols, total_cols + 100] {
                let batched = predictor.predict_corpus_batched(&corpus, batch_cols);
                assert_eq!(
                    sequential,
                    batched,
                    "variant {} batch_cols {batch_cols}",
                    variant.name()
                );
            }
            // Batching composes with thread sharding.
            assert_eq!(
                sequential,
                predictor.predict_corpus_parallel_batched(&corpus, 8, 3),
                "variant {} parallel batched",
                variant.name()
            );
        }
    }

    #[test]
    fn batched_prediction_handles_degenerate_corpora() {
        use sato_tabular::table::{Column, Table};
        let corpus = default_corpus(20, 12);
        let predictor =
            SatoModel::train(&corpus, tiny_config(), SatoVariant::Full).into_predictor();
        // Zero-column and single-column tables mixed between normal ones,
        // plus an unlabelled table (empty-gold convention).
        let ragged = Corpus::new(vec![
            Table::unlabelled(900, vec![]),
            corpus.tables[0].clone(),
            Table::unlabelled(901, vec![Column::new(["Warsaw", "London"])]),
            Table::unlabelled(902, vec![]),
            corpus.tables[1].clone(),
        ]);
        let sequential = predictor.predict_corpus(&ragged);
        // One warm caller-owned scratch across every batch width.
        let mut scratch = ServingScratch::new();
        for batch_cols in [1, 2, 1000] {
            assert_eq!(
                sequential,
                predictor.predict_corpus_batched(&ragged, batch_cols),
                "batch_cols {batch_cols}"
            );
            assert_eq!(
                sequential,
                predictor.predict_corpus_batched_with(&ragged, batch_cols, &mut scratch),
                "warm-scratch batch_cols {batch_cols}"
            );
        }
        assert!(sequential[0].predicted.is_empty());
        assert!(sequential[0].gold.is_empty());
        // An entirely empty corpus also works.
        let empty = Corpus::new(vec![]);
        assert!(predictor.predict_corpus_batched(&empty, 8).is_empty());
    }

    #[test]
    fn batched_embeddings_match_per_table_path_bit_for_bit() {
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        let corpus = default_corpus(20, 9);
        let predictor =
            SatoModel::train(&corpus, tiny_config(), SatoVariant::Full).into_predictor();
        assert_eq!(predictor.embedding_dim(), tiny_config().network.hidden_dim);
        let mut scratch = ServingScratch::new();
        // Per-table into-path parity, twice (cold buffers, then warm).
        for pass in 0..2 {
            for table in corpus.iter().take(8) {
                let reference = predictor.column_embeddings(table);
                let into = predictor.column_embeddings_into(table, &mut scratch);
                assert_eq!(into.rows(), reference.len());
                assert_eq!(into.cols(), predictor.embedding_dim());
                for (r, want) in reference.iter().enumerate() {
                    assert_eq!(
                        bits(into.row(r)),
                        bits(want),
                        "pass {pass} table {} row {r}",
                        table.id
                    );
                }
            }
        }
        // Corpus streaming in micro-batches: identical rows in identical
        // (table, column) order at every batch width, ragged shapes
        // included.
        let ragged = {
            use sato_tabular::table::{Column, Table};
            let mut tables = vec![
                Table::unlabelled(900, vec![]),
                Table::unlabelled(901, vec![Column::new(["Warsaw", "London"])]),
            ];
            tables.extend(corpus.tables.iter().cloned());
            Corpus::new(tables)
        };
        let reference: Vec<(u64, u32, Vec<f32>)> = ragged
            .iter()
            .flat_map(|t| {
                predictor
                    .column_embeddings(t)
                    .into_iter()
                    .enumerate()
                    .map(|(c, e)| (t.id, c as u32, e))
                    .collect::<Vec<_>>()
            })
            .collect();
        for batch_cols in [1, 7, 64, 100_000] {
            let mut streamed = Vec::new();
            predictor.embed_corpus_batched_with(&ragged, batch_cols, &mut scratch, |id, c, row| {
                streamed.push((id, c, row.to_vec()));
            });
            assert_eq!(streamed.len(), reference.len(), "batch_cols {batch_cols}");
            for (got, want) in streamed.iter().zip(&reference) {
                assert_eq!(
                    (got.0, got.1),
                    (want.0, want.1),
                    "batch_cols {batch_cols} column identity"
                );
                assert_eq!(bits(&got.2), bits(&want.2), "batch_cols {batch_cols}");
            }
        }
        // An empty batch yields a 0-row matrix (and stays well-defined).
        let none: [&Table; 0] = [];
        assert_eq!(predictor.embed_batch(&none, &mut scratch).rows(), 0);
    }

    #[test]
    fn topic_memo_preserves_batched_parity_across_repeated_serves() {
        let corpus = default_corpus(20, 8);
        let predictor =
            SatoModel::train(&corpus, tiny_config(), SatoVariant::Full).into_predictor();
        let sequential = predictor.predict_corpus(&corpus);
        let mut scratch = ServingScratch::new().with_topic_memo();
        assert_eq!(scratch.topic_memo_len(), 0);
        assert_eq!(
            scratch.topic_memo_capacity(),
            crate::columnwise::DEFAULT_TOPIC_MEMO_CAPACITY
        );
        // First serve fills the memo, later serves hit it — output must stay
        // bit-identical to the per-table path every time.
        for pass in 0..3 {
            assert_eq!(
                sequential,
                predictor.predict_corpus_batched_with(&corpus, 64, &mut scratch),
                "memoised serve diverged on pass {pass}"
            );
        }
        assert_eq!(scratch.topic_memo_len(), corpus.len());
    }

    /// The topic memo is bounded: with capacity `c`, serving any number of
    /// distinct table ids keeps at most `c` entries (oldest-inserted ids
    /// evicted first), and eviction never affects correctness — an evicted
    /// table is simply re-estimated on its next serve.
    #[test]
    fn topic_memo_capacity_bounds_growth_and_evicts_oldest() {
        let corpus = default_corpus(12, 8);
        let predictor =
            SatoModel::train(&corpus, tiny_config(), SatoVariant::Full).into_predictor();
        let sequential = predictor.predict_corpus(&corpus);
        let mut scratch = ServingScratch::new().with_topic_memo_capacity(3);
        assert_eq!(scratch.topic_memo_capacity(), 3);
        for pass in 0..3 {
            assert_eq!(
                sequential,
                predictor.predict_corpus_batched_with(&corpus, 64, &mut scratch),
                "bounded-memo serve diverged on pass {pass}"
            );
            assert_eq!(
                scratch.topic_memo_len(),
                3,
                "memo exceeded its capacity on pass {pass}"
            );
        }
        // Capacity clamps to at least one entry.
        let mut tiny = ServingScratch::new().with_topic_memo_capacity(0);
        assert_eq!(tiny.topic_memo_capacity(), 1);
        assert_eq!(
            sequential,
            predictor.predict_corpus_batched_with(&corpus, 64, &mut tiny)
        );
        assert_eq!(tiny.topic_memo_len(), 1);
    }

    /// Satellite: the content hash is a stable identity — freezing, the
    /// JSON round trip and the binary round trip all agree — and it tracks
    /// the artifact's content (a different sampler, or differently-trained
    /// weights, hash differently).
    #[test]
    fn content_hash_is_consistent_across_load_paths_and_tracks_content() {
        let corpus = default_corpus(30, 6);
        let predictor =
            SatoModel::train(&corpus, tiny_config(), SatoVariant::Full).into_predictor();
        let frozen_hash = predictor.content_hash();
        let json_loaded = SatoPredictor::from_json(&predictor.to_json()).unwrap();
        let binary_loaded = SatoPredictor::from_bytes(&predictor.to_bytes()).unwrap();
        assert_eq!(frozen_hash, json_loaded.content_hash());
        assert_eq!(frozen_hash, binary_loaded.content_hash());
        // The meta snapshot carries the same identity.
        let meta = predictor.artifact_meta();
        assert_eq!(meta.content_hash, frozen_hash);
        assert_eq!(meta.variant, SatoVariant::Full);
        assert_eq!(meta.sampler, sato_topic::SamplerKind::Dense);
        assert!(meta.uses_topic);
        assert!(meta.has_crf);
        assert_eq!(meta, binary_loaded.artifact_meta());
        // A different serving configuration is a different content identity,
        // consistently across load paths again.
        let sparse = json_loaded.with_sampler(sato_topic::SamplerKind::SparseAlias);
        assert_ne!(sparse.content_hash(), frozen_hash);
        assert_eq!(
            sparse.content_hash(),
            SatoPredictor::from_bytes(&sparse.to_bytes())
                .unwrap()
                .content_hash()
        );
        // Differently-trained weights hash differently.
        let other = SatoModel::train(&corpus, tiny_config(), SatoVariant::Base).into_predictor();
        assert_ne!(other.content_hash(), frozen_hash);
    }

    /// Satellite regression: the topic memo must not survive an artifact
    /// swap. One warm scratch serves predictor A (filling the memo), then
    /// serves the same table ids through predictor B — B's output must be
    /// B's fresh predictions, not A's cached topic vectors replayed into
    /// B's network.
    #[test]
    fn topic_memo_is_invalidated_across_artifact_swap() {
        let corpus = default_corpus(18, 8);
        let a = SatoModel::train(&corpus, tiny_config(), SatoVariant::Full).into_predictor();
        let b = {
            let mut config = tiny_config();
            config.seed = 777; // different weights AND a different topic model
            SatoModel::train(&corpus, config, SatoVariant::Full).into_predictor()
        };
        assert_ne!(a.content_hash(), b.content_hash());
        let mut scratch = ServingScratch::new().with_topic_memo();
        let served_a = a.predict_corpus_batched_with(&corpus, 64, &mut scratch);
        assert_eq!(served_a, a.predict_corpus(&corpus));
        assert_eq!(scratch.topic_memo_len(), corpus.len());
        // Swap: serving even one table through B must clear A's cached
        // entries first — the memo ends up holding exactly B's one entry,
        // not A's entries plus one.
        let first = Corpus::new(vec![corpus.tables[0].clone()]);
        assert_eq!(
            b.predict_corpus_batched_with(&first, 64, &mut scratch),
            b.predict_corpus(&first)
        );
        assert_eq!(
            scratch.topic_memo_len(),
            1,
            "memo entries from the old artifact survived the swap"
        );
        // The full corpus under B is B's fresh predictions, end to end.
        assert_eq!(
            b.predict_corpus_batched_with(&corpus, 64, &mut scratch),
            b.predict_corpus(&corpus)
        );
        // Swapping back re-estimates under A again (the memo was rebound).
        assert_eq!(
            a.predict_corpus_batched_with(&corpus, 64, &mut scratch),
            served_a
        );
        assert_eq!(scratch.topic_memo_len(), corpus.len());
    }

    #[test]
    fn sampler_kind_round_trips_and_defaults_to_dense() {
        use sato_topic::SamplerKind;
        let corpus = default_corpus(30, 6);
        let predictor =
            SatoModel::train(&corpus, tiny_config(), SatoVariant::Full).into_predictor();
        assert_eq!(predictor.sampler_kind(), SamplerKind::Dense);
        let sparse = predictor.with_sampler(SamplerKind::SparseAlias);
        assert_eq!(sparse.sampler_kind(), SamplerKind::SparseAlias);
        let loaded = SatoPredictor::from_json(&sparse.to_json()).unwrap();
        assert_eq!(loaded.sampler_kind(), SamplerKind::SparseAlias);
        for table in corpus.iter().take(5) {
            assert_eq!(sparse.predict(table), loaded.predict(table));
        }
    }

    #[test]
    fn parallel_prediction_matches_sequential_exactly() {
        let corpus = default_corpus(30, 7);
        let predictor =
            SatoModel::train(&corpus, tiny_config(), SatoVariant::Full).into_predictor();
        let sequential = predictor.predict_corpus(&corpus);
        for n_threads in [1, 2, 3, 8, 64] {
            let parallel = predictor.predict_corpus_parallel(&corpus, n_threads);
            assert_eq!(sequential, parallel, "n_threads={n_threads}");
        }
        // More threads than tables must also work.
        let small = sato_tabular::table::Corpus::new(corpus.tables[..2].to_vec());
        assert_eq!(
            predictor.predict_corpus(&small),
            predictor.predict_corpus_parallel(&small, 16)
        );
    }
}
