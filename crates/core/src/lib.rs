//! # sato
//!
//! A from-scratch Rust reproduction of **Sato: Contextual Semantic Type
//! Detection in Tables** (Zhang et al., VLDB 2020).
//!
//! Sato predicts the semantic type (`city`, `birthPlace`, `sales`, … — 78
//! types in total) of every column of a relational table from the cell
//! values alone. It combines three signals:
//!
//! 1. a **single-column deep model** (Sherlock-style multi-input network over
//!    Char/Word/Para/Stat features) — [`ColumnwiseModel::base`],
//! 2. **global table context** via an LDA *table intent* topic vector fed to
//!    an extra subnetwork — [`ColumnwiseModel::topic_aware`],
//! 3. **local table context** via a linear-chain CRF over the columns of a
//!    table — [`StructuredLayer`].
//!
//! The [`SatoModel`] facade trains and runs the four variants evaluated in
//! the paper (`Base`, `Sato_noStruct`, `Sato_noTopic`, full `Sato`), and
//! [`BertLikeModel`] reproduces the Section 6 "featurisation-free"
//! single-column alternative.
//!
//! ```no_run
//! use sato::{SatoConfig, SatoModel, SatoVariant};
//! use sato_tabular::corpus::default_corpus;
//! use sato_tabular::split::train_test_split;
//!
//! let corpus = default_corpus(500, 42);
//! let split = train_test_split(&corpus, 0.2, 0);
//! let mut model = SatoModel::train(&split.train, SatoConfig::default(), SatoVariant::Full);
//! for table in split.test.iter().take(3) {
//!     let types = model.predict(table);
//!     println!("table {} -> {:?}", table.id, types);
//! }
//! ```

#![warn(missing_docs)]

pub mod bert_like;
pub mod columnwise;
pub mod config;
pub mod dataset;
pub mod model;
pub mod structured;

pub use bert_like::{BertLikeConfig, BertLikeModel};
pub use columnwise::{ColumnwiseModel, ColumnwisePredictor};
pub use config::{CrfTrainParams, NetworkConfig, SatoConfig};
pub use dataset::{InputGroup, TableInputs, TrainingData};
pub use model::{SatoModel, SatoVariant, TablePrediction, TrainTimings};
pub use structured::{unary_from_proba, StructuredLayer};
