//! # sato
//!
//! A from-scratch Rust reproduction of **Sato: Contextual Semantic Type
//! Detection in Tables** (Zhang et al., VLDB 2020).
//!
//! Sato predicts the semantic type (`city`, `birthPlace`, `sales`, … — 78
//! types in total) of every column of a relational table from the cell
//! values alone. It combines three signals:
//!
//! 1. a **single-column deep model** (Sherlock-style multi-input network over
//!    Char/Word/Para/Stat features) — [`ColumnwiseModel::base`],
//! 2. **global table context** via an LDA *table intent* topic vector fed to
//!    an extra subnetwork — [`ColumnwiseModel::topic_aware`],
//! 3. **local table context** via a linear-chain CRF over the columns of a
//!    table — [`StructuredLayer`].
//!
//! The [`SatoModel`] facade trains and runs the four variants evaluated in
//! the paper (`Base`, `Sato_noStruct`, `Sato_noTopic`, full `Sato`), and
//! [`BertLikeModel`] reproduces the Section 6 "featurisation-free"
//! single-column alternative.
//!
//! ## Train → freeze → serve
//!
//! The API splits the model lifecycle in two, like the write- and
//! read-optimised sides of an HTAP store:
//!
//! * **Training** is mutable: [`SatoModel::train`] (or the
//!   [`ColumnwiseTrainer`] trait for pluggable single-column models) fits
//!   weights, optimiser state and activation caches behind `&mut self`.
//! * **Serving** is immutable: a trained model **freezes** into a
//!   [`SatoPredictor`] — via [`SatoModel::into_predictor`] (consuming,
//!   zero-copy) or [`SatoModel::predictor`] (snapshot) — whose `predict` /
//!   `predict_proba` / `column_embeddings` all take `&self`.
//!
//! `SatoPredictor` is `Send + Sync` by construction (no RNG, no caches, no
//! interior mutability), so one frozen artifact can serve any number of
//! threads concurrently ([`SatoPredictor::predict_corpus_parallel`]), and it
//! round-trips through JSON ([`SatoPredictor::to_json`] /
//! [`SatoPredictor::from_json`]) as a deployable artifact that reproduces
//! the saved predictions bit for bit.
//!
//! ```no_run
//! use sato::{SatoConfig, SatoModel, SatoPredictor, SatoVariant};
//! use sato_tabular::corpus::default_corpus;
//! use sato_tabular::split::train_test_split;
//!
//! // Train (mutable phase) ...
//! let corpus = default_corpus(500, 42);
//! let split = train_test_split(&corpus, 0.2, 0);
//! let model = SatoModel::train(&split.train, SatoConfig::default(), SatoVariant::Full);
//!
//! // ... freeze into an immutable, Send + Sync artifact ...
//! let predictor = model.into_predictor();
//! predictor.save("sato_full.json").unwrap();
//!
//! // ... and serve, sequentially or from many threads at once.
//! let served = SatoPredictor::load("sato_full.json").unwrap();
//! for table in split.test.iter().take(3) {
//!     println!("table {} -> {:?}", table.id, served.predict(table));
//! }
//! let predictions = served.predict_corpus_parallel(&split.test, 8);
//! assert_eq!(predictions, served.predict_corpus(&split.test));
//! ```

#![warn(missing_docs)]

pub mod artifact;
pub mod bert_like;
pub mod columnwise;
pub mod config;
pub mod dataset;
pub mod model;
pub mod predictor;
pub mod structured;

pub use artifact::{ARTIFACT_MAGIC, ARTIFACT_VERSION};
pub use bert_like::{BertLikeConfig, BertLikeModel};
pub use columnwise::{
    types_from_proba, ColumnwiseInference, ColumnwiseModel, ColumnwiseTrainer, FrozenColumnwise,
    ServingScratch, DEFAULT_TOPIC_MEMO_CAPACITY,
};
pub use config::{CrfTrainParams, NetworkConfig, SatoConfig};
pub use dataset::{InputGroup, TableInputs, TrainingData};
pub use model::{SatoModel, SatoVariant, TablePrediction, TrainTimings};
pub use predictor::{ArtifactMeta, PredictorError, SatoPredictor};
pub use structured::{unary_from_proba, StructuredLayer};

// The topic-sampler axis is part of the serving API surface
// ([`SatoPredictor::with_sampler`]); re-export it so serving code does not
// need a direct `sato_topic` dependency.
pub use sato_topic::{SamplerKind, TopicSampler};
