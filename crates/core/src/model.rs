//! The Sato model facade: the four evaluated variants of the paper
//! (Table 1) behind a single train/predict API.
//!
//! | Variant | Topic-aware (global context) | Structured (local context) |
//! |---|---|---|
//! | `Base` (Sherlock)      | no  | no  |
//! | `SatoNoStruct`         | yes | no  |
//! | `SatoNoTopic`          | no  | yes |
//! | `Full` (Sato)          | yes | yes |

use crate::columnwise::{ColumnwiseInference, ColumnwiseModel, ColumnwiseTrainer};
use crate::config::SatoConfig;
use crate::predictor::SatoPredictor;
use crate::structured::StructuredLayer;
use sato_tabular::table::{Corpus, Table};
use sato_tabular::types::SemanticType;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The model variants evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SatoVariant {
    /// Single-column Sherlock baseline (no table context).
    Base,
    /// Topic-aware prediction only (no CRF), `Sato_noStruct` in the paper.
    SatoNoStruct,
    /// Structured prediction on Base outputs (no topic), `Sato_noTopic`.
    SatoNoTopic,
    /// The full Sato model: topic-aware + structured prediction.
    Full,
}

impl SatoVariant {
    /// All variants, in the row order of Table 1.
    pub const ALL: [SatoVariant; 4] = [
        SatoVariant::Base,
        SatoVariant::Full,
        SatoVariant::SatoNoStruct,
        SatoVariant::SatoNoTopic,
    ];

    /// Whether the variant feeds the table topic vector to the column-wise
    /// network.
    pub fn uses_topic(self) -> bool {
        matches!(self, SatoVariant::SatoNoStruct | SatoVariant::Full)
    }

    /// Whether the variant runs CRF structured prediction.
    pub fn uses_structure(self) -> bool {
        matches!(self, SatoVariant::SatoNoTopic | SatoVariant::Full)
    }

    /// The display name used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            SatoVariant::Base => "Base",
            SatoVariant::SatoNoStruct => "Sato_noStruct",
            SatoVariant::SatoNoTopic => "Sato_noTopic",
            SatoVariant::Full => "Sato",
        }
    }
}

/// Wall-clock training cost, reported separately for the column-wise model
/// ("Features" in Table 2) and the CRF layer ("Structured").
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct TrainTimings {
    /// Seconds spent training the column-wise network (plus the LDA model
    /// for topic-aware variants).
    pub columnwise_secs: f64,
    /// Seconds spent training the CRF layer (0 for unstructured variants).
    pub crf_secs: f64,
}

/// A trained Sato model (one of the four variants).
pub struct SatoModel {
    variant: SatoVariant,
    columnwise: ColumnwiseModel,
    structured: Option<StructuredLayer>,
    timings: TrainTimings,
    config: SatoConfig,
}

/// Predictions for one table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TablePrediction {
    /// The table's id.
    pub table_id: u64,
    /// Gold labels, cloned from the table **only when it is fully labelled**
    /// (one label per column).
    ///
    /// *Empty-gold convention*: for unlabelled (or partially labelled)
    /// tables this vector is empty — it does **not** mean the table has zero
    /// columns. Consumers must treat an empty `gold` as "no ground truth
    /// available" and skip the table when computing metrics; `predicted`
    /// always has one entry per column.
    pub gold: Vec<SemanticType>,
    /// Predicted labels, parallel to the table's columns.
    pub predicted: Vec<SemanticType>,
}

/// Gold labels of a table under the empty-gold convention: a clone of the
/// labels when the table is fully labelled, and an empty vector otherwise
/// (no allocation, no clone for unlabelled tables).
pub(crate) fn gold_of(table: &Table) -> Vec<SemanticType> {
    if table.is_labelled() {
        table.labels.clone()
    } else {
        Vec::new()
    }
}

impl SatoModel {
    /// Train the requested variant on a labelled corpus.
    pub fn train(corpus: &Corpus, config: SatoConfig, variant: SatoVariant) -> Self {
        let start = Instant::now();
        let mut columnwise = if variant.uses_topic() {
            ColumnwiseModel::topic_aware(config.clone())
        } else {
            ColumnwiseModel::base(config.clone())
        };
        columnwise.fit(corpus);
        let columnwise_secs = start.elapsed().as_secs_f64();

        let (structured, crf_secs) = if variant.uses_structure() {
            let start = Instant::now();
            let layer = StructuredLayer::fit(&columnwise, corpus, &config);
            (Some(layer), start.elapsed().as_secs_f64())
        } else {
            (None, 0.0)
        };

        SatoModel {
            variant,
            columnwise,
            structured,
            timings: TrainTimings {
                columnwise_secs,
                crf_secs,
            },
            config,
        }
    }

    /// The variant this model was trained as.
    pub fn variant(&self) -> SatoVariant {
        self.variant
    }

    /// The configuration used for training.
    pub fn config(&self) -> &SatoConfig {
        &self.config
    }

    /// Wall-clock training cost breakdown (Table 2).
    pub fn timings(&self) -> TrainTimings {
        self.timings
    }

    /// Borrow the column-wise model (e.g. for column embeddings or for the
    /// permutation-importance analysis). All inference entry points take
    /// `&self`; mutable access is deliberately not exposed.
    pub fn columnwise(&self) -> &ColumnwiseModel {
        &self.columnwise
    }

    /// Borrow the CRF layer, if the variant has one.
    pub fn structured(&self) -> Option<&StructuredLayer> {
        self.structured.as_ref()
    }

    /// Per-column probability rows from the column-wise stage (before any
    /// structured decoding).
    pub fn predict_proba(&self, table: &Table) -> Vec<Vec<f32>> {
        self.columnwise.predict_proba(table)
    }

    /// Predict the semantic type of every column of a table.
    pub fn predict(&self, table: &Table) -> Vec<SemanticType> {
        match &self.structured {
            Some(layer) => {
                let proba = self.columnwise.predict_proba(table);
                layer.decode_proba(&proba)
            }
            None => self.columnwise.predict_types(table),
        }
    }

    /// Predict every table of a corpus, pairing predictions with gold labels
    /// (see [`TablePrediction::gold`] for the empty-gold convention).
    pub fn predict_corpus(&self, corpus: &Corpus) -> Vec<TablePrediction> {
        corpus
            .iter()
            .map(|table| TablePrediction {
                table_id: table.id,
                gold: gold_of(table),
                predicted: self.predict(table),
            })
            .collect()
    }

    /// Freeze this trained model into an immutable, `Send + Sync`
    /// [`SatoPredictor`] serving artifact, consuming the model (the weights
    /// are moved, not copied).
    pub fn into_predictor(self) -> SatoPredictor {
        SatoPredictor::from_parts(
            self.variant,
            self.config,
            self.columnwise.into_frozen(),
            self.structured.map(StructuredLayer::into_crf),
        )
    }

    /// Snapshot this trained model into a [`SatoPredictor`] without
    /// consuming it (weights and running statistics are copied), e.g. to
    /// keep training while a frozen snapshot serves traffic.
    pub fn predictor(&self) -> SatoPredictor {
        SatoPredictor::from_parts(
            self.variant,
            self.config.clone(),
            self.columnwise.freeze(),
            self.structured.as_ref().map(|s| s.crf().clone()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sato_tabular::corpus::default_corpus;
    use sato_tabular::split::train_test_split;

    #[test]
    fn variant_flags_match_the_paper() {
        assert!(!SatoVariant::Base.uses_topic() && !SatoVariant::Base.uses_structure());
        assert!(
            SatoVariant::SatoNoStruct.uses_topic() && !SatoVariant::SatoNoStruct.uses_structure()
        );
        assert!(
            !SatoVariant::SatoNoTopic.uses_topic() && SatoVariant::SatoNoTopic.uses_structure()
        );
        assert!(SatoVariant::Full.uses_topic() && SatoVariant::Full.uses_structure());
        assert_eq!(SatoVariant::Full.name(), "Sato");
        assert_eq!(SatoVariant::ALL.len(), 4);
    }

    #[test]
    fn base_variant_trains_and_predicts() {
        let corpus = default_corpus(50, 2);
        let split = train_test_split(&corpus, 0.2, 1);
        let model = SatoModel::train(&split.train, SatoConfig::fast(), SatoVariant::Base);
        assert_eq!(model.variant(), SatoVariant::Base);
        assert!(model.structured().is_none());
        assert!(model.timings().columnwise_secs > 0.0);
        assert_eq!(model.timings().crf_secs, 0.0);

        let preds = model.predict_corpus(&split.test);
        assert_eq!(preds.len(), split.test.len());
        for (p, t) in preds.iter().zip(split.test.iter()) {
            assert_eq!(p.predicted.len(), t.num_columns());
            assert_eq!(p.gold, t.labels);
        }
    }

    #[test]
    fn full_variant_has_structured_layer_and_crf_timing() {
        let corpus = default_corpus(40, 4);
        let model = SatoModel::train(&corpus, SatoConfig::fast(), SatoVariant::Full);
        assert!(model.structured().is_some());
        assert!(model.timings().crf_secs > 0.0);
        let table = &corpus.tables[0];
        let pred = model.predict(table);
        assert_eq!(pred.len(), table.num_columns());
    }

    #[test]
    fn structured_and_unstructured_predictions_share_columnwise_scores() {
        // For a single-column table the CRF cannot change anything: the MAP
        // label equals the column-wise argmax.
        let corpus = default_corpus(40, 6);
        let model = SatoModel::train(&corpus, SatoConfig::fast(), SatoVariant::SatoNoTopic);
        let singleton = corpus
            .iter()
            .find(|t| t.num_columns() == 1)
            .expect("corpus contains singleton tables");
        let structured = model.predict(singleton);
        let columnwise = model.columnwise().predict_types(singleton);
        assert_eq!(structured, columnwise);
    }

    #[test]
    fn unlabelled_tables_get_empty_gold_without_cloning() {
        use sato_tabular::table::{Column, Table};
        let corpus = default_corpus(40, 8);
        let model = SatoModel::train(&corpus, SatoConfig::fast(), SatoVariant::Base);
        let lake = Corpus::new(vec![
            Table::unlabelled(1, vec![Column::new(["Warsaw", "London"])]),
            corpus.tables[0].clone(),
        ]);
        let preds = model.predict_corpus(&lake);
        assert!(preds[0].gold.is_empty(), "unlabelled table: empty gold");
        assert_eq!(preds[0].predicted.len(), 1, "predictions still per-column");
        assert_eq!(preds[1].gold, corpus.tables[0].labels);
    }
}
