//! The structured prediction module (Section 3.3): a linear-chain CRF on top
//! of a column-wise predictor's scores.
//!
//! Unary potentials are the log of the column-wise model's normalised
//! prediction scores; pairwise potentials are initialised from the
//! adjacent-column co-occurrence matrix of the training corpus (Section 4.3)
//! and then trained by maximising the table-level conditional log-likelihood.

use crate::columnwise::ColumnwiseInference;
use crate::config::SatoConfig;
use sato_crf::{train_crf, CrfExample, LinearChainCrf};
use sato_tabular::cooccurrence::CooccurrenceMatrix;
use sato_tabular::table::{Corpus, Table};
use sato_tabular::types::{SemanticType, NUM_TYPES};

/// Floor applied before taking logs of prediction scores.
const PROB_FLOOR: f64 = 1e-8;

/// Convert a column-wise probability row into unary (log) potentials.
pub fn unary_from_proba(proba: &[f32]) -> Vec<f64> {
    proba
        .iter()
        .map(|&p| (f64::from(p).max(PROB_FLOOR)).ln())
        .collect()
}

/// The CRF layer of Sato, holding the trained pairwise potential matrix.
#[derive(Debug, Clone)]
pub struct StructuredLayer {
    crf: LinearChainCrf,
    /// Mean log-likelihood per CRF training epoch.
    pub training_history: Vec<f64>,
}

impl StructuredLayer {
    /// Train the CRF layer.
    ///
    /// * `predictor` provides the (already trained) column-wise scores used
    ///   as unary potentials,
    /// * `corpus` is the training corpus,
    /// * pairwise potentials start from the log adjacent-column
    ///   co-occurrence counts of that corpus.
    pub fn fit<P: ColumnwiseInference>(
        predictor: &P,
        corpus: &Corpus,
        config: &SatoConfig,
    ) -> Self {
        let cooc = CooccurrenceMatrix::adjacent_columns(corpus);
        // Scale the log-co-occurrence initialisation down so unary scores
        // dominate at the start of training (the CRF then learns how much
        // coupling to apply).
        let init: Vec<f64> = cooc.log_matrix().iter().map(|v| 0.1 * v).collect();
        let initial = LinearChainCrf::with_pairwise(NUM_TYPES, init);

        let mut examples = Vec::new();
        for table in corpus.iter() {
            if !table.is_labelled() || table.num_columns() < 2 {
                continue;
            }
            let proba = predictor.predict_proba(table);
            let unary: Vec<Vec<f64>> = proba.iter().map(|p| unary_from_proba(p)).collect();
            let labels: Vec<usize> = table.labels.iter().map(|l| l.index()).collect();
            examples.push(CrfExample { unary, labels });
        }
        let (crf, history) = train_crf(
            initial,
            &examples,
            &config.crf.to_crf_config(config.seed ^ 0xc0f),
        );
        StructuredLayer {
            crf,
            training_history: history,
        }
    }

    /// A structured layer with untrained (zero) pairwise potentials, which
    /// makes the CRF equivalent to independent per-column argmax. Useful as
    /// an explicit ablation.
    pub fn identity() -> Self {
        StructuredLayer {
            crf: LinearChainCrf::new(NUM_TYPES),
            training_history: Vec::new(),
        }
    }

    /// Wrap an already-trained CRF (e.g. one deserialized from a frozen
    /// predictor artifact). The training history is empty.
    pub fn from_crf(crf: LinearChainCrf) -> Self {
        StructuredLayer {
            crf,
            training_history: Vec::new(),
        }
    }

    /// Borrow the underlying CRF.
    pub fn crf(&self) -> &LinearChainCrf {
        &self.crf
    }

    /// Consume the layer into its underlying CRF (the only state a frozen
    /// serving artifact needs).
    pub fn into_crf(self) -> LinearChainCrf {
        self.crf
    }

    /// Joint MAP decoding of a table from column-wise probabilities.
    pub fn decode_proba(&self, proba: &[Vec<f32>]) -> Vec<SemanticType> {
        if proba.is_empty() {
            return Vec::new();
        }
        let unary: Vec<Vec<f64>> = proba.iter().map(|p| unary_from_proba(p)).collect();
        self.crf
            .viterbi(&unary)
            .into_iter()
            .map(|i| SemanticType::from_index(i).expect("state index in range"))
            .collect()
    }

    /// Joint MAP decoding of one table's row range `[start, end)` of a flat
    /// probability matrix, reusing `unary_scratch` for the log potentials —
    /// the batched-serving counterpart of [`Self::decode_proba`], bit
    /// identical to it.
    pub fn decode_rows(
        &self,
        proba: &sato_nn::Matrix,
        start: usize,
        end: usize,
        unary_scratch: &mut Vec<f64>,
    ) -> Vec<SemanticType> {
        if start == end {
            return Vec::new();
        }
        unary_scratch.clear();
        for r in start..end {
            unary_scratch.extend(
                proba
                    .row(r)
                    .iter()
                    .map(|&p| (f64::from(p).max(PROB_FLOOR)).ln()),
            );
        }
        self.crf
            .viterbi_flat(unary_scratch)
            .into_iter()
            .map(|i| SemanticType::from_index(i).expect("state index in range"))
            .collect()
    }

    /// Joint MAP decoding of a whole flat probability matrix (one table).
    pub fn decode_matrix(&self, proba: &sato_nn::Matrix) -> Vec<SemanticType> {
        self.decode_rows(proba, 0, proba.rows(), &mut Vec::new())
    }

    /// Predict the types of a table: column-wise scores followed by Viterbi.
    pub fn predict<P: ColumnwiseInference>(
        &self,
        predictor: &P,
        table: &Table,
    ) -> Vec<SemanticType> {
        let proba = predictor.predict_proba(table);
        self.decode_proba(&proba)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic fake column-wise predictor that returns pre-set
    /// probability rows, letting the tests isolate the CRF behaviour. The
    /// inference trait takes `&self`, so the advancing cursor lives in a
    /// `Cell`.
    struct FakePredictor {
        rows_per_table: Vec<Vec<Vec<f32>>>,
        cursor: std::cell::Cell<usize>,
    }

    impl FakePredictor {
        fn new(rows_per_table: Vec<Vec<Vec<f32>>>) -> Self {
            FakePredictor {
                rows_per_table,
                cursor: std::cell::Cell::new(0),
            }
        }

        fn uniform_with_peaks(peaks: &[(usize, f32)]) -> Vec<f32> {
            let mut row = vec![
                (1.0 - peaks.iter().map(|(_, p)| p).sum::<f32>()) / NUM_TYPES as f32;
                NUM_TYPES
            ];
            for &(idx, p) in peaks {
                row[idx] += p;
            }
            row
        }
    }

    impl ColumnwiseInference for FakePredictor {
        fn predict_proba(&self, table: &Table) -> Vec<Vec<f32>> {
            let cursor = self.cursor.get();
            let out = self.rows_per_table[cursor % self.rows_per_table.len()].clone();
            self.cursor.set(cursor + 1);
            assert_eq!(out.len(), table.num_columns());
            out
        }
    }

    #[test]
    fn unary_conversion_is_monotone_and_floored() {
        let u = unary_from_proba(&[0.5, 0.0, 0.25]);
        assert!(u[0] > u[2]);
        assert!(u[1].is_finite());
        assert!(u[1] <= (PROB_FLOOR).ln() + 1e-9);
    }

    #[test]
    fn identity_layer_decodes_to_argmax() {
        let layer = StructuredLayer::identity();
        let city = SemanticType::City.index();
        let country = SemanticType::Country.index();
        let proba = vec![
            FakePredictor::uniform_with_peaks(&[(city, 0.6)]),
            FakePredictor::uniform_with_peaks(&[(country, 0.6)]),
        ];
        let decoded = layer.decode_proba(&proba);
        assert_eq!(decoded, vec![SemanticType::City, SemanticType::Country]);
        assert!(layer.decode_proba(&[]).is_empty());
    }

    #[test]
    fn trained_crf_uses_cooccurrence_to_fix_ambiguous_column() {
        use sato_tabular::table::{Column, Corpus, Table};
        // Training corpus: city-state tables. The fake predictor is certain
        // about "state" columns but torn between city and birthPlace for the
        // first column.
        let city = SemanticType::City.index();
        let birth = SemanticType::BirthPlace.index();
        let state = SemanticType::State.index();

        let tables: Vec<Table> = (0..30)
            .map(|i| {
                Table::labelled(
                    i,
                    vec![Column::new(["Springfield"]), Column::new(["Illinois"])],
                    vec![SemanticType::City, SemanticType::State],
                )
            })
            .collect();
        let corpus = Corpus::new(tables);

        let ambiguous_rows = vec![
            FakePredictor::uniform_with_peaks(&[(city, 0.30), (birth, 0.32)]),
            FakePredictor::uniform_with_peaks(&[(state, 0.8)]),
        ];
        let train_pred = FakePredictor::new(vec![ambiguous_rows.clone()]);
        let mut config = SatoConfig::fast();
        config.crf.epochs = 20;
        let layer = StructuredLayer::fit(&train_pred, &corpus, &config);
        assert!(!layer.training_history.is_empty());

        // Column-wise argmax picks birthPlace (0.32 > 0.30); the CRF should
        // flip it to city because city co-occurs with the adjacent state.
        let test_pred = FakePredictor::new(vec![ambiguous_rows]);
        let table = &corpus.tables[0];
        let structured = layer.predict(&test_pred, table);
        assert_eq!(structured[0], SemanticType::City);
        assert_eq!(structured[1], SemanticType::State);
    }

    #[test]
    fn crf_training_history_is_finite() {
        use sato_tabular::corpus::default_corpus;
        let corpus = default_corpus(20, 5);
        // Predictor that always returns the gold label with high confidence
        // (uses the labels through closure state cheaply).
        struct GoldPredictor;
        impl ColumnwiseInference for GoldPredictor {
            fn predict_proba(&self, table: &Table) -> Vec<Vec<f32>> {
                table
                    .labels
                    .iter()
                    .map(|l| {
                        let mut row = vec![0.001f32; NUM_TYPES];
                        row[l.index()] = 1.0;
                        let s: f32 = row.iter().sum();
                        row.iter_mut().for_each(|x| *x /= s);
                        row
                    })
                    .collect()
            }
        }
        let layer = StructuredLayer::fit(&GoldPredictor, &corpus, &SatoConfig::fast());
        assert!(layer.training_history.iter().all(|x| x.is_finite()));
        // With near-perfect unaries the CRF must keep the gold decoding.
        let gold = GoldPredictor;
        for table in corpus.iter().filter(|t| t.is_multi_column()).take(5) {
            assert_eq!(layer.predict(&gold, table), table.labels);
        }
    }
}
