//! A "featurisation-free" single-column predictor, standing in for the BERT
//! fine-tuning experiment of Section 6.
//!
//! The paper's point in that section is architectural: a learned-
//! representation model that consumes raw column text (no hand-crafted
//! Sherlock features) can be plugged into the same single-column slot and
//! reaches accuracy comparable to Sherlock, while still losing to the
//! multi-column Sato model. Fine-tuning an actual BERT checkpoint is outside
//! the scope of an offline Rust reproduction, so this module implements the
//! closest dependency-free analogue: the raw token stream of a column is
//! encoded with hashed character n-grams (no per-group feature engineering)
//! and classified by an MLP trained end to end. Like the paper's BERT
//! baseline it implements [`ColumnwiseTrainer`] + [`ColumnwiseInference`], so
//! it can replace the Sherlock model inside Sato without touching the topic
//! or CRF modules.

use crate::columnwise::{ColumnwiseInference, ColumnwiseTrainer};
use crate::config::SatoConfig;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sato_features::hashing::{hash_token, l2_normalize, tokenize};
use sato_nn::layers::{Dense, Dropout, Layer, ReLU};
use sato_nn::loss::{softmax, softmax_cross_entropy};
use sato_nn::network::Sequential;
use sato_nn::optim::Adam;
use sato_nn::Matrix;
use sato_tabular::table::{Column, Corpus, Table};
use sato_tabular::types::NUM_TYPES;

/// Hash seed of the raw-text encoder (distinct from the Word/Para groups).
const ENCODER_SEED: u64 = 0x6265_7274;

/// Configuration of the BERT-like raw-text predictor.
#[derive(Debug, Clone)]
pub struct BertLikeConfig {
    /// Width of the hashed raw-text encoding.
    pub encoding_dim: usize,
    /// Hidden width of the classifier MLP.
    pub hidden_dim: usize,
    /// Dropout probability.
    pub dropout: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size (columns).
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Seed.
    pub seed: u64,
}

impl Default for BertLikeConfig {
    fn default() -> Self {
        BertLikeConfig {
            encoding_dim: 256,
            hidden_dim: 128,
            dropout: 0.2,
            epochs: 40,
            batch_size: 64,
            learning_rate: 1e-3,
            seed: 77,
        }
    }
}

impl BertLikeConfig {
    /// A small configuration for tests, aligned with [`SatoConfig::fast`].
    pub fn fast() -> Self {
        BertLikeConfig {
            encoding_dim: 96,
            hidden_dim: 48,
            epochs: 30,
            batch_size: 32,
            ..BertLikeConfig::default()
        }
    }

    /// Derive a BERT-like configuration from a Sato configuration so the two
    /// models train for comparable budgets in the Section 6 experiment.
    pub fn from_sato(config: &SatoConfig) -> Self {
        BertLikeConfig {
            hidden_dim: config.network.hidden_dim,
            dropout: config.network.dropout,
            epochs: config.network.epochs,
            batch_size: config.network.batch_size,
            learning_rate: config.network.learning_rate,
            seed: config.seed ^ 0xbe27,
            ..BertLikeConfig::default()
        }
    }
}

/// Encode a column's raw token stream into a fixed-width vector.
pub fn encode_column(column: &Column, dim: usize) -> Vec<f32> {
    let mut acc = vec![0.0f32; dim];
    let mut count = 0usize;
    for cell in column.iter() {
        for token in tokenize(cell) {
            let v = hash_token(&token, dim, (2, 4), ENCODER_SEED);
            for i in 0..dim {
                acc[i] += v[i];
            }
            count += 1;
        }
    }
    if count > 0 {
        l2_normalize(&mut acc);
    }
    acc
}

/// The BERT-like raw-text column classifier.
pub struct BertLikeModel {
    config: BertLikeConfig,
    net: Option<Sequential>,
    loss_history: Vec<f32>,
}

impl BertLikeModel {
    /// Create an untrained model.
    pub fn new(config: BertLikeConfig) -> Self {
        BertLikeModel {
            config,
            net: None,
            loss_history: Vec::new(),
        }
    }

    /// Mean training loss per epoch.
    pub fn loss_history(&self) -> &[f32] {
        &self.loss_history
    }

    /// Whether the model has been trained.
    pub fn is_trained(&self) -> bool {
        self.net.is_some()
    }
}

impl ColumnwiseTrainer for BertLikeModel {
    /// Train on a labelled corpus.
    fn fit(&mut self, corpus: &Corpus) -> &[f32] {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for table in corpus.iter() {
            if !table.is_labelled() {
                continue;
            }
            for (col, label) in table.columns.iter().zip(&table.labels) {
                rows.push(encode_column(col, self.config.encoding_dim));
                labels.push(label.index());
            }
        }
        assert!(!rows.is_empty(), "cannot train on an empty corpus");
        let data = Matrix::from_vec(
            rows.len(),
            self.config.encoding_dim,
            rows.into_iter().flatten().collect(),
        );

        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut net = Sequential::new()
            .push(Dense::new(
                self.config.encoding_dim,
                self.config.hidden_dim,
                &mut rng,
            ))
            .push(ReLU::new())
            .push(Dropout::new(
                self.config.dropout,
                StdRng::seed_from_u64(self.config.seed ^ 1),
            ))
            .push(Dense::new(
                self.config.hidden_dim,
                self.config.hidden_dim,
                &mut rng,
            ))
            .push(ReLU::new())
            .push(Dense::new(self.config.hidden_dim, NUM_TYPES, &mut rng));

        let mut adam = Adam::new(self.config.learning_rate, 1e-4);
        let mut indices: Vec<usize> = (0..labels.len()).collect();
        let mut shuffle_rng = StdRng::seed_from_u64(self.config.seed ^ 2);
        self.loss_history.clear();
        for _ in 0..self.config.epochs {
            indices.shuffle(&mut shuffle_rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            for chunk in indices.chunks(self.config.batch_size) {
                let x = data.select_rows(chunk);
                let y: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
                let logits = net.forward(&x, true);
                let out = softmax_cross_entropy(&logits, &y);
                net.backward(&out.grad_logits);
                adam.step(&mut net.params_mut());
                epoch_loss += out.loss;
                batches += 1;
            }
            self.loss_history.push(epoch_loss / batches.max(1) as f32);
        }
        self.net = Some(net);
        &self.loss_history
    }
}

impl ColumnwiseInference for BertLikeModel {
    fn predict_proba(&self, table: &Table) -> Vec<Vec<f32>> {
        let net = self.net.as_ref().expect("model must be trained first");
        if table.columns.is_empty() {
            return Vec::new();
        }
        let rows: Vec<Vec<f32>> = table
            .columns
            .iter()
            .map(|c| encode_column(c, self.config.encoding_dim))
            .collect();
        let x = Matrix::from_vec(
            rows.len(),
            self.config.encoding_dim,
            rows.into_iter().flatten().collect(),
        );
        let probs = softmax(&net.infer(&x));
        (0..probs.rows()).map(|r| probs.row(r).to_vec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sato_tabular::corpus::default_corpus;

    #[test]
    fn encoding_is_normalised_and_deterministic() {
        let col = Column::new(["Warsaw", "London"]);
        let a = encode_column(&col, 64);
        let b = encode_column(&col, 64);
        assert_eq!(a, b);
        let norm: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-4);
        assert!(encode_column(&Column::new([""]), 64)
            .iter()
            .all(|&x| x == 0.0));
    }

    #[test]
    fn model_trains_and_beats_chance() {
        let corpus = default_corpus(60, 8);
        let mut model = BertLikeModel::new(BertLikeConfig::fast());
        model.fit(&corpus);
        assert!(model.is_trained());
        let history = model.loss_history();
        assert!(history.last().unwrap() < history.first().unwrap());

        let mut correct = 0usize;
        let mut total = 0usize;
        for table in corpus.iter().take(20) {
            let preds = model.predict_types(table);
            correct += preds
                .iter()
                .zip(&table.labels)
                .filter(|(a, b)| a == b)
                .count();
            total += table.labels.len();
        }
        assert!(correct as f32 / total as f32 > 0.2);
    }

    #[test]
    fn probabilities_are_normalised() {
        let corpus = default_corpus(30, 9);
        let mut model = BertLikeModel::new(BertLikeConfig::fast());
        model.fit(&corpus);
        let probs = model.predict_proba(&corpus.tables[0]);
        for p in probs {
            let s: f32 = p.iter().sum();
            assert!((s - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    #[should_panic(expected = "trained")]
    fn prediction_requires_training() {
        let corpus = default_corpus(3, 1);
        let model = BertLikeModel::new(BertLikeConfig::fast());
        model.predict_proba(&corpus.tables[0]);
    }

    #[test]
    fn config_derives_from_sato_config() {
        let sato = SatoConfig::fast();
        let bert = BertLikeConfig::from_sato(&sato);
        assert_eq!(bert.epochs, sato.network.epochs);
        assert_eq!(bert.hidden_dim, sato.network.hidden_dim);
    }
}
