//! Conversion of labelled table corpora into the per-group feature matrices
//! the column-wise networks train on.
//!
//! Every *column* of every table is one training row. The rows of a table
//! share that table's topic vector (the global context of Section 3.2), and
//! the `table_of_row` index lets table-level consumers (the CRF layer,
//! permutation-importance analysis) recover which rows belong together.

use sato_features::{ColumnFeatures, FeatureExtractor, FeatureGroup, FeatureScratch};
use sato_nn::Matrix;
use sato_tabular::table::{Corpus, Table};
use sato_topic::{TableIntentEstimator, TopicSampler};

/// The input groups of the column-wise network, in branch order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputGroup {
    /// A Sherlock feature group.
    Feature(FeatureGroup),
    /// The Sato table-topic vector.
    Topic,
}

impl InputGroup {
    /// Branch order used by the column-wise networks: Char, Word, Para, Stat
    /// and (for topic-aware models) Topic last.
    pub fn order(include_topic: bool) -> Vec<InputGroup> {
        let mut order: Vec<InputGroup> = FeatureGroup::ALL
            .iter()
            .map(|g| InputGroup::Feature(*g))
            .collect();
        if include_topic {
            order.push(InputGroup::Topic);
        }
        order
    }

    /// Display name (Figure 9 labels: word/char/par/rest/topic).
    pub fn name(self) -> &'static str {
        match self {
            InputGroup::Feature(g) => g.name(),
            InputGroup::Topic => "topic",
        }
    }
}

/// The extracted inputs of a single table: per-column Sherlock features plus
/// the (optional) shared table topic vector.
#[derive(Debug, Clone)]
pub struct TableInputs {
    /// Per-column feature groups.
    pub columns: Vec<ColumnFeatures>,
    /// Shared topic vector (present for topic-aware models).
    pub topic: Option<Vec<f32>>,
}

impl TableInputs {
    /// Extract the inputs of a table (topic vector via the dense sampler).
    pub fn extract(
        table: &Table,
        extractor: &FeatureExtractor,
        intent: Option<&TableIntentEstimator>,
    ) -> Self {
        Self::extract_with(table, extractor, intent, &mut FeatureScratch::new())
    }

    /// Extract the inputs of a table, reusing a feature-extraction workspace
    /// across its columns (and, in corpus loops, across tables). The topic
    /// vector uses the dense sampler (training and analysis paths are
    /// sampler-agnostic; serving threads its configured sampler through
    /// [`Self::extract_sampled`]).
    pub fn extract_with(
        table: &Table,
        extractor: &FeatureExtractor,
        intent: Option<&TableIntentEstimator>,
        scratch: &mut FeatureScratch,
    ) -> Self {
        Self::extract_sampled_with(table, extractor, intent, &TopicSampler::Dense, scratch)
    }

    /// [`Self::extract`] with an explicit topic-sampling strategy — the
    /// serving-side entry point; with [`TopicSampler::Dense`] the output is
    /// bit-identical to [`Self::extract`].
    pub fn extract_sampled(
        table: &Table,
        extractor: &FeatureExtractor,
        intent: Option<&TableIntentEstimator>,
        sampler: &TopicSampler,
    ) -> Self {
        Self::extract_sampled_with(
            table,
            extractor,
            intent,
            sampler,
            &mut FeatureScratch::new(),
        )
    }

    /// [`Self::extract_sampled`] reusing a feature-extraction workspace.
    pub fn extract_sampled_with(
        table: &Table,
        extractor: &FeatureExtractor,
        intent: Option<&TableIntentEstimator>,
        sampler: &TopicSampler,
        scratch: &mut FeatureScratch,
    ) -> Self {
        TableInputs {
            columns: extractor.extract_table_with(table, scratch),
            topic: intent.map(|est| est.estimate_sampled(table, sampler)),
        }
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Build the per-group input matrices for these columns, in
    /// [`InputGroup::order`] order.
    pub fn to_matrices(&self, include_topic: bool) -> Vec<Matrix> {
        let rows = self.columns.len();
        let mut out = Vec::new();
        for group in FeatureGroup::ALL {
            let width = self.columns.first().map_or(0, |c| c.group(group).len());
            let mut m = Matrix::zeros(rows, width);
            for (r, col) in self.columns.iter().enumerate() {
                m.row_mut(r).copy_from_slice(col.group(group));
            }
            out.push(m);
        }
        if include_topic {
            let topic = self
                .topic
                .as_ref()
                .expect("topic vector required for a topic-aware model");
            let mut m = Matrix::zeros(rows, topic.len());
            for r in 0..rows {
                m.row_mut(r).copy_from_slice(topic);
            }
            out.push(m);
        }
        out
    }
}

/// Per-feature standardisation (zero mean, unit variance) fitted on training
/// data and re-applied at prediction time.
///
/// Sherlock standardises its features before training; without it the
/// unbounded Stat features (sales figures in the millions, ISBN-scale
/// numbers) dominate the network inputs and stall optimisation.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Standardizer {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl Standardizer {
    /// Fit a standardizer to the columns of a matrix.
    pub fn fit(data: &Matrix) -> Self {
        let rows = data.rows().max(1) as f32;
        let cols = data.cols();
        let mut mean = vec![0.0f32; cols];
        let mut std = vec![0.0f32; cols];
        for r in 0..data.rows() {
            for (c, &v) in data.row(r).iter().enumerate() {
                mean[c] += v;
            }
        }
        mean.iter_mut().for_each(|m| *m /= rows);
        for r in 0..data.rows() {
            for (c, &v) in data.row(r).iter().enumerate() {
                let d = v - mean[c];
                std[c] += d * d;
            }
        }
        for s in std.iter_mut() {
            *s = (*s / rows).sqrt();
            if *s < 1e-6 {
                *s = 1.0; // constant feature: leave it centred but unscaled
            }
        }
        Standardizer { mean, std }
    }

    /// Standardise a matrix (column count must match the fitted data).
    pub fn transform(&self, data: &Matrix) -> Matrix {
        let mut out = data.clone();
        self.transform_in_place(&mut out);
        out
    }

    /// Standardise a matrix in place — the allocation-free counterpart of
    /// [`Self::transform`], used by the batched serving path on matrices it
    /// built itself.
    pub fn transform_in_place(&self, data: &mut Matrix) {
        assert_eq!(data.cols(), self.mean.len(), "feature width mismatch");
        for r in 0..data.rows() {
            let row = data.row_mut(r);
            for (c, v) in row.iter_mut().enumerate() {
                *v = (*v - self.mean[c]) / self.std[c];
            }
        }
    }

    /// The fitted per-feature moments as `(mean, std)` slices of equal
    /// length (the feature width), in feature order — the flat buffers the
    /// binary artifact serializes directly.
    pub fn moments(&self) -> (&[f32], &[f32]) {
        (&self.mean, &self.std)
    }

    /// Rebuild a standardizer from stored moments. Returns `None` when the
    /// vectors disagree in length or any standard deviation is not a finite
    /// positive number (which would produce NaN/Inf features at transform
    /// time) — loaders turn that into an error instead of panicking later.
    pub fn from_moments(mean: Vec<f32>, std: Vec<f32>) -> Option<Self> {
        if mean.len() != std.len() {
            return None;
        }
        if mean.iter().any(|m| !m.is_finite()) {
            return None;
        }
        if std.iter().any(|s| !s.is_finite() || *s <= 0.0) {
            return None;
        }
        Some(Standardizer { mean, std })
    }

    /// Fit one standardizer per input-group matrix.
    pub fn fit_groups(groups: &[Matrix]) -> Vec<Standardizer> {
        groups.iter().map(Standardizer::fit).collect()
    }

    /// Transform each group with its own standardizer.
    pub fn transform_groups(scalers: &[Standardizer], groups: &[Matrix]) -> Vec<Matrix> {
        assert_eq!(scalers.len(), groups.len(), "one scaler per group required");
        scalers
            .iter()
            .zip(groups)
            .map(|(s, g)| s.transform(g))
            .collect()
    }
}

/// A full training set: one row per labelled column across the corpus.
#[derive(Debug, Clone)]
pub struct TrainingData {
    /// One matrix per input group (in [`InputGroup::order`] order), each with
    /// one row per column.
    pub groups: Vec<Matrix>,
    /// Class index (semantic type) of every row.
    pub labels: Vec<usize>,
    /// Index of the table every row came from.
    pub table_of_row: Vec<usize>,
    /// Whether the last group is the topic vector.
    pub has_topic: bool,
}

impl TrainingData {
    /// Build training data from a labelled corpus.
    pub fn build(
        corpus: &Corpus,
        extractor: &FeatureExtractor,
        intent: Option<&TableIntentEstimator>,
    ) -> Self {
        let include_topic = intent.is_some();
        let mut per_group_rows: Vec<Vec<f32>> = Vec::new();
        let mut widths: Vec<usize> = Vec::new();
        let mut labels = Vec::new();
        let mut table_of_row = Vec::new();

        let mut scratch = FeatureScratch::new();
        for (t_idx, table) in corpus.iter().enumerate() {
            if !table.is_labelled() {
                continue;
            }
            let inputs = TableInputs::extract_with(table, extractor, intent, &mut scratch);
            let matrices = inputs.to_matrices(include_topic);
            if widths.is_empty() {
                widths = matrices.iter().map(Matrix::cols).collect();
                per_group_rows = vec![Vec::new(); matrices.len()];
            }
            for (g, m) in matrices.iter().enumerate() {
                per_group_rows[g].extend_from_slice(m.data());
            }
            for label in &table.labels {
                labels.push(label.index());
                table_of_row.push(t_idx);
            }
        }
        let rows = labels.len();
        let groups = per_group_rows
            .into_iter()
            .zip(&widths)
            .map(|(data, &w)| Matrix::from_vec(rows, w, data))
            .collect();
        TrainingData {
            groups,
            labels,
            table_of_row,
            has_topic: include_topic,
        }
    }

    /// Number of training rows (columns).
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the training set is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Width of every input group.
    pub fn group_widths(&self) -> Vec<usize> {
        self.groups.iter().map(Matrix::cols).collect()
    }

    /// Gather a mini-batch of rows.
    pub fn batch(&self, indices: &[usize]) -> (Vec<Matrix>, Vec<usize>) {
        let groups = self.groups.iter().map(|g| g.select_rows(indices)).collect();
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        (groups, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sato_features::FeatureConfig;
    use sato_tabular::corpus::default_corpus;
    use sato_topic::LdaConfig;

    fn small_setup() -> (Corpus, FeatureExtractor, TableIntentEstimator) {
        let corpus = default_corpus(40, 3);
        let extractor = FeatureExtractor::new(FeatureConfig::small());
        let intent = TableIntentEstimator::fit(&corpus, LdaConfig::tiny());
        (corpus, extractor, intent)
    }

    #[test]
    fn input_group_order_with_and_without_topic() {
        assert_eq!(InputGroup::order(false).len(), 4);
        let with = InputGroup::order(true);
        assert_eq!(with.len(), 5);
        assert_eq!(with.last().unwrap().name(), "topic");
    }

    #[test]
    fn table_inputs_have_one_feature_set_per_column() {
        let (corpus, extractor, intent) = small_setup();
        let table = &corpus.tables[0];
        let inputs = TableInputs::extract(table, &extractor, Some(&intent));
        assert_eq!(inputs.num_columns(), table.num_columns());
        assert!(inputs.topic.is_some());
        let matrices = inputs.to_matrices(true);
        assert_eq!(matrices.len(), 5);
        assert!(matrices.iter().all(|m| m.rows() == table.num_columns()));
    }

    #[test]
    #[should_panic(expected = "topic vector required")]
    fn topic_matrices_require_topic_vector() {
        let (corpus, extractor, _) = small_setup();
        let inputs = TableInputs::extract(&corpus.tables[0], &extractor, None);
        inputs.to_matrices(true);
    }

    #[test]
    fn training_data_row_count_equals_labelled_columns() {
        let (corpus, extractor, intent) = small_setup();
        let data = TrainingData::build(&corpus, &extractor, Some(&intent));
        assert_eq!(data.len(), corpus.num_columns());
        assert_eq!(data.groups.len(), 5);
        assert!(data.has_topic);
        assert!(data.groups.iter().all(|g| g.rows() == data.len()));
        assert_eq!(data.table_of_row.len(), data.len());
    }

    #[test]
    fn training_data_without_topic_has_four_groups() {
        let (corpus, extractor, _) = small_setup();
        let data = TrainingData::build(&corpus, &extractor, None);
        assert_eq!(data.groups.len(), 4);
        assert!(!data.has_topic);
    }

    #[test]
    fn rows_of_one_table_share_their_topic_vector() {
        let (corpus, extractor, intent) = small_setup();
        let data = TrainingData::build(&corpus, &extractor, Some(&intent));
        let topic_matrix = data.groups.last().unwrap();
        // Find a table with more than one column and compare its rows.
        let mut by_table: std::collections::HashMap<usize, Vec<usize>> = Default::default();
        for (row, &t) in data.table_of_row.iter().enumerate() {
            by_table.entry(t).or_default().push(row);
        }
        let multi = by_table.values().find(|rows| rows.len() > 1).unwrap();
        let first = topic_matrix.row(multi[0]).to_vec();
        for &r in &multi[1..] {
            assert_eq!(topic_matrix.row(r), &first[..]);
        }
    }

    #[test]
    fn standardizer_centres_and_scales() {
        let data = Matrix::from_rows(&[vec![1.0, 100.0], vec![3.0, 300.0], vec![5.0, 500.0]]);
        let scaler = Standardizer::fit(&data);
        let t = scaler.transform(&data);
        for c in 0..2 {
            let mean: f32 = (0..3).map(|r| t.get(r, c)).sum::<f32>() / 3.0;
            let var: f32 = (0..3).map(|r| (t.get(r, c) - mean).powi(2)).sum::<f32>() / 3.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn standardizer_leaves_constant_features_finite() {
        let data = Matrix::from_rows(&[vec![7.0], vec![7.0]]);
        let scaler = Standardizer::fit(&data);
        let t = scaler.transform(&data);
        assert!(t.data().iter().all(|x| x.is_finite()));
        assert!(t.data().iter().all(|&x| x.abs() < 1e-5));
    }

    #[test]
    fn group_standardisation_round_trip() {
        let (corpus, extractor, _) = small_setup();
        let data = TrainingData::build(&corpus, &extractor, None);
        let scalers = Standardizer::fit_groups(&data.groups);
        let transformed = Standardizer::transform_groups(&scalers, &data.groups);
        assert_eq!(transformed.len(), data.groups.len());
        for (t, g) in transformed.iter().zip(&data.groups) {
            assert_eq!(t.shape(), g.shape());
            assert!(t.data().iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn batch_selects_requested_rows() {
        let (corpus, extractor, _) = small_setup();
        let data = TrainingData::build(&corpus, &extractor, None);
        let (groups, labels) = data.batch(&[0, 2, 5]);
        assert_eq!(labels.len(), 3);
        assert!(groups.iter().all(|g| g.rows() == 3));
        assert_eq!(labels[0], data.labels[0]);
        assert_eq!(labels[2], data.labels[5]);
        assert_eq!(groups[0].row(1), data.groups[0].row(2));
    }
}
