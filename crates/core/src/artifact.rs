//! The `SATOART1` compact binary predictor artifact.
//!
//! [`SatoPredictor::to_json`](crate::SatoPredictor::to_json) stays the
//! debug/interchange format; this module is the deployment format: the
//! already-flat buffers a predictor is made of (network weights and running
//! statistics, per-group scaler moments, the LDA topic–word counts, the CRF
//! pairwise table and — for the sparse sampler — the pre-built per-word
//! alias tables) laid out as little-endian sections behind a header, so
//! loading is section framing plus `memcpy`-shaped bulk reads instead of
//! parsing hundreds of thousands of JSON number literals.
//!
//! ## Layout
//!
//! ```text
//! header   : magic "SATOART1" (8) | version u32 | section_count u32
//! table    : section_count × { id [u8;4] | offset u64 | len u64 | checksum u64 }
//! payloads : each section's bytes, 8-byte aligned, zero-padded gaps
//! ```
//!
//! Offsets are absolute (from the start of the artifact) and every payload
//! starts on an 8-byte boundary, so a memory-mapped artifact presents its
//! `f64`/`u64` arrays aligned. `checksum` is FNV-1a 64 over the payload,
//! verified before any decoding. Unknown section ids are ignored (forward
//! compatibility within a version); *missing* required sections, short
//! buffers, bad magic, checksum mismatches and version skew all surface as
//! typed [`PredictorError`] variants — never panics.
//!
//! | id     | contents                                                      |
//! |--------|---------------------------------------------------------------|
//! | `META` | small JSON: variant, config, `use_topic`, sampler, group widths |
//! | `SCAL` | per-group standardizer moments (mean/std `f32` rows)          |
//! | `NETW` | multi-input network state dict (`StateDict` byte codec)       |
//! | `HEAD` | classification-head state dict                                |
//! | `LDAM` | LDA model (topic-aware variants only)                         |
//! | `CRFP` | CRF pairwise potentials (structured variants only)            |
//! | `ALIA` | pre-built Walker alias tables (sparse-alias sampler only)     |
//!
//! `META` nests the one irregular, schema-shaped piece (the configuration)
//! as JSON inside the binary envelope — artifacts stay self-describing
//! without a binary schema language, and the bulk numeric payloads never
//! touch a JSON tokenizer.

use crate::columnwise::FrozenColumnwise;
use crate::config::SatoConfig;
use crate::dataset::Standardizer;
use crate::model::SatoVariant;
use crate::predictor::{PredictorError, SatoPredictor};
use sato_crf::LinearChainCrf;
use sato_features::FeatureGroup;
use sato_nn::serialize::StateDict;
use sato_topic::{LdaModel, SamplerKind, SparseAliasTables, TableIntentEstimator, TopicSampler};
use serde::{Deserialize, Serialize};

/// Magic bytes opening every binary predictor artifact.
pub const ARTIFACT_MAGIC: [u8; 8] = *b"SATOART1";

/// Current binary artifact format version.
pub const ARTIFACT_VERSION: u32 = 1;

/// Bytes per section-table entry: id (4) + offset (8) + len (8) + checksum (8).
const SECTION_ENTRY_LEN: usize = 28;

/// Artifact header length: magic (8) + version (4) + section count (4).
const HEADER_LEN: usize = 16;

const SEC_META: [u8; 4] = *b"META";
const SEC_SCAL: [u8; 4] = *b"SCAL";
const SEC_NETW: [u8; 4] = *b"NETW";
const SEC_HEAD: [u8; 4] = *b"HEAD";
const SEC_LDAM: [u8; 4] = *b"LDAM";
const SEC_CRFP: [u8; 4] = *b"CRFP";
const SEC_ALIA: [u8; 4] = *b"ALIA";

/// FNV-1a 64-bit checksum — the shared kernel-layer implementation
/// (`sato_kernels::fnv1a64`, 8-byte chunked, bit-identical to the
/// byte-at-a-time definition), the same function `sato_tabular::colstore`
/// frames with. Besides the per-section checksums this is also the
/// predictor's *content hash* ([`SatoPredictor::content_hash`]): FNV-1a
/// over the whole `SATOART1` byte stream.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    sato_kernels::fnv1a64(bytes)
}

/// The JSON-shaped `META` section: everything about the predictor that is
/// schema-like rather than bulk-numeric. The numeric payloads it describes
/// live in their own binary sections.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BinaryMeta {
    variant: SatoVariant,
    config: SatoConfig,
    use_topic: bool,
    sampler: SamplerKind,
    group_widths: Vec<usize>,
}

/// Parsed section table over a borrowed artifact buffer; payload slices are
/// bounds- and checksum-verified before being handed out.
struct Sections<'a> {
    entries: Vec<([u8; 4], &'a [u8])>,
}

impl<'a> Sections<'a> {
    fn parse(bytes: &'a [u8]) -> Result<Self, PredictorError> {
        if bytes.len() < HEADER_LEN {
            return Err(PredictorError::Truncated("artifact header"));
        }
        if bytes[..8] != ARTIFACT_MAGIC {
            return Err(PredictorError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != ARTIFACT_VERSION {
            return Err(PredictorError::UnsupportedVersion(u64::from(version)));
        }
        let count = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
        let table_end = HEADER_LEN
            + count.checked_mul(SECTION_ENTRY_LEN).ok_or_else(|| {
                PredictorError::Corrupt("section count overflows the table size".to_string())
            })?;
        if bytes.len() < table_end {
            return Err(PredictorError::Truncated("section table"));
        }
        let mut entries = Vec::with_capacity(count);
        for i in 0..count {
            let at = HEADER_LEN + i * SECTION_ENTRY_LEN;
            let id: [u8; 4] = bytes[at..at + 4].try_into().expect("4 bytes");
            let offset = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().expect("8 bytes"));
            let len = u64::from_le_bytes(bytes[at + 12..at + 20].try_into().expect("8 bytes"));
            let checksum = u64::from_le_bytes(bytes[at + 20..at + 28].try_into().expect("8 bytes"));
            let start = usize::try_from(offset)
                .ok()
                .filter(|&s| s >= table_end)
                .ok_or_else(|| {
                    PredictorError::Corrupt(format!(
                        "section {} has an invalid offset",
                        section_name(id)
                    ))
                })?;
            let end = usize::try_from(len)
                .ok()
                .and_then(|l| start.checked_add(l))
                .filter(|&e| e <= bytes.len())
                .ok_or_else(|| PredictorError::Truncated(section_name(id)))?;
            let payload = &bytes[start..end];
            if fnv1a64(payload) != checksum {
                return Err(PredictorError::Checksum(section_name(id)));
            }
            entries.push((id, payload));
        }
        Ok(Sections { entries })
    }

    fn get(&self, id: [u8; 4]) -> Option<&'a [u8]> {
        self.entries
            .iter()
            .find(|(entry_id, _)| *entry_id == id)
            .map(|(_, payload)| *payload)
    }

    fn require(&self, id: [u8; 4]) -> Result<&'a [u8], PredictorError> {
        self.get(id)
            .ok_or_else(|| PredictorError::MissingSection(section_name(id)))
    }
}

/// Stable display name of a section id (known ids by name, unknown ids as
/// their best-effort ASCII).
fn section_name(id: [u8; 4]) -> &'static str {
    match id {
        SEC_META => "META",
        SEC_SCAL => "SCAL",
        SEC_NETW => "NETW",
        SEC_HEAD => "HEAD",
        SEC_LDAM => "LDAM",
        SEC_CRFP => "CRFP",
        SEC_ALIA => "ALIA",
        _ => "unknown section",
    }
}

/// Encode the per-group standardizers: `count u32`, then per scaler
/// `width u32 | mean f32×width | std f32×width`.
fn encode_scalers(scalers: &[Standardizer], out: &mut Vec<u8>) {
    out.extend_from_slice(&(scalers.len() as u32).to_le_bytes());
    for scaler in scalers {
        let (mean, std) = scaler.moments();
        out.extend_from_slice(&(mean.len() as u32).to_le_bytes());
        for &m in mean {
            out.extend_from_slice(&m.to_le_bytes());
        }
        for &s in std {
            out.extend_from_slice(&s.to_le_bytes());
        }
    }
}

fn decode_scalers(bytes: &[u8]) -> Result<Vec<Standardizer>, PredictorError> {
    let mut r = ByteReader { bytes, pos: 0 };
    let count = r.u32("scaler count")? as usize;
    let mut scalers = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let width = r.u32("scaler width")? as usize;
        let mean = r.f32_vec(width, "scaler means")?;
        let std = r.f32_vec(width, "scaler stds")?;
        scalers.push(Standardizer::from_moments(mean, std).ok_or_else(|| {
            PredictorError::Corrupt("scaler moments are inconsistent or non-finite".to_string())
        })?);
    }
    r.finish("SCAL")?;
    Ok(scalers)
}

/// Encode the CRF layer: `num_states u64`, then the row-major
/// `num_states²` pairwise potentials as `f64`s.
fn encode_crf(crf: &LinearChainCrf, out: &mut Vec<u8>) {
    out.extend_from_slice(&(crf.num_states() as u64).to_le_bytes());
    for &p in crf.pairwise() {
        out.extend_from_slice(&p.to_le_bytes());
    }
}

fn decode_crf(bytes: &[u8]) -> Result<LinearChainCrf, PredictorError> {
    let mut r = ByteReader { bytes, pos: 0 };
    let num_states = usize::try_from(r.u64("CRF state count")?)
        .ok()
        .filter(|&n| n > 0 && n <= 1 << 16)
        .ok_or_else(|| PredictorError::Corrupt("CRF state count is out of range".to_string()))?;
    let pairwise = r.f64_vec(num_states * num_states, "CRF pairwise potentials")?;
    if pairwise.iter().any(|p| !p.is_finite()) {
        return Err(PredictorError::Corrupt(
            "CRF pairwise potentials contain non-finite values".to_string(),
        ));
    }
    r.finish("CRFP")?;
    Ok(LinearChainCrf::with_pairwise(num_states, pairwise))
}

/// Little-endian cursor over one section payload — deliberately duplicated
/// per crate (see `sato_topic::serialize`); any fix here must be mirrored
/// there and in `sato_nn::serialize`.
struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], PredictorError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(PredictorError::Truncated(what))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, PredictorError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, PredictorError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    fn f32_vec(&mut self, len: usize, what: &'static str) -> Result<Vec<f32>, PredictorError> {
        let raw = self.take(
            len.checked_mul(4).ok_or(PredictorError::Truncated(what))?,
            what,
        )?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    fn f64_vec(&mut self, len: usize, what: &'static str) -> Result<Vec<f64>, PredictorError> {
        let raw = self.take(
            len.checked_mul(8).ok_or(PredictorError::Truncated(what))?,
            what,
        )?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    fn finish(&self, section: &'static str) -> Result<(), PredictorError> {
        if self.pos != self.bytes.len() {
            return Err(PredictorError::Corrupt(format!(
                "section {section} has trailing bytes"
            )));
        }
        Ok(())
    }
}

/// Assemble the framed artifact from `(id, payload)` section bodies.
fn assemble(sections: &[([u8; 4], Vec<u8>)]) -> Vec<u8> {
    let table_end = HEADER_LEN + sections.len() * SECTION_ENTRY_LEN;
    let total: usize = sections.iter().map(|(_, p)| p.len() + 7).sum();
    let mut out = Vec::with_capacity(table_end + total);
    out.extend_from_slice(&ARTIFACT_MAGIC);
    out.extend_from_slice(&ARTIFACT_VERSION.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    // Lay payloads out back to back on 8-byte boundaries.
    let mut offset = table_end;
    let mut placed = Vec::with_capacity(sections.len());
    for (id, payload) in sections {
        offset = (offset + 7) & !7;
        placed.push((*id, offset as u64, payload.len() as u64, fnv1a64(payload)));
        offset += payload.len();
    }
    for (id, off, len, sum) in &placed {
        out.extend_from_slice(id);
        out.extend_from_slice(&off.to_le_bytes());
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&sum.to_le_bytes());
    }
    for ((_, payload), (_, off, _, _)) in sections.iter().zip(&placed) {
        out.resize(*off as usize, 0); // zero padding up to the aligned offset
        out.extend_from_slice(payload);
    }
    out
}

impl SatoPredictor {
    /// Serialize the predictor into the compact `SATOART1` binary artifact
    /// (see the [module docs](self) for the layout). The binary form is the
    /// deployment format: it round-trips bit for bit with
    /// [`Self::to_json`] — [`Self::from_bytes`] reproduces the saved
    /// predictions exactly — while being several times smaller and loading
    /// via bulk little-endian reads instead of JSON parsing.
    pub fn to_bytes(&self) -> Vec<u8> {
        let columnwise = self.columnwise();
        let meta = BinaryMeta {
            variant: self.variant(),
            config: self.config().clone(),
            use_topic: columnwise.uses_topic(),
            sampler: columnwise.sampler_kind(),
            group_widths: columnwise.group_widths().to_vec(),
        };
        let mut sections: Vec<([u8; 4], Vec<u8>)> = Vec::with_capacity(7);
        sections.push((
            SEC_META,
            serde_json::to_string(&meta)
                .expect("predictor meta serialization cannot fail")
                .into_bytes(),
        ));
        let mut scal = Vec::new();
        encode_scalers(columnwise.scalers(), &mut scal);
        sections.push((SEC_SCAL, scal));
        let mut netw = Vec::new();
        columnwise.net_state().write_bytes(&mut netw);
        sections.push((SEC_NETW, netw));
        let mut head = Vec::new();
        columnwise.head_state().write_bytes(&mut head);
        sections.push((SEC_HEAD, head));
        if let Some(est) = columnwise.intent_estimator() {
            let mut ldam = Vec::new();
            est.model().write_bytes(&mut ldam);
            sections.push((SEC_LDAM, ldam));
        }
        if let Some(crf) = self.crf() {
            let mut crfp = Vec::new();
            encode_crf(crf, &mut crfp);
            sections.push((SEC_CRFP, crfp));
        }
        match columnwise.sampler() {
            TopicSampler::SparseAlias(tables) | TopicSampler::MetropolisHastings(tables) => {
                let mut alia = Vec::new();
                tables.write_bytes(&mut alia);
                sections.push((SEC_ALIA, alia));
            }
            TopicSampler::Dense => {}
        }
        assemble(&sections)
    }

    /// Rebuild a predictor from a `SATOART1` binary artifact written by
    /// [`Self::to_bytes`]. The loaded predictor reproduces the predictions
    /// of the saved one bit for bit; for sparse-alias artifacts the
    /// pre-built Walker tables load straight from their section, skipping
    /// the `O(topics × vocabulary)` rebuild.
    ///
    /// Errors are typed, never panics: truncation, bad magic, version skew,
    /// per-section checksum mismatches, missing required sections,
    /// structurally invalid payloads and cross-field inconsistencies all
    /// map to their [`PredictorError`] variant.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PredictorError> {
        let sections = Sections::parse(bytes)?;
        let meta_str = std::str::from_utf8(sections.require(SEC_META)?)
            .map_err(|_| PredictorError::Corrupt("META section is not UTF-8 JSON".to_string()))?;
        let value: serde::Value = serde_json::from_str(meta_str)?;
        let meta = BinaryMeta::from_value(&value).map_err(serde_json::Error::from)?;

        // Cross-field consistency, mirroring `from_json`: a frame-valid
        // artifact must not be able to panic at predict time.
        let expected_groups = FeatureGroup::ALL.len() + usize::from(meta.use_topic);
        if meta.group_widths.len() != expected_groups {
            return Err(PredictorError::Inconsistent(
                "group_widths count does not match the feature groups of the model",
            ));
        }
        let scalers = decode_scalers(sections.require(SEC_SCAL)?)?;
        if scalers.len() != meta.group_widths.len() {
            return Err(PredictorError::Inconsistent(
                "scaler count does not match the input group count",
            ));
        }
        let net_state = StateDict::from_bytes(sections.require(SEC_NETW)?)?;
        let head_state = StateDict::from_bytes(sections.require(SEC_HEAD)?)?;
        let intent = match sections.get(SEC_LDAM) {
            Some(payload) => Some(TableIntentEstimator::from_model(LdaModel::from_bytes(
                payload,
            )?)),
            None => None,
        };
        if meta.use_topic && intent.is_none() {
            return Err(PredictorError::MissingSection("LDAM"));
        }
        let crf = match sections.get(SEC_CRFP) {
            Some(payload) => Some(decode_crf(payload)?),
            None => None,
        };

        // Sparse-alias artifacts carry their pre-built tables; load them
        // directly instead of rebuilding. Artifacts without the section
        // (always possible: the build is deterministic) rebuild from the
        // LDA model via the ordinary freeze path.
        let prebuilt = match (meta.sampler, &intent, sections.get(SEC_ALIA)) {
            (
                kind @ (SamplerKind::SparseAlias | SamplerKind::MetropolisHastings),
                Some(est),
                Some(payload),
            ) => {
                let tables = SparseAliasTables::from_bytes(payload)?;
                if tables.num_topics() != est.num_topics()
                    || tables.vocab_size() != est.model().vocabulary().len()
                {
                    return Err(PredictorError::Corrupt(
                        "alias tables were built for a different topic model".to_string(),
                    ));
                }
                let boxed = Box::new(tables);
                Some(match kind {
                    SamplerKind::MetropolisHastings => TopicSampler::MetropolisHastings(boxed),
                    _ => TopicSampler::SparseAlias(boxed),
                })
            }
            _ => None,
        };
        let columnwise = match prebuilt {
            Some(sampler) => FrozenColumnwise::from_state_with_sampler(
                &meta.config,
                meta.use_topic,
                intent,
                scalers,
                meta.group_widths,
                &net_state,
                &head_state,
                meta.sampler,
                sampler,
            )?,
            None => FrozenColumnwise::from_state(
                &meta.config,
                meta.use_topic,
                intent,
                scalers,
                meta.group_widths,
                &net_state,
                &head_state,
                meta.sampler,
            )?,
        };
        // The content hash is taken over the exact bytes served from, not a
        // re-serialization: what was loaded is what the hash names.
        Ok(SatoPredictor::from_parts_hashed(
            meta.variant,
            meta.config,
            columnwise,
            crf,
            fnv1a64(bytes),
        ))
    }

    /// Write the binary artifact to a file (see [`Self::to_bytes`]).
    pub fn save_binary(&self, path: impl AsRef<std::path::Path>) -> Result<(), PredictorError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Load a predictor from a binary artifact file (see
    /// [`Self::from_bytes`]).
    pub fn load_binary(path: impl AsRef<std::path::Path>) -> Result<Self, PredictorError> {
        // Named injection point `core.artifact_load` (chaos builds only):
        // an armed Error presents as transient I/O, which is what the
        // serving layer's retry-with-backoff path exists for.
        #[cfg(feature = "faults")]
        if sato_faults::fire("core.artifact_load", 0) {
            return Err(PredictorError::Io(std::io::Error::other(
                "injected fault: core.artifact_load",
            )));
        }
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SatoModel;
    use sato_tabular::colstore;
    use sato_tabular::corpus::default_corpus;
    use sato_tabular::table::{Column, Corpus, Table};
    use std::sync::OnceLock;

    fn tiny_config() -> SatoConfig {
        let mut config = SatoConfig::fast();
        config.network.epochs = 6;
        config.lda.train_iterations = 20;
        config.crf.epochs = 3;
        config
    }

    fn corpus() -> Corpus {
        default_corpus(30, 3)
    }

    /// One trained Full predictor shared by every test in this module (a
    /// container-friendly fixture: training dominates test wall-clock).
    fn full_predictor() -> &'static SatoPredictor {
        static CELL: OnceLock<SatoPredictor> = OnceLock::new();
        CELL.get_or_init(|| {
            SatoModel::train(&corpus(), tiny_config(), crate::SatoVariant::Full).into_predictor()
        })
    }

    /// A fresh owned copy of the shared predictor (via the JSON codec, which
    /// is already proven bit-exact).
    fn fresh_copy() -> SatoPredictor {
        SatoPredictor::from_json(&full_predictor().to_json()).unwrap()
    }

    #[test]
    fn binary_round_trip_is_bit_identical_and_denser_than_json() {
        let predictor = full_predictor();
        let bytes = predictor.to_bytes();
        let json = predictor.to_json();
        assert!(
            bytes.len() * 2 < json.len(),
            "binary artifact ({}) not substantially smaller than JSON ({})",
            bytes.len(),
            json.len()
        );
        let loaded = SatoPredictor::from_bytes(&bytes).unwrap();
        assert_eq!(loaded.variant(), predictor.variant());
        assert_eq!(loaded.sampler_kind(), predictor.sampler_kind());
        for table in corpus().iter().take(8) {
            assert_eq!(predictor.predict_proba(table), loaded.predict_proba(table));
            assert_eq!(predictor.predict(table), loaded.predict(table));
        }
    }

    #[test]
    fn sparse_alias_artifact_loads_prebuilt_tables_and_rebuilds_without_them() {
        let sparse = fresh_copy().with_sampler(SamplerKind::SparseAlias);
        let bytes = sparse.to_bytes();
        let sections = Sections::parse(&bytes).unwrap();
        assert!(
            sections.get(SEC_ALIA).is_some(),
            "sparse-alias artifact must carry its alias tables"
        );
        let loaded = SatoPredictor::from_bytes(&bytes).unwrap();
        assert_eq!(loaded.sampler_kind(), SamplerKind::SparseAlias);
        // Stripping the ALIA section forces the deterministic rebuild path;
        // predictions must not change either way.
        let stripped_sections: Vec<([u8; 4], Vec<u8>)> = sections
            .entries
            .iter()
            .filter(|(id, _)| *id != SEC_ALIA)
            .map(|(id, payload)| (*id, payload.to_vec()))
            .collect();
        let rebuilt = SatoPredictor::from_bytes(&assemble(&stripped_sections)).unwrap();
        assert_eq!(rebuilt.sampler_kind(), SamplerKind::SparseAlias);
        for table in corpus().iter().take(6) {
            let expected = sparse.predict_proba(table);
            assert_eq!(expected, loaded.predict_proba(table));
            assert_eq!(expected, rebuilt.predict_proba(table));
        }
    }

    #[test]
    fn corrupted_binary_artifacts_are_rejected_with_typed_errors() {
        let bytes = full_predictor().to_bytes();
        // Truncation at every structurally interesting prefix.
        for cut in [0, 4, HEADER_LEN - 1, HEADER_LEN + 10, bytes.len() - 1] {
            assert!(
                matches!(
                    SatoPredictor::from_bytes(&bytes[..cut]),
                    Err(PredictorError::Truncated(_) | PredictorError::Checksum(_))
                ),
                "prefix of {cut} bytes was not rejected"
            );
        }
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            SatoPredictor::from_bytes(&bad),
            Err(PredictorError::BadMagic)
        ));
        // Unsupported version.
        let mut versioned = bytes.clone();
        versioned[8] = 99;
        assert!(matches!(
            SatoPredictor::from_bytes(&versioned),
            Err(PredictorError::UnsupportedVersion(99))
        ));
        // A flipped payload byte fails its section checksum.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xFF;
        assert!(matches!(
            SatoPredictor::from_bytes(&flipped),
            Err(PredictorError::Checksum(_))
        ));
        // A missing required section is named.
        let sections = Sections::parse(&bytes).unwrap();
        let without_net: Vec<([u8; 4], Vec<u8>)> = sections
            .entries
            .iter()
            .filter(|(id, _)| *id != SEC_NETW)
            .map(|(id, payload)| (*id, payload.to_vec()))
            .collect();
        assert!(matches!(
            SatoPredictor::from_bytes(&assemble(&without_net)),
            Err(PredictorError::MissingSection("NETW"))
        ));
    }

    #[test]
    fn colstore_serving_is_bit_identical_to_in_memory_batched() {
        let predictor = full_predictor();
        let corpus = corpus();
        let colstore_bytes = colstore::corpus_to_bytes(&corpus);
        for batch_cols in [1, 7, 64, 100_000] {
            assert_eq!(
                predictor.predict_corpus_batched(&corpus, batch_cols),
                predictor
                    .predict_colstore_bytes(&colstore_bytes, batch_cols)
                    .unwrap(),
                "batch_cols {batch_cols}"
            );
        }
        // Ragged shapes: empty tables, single columns, unlabelled tables.
        let ragged = Corpus::new(vec![
            Table::unlabelled(900, vec![]),
            corpus.tables[0].clone(),
            Table::unlabelled(901, vec![Column::new(["Warsaw", "London"])]),
            Table::unlabelled(902, vec![]),
            corpus.tables[1].clone(),
        ]);
        let ragged_bytes = colstore::corpus_to_bytes(&ragged);
        for batch_cols in [1, 2, 1000] {
            assert_eq!(
                predictor.predict_corpus_batched(&ragged, batch_cols),
                predictor
                    .predict_colstore_bytes(&ragged_bytes, batch_cols)
                    .unwrap(),
                "ragged batch_cols {batch_cols}"
            );
        }
    }

    #[test]
    fn binary_artifact_file_round_trip() {
        let predictor = full_predictor();
        let dir = std::env::temp_dir().join("sato_artifact_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("full.satoart");
        predictor.save_binary(&path).unwrap();
        let loaded = SatoPredictor::load_binary(&path).unwrap();
        let table = &corpus().tables[0];
        assert_eq!(predictor.predict(table), loaded.predict(table));
        std::fs::remove_file(&path).ok();
    }
}
