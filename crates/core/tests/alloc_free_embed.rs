//! Allocation-count regression test for the warm embedding-extraction path.
//!
//! The ANN index build feeds on `SatoPredictor::column_embeddings_into` /
//! `embed_batch`; the contract is that once a `ServingScratch` is warm,
//! extracting the embeddings of already-seen table shapes performs **zero**
//! heap allocations — features, topic estimation and the network trunk all
//! run through reused buffers, and the result matrix is borrowed, not
//! built. A counting global allocator makes that a hard assertion, and the
//! same pass re-checks bit-parity with the allocating
//! `column_embeddings` path.
//!
//! This file deliberately contains a single `#[test]`: the counter is
//! process-global, and a concurrent test would pollute the window between
//! the two counter reads (same convention as `sato-nn`'s
//! `alloc_free_infer`).

use sato::{SatoConfig, SatoModel, SatoVariant, ServingScratch};
use sato_tabular::corpus::default_corpus;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocation_count() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn warm_embedding_extraction_allocates_nothing() {
    let mut config = SatoConfig::fast();
    config.network.epochs = 5;
    config.lda.train_iterations = 15;
    config.crf.epochs = 2;
    let corpus = default_corpus(16, 21);
    let predictor = SatoModel::train(&corpus, config, SatoVariant::Full).into_predictor();

    // The allocating reference rows, captured up front.
    let reference: Vec<Vec<Vec<f32>>> = corpus
        .iter()
        .map(|t| predictor.column_embeddings(t))
        .collect();

    let mut scratch = ServingScratch::new();
    // Warm-up: two passes size every buffer (feature scratch, topic Gibbs
    // buffers, group matrices, the network ping-pong pair) for every table
    // shape in the corpus.
    for _ in 0..2 {
        for table in corpus.iter() {
            predictor.column_embeddings_into(table, &mut scratch);
        }
    }

    let before = allocation_count();
    for (table, want_rows) in corpus.iter().zip(&reference) {
        let embeddings = predictor.column_embeddings_into(table, &mut scratch);
        assert_eq!(embeddings.rows(), want_rows.len());
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "warm column_embeddings_into must not allocate (got {} allocations over {} tables)",
        after - before,
        corpus.tables.len()
    );

    // Same contract for an externally-formed micro-batch (the serve-hook
    // shape: many tables, one forward pass).
    let batch: Vec<&sato_tabular::table::Table> = corpus.tables.iter().take(6).collect();
    predictor.embed_batch(&batch, &mut scratch);
    let before = allocation_count();
    for _ in 0..5 {
        predictor.embed_batch(&batch, &mut scratch);
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "warm embed_batch must not allocate (got {} allocations over 5 batches)",
        after - before
    );

    // The warm rows are still bit-identical to the allocating path.
    for (table, want_rows) in corpus.iter().zip(&reference) {
        let embeddings = predictor.column_embeddings_into(table, &mut scratch);
        for (r, want) in want_rows.iter().enumerate() {
            assert_eq!(
                embeddings
                    .row(r)
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "table {} row {r}",
                table.id
            );
        }
    }
}
