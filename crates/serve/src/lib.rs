//! # sato-serve — the always-on annotation service
//!
//! Everything below `SatoService` in this workspace answers the question
//! "given a frozen artifact and a corpus, what are the semantic types?".
//! This crate answers the production question that follows it: keep that
//! artifact resident and hot, accept annotation requests from many
//! concurrent clients, and serve them at high throughput *without* giving
//! up the batching efficiency that [`SatoPredictor::predict_corpus_batched`]
//! gets from amortising one forward pass over many columns.
//!
//! ```text
//!            submit() / submit_corpus() / submit_colstore_bytes()
//!  clients ──────────────────────────────┐
//!                                        ▼
//!                       ┌──────────────────────────────┐
//!                       │  bounded queue (queue_depth) │──▶ Overloaded
//!                       └──────────────┬───────────────┘    (admission)
//!                                      ▼
//!                       ┌──────────────────────────────┐
//!                       │  batcher: expire deadlines,  │──▶ Expired
//!                       │  coalesce columns across     │    (pre-batch)
//!                       │  requests until batch_cols   │
//!                       └──────────────┬───────────────┘
//!                                      ▼
//!                       ┌──────────────────────────────┐
//!                       │  Arc<SatoPredictor> (pinned  │◀── swap_predictor
//!                       │  per round; hot-swappable)   │    load_artifact
//!                       └──────────────┬───────────────┘
//!                                      ▼
//!                       ┌──────────────────────────────┐
//!                       │  splitter: predictions back  │
//!                       │  per request, hash-tagged    │
//!                       └──────────────┬───────────────┘
//!  clients ◀───────────────────────────┘
//!            AnnotationResponse { predictions, artifact_hash, latency }
//! ```
//!
//! ## Guarantees
//!
//! - **Bit-identical serving.** Every evaluation stage of the frozen
//!   network is row-independent, so coalescing columns from *different*
//!   requests into one shared micro-batch produces exactly the bytes that
//!   [`SatoPredictor::predict_corpus_batched`] would produce for each
//!   request alone (on the artifact that served it). The integration
//!   proptest suite (`service_serving.rs`) checks this across all model
//!   variants, both topic samplers, arbitrary request interleavings and
//!   mid-stream hot-swaps.
//! - **Admission control.** The queue is bounded; beyond
//!   [`ServiceConfig::queue_depth`] pending requests, submissions fail fast
//!   with [`ServeError::Overloaded`] instead of stretching tail latency.
//! - **Deadlines cost nothing.** An expired request is dropped at batch
//!   formation — before feature extraction or any forward pass — and
//!   answered with [`ServeError::Expired`].
//! - **Zero-downtime hot-swap.** [`SatoService::swap_predictor`] (or
//!   [`SatoService::load_artifact`] from a `SATOART1` file) atomically
//!   replaces the serving artifact under a pointer-sized critical section.
//!   Rounds already formed drain on the artifact they started with; every
//!   response is tagged with the content hash of the artifact that actually
//!   served it, so clients can attribute every prediction to an exact
//!   model version.
//! - **Validated swaps roll back.** [`SatoService::load_artifact`] retries
//!   transient I/O with backoff, then smoke-predicts a canary table on the
//!   candidate before the pointer swap. A truncated, corrupt or
//!   panic-at-first-predict artifact is rejected with
//!   [`ServeError::Swap`] — counted in [`ServiceStats::swap_rollbacks`] —
//!   and the incumbent keeps serving as if nothing happened.
//! - **Index-on-annotate (opt-in).** With
//!   [`ServiceConfig::index_on_annotate`] set, every annotated column's
//!   embedding is also inserted — keyed `(table_id, col_idx)`, idempotent,
//!   no second forward pass — into an in-process ANN index
//!   ([`sato_index::HnswIndex`]), so the lake becomes searchable
//!   ([`SatoService::search_index`]) as a side effect of being annotated.
//!   The index is keyed to the artifact that embedded its vectors:
//!   hot-swaps invalidate it cleanly, and a `SATOIDX1` sidecar only loads
//!   ([`SatoService::load_index`]) next to the artifact it was built from —
//!   anything else rolls back with the incumbent index untouched
//!   ([`ServiceStats::index_rollbacks`]). Indexing failures never fail
//!   annotation.
//! - **Failure is per-request, never per-service.** The batcher runs under
//!   a supervisor: every round is panic-contained, a panicking round is
//!   bisected to quarantine the single poison-pill request (answered
//!   [`ServeError::Poisoned`], counted in [`ServiceStats::quarantined`])
//!   while the innocent requests are re-served bit-identically, and a
//!   worker that dies anyway is restarted with capped exponential backoff
//!   ([`ServiceStats::worker_restarts`]). All locks recover from
//!   poisoning, so `submit`/`stats`/`shutdown` keep working across worker
//!   crashes; a liveness heartbeat ([`ServiceStats::heartbeat_age_us`])
//!   makes a stalled worker observable. Deterministic fault injection for
//!   all of this lives behind the `faults` feature (see the `sato-faults`
//!   crate and the README fault-injection cookbook).
//!
//! ## Example
//!
//! ```no_run
//! use sato_serve::{SatoService, ServiceConfig, RequestOptions};
//! # fn demo(predictor: sato::SatoPredictor, table: sato_tabular::table::Table) {
//! let service = SatoService::start(predictor, ServiceConfig::default());
//! let handle = service.submit_table(table, RequestOptions::default()).unwrap();
//! let response = handle.wait().unwrap();
//! println!("served by artifact {:016x}", response.artifact_hash);
//! let stats = service.shutdown();
//! println!("p99 latency: {:.0} µs", stats.p99_us());
//! # }
//! ```
//!
//! [`SatoPredictor`]: sato::SatoPredictor
//! [`SatoPredictor::predict_corpus_batched`]: sato::SatoPredictor::predict_corpus_batched

#![warn(missing_docs)]

pub mod service;
pub mod stats;

pub use service::{
    AnnotationResponse, RequestOptions, ResponseHandle, SatoService, ServeError, ServiceConfig,
    MAX_CONSECUTIVE_RESTARTS, SWAP_LOAD_ATTEMPTS,
};
pub use stats::{LatencySnapshot, ServiceStats, FILL_BUCKETS, LATENCY_BUCKETS};

// Re-exported so service clients can configure and query the
// annotate-time index without naming `sato-index` themselves.
pub use sato_index::{ColumnRef, HnswConfig, IndexError, Neighbor};
