//! The always-on annotation service: a bounded submission queue, a batcher
//! worker coalescing columns across requests, and an atomically swappable
//! serving artifact.
//!
//! ```text
//!  clients ──▶ submit() ──▶ [bounded queue] ──▶ batcher ──▶ predictor ──▶ splitter ──▶ responses
//!                │                │                │            ▲
//!             Overloaded       deadline        micro-batch   Arc swap
//!             (admission)      (expiry)        (batch_cols)  (hot-swap)
//! ```
//!
//! See the [crate docs](crate) for the architecture and guarantees.

use crate::stats::{ServiceStats, StatsCell};
use sato::{ArtifactMeta, PredictorError, SatoPredictor, ServingScratch, TablePrediction};
use sato_tabular::colstore::{self, ColStoreError};
use sato_tabular::table::{Corpus, Table};
use std::collections::VecDeque;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs of a [`SatoService`]. The defaults are a reasonable
/// starting point for a single-worker, CPU-bound deployment; the
/// `service_load` bench sweeps them.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Target columns per shared micro-batch: the batcher keeps pulling
    /// queued requests until at least this many columns are pending (a
    /// batch can overshoot when a wide table lands on the boundary, and
    /// undershoots rather than waits when the queue runs dry — latency is
    /// never traded for fill when there is nothing else to coalesce).
    pub batch_cols: usize,
    /// Admission bound: submissions beyond this many queued requests are
    /// rejected with [`ServeError::Overloaded`] instead of growing the
    /// queue (and its tail latency) without limit.
    pub queue_depth: usize,
    /// Deadline applied to requests that do not carry their own. `None`
    /// means no deadline: requests wait as long as the queue takes.
    pub default_deadline: Option<Duration>,
    /// Capacity of the worker's per-table topic memo (0 disables it). Only
    /// enable when table ids uniquely identify table content — the memo is
    /// keyed by id within an artifact (it is invalidated across hot-swaps
    /// automatically).
    pub topic_memo_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            batch_cols: 64,
            queue_depth: 256,
            default_deadline: None,
            topic_memo_capacity: 0,
        }
    }
}

/// Per-request submission options.
#[derive(Debug, Clone, Copy, Default)]
pub struct RequestOptions {
    /// Deadline for *this* request, overriding
    /// [`ServiceConfig::default_deadline`]. A request whose deadline passes
    /// while it is still queued is dropped **at batch formation** — before
    /// any feature extraction or network work is spent on it — and answered
    /// with [`ServeError::Expired`].
    pub deadline: Option<Duration>,
}

/// Everything that can go wrong between submitting a request and receiving
/// its response.
#[derive(Debug)]
pub enum ServeError {
    /// Admission control: the queue was at [`ServiceConfig::queue_depth`]
    /// when the request arrived. `queued` is the depth observed.
    Overloaded {
        /// Requests queued at the moment of rejection.
        queued: usize,
    },
    /// The service is shutting down and no longer admits requests.
    ShuttingDown,
    /// The request's deadline passed before its batch was formed.
    Expired,
    /// The service stopped before answering (worker gone).
    Stopped,
    /// A colstore submission failed to decode.
    Corpus(ColStoreError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { queued } => {
                write!(f, "service overloaded: {queued} requests queued")
            }
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::Expired => write!(f, "request deadline expired before batching"),
            ServeError::Stopped => write!(f, "service stopped before responding"),
            ServeError::Corpus(e) => write!(f, "colstore submission: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ColStoreError> for ServeError {
    fn from(e: ColStoreError) -> Self {
        ServeError::Corpus(e)
    }
}

/// A completed annotation: one [`TablePrediction`] per submitted table, in
/// submission order, tagged with the identity of the artifact that served
/// it.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotationResponse {
    /// One prediction per submitted table, in order — bit-identical to
    /// running [`SatoPredictor::predict_corpus_batched`] over the request's
    /// tables on the tagged artifact.
    pub predictions: Vec<TablePrediction>,
    /// [`SatoPredictor::content_hash`] of the artifact that served this
    /// request (a whole request is always served by exactly one artifact,
    /// even when its tables span several micro-batches).
    pub artifact_hash: u64,
    /// Submission-to-response wall-clock time.
    pub latency: Duration,
}

/// The client's end of a pending request.
pub struct ResponseHandle {
    rx: mpsc::Receiver<Result<AnnotationResponse, ServeError>>,
}

impl ResponseHandle {
    /// Block until the response arrives (or the service stops).
    pub fn wait(self) -> Result<AnnotationResponse, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Stopped))
    }

    /// Block for at most `timeout`; `None` means still pending.
    pub fn wait_timeout(
        &self,
        timeout: Duration,
    ) -> Option<Result<AnnotationResponse, ServeError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => Some(result),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(ServeError::Stopped)),
        }
    }
}

/// One queued annotation request.
struct QueuedRequest {
    tables: Vec<Table>,
    cols: usize,
    deadline: Option<Instant>,
    enqueued: Instant,
    tx: mpsc::Sender<Result<AnnotationResponse, ServeError>>,
}

/// Queue state behind the mutex (counters live lock-free in [`StatsCell`]).
struct QueueState {
    deque: VecDeque<QueuedRequest>,
    /// `false` once shutdown begins: no further admissions; the worker
    /// drains what is queued, answers it, and exits.
    open: bool,
    /// While `true` the worker forms no batches (queued requests wait).
    /// Maintenance/testing seam; cleared by shutdown so a paused service
    /// still drains.
    paused: bool,
}

/// State shared between the service handle, its clients and the worker.
struct Shared {
    queue: Mutex<QueueState>,
    cond: Condvar,
    /// The serving artifact. Hot-swap is an atomic pointer swap under this
    /// mutex (held only to clone/replace the `Arc`, never during
    /// inference); the worker re-reads it at every batch-formation round,
    /// so in-flight rounds drain on the artifact they started with.
    predictor: Mutex<Arc<SatoPredictor>>,
    stats: StatsCell,
    config: ServiceConfig,
}

/// A long-running, in-process annotation service over a frozen
/// [`SatoPredictor`]: many concurrent clients submit tables, corpora or
/// colstore streams; a single batcher worker coalesces columns from
/// *different* requests into shared micro-batches, runs one forward pass
/// per batch, and splits the probability rows back per request.
///
/// See the [crate docs](crate) for the full architecture, and
/// [`ServiceConfig`] for the admission/batching/deadline knobs.
pub struct SatoService {
    shared: Arc<Shared>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl SatoService {
    /// Start the service over `predictor`, spawning the batcher worker.
    pub fn start(predictor: SatoPredictor, config: ServiceConfig) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                deque: VecDeque::new(),
                open: true,
                paused: false,
            }),
            cond: Condvar::new(),
            predictor: Mutex::new(Arc::new(predictor)),
            stats: StatsCell::new(),
            config,
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("sato-serve-batcher".to_string())
            .spawn(move || worker_loop(worker_shared))
            .expect("spawn sato-serve batcher thread");
        SatoService {
            shared,
            worker: Some(worker),
        }
    }

    /// Submit a multi-table request. Admission is checked under the queue
    /// lock: beyond [`ServiceConfig::queue_depth`] pending requests the
    /// submission is rejected with [`ServeError::Overloaded`] (counted in
    /// [`ServiceStats::rejected`]) instead of queuing.
    pub fn submit(
        &self,
        tables: Vec<Table>,
        options: RequestOptions,
    ) -> Result<ResponseHandle, ServeError> {
        let deadline = options.deadline.or(self.shared.config.default_deadline);
        let now = Instant::now();
        let cols = tables.iter().map(|t| t.num_columns()).sum();
        let (tx, rx) = mpsc::channel();
        {
            let mut q = self.shared.queue.lock().unwrap();
            if !q.open {
                return Err(ServeError::ShuttingDown);
            }
            if q.deque.len() >= self.shared.config.queue_depth {
                self.shared.stats.rejected.fetch_add(1, Relaxed);
                return Err(ServeError::Overloaded {
                    queued: q.deque.len(),
                });
            }
            q.deque.push_back(QueuedRequest {
                tables,
                cols,
                deadline: deadline.map(|d| now + d),
                enqueued: now,
                tx,
            });
            self.shared.stats.admitted.fetch_add(1, Relaxed);
        }
        self.shared.cond.notify_all();
        Ok(ResponseHandle { rx })
    }

    /// Submit a single table.
    pub fn submit_table(
        &self,
        table: Table,
        options: RequestOptions,
    ) -> Result<ResponseHandle, ServeError> {
        self.submit(vec![table], options)
    }

    /// Submit every table of a corpus as one request (the response's
    /// predictions are in corpus order).
    pub fn submit_corpus(
        &self,
        corpus: Corpus,
        options: RequestOptions,
    ) -> Result<ResponseHandle, ServeError> {
        self.submit(corpus.tables, options)
    }

    /// Submit a `SATOCOL1` colstore byte stream: frames are decoded at
    /// submission time (the ingest path parses, the batcher only batches)
    /// and served like any other multi-table request.
    pub fn submit_colstore_bytes(
        &self,
        bytes: &[u8],
        options: RequestOptions,
    ) -> Result<ResponseHandle, ServeError> {
        let corpus = colstore::corpus_from_bytes(bytes)?;
        self.submit(corpus.tables, options)
    }

    /// Blocking convenience: submit and wait.
    pub fn annotate(&self, tables: Vec<Table>) -> Result<AnnotationResponse, ServeError> {
        self.submit(tables, RequestOptions::default())?.wait()
    }

    /// Blocking convenience: submit one table and wait.
    pub fn annotate_table(&self, table: Table) -> Result<AnnotationResponse, ServeError> {
        self.annotate(vec![table])
    }

    /// **Zero-downtime hot-swap**: atomically replace the serving artifact.
    /// The swap is an `Arc` pointer swap — no queued request is dropped, no
    /// client blocks, and any batch-formation round already holding the old
    /// artifact drains on it (its responses stay tagged with the old
    /// content hash). Requests batched after the swap serve on — and are
    /// tagged with — the new artifact.
    pub fn swap_predictor(&self, predictor: SatoPredictor) -> ArtifactMeta {
        let meta = predictor.artifact_meta();
        *self.shared.predictor.lock().unwrap() = Arc::new(predictor);
        self.shared.stats.swaps.fetch_add(1, Relaxed);
        meta
    }

    /// Hot-swap from a `SATOART1` binary artifact file: load, verify
    /// (checksums, consistency — a corrupt file never reaches serving) and
    /// [`Self::swap_predictor`]. Returns the new artifact's identity.
    pub fn load_artifact(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<ArtifactMeta, PredictorError> {
        let predictor = SatoPredictor::load_binary(path)?;
        Ok(self.swap_predictor(predictor))
    }

    /// Identity of the artifact currently serving new rounds.
    pub fn artifact_meta(&self) -> ArtifactMeta {
        self.shared.predictor.lock().unwrap().artifact_meta()
    }

    /// Requests currently queued.
    pub fn queue_len(&self) -> usize {
        self.shared.queue.lock().unwrap().deque.len()
    }

    /// Point-in-time counter snapshot (see [`ServiceStats`]).
    pub fn stats(&self) -> ServiceStats {
        let queue_len = self.queue_len();
        let stats = &self.shared.stats;
        ServiceStats {
            admitted: stats.admitted.load(Relaxed),
            rejected: stats.rejected.load(Relaxed),
            expired: stats.expired.load(Relaxed),
            completed: stats.completed.load(Relaxed),
            swaps: stats.swaps.load(Relaxed),
            batches: stats.batches.load(Relaxed),
            batched_columns: stats.batched_columns.load(Relaxed),
            queue_len,
            artifact: self.artifact_meta(),
            batch_fill_deciles: std::array::from_fn(|i| stats.fill[i].load(Relaxed)),
            latency: stats.latency.snapshot(),
        }
    }

    /// Stop forming batches; submissions still queue (up to the admission
    /// bound) and deadlines keep ticking. A maintenance/testing seam —
    /// shutdown un-pauses so a paused service still drains.
    pub fn pause(&self) {
        self.shared.queue.lock().unwrap().paused = true;
        self.shared.cond.notify_all();
    }

    /// Resume batch formation after [`Self::pause`].
    pub fn resume(&self) {
        self.shared.queue.lock().unwrap().paused = false;
        self.shared.cond.notify_all();
    }

    /// Graceful shutdown: stop admitting, drain and answer everything
    /// queued, join the worker, and return the final counter snapshot.
    pub fn shutdown(mut self) -> ServiceStats {
        self.begin_shutdown();
        if let Some(worker) = self.worker.take() {
            worker.join().expect("sato-serve batcher panicked");
        }
        self.stats()
    }

    fn begin_shutdown(&self) {
        let mut q = self.shared.queue.lock().unwrap();
        q.open = false;
        q.paused = false;
        drop(q);
        self.shared.cond.notify_all();
    }
}

impl Drop for SatoService {
    fn drop(&mut self) {
        self.begin_shutdown();
        if let Some(worker) = self.worker.take() {
            worker.join().expect("sato-serve batcher panicked");
        }
    }
}

/// The batcher worker: wait for work, form a round, expire what is past
/// deadline, pin the serving artifact, serve the round in shared
/// micro-batches, answer each request.
fn worker_loop(shared: Arc<Shared>) {
    let mut scratch = if shared.config.topic_memo_capacity > 0 {
        ServingScratch::new().with_topic_memo_capacity(shared.config.topic_memo_capacity)
    } else {
        ServingScratch::new()
    };
    let target = shared.config.batch_cols.max(1);
    loop {
        // Round formation: pull queued requests until the target column
        // count is pending (or the queue runs dry — a lone request is
        // served immediately rather than waiting for fill).
        let round: Vec<QueuedRequest> = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if !q.open && q.deque.is_empty() {
                    return; // drained; exit
                }
                if !q.deque.is_empty() && (!q.paused || !q.open) {
                    break;
                }
                q = shared.cond.wait(q).unwrap();
            }
            let mut round = Vec::new();
            let mut cols = 0usize;
            while let Some(front) = q.deque.front() {
                if !round.is_empty() && cols >= target {
                    break;
                }
                cols += front.cols;
                round.push(q.deque.pop_front().expect("front exists"));
            }
            round
        };

        // Deadlines are enforced here — *before* the batch is formed — so an
        // expired request costs neither feature extraction nor a forward
        // pass, and never displaces live work from the batch.
        let now = Instant::now();
        let mut live = Vec::with_capacity(round.len());
        for req in round {
            if req.deadline.is_some_and(|d| now >= d) {
                shared.stats.expired.fetch_add(1, Relaxed);
                let _ = req.tx.send(Err(ServeError::Expired));
            } else {
                live.push(req);
            }
        }
        if live.is_empty() {
            continue;
        }

        // Pin the serving artifact for this round: every table of every
        // request in the round — even one spanning several micro-batches —
        // is served by this one predictor, so a response is never a
        // mixed-artifact patchwork across a concurrent hot-swap.
        let predictor: Arc<SatoPredictor> = shared.predictor.lock().unwrap().clone();
        serve_round(&shared, &predictor, &mut scratch, live, target);
    }
}

/// Serve one round: coalesce the requests' tables into micro-batches of at
/// least `target` columns (same accumulate-until rule as
/// `predict_corpus_batched`, so outputs are bit-identical to it), run each
/// batch in one forward pass, split predictions back per request, respond.
fn serve_round(
    shared: &Shared,
    predictor: &SatoPredictor,
    scratch: &mut ServingScratch,
    live: Vec<QueuedRequest>,
    target: usize,
) {
    let mut outputs: Vec<Vec<TablePrediction>> = live
        .iter()
        .map(|r| Vec::with_capacity(r.tables.len()))
        .collect();
    let mut batch: Vec<(usize, usize)> = Vec::new(); // (request idx, table idx)
    let mut pending = 0usize;
    for (r, req) in live.iter().enumerate() {
        for t in 0..req.tables.len() {
            batch.push((r, t));
            pending += req.tables[t].num_columns();
            if pending >= target {
                run_batch(
                    shared,
                    predictor,
                    scratch,
                    &mut batch,
                    &live,
                    &mut outputs,
                    pending,
                    target,
                );
                pending = 0;
            }
        }
    }
    run_batch(
        shared,
        predictor,
        scratch,
        &mut batch,
        &live,
        &mut outputs,
        pending,
        target,
    );

    let hash = predictor.content_hash();
    for (req, predictions) in live.into_iter().zip(outputs) {
        let latency = req.enqueued.elapsed();
        shared
            .stats
            .latency
            .record(latency.as_micros().min(u128::from(u64::MAX)) as u64);
        shared.stats.completed.fetch_add(1, Relaxed);
        let _ = req.tx.send(Ok(AnnotationResponse {
            predictions,
            artifact_hash: hash,
            latency,
        }));
    }
}

/// Run one shared micro-batch (single forward pass) and distribute its
/// per-table predictions back to their requests.
#[allow(clippy::too_many_arguments)]
fn run_batch(
    shared: &Shared,
    predictor: &SatoPredictor,
    scratch: &mut ServingScratch,
    batch: &mut Vec<(usize, usize)>,
    live: &[QueuedRequest],
    outputs: &mut [Vec<TablePrediction>],
    cols: usize,
    target: usize,
) {
    if batch.is_empty() {
        return;
    }
    let refs: Vec<&Table> = batch.iter().map(|&(r, t)| &live[r].tables[t]).collect();
    let predictions = predictor.predict_batch(&refs, scratch);
    shared.stats.record_batch(cols, target);
    for (&(r, _), prediction) in batch.iter().zip(predictions) {
        outputs[r].push(prediction);
    }
    batch.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use sato::{SatoConfig, SatoModel, SatoVariant};
    use sato_tabular::corpus::default_corpus;
    use std::sync::OnceLock;

    fn tiny_config() -> SatoConfig {
        let mut config = SatoConfig::fast();
        config.network.epochs = 4;
        config
    }

    /// Two distinct trained Base-variant predictors (no LDA/CRF training
    /// cost), shared across tests. Base keeps these unit tests fast; the
    /// full variant × sampler × hot-swap matrix lives in the integration
    /// proptest suite.
    fn predictors() -> &'static (SatoPredictor, SatoPredictor) {
        static PREDICTORS: OnceLock<(SatoPredictor, SatoPredictor)> = OnceLock::new();
        PREDICTORS.get_or_init(|| {
            let a = SatoModel::train(&default_corpus(20, 7), tiny_config(), SatoVariant::Base)
                .into_predictor();
            let b = SatoModel::train(&default_corpus(20, 8), tiny_config(), SatoVariant::Base)
                .into_predictor();
            assert_ne!(a.content_hash(), b.content_hash());
            (a, b)
        })
    }

    /// A predictor is immutable and not `Clone`; round-trip its canonical
    /// bytes to hand an owned copy to a service.
    fn copy_of(p: &SatoPredictor) -> SatoPredictor {
        SatoPredictor::from_bytes(&p.to_bytes()).unwrap()
    }

    /// Sequential single-table reference prediction.
    fn reference_one(p: &SatoPredictor, table: &Table) -> TablePrediction {
        p.predict_corpus(&Corpus::new(vec![table.clone()]))
            .pop()
            .unwrap()
    }

    #[test]
    fn coalesced_serving_is_bit_identical_to_batched_reference() {
        let (a, _) = predictors();
        let corpus = default_corpus(6, 42);
        let config = ServiceConfig {
            batch_cols: 5,
            ..ServiceConfig::default()
        };
        let reference = a.predict_corpus_batched(&corpus, config.batch_cols);
        let service = SatoService::start(copy_of(a), config);
        // Several concurrent requests over slices of the corpus: coalesced
        // micro-batches must reproduce the per-table reference exactly.
        let handles: Vec<ResponseHandle> = corpus
            .tables
            .iter()
            .map(|t| {
                service
                    .submit_table(t.clone(), RequestOptions::default())
                    .unwrap()
            })
            .collect();
        let mut served = Vec::new();
        for handle in handles {
            let response = handle.wait().unwrap();
            assert_eq!(response.artifact_hash, a.content_hash());
            assert_eq!(response.predictions.len(), 1);
            served.extend(response.predictions);
        }
        assert_eq!(reference, served);
        // A zero-table request is answered (empty), not wedged.
        let empty = service.annotate(Vec::new()).unwrap();
        assert!(empty.predictions.is_empty());
        let stats = service.shutdown();
        assert_eq!(stats.admitted, corpus.tables.len() as u64 + 1);
        assert_eq!(stats.completed, stats.admitted);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.expired, 0);
        assert!(stats.batches >= 1);
        assert_eq!(stats.latency.count(), stats.completed);
    }

    #[test]
    fn admission_control_rejects_beyond_queue_depth() {
        let (a, _) = predictors();
        let corpus = default_corpus(5, 9);
        let service = SatoService::start(
            copy_of(a),
            ServiceConfig {
                queue_depth: 3,
                ..ServiceConfig::default()
            },
        );
        service.pause(); // deterministic: nothing drains while we overfill
        let mut handles = Vec::new();
        for table in corpus.tables.iter().take(3).cloned() {
            handles.push(
                service
                    .submit_table(table, RequestOptions::default())
                    .unwrap(),
            );
        }
        let overflow = service.submit_table(corpus.tables[3].clone(), RequestOptions::default());
        assert!(matches!(
            overflow,
            Err(ServeError::Overloaded { queued: 3 })
        ));
        service.resume();
        for handle in handles {
            assert!(handle.wait().is_ok());
        }
        let stats = service.shutdown();
        assert_eq!(stats.admitted, 3);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.completed, 3);
    }

    #[test]
    fn expired_deadlines_are_dropped_before_batching() {
        let (a, _) = predictors();
        let corpus = default_corpus(3, 11);
        let service = SatoService::start(copy_of(a), ServiceConfig::default());
        service.pause();
        let doomed = service
            .submit_table(
                corpus.tables[0].clone(),
                RequestOptions {
                    deadline: Some(Duration::ZERO),
                },
            )
            .unwrap();
        let alive = service
            .submit_table(
                corpus.tables[1].clone(),
                RequestOptions {
                    deadline: Some(Duration::from_secs(600)),
                },
            )
            .unwrap();
        service.resume();
        assert!(matches!(doomed.wait(), Err(ServeError::Expired)));
        assert!(alive.wait().is_ok());
        let stats = service.shutdown();
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn hot_swap_tags_responses_with_serving_artifact() {
        let (a, b) = predictors();
        let corpus = default_corpus(4, 13);
        let service = SatoService::start(copy_of(a), ServiceConfig::default());
        assert_eq!(service.artifact_meta(), a.artifact_meta());
        let before = service.annotate_table(corpus.tables[0].clone()).unwrap();
        assert_eq!(before.artifact_hash, a.content_hash());

        let meta = service.swap_predictor(copy_of(b));
        assert_eq!(meta, b.artifact_meta());
        assert_eq!(service.artifact_meta(), b.artifact_meta());
        let after = service.annotate_table(corpus.tables[1].clone()).unwrap();
        assert_eq!(after.artifact_hash, b.content_hash());
        // Responses match each serving artifact's own sequential reference.
        assert_eq!(before.predictions[0], reference_one(a, &corpus.tables[0]));
        assert_eq!(after.predictions[0], reference_one(b, &corpus.tables[1]));

        let stats = service.shutdown();
        assert_eq!(stats.swaps, 1);
        assert_eq!(stats.artifact.content_hash, b.content_hash());
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        let (a, _) = predictors();
        let corpus = default_corpus(3, 17);
        let service = SatoService::start(copy_of(a), ServiceConfig::default());
        service.pause();
        let queued = service
            .submit_table(corpus.tables[0].clone(), RequestOptions::default())
            .unwrap();
        // shutdown() un-pauses, drains the queue, then joins the worker.
        let stats = service.shutdown();
        assert!(queued.wait().is_ok());
        assert_eq!(stats.completed, 1);
    }
}
