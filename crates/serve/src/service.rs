//! The always-on annotation service: a bounded submission queue, a
//! supervised batcher worker coalescing columns across requests, and an
//! atomically swappable, canary-validated serving artifact.
//!
//! ```text
//!  clients ──▶ submit() ──▶ [bounded queue] ──▶ batcher ──▶ predictor ──▶ splitter ──▶ responses
//!                │                │                │            ▲
//!             Overloaded       deadline        micro-batch   Arc swap
//!             (admission)      (expiry)        (batch_cols)  (validated)
//!                                                  │
//!                                             supervisor
//!                                      (catch_unwind / quarantine /
//!                                       restart with backoff)
//! ```
//!
//! See the [crate docs](crate) for the architecture and guarantees.

use crate::stats::{ServiceStats, StatsCell};
use sato::{ArtifactMeta, PredictorError, SatoPredictor, ServingScratch, TablePrediction};
use sato_index::{ColumnRef, HnswConfig, HnswIndex, IndexError, Neighbor};
use sato_tabular::colstore::{self, ColStoreError};
use sato_tabular::table::{Column, Corpus, Table};
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// How often the idle/paused worker wakes to refresh its liveness
/// heartbeat (busy workers beat once per round on top of this).
const HEARTBEAT_TICK: Duration = Duration::from_millis(100);

/// First supervisor restart delay; doubles per consecutive no-progress
/// crash up to [`RESTART_BACKOFF_MAX`].
const RESTART_BACKOFF: Duration = Duration::from_millis(1);

/// Ceiling of the supervisor's exponential restart backoff.
const RESTART_BACKOFF_MAX: Duration = Duration::from_millis(64);

/// Consecutive worker crashes with no completed round in between before
/// the supervisor stops restarting and fail-stops the service: queued
/// requests are answered [`ServeError::Stopped`], new submissions get
/// [`ServeError::ShuttingDown`]. A crash loop that makes no progress is a
/// systemic fault (not a poison pill — those are quarantined inside one
/// worker lifetime) and restarting forever would just burn CPU.
pub const MAX_CONSECUTIVE_RESTARTS: u32 = 8;

/// Artifact-load attempts per [`SatoService::load_artifact`] call:
/// transient I/O errors are retried with doubling backoff this many times
/// before the swap is abandoned and rolled back.
pub const SWAP_LOAD_ATTEMPTS: u32 = 4;

/// First retry delay of [`SatoService::load_artifact`]; doubles per
/// attempt up to [`SWAP_RETRY_BACKOFF_MAX`].
const SWAP_RETRY_BACKOFF: Duration = Duration::from_millis(2);

/// Ceiling of the artifact-load retry backoff.
const SWAP_RETRY_BACKOFF_MAX: Duration = Duration::from_millis(50);

/// Lock a mutex, recovering the guard if a previous holder panicked. All
/// service state guarded by mutexes (queue, predictor `Arc`) is kept
/// consistent *before* any panic can fire — the panic-prone work (feature
/// extraction, inference) runs with no lock held — so a poisoned lock
/// carries no torn data and clients must keep working after a worker
/// crash rather than cascading the panic forever.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Microseconds elapsed since `since`, saturating into `u64`.
fn elapsed_us(since: Instant) -> u64 {
    since.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
}

/// Tuning knobs of a [`SatoService`]. The defaults are a reasonable
/// starting point for a single-worker, CPU-bound deployment; the
/// `service_load` bench sweeps them.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Target columns per shared micro-batch: the batcher keeps pulling
    /// queued requests until at least this many columns are pending (a
    /// batch can overshoot when a wide table lands on the boundary, and
    /// undershoots rather than waits when the queue runs dry — latency is
    /// never traded for fill when there is nothing else to coalesce).
    pub batch_cols: usize,
    /// Admission bound: submissions beyond this many queued requests are
    /// rejected with [`ServeError::Overloaded`] instead of growing the
    /// queue (and its tail latency) without limit.
    pub queue_depth: usize,
    /// Deadline applied to requests that do not carry their own. `None`
    /// means no deadline: requests wait as long as the queue takes.
    pub default_deadline: Option<Duration>,
    /// Capacity of the worker's per-table topic memo (0 disables it). Only
    /// enable when table ids uniquely identify table content — the memo is
    /// keyed by id within an artifact (it is invalidated across hot-swaps
    /// automatically).
    pub topic_memo_capacity: usize,
    /// Opt-in **index-on-annotate**: when set, every column served by the
    /// batcher also has its embedding inserted into a shared in-process
    /// [`HnswIndex`] (built with this configuration), keyed by
    /// `(table_id, col_idx)` — so a data lake becomes ANN-searchable as a
    /// side effect of being annotated. The index is keyed to the artifact
    /// that embedded its vectors and is invalidated by hot-swaps; inserts
    /// are idempotent, so re-submitted tables (including quarantine
    /// re-serves) never duplicate nodes. `None` (the default) disables
    /// indexing entirely — the serving hot path is untouched.
    pub index_on_annotate: Option<HnswConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            batch_cols: 64,
            queue_depth: 256,
            default_deadline: None,
            topic_memo_capacity: 0,
            index_on_annotate: None,
        }
    }
}

/// Per-request submission options.
#[derive(Debug, Clone, Copy, Default)]
pub struct RequestOptions {
    /// Deadline for *this* request, overriding
    /// [`ServiceConfig::default_deadline`]. A request whose deadline passes
    /// while it is still queued is dropped **at batch formation** — before
    /// any feature extraction or network work is spent on it — and answered
    /// with [`ServeError::Expired`].
    pub deadline: Option<Duration>,
}

/// Everything that can go wrong between submitting a request and receiving
/// its response.
#[derive(Debug)]
pub enum ServeError {
    /// Admission control: the queue was at [`ServiceConfig::queue_depth`]
    /// when the request arrived. `queued` is the depth observed.
    Overloaded {
        /// Requests queued at the moment of rejection.
        queued: usize,
    },
    /// The service is shutting down and no longer admits requests.
    ShuttingDown,
    /// The request's deadline passed before its batch was formed.
    Expired,
    /// The service stopped before answering (worker gone).
    Stopped,
    /// A colstore submission failed to decode.
    Corpus(ColStoreError),
    /// Quarantine verdict: serving panicked on every round containing this
    /// request and on the request alone, so bisection isolated it as the
    /// culprit. Only the poisoned request sees this error — every other
    /// request of the panicking round was re-served normally.
    Poisoned,
    /// A hot-swap was rejected and rolled back: the candidate artifact
    /// could not be loaded (after transient-I/O retries) or failed canary
    /// validation. The incumbent artifact is still serving, untouched.
    Swap(PredictorError),
    /// An index operation failed. For [`SatoService::load_index`] this is a
    /// rejected-and-rolled-back sidecar (unreadable, corrupt, or keyed to a
    /// different artifact than the one serving) — the incumbent index, if
    /// any, is untouched.
    Index(IndexError),
    /// The annotate-time ANN index is not available: indexing is disabled
    /// ([`ServiceConfig::index_on_annotate`] is `None`), nothing has been
    /// annotated yet, or a hot-swap invalidated the index and no round has
    /// rebuilt it since.
    IndexUnavailable,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { queued } => {
                write!(f, "service overloaded: {queued} requests queued")
            }
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::Expired => write!(f, "request deadline expired before batching"),
            ServeError::Stopped => write!(f, "service stopped before responding"),
            ServeError::Corpus(e) => write!(f, "colstore submission: {e}"),
            ServeError::Poisoned => {
                write!(f, "request quarantined: serving it panics the predictor")
            }
            ServeError::Swap(e) => write!(f, "hot-swap rolled back: {e}"),
            ServeError::Index(e) => write!(f, "index operation failed: {e}"),
            ServeError::IndexUnavailable => {
                write!(
                    f,
                    "annotate-time index unavailable (disabled, empty or invalidated)"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ColStoreError> for ServeError {
    fn from(e: ColStoreError) -> Self {
        ServeError::Corpus(e)
    }
}

/// A completed annotation: one [`TablePrediction`] per submitted table, in
/// submission order, tagged with the identity of the artifact that served
/// it.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotationResponse {
    /// One prediction per submitted table, in order — bit-identical to
    /// running [`SatoPredictor::predict_corpus_batched`] over the request's
    /// tables on the tagged artifact.
    pub predictions: Vec<TablePrediction>,
    /// [`SatoPredictor::content_hash`] of the artifact that served this
    /// request (a whole request is always served by exactly one artifact,
    /// even when its tables span several micro-batches).
    pub artifact_hash: u64,
    /// Submission-to-response wall-clock time.
    pub latency: Duration,
}

/// The client's end of a pending request.
///
/// A handle yields **exactly one terminal result**. After
/// [`wait_timeout`](Self::wait_timeout) has returned `Some(..)` once —
/// or the service stopped and dropped its sender — every further call
/// returns `Some(Err(ServeError::Stopped))` immediately instead of
/// leaving pollers on `None` forever.
pub struct ResponseHandle {
    rx: mpsc::Receiver<Result<AnnotationResponse, ServeError>>,
    /// Set once a terminal result (response or disconnect) has been
    /// observed; later polls short-circuit to `Stopped`.
    terminal: Cell<bool>,
}

impl ResponseHandle {
    fn new(rx: mpsc::Receiver<Result<AnnotationResponse, ServeError>>) -> Self {
        ResponseHandle {
            rx,
            terminal: Cell::new(false),
        }
    }

    /// Block until the response arrives (or the service stops).
    pub fn wait(self) -> Result<AnnotationResponse, ServeError> {
        if self.terminal.get() {
            return Err(ServeError::Stopped);
        }
        self.rx.recv().unwrap_or(Err(ServeError::Stopped))
    }

    /// Block for at most `timeout`; `None` means still pending. Once a
    /// result has been yielded (or the service stopped), every subsequent
    /// call returns `Some(Err(ServeError::Stopped))` — a poller never
    /// spins on `None` against a dead service.
    pub fn wait_timeout(
        &self,
        timeout: Duration,
    ) -> Option<Result<AnnotationResponse, ServeError>> {
        if self.terminal.get() {
            return Some(Err(ServeError::Stopped));
        }
        match self.rx.recv_timeout(timeout) {
            Ok(result) => {
                self.terminal.set(true);
                Some(result)
            }
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                self.terminal.set(true);
                Some(Err(ServeError::Stopped))
            }
        }
    }
}

/// One queued annotation request.
struct QueuedRequest {
    tables: Vec<Table>,
    cols: usize,
    deadline: Option<Instant>,
    enqueued: Instant,
    tx: mpsc::Sender<Result<AnnotationResponse, ServeError>>,
}

/// Queue state behind the mutex (counters live lock-free in [`StatsCell`]).
struct QueueState {
    deque: VecDeque<QueuedRequest>,
    /// `false` once shutdown begins: no further admissions; the worker
    /// drains what is queued, answers it, and exits.
    open: bool,
    /// While `true` the worker forms no batches (queued requests wait).
    /// Maintenance/testing seam; cleared by shutdown so a paused service
    /// still drains.
    paused: bool,
}

/// State shared between the service handle, its clients, the worker and
/// the supervisor.
struct Shared {
    queue: Mutex<QueueState>,
    cond: Condvar,
    /// The serving artifact. Hot-swap is an atomic pointer swap under this
    /// mutex (held only to clone/replace the `Arc`, never during
    /// inference); the worker re-reads it at every batch-formation round,
    /// so in-flight rounds drain on the artifact they started with.
    predictor: Mutex<Arc<SatoPredictor>>,
    /// The annotate-time ANN index (see
    /// [`ServiceConfig::index_on_annotate`]). `None` until the first
    /// indexed round, and again after a hot-swap invalidates it. Locked
    /// only outside the unwind boundary of a round — a panicking round
    /// never touches it, so the graph can never be observed torn.
    index: Mutex<Option<HnswIndex>>,
    stats: StatsCell,
    config: ServiceConfig,
    /// Service start time: the origin of the heartbeat clock.
    started: Instant,
}

/// A long-running, in-process annotation service over a frozen
/// [`SatoPredictor`]: many concurrent clients submit tables, corpora or
/// colstore streams; a single batcher worker coalesces columns from
/// *different* requests into shared micro-batches, runs one forward pass
/// per batch, and splits the probability rows back per request.
///
/// The worker runs under a supervisor: each round is panic-contained
/// (`catch_unwind`), a panicking round is bisected to quarantine the
/// poison-pill request ([`ServeError::Poisoned`]) while every innocent
/// request is re-served bit-identically, and a worker that dies anyway is
/// restarted with capped exponential backoff. All locks recover from
/// poisoning, so clients keep submitting across worker crashes.
///
/// See the [crate docs](crate) for the full architecture, and
/// [`ServiceConfig`] for the admission/batching/deadline knobs.
pub struct SatoService {
    shared: Arc<Shared>,
    supervisor: Option<std::thread::JoinHandle<()>>,
}

impl SatoService {
    /// Start the service over `predictor`, spawning the supervisor (which
    /// spawns and babysits the batcher worker).
    pub fn start(predictor: SatoPredictor, config: ServiceConfig) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                deque: VecDeque::new(),
                open: true,
                paused: false,
            }),
            cond: Condvar::new(),
            predictor: Mutex::new(Arc::new(predictor)),
            index: Mutex::new(None),
            stats: StatsCell::new(),
            config,
            started: Instant::now(),
        });
        let supervisor_shared = Arc::clone(&shared);
        let supervisor = std::thread::Builder::new()
            .name("sato-serve-supervisor".to_string())
            .spawn(move || supervisor_loop(supervisor_shared))
            .expect("spawn sato-serve supervisor thread");
        SatoService {
            shared,
            supervisor: Some(supervisor),
        }
    }

    /// Submit a multi-table request. Admission is checked under the queue
    /// lock: beyond [`ServiceConfig::queue_depth`] pending requests the
    /// submission is rejected with [`ServeError::Overloaded`] (counted in
    /// [`ServiceStats::rejected`]) instead of queuing.
    pub fn submit(
        &self,
        tables: Vec<Table>,
        options: RequestOptions,
    ) -> Result<ResponseHandle, ServeError> {
        let deadline = options.deadline.or(self.shared.config.default_deadline);
        let now = Instant::now();
        let cols = tables.iter().map(|t| t.num_columns()).sum();
        let (tx, rx) = mpsc::channel();
        {
            let mut q = lock_recover(&self.shared.queue);
            if !q.open {
                return Err(ServeError::ShuttingDown);
            }
            if q.deque.len() >= self.shared.config.queue_depth {
                self.shared.stats.rejected.fetch_add(1, Relaxed);
                return Err(ServeError::Overloaded {
                    queued: q.deque.len(),
                });
            }
            q.deque.push_back(QueuedRequest {
                tables,
                cols,
                deadline: deadline.map(|d| now + d),
                enqueued: now,
                tx,
            });
            self.shared.stats.admitted.fetch_add(1, Relaxed);
        }
        self.shared.cond.notify_all();
        Ok(ResponseHandle::new(rx))
    }

    /// Submit a single table.
    pub fn submit_table(
        &self,
        table: Table,
        options: RequestOptions,
    ) -> Result<ResponseHandle, ServeError> {
        self.submit(vec![table], options)
    }

    /// Submit every table of a corpus as one request (the response's
    /// predictions are in corpus order).
    pub fn submit_corpus(
        &self,
        corpus: Corpus,
        options: RequestOptions,
    ) -> Result<ResponseHandle, ServeError> {
        self.submit(corpus.tables, options)
    }

    /// Submit a `SATOCOL1` colstore byte stream: frames are decoded at
    /// submission time (the ingest path parses, the batcher only batches)
    /// and served like any other multi-table request. A corrupt stream
    /// fails only this submission with [`ServeError::Corpus`]; the service
    /// is untouched.
    pub fn submit_colstore_bytes(
        &self,
        bytes: &[u8],
        options: RequestOptions,
    ) -> Result<ResponseHandle, ServeError> {
        let corpus = colstore::corpus_from_bytes(bytes)?;
        self.submit(corpus.tables, options)
    }

    /// Blocking convenience: submit and wait.
    pub fn annotate(&self, tables: Vec<Table>) -> Result<AnnotationResponse, ServeError> {
        self.submit(tables, RequestOptions::default())?.wait()
    }

    /// Blocking convenience: submit one table and wait.
    pub fn annotate_table(&self, table: Table) -> Result<AnnotationResponse, ServeError> {
        self.annotate(vec![table])
    }

    /// **Zero-downtime hot-swap**: atomically replace the serving artifact.
    /// The swap is an `Arc` pointer swap — no queued request is dropped, no
    /// client blocks, and any batch-formation round already holding the old
    /// artifact drains on it (its responses stay tagged with the old
    /// content hash). Requests batched after the swap serve on — and are
    /// tagged with — the new artifact.
    ///
    /// The predictor handed in here is swapped in as-is (the caller built
    /// it in-process, so it is already structurally valid). The file-based
    /// path, [`Self::load_artifact`], additionally canary-validates the
    /// candidate and rolls back on any failure.
    pub fn swap_predictor(&self, predictor: SatoPredictor) -> ArtifactMeta {
        let meta = predictor.artifact_meta();
        let hash = predictor.content_hash();
        *lock_recover(&self.shared.predictor) = Arc::new(predictor);
        self.shared.stats.swaps.fetch_add(1, Relaxed);
        // The annotate-time index is keyed to the artifact that embedded
        // its vectors: embeddings across artifacts are not comparable, so a
        // swap to a different artifact invalidates the index outright (it
        // rebuilds from subsequent annotated traffic, or via
        // [`Self::load_index`] from a sidecar of the new artifact).
        let mut index = lock_recover(&self.shared.index);
        if index.as_ref().is_some_and(|i| i.artifact_hash() != hash) {
            *index = None;
        }
        meta
    }

    /// **Validated hot-swap** from a `SATOART1` binary artifact file.
    ///
    /// The swap only happens after the candidate has fully proven itself;
    /// on any failure the incumbent artifact keeps serving, untouched, and
    /// the attempt is counted in [`ServiceStats::swap_rollbacks`]:
    ///
    /// 1. **Load with retry**: transient I/O errors (file mid-write, a
    ///    flaky network mount) are retried up to [`SWAP_LOAD_ATTEMPTS`]
    ///    times with doubling backoff. Structural corruption (bad magic,
    ///    checksum mismatch, truncation) is rejected immediately — it will
    ///    not heal by waiting.
    /// 2. **Canary validation**: the candidate smoke-predicts a small
    ///    fixed table inside `catch_unwind`; a panic, a wrong output
    ///    shape or a non-finite probability rejects the swap.
    /// 3. Only then the `Arc` swap of [`Self::swap_predictor`] runs — so a
    ///    client can never observe a half-swapped or invalid artifact.
    pub fn load_artifact(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<ArtifactMeta, ServeError> {
        let path = path.as_ref();
        let mut backoff = SWAP_RETRY_BACKOFF;
        let mut attempt = 1u32;
        let candidate = loop {
            match SatoPredictor::load_binary(path) {
                Ok(candidate) => break candidate,
                Err(PredictorError::Io(_)) if attempt < SWAP_LOAD_ATTEMPTS => {
                    attempt += 1;
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(SWAP_RETRY_BACKOFF_MAX);
                }
                Err(e) => return Err(self.reject_swap(e)),
            }
        };
        if let Err(e) = validate_candidate(&candidate) {
            return Err(self.reject_swap(e));
        }
        Ok(self.swap_predictor(candidate))
    }

    /// Record a rolled-back swap attempt and build its error.
    fn reject_swap(&self, error: PredictorError) -> ServeError {
        self.shared.stats.swap_rollbacks.fetch_add(1, Relaxed);
        ServeError::Swap(error)
    }

    /// Identity of the artifact currently serving new rounds.
    pub fn artifact_meta(&self) -> ArtifactMeta {
        lock_recover(&self.shared.predictor).artifact_meta()
    }

    /// Columns currently in the annotate-time ANN index: 0 when indexing is
    /// disabled, nothing has been annotated yet, or a hot-swap invalidated
    /// the index.
    pub fn index_len(&self) -> usize {
        lock_recover(&self.shared.index)
            .as_ref()
            .map_or(0, HnswIndex::len)
    }

    /// k-nearest-neighbour search over the annotate-time index: which
    /// already-annotated columns embed closest to `query`? Returns up to
    /// `k` neighbours in ascending distance. `query` is a column embedding
    /// of the serving artifact (e.g. from
    /// [`sato::SatoPredictor::column_embeddings_into`] or a previous
    /// response's tables re-embedded client-side).
    pub fn search_index(&self, query: &[f32], k: usize) -> Result<Vec<Neighbor>, ServeError> {
        let guard = lock_recover(&self.shared.index);
        let Some(index) = guard.as_ref() else {
            return Err(ServeError::IndexUnavailable);
        };
        if query.len() != index.dim() {
            return Err(ServeError::Index(IndexError::Corrupt(format!(
                "query dimension {} does not match index dimension {}",
                query.len(),
                index.dim()
            ))));
        }
        Ok(index.search_knn(query, k))
    }

    /// Persist the annotate-time index as a `SATOIDX1` sidecar file (keyed
    /// to the artifact that embedded its vectors, so it can only ever be
    /// loaded back next to that artifact).
    pub fn save_index(&self, path: impl AsRef<std::path::Path>) -> Result<(), ServeError> {
        let guard = lock_recover(&self.shared.index);
        let Some(index) = guard.as_ref() else {
            return Err(ServeError::IndexUnavailable);
        };
        index.save(path).map_err(ServeError::Index)
    }

    /// **Validated index load** from a `SATOIDX1` sidecar file, mirroring
    /// [`Self::load_artifact`]'s rollback contract: the candidate must
    /// parse, checksum, pass graph validation *and* be keyed to the
    /// artifact currently serving. On any failure the incumbent index (if
    /// any) keeps serving untouched and the attempt is counted in
    /// [`ServiceStats::index_rollbacks`]. Returns the loaded column count.
    pub fn load_index(&self, path: impl AsRef<std::path::Path>) -> Result<usize, ServeError> {
        // Parse and checksum without any lock held (file I/O is slow), then
        // pin the serving artifact while validating the pairing and
        // publishing the index, so a concurrent hot-swap cannot slip a
        // mismatched artifact in between validation and publication.
        let candidate = match HnswIndex::load(&path) {
            Ok(candidate) => candidate,
            Err(e) => return Err(self.reject_index(e)),
        };
        let predictor = lock_recover(&self.shared.predictor);
        if let Err(e) = candidate.verify_artifact(predictor.content_hash()) {
            return Err(self.reject_index(e));
        }
        let len = candidate.len();
        *lock_recover(&self.shared.index) = Some(candidate);
        drop(predictor);
        Ok(len)
    }

    /// Record a rolled-back index load/apply and build its error.
    fn reject_index(&self, error: IndexError) -> ServeError {
        self.shared.stats.index_rollbacks.fetch_add(1, Relaxed);
        ServeError::Index(error)
    }

    /// Requests currently queued.
    pub fn queue_len(&self) -> usize {
        lock_recover(&self.shared.queue).deque.len()
    }

    /// Point-in-time counter snapshot (see [`ServiceStats`]).
    pub fn stats(&self) -> ServiceStats {
        let queue_len = self.queue_len();
        let stats = &self.shared.stats;
        ServiceStats {
            admitted: stats.admitted.load(Relaxed),
            rejected: stats.rejected.load(Relaxed),
            expired: stats.expired.load(Relaxed),
            completed: stats.completed.load(Relaxed),
            swaps: stats.swaps.load(Relaxed),
            swap_rollbacks: stats.swap_rollbacks.load(Relaxed),
            batches: stats.batches.load(Relaxed),
            batched_columns: stats.batched_columns.load(Relaxed),
            rounds: stats.rounds.load(Relaxed),
            worker_restarts: stats.worker_restarts.load(Relaxed),
            quarantined: stats.quarantined.load(Relaxed),
            indexed_columns: stats.indexed_columns.load(Relaxed),
            index_rollbacks: stats.index_rollbacks.load(Relaxed),
            heartbeat_age_us: elapsed_us(self.shared.started)
                .saturating_sub(stats.heartbeat_us.load(Relaxed)),
            queue_len,
            artifact: self.artifact_meta(),
            batch_fill_deciles: std::array::from_fn(|i| stats.fill[i].load(Relaxed)),
            latency: stats.latency.snapshot(),
        }
    }

    /// Stop forming batches; submissions still queue (up to the admission
    /// bound) and deadlines keep ticking. A maintenance/testing seam —
    /// shutdown un-pauses so a paused service still drains.
    pub fn pause(&self) {
        lock_recover(&self.shared.queue).paused = true;
        self.shared.cond.notify_all();
    }

    /// Resume batch formation after [`Self::pause`].
    pub fn resume(&self) {
        lock_recover(&self.shared.queue).paused = false;
        self.shared.cond.notify_all();
    }

    /// Graceful shutdown: stop admitting, drain and answer everything
    /// queued, join the supervision tree, and return the final counter
    /// snapshot.
    pub fn shutdown(mut self) -> ServiceStats {
        self.begin_shutdown();
        if let Some(supervisor) = self.supervisor.take() {
            supervisor.join().expect("sato-serve supervisor panicked");
        }
        self.stats()
    }

    fn begin_shutdown(&self) {
        let mut q = lock_recover(&self.shared.queue);
        q.open = false;
        q.paused = false;
        drop(q);
        self.shared.cond.notify_all();
    }
}

impl Drop for SatoService {
    fn drop(&mut self) {
        self.begin_shutdown();
        if let Some(supervisor) = self.supervisor.take() {
            supervisor.join().expect("sato-serve supervisor panicked");
        }
    }
}

/// A fresh, empty serving scratch sized for `config`. Also used to replace
/// a scratch whose owning round panicked — the panic may have fired
/// mid-write, so nothing inside the old scratch can be trusted.
fn fresh_scratch(config: &ServiceConfig) -> ServingScratch {
    if config.topic_memo_capacity > 0 {
        ServingScratch::new().with_topic_memo_capacity(config.topic_memo_capacity)
    } else {
        ServingScratch::new()
    }
}

/// The supervisor: spawn the batcher worker, join it, and decide what a
/// death means. A clean exit is shutdown — the supervisor exits too. A
/// panic is counted ([`ServiceStats::worker_restarts`]) and the worker is
/// respawned after an exponential backoff (capped at
/// [`RESTART_BACKOFF_MAX`]); the backoff and the give-up counter reset
/// whenever the dead worker had completed at least one round since the
/// previous crash. [`MAX_CONSECUTIVE_RESTARTS`] no-progress crashes in a
/// row fail-stop the service instead of looping forever.
fn supervisor_loop(shared: Arc<Shared>) {
    let mut backoff = RESTART_BACKOFF;
    let mut consecutive = 0u32;
    let mut rounds_at_last_crash = 0u64;
    loop {
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("sato-serve-batcher".to_string())
            .spawn(move || worker_loop(worker_shared))
            .expect("spawn sato-serve batcher thread");
        if worker.join().is_ok() {
            return; // clean drain: shutdown complete
        }
        shared.stats.worker_restarts.fetch_add(1, Relaxed);
        let rounds = shared.stats.rounds.load(Relaxed);
        if rounds != rounds_at_last_crash {
            rounds_at_last_crash = rounds;
            consecutive = 1;
            backoff = RESTART_BACKOFF;
        } else {
            consecutive += 1;
        }
        if consecutive >= MAX_CONSECUTIVE_RESTARTS {
            fail_stop(&shared);
            return;
        }
        std::thread::sleep(backoff);
        backoff = (backoff * 2).min(RESTART_BACKOFF_MAX);
    }
}

/// Give up on restarting: close admission and answer everything queued
/// with [`ServeError::Stopped`] so no client blocks on a worker that will
/// never come back.
fn fail_stop(shared: &Shared) {
    let mut q = lock_recover(&shared.queue);
    q.open = false;
    while let Some(req) = q.deque.pop_front() {
        let _ = req.tx.send(Err(ServeError::Stopped));
    }
    drop(q);
    shared.cond.notify_all();
}

/// The batcher worker: wait for work, form a round, expire what is past
/// deadline, pin the serving artifact, serve the round in shared
/// micro-batches (panic-contained, with quarantine bisection), answer each
/// request. Beats the liveness heartbeat at least every
/// [`HEARTBEAT_TICK`], even while idle or paused.
fn worker_loop(shared: Arc<Shared>) {
    let mut scratch = fresh_scratch(&shared.config);
    let target = shared.config.batch_cols.max(1);
    loop {
        shared.stats.beat(elapsed_us(shared.started));
        // Round formation: pull queued requests until the target column
        // count is pending (or the queue runs dry — a lone request is
        // served immediately rather than waiting for fill).
        let round: Vec<QueuedRequest> = {
            let mut q = lock_recover(&shared.queue);
            loop {
                if !q.open && q.deque.is_empty() {
                    return; // drained; exit
                }
                if !q.deque.is_empty() && (!q.paused || !q.open) {
                    break;
                }
                let (guard, _) = shared
                    .cond
                    .wait_timeout(q, HEARTBEAT_TICK)
                    .unwrap_or_else(PoisonError::into_inner);
                q = guard;
                shared.stats.beat(elapsed_us(shared.started));
            }
            // Named injection point `serve.round_formation`, keyed by the
            // queue depth (chaos builds only). It fires *before* any
            // request is popped, so a panic here kills the worker — and
            // poisons the queue mutex — without losing a single request:
            // the restarted worker picks the queue up where it stood.
            #[cfg(feature = "faults")]
            sato_faults::fire_panic("serve.round_formation", q.deque.len() as u64);
            let mut round = Vec::new();
            let mut cols = 0usize;
            while let Some(front) = q.deque.front() {
                if !round.is_empty() && cols >= target {
                    break;
                }
                cols += front.cols;
                round.push(q.deque.pop_front().expect("front exists"));
            }
            round
        };
        shared.stats.rounds.fetch_add(1, Relaxed);

        // Deadlines are enforced here — *before* the batch is formed — so an
        // expired request costs neither feature extraction nor a forward
        // pass, and never displaces live work from the batch.
        let now = Instant::now();
        let mut live = Vec::with_capacity(round.len());
        for req in round {
            if req.deadline.is_some_and(|d| now >= d) {
                shared.stats.expired.fetch_add(1, Relaxed);
                let _ = req.tx.send(Err(ServeError::Expired));
            } else {
                live.push(req);
            }
        }
        if live.is_empty() {
            continue;
        }

        // Pin the serving artifact for this round: every table of every
        // request in the round — even one spanning several micro-batches —
        // is served by this one predictor, so a response is never a
        // mixed-artifact patchwork across a concurrent hot-swap.
        let predictor: Arc<SatoPredictor> = lock_recover(&shared.predictor).clone();
        serve_round(&shared, &predictor, &mut scratch, live, target);
    }
}

/// Serve one round with panic containment: compute every request's
/// predictions inside `catch_unwind`, and only then move the requests into
/// their responses. On a panic nothing has been answered yet — the scratch
/// is replaced (the panic may have torn it mid-write) and the round goes
/// to quarantine bisection, which re-serves the innocent requests through
/// this same function and fails only the culprit.
fn serve_round(
    shared: &Shared,
    predictor: &SatoPredictor,
    scratch: &mut ServingScratch,
    live: Vec<QueuedRequest>,
    target: usize,
) {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        compute_outputs(shared, predictor, scratch, &live, target)
    }));
    match outcome {
        Ok((outputs, pending)) => {
            // The round succeeded: apply its captured embeddings to the
            // shared ANN index *before* answering, so a client that reads
            // its response and immediately queries the index sees its own
            // columns. On a panicking round `pending` is simply dropped —
            // the index never observes a half-computed round.
            apply_index(shared, predictor, pending);
            respond(shared, predictor.content_hash(), live, outputs);
        }
        Err(_) => {
            *scratch = fresh_scratch(&shared.config);
            quarantine(shared, predictor, scratch, live, target);
        }
    }
}

/// Column embeddings captured while a round computes, applied to the
/// shared ANN index only after the round's unwind boundary is crossed.
/// Rows are `dim`-wide, one per key, in batch order.
#[derive(Default)]
struct PendingIndex {
    dim: usize,
    keys: Vec<ColumnRef>,
    vecs: Vec<f32>,
}

/// Apply one round's captured embeddings to the shared annotate-time index
/// (opt-in via [`ServiceConfig::index_on_annotate`]; a no-op otherwise).
///
/// Indexing is best-effort and must never fail annotation: the inserts run
/// inside their own unwind boundary, and a panic while growing the graph
/// (e.g. an injected `index.insert` fault) may have torn links mid-write,
/// so the whole index is dropped — counted in
/// [`ServiceStats::index_rollbacks`] — and rebuilds from subsequent
/// traffic, while the round's clients are answered normally. Hot-swaps
/// also invalidate lazily here: an index keyed to a different artifact
/// than the round's pinned predictor is replaced with a fresh one before
/// any insert (embeddings across artifacts are not comparable).
fn apply_index(shared: &Shared, predictor: &SatoPredictor, pending: PendingIndex) {
    let Some(hnsw_config) = shared.config.index_on_annotate else {
        return;
    };
    if pending.keys.is_empty() {
        return;
    }
    let hash = predictor.content_hash();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut guard = lock_recover(&shared.index);
        let index = match guard.as_mut() {
            Some(index) if index.artifact_hash() == hash => index,
            _ => guard.insert(HnswIndex::new(pending.dim, hash, hnsw_config)),
        };
        let mut inserted = 0u64;
        for (i, &key) in pending.keys.iter().enumerate() {
            let vector = &pending.vecs[i * pending.dim..(i + 1) * pending.dim];
            if index.insert(key, vector) {
                inserted += 1;
            }
        }
        inserted
    }));
    match outcome {
        Ok(inserted) => {
            shared.stats.indexed_columns.fetch_add(inserted, Relaxed);
        }
        Err(_) => {
            *lock_recover(&shared.index) = None;
            shared.stats.index_rollbacks.fetch_add(1, Relaxed);
        }
    }
}

/// Bisect a panicking round to isolate the poison pill. Each half is
/// re-served through [`serve_round`]; a half that still panics keeps
/// splitting until a single request remains, which is failed with
/// [`ServeError::Poisoned`] and counted in [`ServiceStats::quarantined`].
///
/// Innocent requests re-served along the way stay **bit-identical** to the
/// sequential oracle: micro-batch composition never changes serving output
/// (every eval-mode stage is row-independent — the same invariant that
/// makes cross-request coalescing exact), so serving them in smaller
/// rounds yields the bytes the original round would have.
fn quarantine(
    shared: &Shared,
    predictor: &SatoPredictor,
    scratch: &mut ServingScratch,
    mut live: Vec<QueuedRequest>,
    target: usize,
) {
    if live.len() <= 1 {
        if let Some(req) = live.pop() {
            shared.stats.quarantined.fetch_add(1, Relaxed);
            let _ = req.tx.send(Err(ServeError::Poisoned));
        }
        return;
    }
    let right = live.split_off(live.len() / 2);
    serve_round(shared, predictor, scratch, live, target);
    serve_round(shared, predictor, scratch, right, target);
}

/// Compute one round's predictions: coalesce the requests' tables into
/// micro-batches of at least `target` columns (same accumulate-until rule
/// as `predict_corpus_batched`, so outputs are bit-identical to it) and
/// run each batch in one forward pass. Pure compute — nothing is sent to
/// clients here, so the caller's `catch_unwind` can treat a panic as
/// "nobody was answered".
fn compute_outputs(
    shared: &Shared,
    predictor: &SatoPredictor,
    scratch: &mut ServingScratch,
    live: &[QueuedRequest],
    target: usize,
) -> (Vec<Vec<TablePrediction>>, PendingIndex) {
    // Named injection point `serve.round`, keyed by the number of requests
    // in the round (chaos builds only). Inside the unwind boundary: an
    // injected panic exercises quarantine, an injected delay stalls the
    // round without blocking submitters.
    #[cfg(feature = "faults")]
    sato_faults::fire_panic("serve.round", live.len() as u64);
    let mut outputs: Vec<Vec<TablePrediction>> = live
        .iter()
        .map(|r| Vec::with_capacity(r.tables.len()))
        .collect();
    let mut embeddings = PendingIndex::default();
    let mut batch: Vec<(usize, usize)> = Vec::new(); // (request idx, table idx)
    let mut pending = 0usize;
    for (r, req) in live.iter().enumerate() {
        for t in 0..req.tables.len() {
            batch.push((r, t));
            pending += req.tables[t].num_columns();
            if pending >= target {
                run_batch(
                    shared,
                    predictor,
                    scratch,
                    &mut batch,
                    live,
                    &mut outputs,
                    &mut embeddings,
                    pending,
                    target,
                );
                pending = 0;
            }
        }
    }
    run_batch(
        shared,
        predictor,
        scratch,
        &mut batch,
        live,
        &mut outputs,
        &mut embeddings,
        pending,
        target,
    );
    (outputs, embeddings)
}

/// Answer every request of a computed round: record latency and completion
/// and send each response tagged with the round's artifact.
fn respond(
    shared: &Shared,
    artifact_hash: u64,
    live: Vec<QueuedRequest>,
    outputs: Vec<Vec<TablePrediction>>,
) {
    for (req, predictions) in live.into_iter().zip(outputs) {
        let latency = req.enqueued.elapsed();
        shared
            .stats
            .latency
            .record(latency.as_micros().min(u128::from(u64::MAX)) as u64);
        shared.stats.completed.fetch_add(1, Relaxed);
        let _ = req.tx.send(Ok(AnnotationResponse {
            predictions,
            artifact_hash,
            latency,
        }));
    }
}

/// Run one shared micro-batch (single forward pass) and distribute its
/// per-table predictions back to their requests.
#[allow(clippy::too_many_arguments)]
fn run_batch(
    shared: &Shared,
    predictor: &SatoPredictor,
    scratch: &mut ServingScratch,
    batch: &mut Vec<(usize, usize)>,
    live: &[QueuedRequest],
    outputs: &mut [Vec<TablePrediction>],
    embeddings: &mut PendingIndex,
    cols: usize,
    target: usize,
) {
    if batch.is_empty() {
        return;
    }
    let refs: Vec<&Table> = batch.iter().map(|&(r, t)| &live[r].tables[t]).collect();
    let predictions = predictor.predict_batch(&refs, scratch);
    shared.stats.record_batch(cols, target);
    // Index-on-annotate capture: `predict_batch` leaves this micro-batch's
    // column embeddings (one row per column, in batch order) sitting in the
    // scratch — the head reads them without overwriting — so indexing costs
    // a row copy, never a second forward pass.
    if shared.config.index_on_annotate.is_some() {
        let rows = scratch.embeddings();
        embeddings.dim = rows.cols();
        let mut row = 0usize;
        for &(r, t) in batch.iter() {
            let table = &live[r].tables[t];
            for col in 0..table.num_columns() {
                embeddings.keys.push(ColumnRef {
                    table_id: table.id,
                    col_idx: col as u32,
                });
                embeddings.vecs.extend_from_slice(rows.row(row));
                row += 1;
            }
        }
    }
    for (&(r, _), prediction) in batch.iter().zip(predictions) {
        outputs[r].push(prediction);
    }
    batch.clear();
}

/// The fixed table smoke-predicted on every [`SatoService::load_artifact`]
/// candidate before it may swap in: one textual and one numeric column,
/// enough to drive feature extraction, topic estimation (when the model
/// carries one) and a forward pass end to end.
fn canary_table() -> Table {
    Table::unlabelled(
        u64::MAX,
        vec![
            Column::new(["Warsaw", "London", "Springfield"]),
            Column::new(["12.5", "7", "19.25"]),
        ],
    )
}

/// Canary validation of a hot-swap candidate: predict the fixed canary
/// table inside `catch_unwind` and sanity-check the output shape. The
/// checksum/consistency layers of the artifact codec catch file-level
/// corruption; this catches the rest — any candidate that would panic or
/// emit garbage on its very first real request is rejected *before* the
/// swap, while the incumbent still serves.
fn validate_candidate(candidate: &SatoPredictor) -> Result<(), PredictorError> {
    let canary = canary_table();
    let expected = canary.num_columns();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        (candidate.predict_proba(&canary), candidate.predict(&canary))
    }));
    let Ok((probs, types)) = outcome else {
        return Err(PredictorError::Corrupt(
            "hot-swap candidate panicked predicting the canary table".to_string(),
        ));
    };
    if probs.len() != expected || types.len() != expected {
        return Err(PredictorError::Corrupt(format!(
            "hot-swap candidate predicted {} probability rows / {} types for the \
             {expected}-column canary table",
            probs.len(),
            types.len(),
        )));
    }
    if probs
        .iter()
        .any(|row| row.is_empty() || row.iter().any(|p| !p.is_finite()))
    {
        return Err(PredictorError::Corrupt(
            "hot-swap candidate produced empty or non-finite canary probabilities".to_string(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sato::{SatoConfig, SatoModel, SatoVariant};
    use sato_tabular::corpus::default_corpus;
    use std::sync::OnceLock;

    fn tiny_config() -> SatoConfig {
        let mut config = SatoConfig::fast();
        config.network.epochs = 4;
        config
    }

    /// Two distinct trained Base-variant predictors (no LDA/CRF training
    /// cost), shared across tests. Base keeps these unit tests fast; the
    /// full variant × sampler × hot-swap matrix lives in the integration
    /// proptest suite.
    fn predictors() -> &'static (SatoPredictor, SatoPredictor) {
        static PREDICTORS: OnceLock<(SatoPredictor, SatoPredictor)> = OnceLock::new();
        PREDICTORS.get_or_init(|| {
            let a = SatoModel::train(&default_corpus(20, 7), tiny_config(), SatoVariant::Base)
                .into_predictor();
            let b = SatoModel::train(&default_corpus(20, 8), tiny_config(), SatoVariant::Base)
                .into_predictor();
            assert_ne!(a.content_hash(), b.content_hash());
            (a, b)
        })
    }

    /// A predictor is immutable and not `Clone`; round-trip its canonical
    /// bytes to hand an owned copy to a service.
    fn copy_of(p: &SatoPredictor) -> SatoPredictor {
        SatoPredictor::from_bytes(&p.to_bytes()).unwrap()
    }

    /// Sequential single-table reference prediction.
    fn reference_one(p: &SatoPredictor, table: &Table) -> TablePrediction {
        p.predict_corpus(&Corpus::new(vec![table.clone()]))
            .pop()
            .unwrap()
    }

    /// A unique temp-file path for this test run.
    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("sato_serve_{}_{name}", std::process::id()))
    }

    #[test]
    fn coalesced_serving_is_bit_identical_to_batched_reference() {
        let (a, _) = predictors();
        let corpus = default_corpus(6, 42);
        let config = ServiceConfig {
            batch_cols: 5,
            ..ServiceConfig::default()
        };
        let reference = a.predict_corpus_batched(&corpus, config.batch_cols);
        let service = SatoService::start(copy_of(a), config);
        // Several concurrent requests over slices of the corpus: coalesced
        // micro-batches must reproduce the per-table reference exactly.
        let handles: Vec<ResponseHandle> = corpus
            .tables
            .iter()
            .map(|t| {
                service
                    .submit_table(t.clone(), RequestOptions::default())
                    .unwrap()
            })
            .collect();
        let mut served = Vec::new();
        for handle in handles {
            let response = handle.wait().unwrap();
            assert_eq!(response.artifact_hash, a.content_hash());
            assert_eq!(response.predictions.len(), 1);
            served.extend(response.predictions);
        }
        assert_eq!(reference, served);
        // A zero-table request is answered (empty), not wedged.
        let empty = service.annotate(Vec::new()).unwrap();
        assert!(empty.predictions.is_empty());
        let stats = service.shutdown();
        assert_eq!(stats.admitted, corpus.tables.len() as u64 + 1);
        assert_eq!(stats.completed, stats.admitted);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.expired, 0);
        assert!(stats.batches >= 1);
        assert_eq!(stats.latency.count(), stats.completed);
        // A healthy run: rounds advanced, nothing crashed or quarantined,
        // no swap was rolled back, and the worker's heartbeat was fresh.
        assert!(stats.rounds >= 1);
        assert_eq!(stats.worker_restarts, 0);
        assert_eq!(stats.quarantined, 0);
        assert_eq!(stats.swap_rollbacks, 0);
        assert!(stats.heartbeat_age_us < 10_000_000, "stale heartbeat");
    }

    #[test]
    fn admission_control_rejects_beyond_queue_depth() {
        let (a, _) = predictors();
        let corpus = default_corpus(5, 9);
        let service = SatoService::start(
            copy_of(a),
            ServiceConfig {
                queue_depth: 3,
                ..ServiceConfig::default()
            },
        );
        service.pause(); // deterministic: nothing drains while we overfill
        let mut handles = Vec::new();
        for table in corpus.tables.iter().take(3).cloned() {
            handles.push(
                service
                    .submit_table(table, RequestOptions::default())
                    .unwrap(),
            );
        }
        let overflow = service.submit_table(corpus.tables[3].clone(), RequestOptions::default());
        assert!(matches!(
            overflow,
            Err(ServeError::Overloaded { queued: 3 })
        ));
        service.resume();
        for handle in handles {
            assert!(handle.wait().is_ok());
        }
        let stats = service.shutdown();
        assert_eq!(stats.admitted, 3);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.completed, 3);
    }

    #[test]
    fn expired_deadlines_are_dropped_before_batching() {
        let (a, _) = predictors();
        let corpus = default_corpus(3, 11);
        let service = SatoService::start(copy_of(a), ServiceConfig::default());
        service.pause();
        let doomed = service
            .submit_table(
                corpus.tables[0].clone(),
                RequestOptions {
                    deadline: Some(Duration::ZERO),
                },
            )
            .unwrap();
        let alive = service
            .submit_table(
                corpus.tables[1].clone(),
                RequestOptions {
                    deadline: Some(Duration::from_secs(600)),
                },
            )
            .unwrap();
        service.resume();
        assert!(matches!(doomed.wait(), Err(ServeError::Expired)));
        assert!(alive.wait().is_ok());
        let stats = service.shutdown();
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn hot_swap_tags_responses_with_serving_artifact() {
        let (a, b) = predictors();
        let corpus = default_corpus(4, 13);
        let service = SatoService::start(copy_of(a), ServiceConfig::default());
        assert_eq!(service.artifact_meta(), a.artifact_meta());
        let before = service.annotate_table(corpus.tables[0].clone()).unwrap();
        assert_eq!(before.artifact_hash, a.content_hash());

        let meta = service.swap_predictor(copy_of(b));
        assert_eq!(meta, b.artifact_meta());
        assert_eq!(service.artifact_meta(), b.artifact_meta());
        let after = service.annotate_table(corpus.tables[1].clone()).unwrap();
        assert_eq!(after.artifact_hash, b.content_hash());
        // Responses match each serving artifact's own sequential reference.
        assert_eq!(before.predictions[0], reference_one(a, &corpus.tables[0]));
        assert_eq!(after.predictions[0], reference_one(b, &corpus.tables[1]));

        let stats = service.shutdown();
        assert_eq!(stats.swaps, 1);
        assert_eq!(stats.artifact.content_hash, b.content_hash());
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        let (a, _) = predictors();
        let corpus = default_corpus(3, 17);
        let service = SatoService::start(copy_of(a), ServiceConfig::default());
        service.pause();
        let queued = service
            .submit_table(corpus.tables[0].clone(), RequestOptions::default())
            .unwrap();
        // shutdown() un-pauses, drains the queue, then joins the worker.
        let stats = service.shutdown();
        assert!(queued.wait().is_ok());
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn locks_recover_after_a_client_panic_poisons_them() {
        let (a, b) = predictors();
        let corpus = default_corpus(3, 19);
        let service = SatoService::start(copy_of(a), ServiceConfig::default());
        // Poison both service mutexes the way a buggy client callback
        // would: lock, panic, unwind.
        let shared = Arc::clone(&service.shared);
        let poisoner = std::thread::spawn(move || {
            let _queue = shared.queue.lock().unwrap();
            let _predictor = shared.predictor.lock().unwrap();
            panic!("deliberate poisoning of the service mutexes");
        });
        assert!(poisoner.join().is_err());
        assert!(service.shared.queue.is_poisoned());
        assert!(service.shared.predictor.is_poisoned());
        // Every public entry point — and the worker itself — recovers.
        assert_eq!(service.queue_len(), 0);
        service.pause();
        service.resume();
        assert_eq!(service.artifact_meta(), a.artifact_meta());
        let response = service.annotate_table(corpus.tables[0].clone()).unwrap();
        assert_eq!(response.predictions[0], reference_one(a, &corpus.tables[0]));
        service.swap_predictor(copy_of(b));
        let swapped = service.annotate_table(corpus.tables[1].clone()).unwrap();
        assert_eq!(swapped.artifact_hash, b.content_hash());
        let stats = service.shutdown();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.worker_restarts, 0);
    }

    #[test]
    fn wait_timeout_surfaces_stopped_after_terminal_result() {
        let (a, _) = predictors();
        let corpus = default_corpus(2, 23);
        let service = SatoService::start(copy_of(a), ServiceConfig::default());
        let handle = service
            .submit_table(corpus.tables[0].clone(), RequestOptions::default())
            .unwrap();
        let mut first = None;
        for _ in 0..2000 {
            if let Some(result) = handle.wait_timeout(Duration::from_millis(10)) {
                first = Some(result);
                break;
            }
        }
        assert!(first.expect("response within 20 s").is_ok());
        // The one terminal result is spent: polling again reports Stopped
        // immediately instead of pretending the request is still pending.
        assert!(matches!(
            handle.wait_timeout(Duration::from_millis(1)),
            Some(Err(ServeError::Stopped))
        ));
        assert!(matches!(handle.wait(), Err(ServeError::Stopped)));
        service.shutdown();
    }

    #[test]
    fn dropping_the_service_mid_wait_resolves_pollers() {
        let (a, _) = predictors();
        let corpus = default_corpus(2, 29);
        let service = SatoService::start(copy_of(a), ServiceConfig::default());
        let handle = service
            .submit_table(corpus.tables[0].clone(), RequestOptions::default())
            .unwrap();
        let poller = std::thread::spawn(move || {
            // Poll forever: the drop below must terminate this loop, either
            // with the drained response or with Stopped — never a hang.
            loop {
                if let Some(result) = handle.wait_timeout(Duration::from_millis(5)) {
                    // A second poll after the terminal result is Stopped.
                    let next = handle.wait_timeout(Duration::from_millis(1));
                    assert!(matches!(next, Some(Err(ServeError::Stopped))));
                    return result;
                }
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        drop(service); // drains the queue, then drops the worker's senders
        let result = poller.join().expect("poller never hangs");
        // Drop drains gracefully, so the queued request was answered.
        assert!(result.is_ok());
    }

    #[test]
    fn corrupt_artifact_hot_swap_rolls_back_to_incumbent() {
        let (a, b) = predictors();
        let corpus = default_corpus(3, 31);
        let service = SatoService::start(copy_of(a), ServiceConfig::default());

        // Truncated artifact: valid magic, torn tail — a torn write.
        let truncated = temp_path("truncated.satoart");
        let bytes = b.to_bytes();
        std::fs::write(&truncated, &bytes[..bytes.len() / 2]).unwrap();
        let err = service.load_artifact(&truncated).unwrap_err();
        assert!(matches!(err, ServeError::Swap(_)), "{err}");

        // Garbage artifact: not even the magic survives.
        let garbage = temp_path("garbage.satoart");
        std::fs::write(&garbage, b"definitely not a SATOART1 artifact").unwrap();
        assert!(matches!(
            service.load_artifact(&garbage),
            Err(ServeError::Swap(PredictorError::BadMagic))
        ));

        // Missing artifact: I/O, retried with backoff, then rolled back.
        let missing = temp_path("does_not_exist.satoart");
        assert!(matches!(
            service.load_artifact(&missing),
            Err(ServeError::Swap(PredictorError::Io(_)))
        ));

        // The incumbent never stopped serving, bit-identically.
        assert_eq!(service.artifact_meta(), a.artifact_meta());
        let response = service.annotate_table(corpus.tables[0].clone()).unwrap();
        assert_eq!(response.artifact_hash, a.content_hash());
        assert_eq!(response.predictions[0], reference_one(a, &corpus.tables[0]));

        // A healthy artifact file still swaps in.
        let good = temp_path("good.satoart");
        std::fs::write(&good, &bytes).unwrap();
        let meta = service.load_artifact(&good).unwrap();
        assert_eq!(meta, b.artifact_meta());
        let swapped = service.annotate_table(corpus.tables[1].clone()).unwrap();
        assert_eq!(swapped.artifact_hash, b.content_hash());

        let stats = service.shutdown();
        assert_eq!(stats.swap_rollbacks, 3);
        assert_eq!(stats.swaps, 1);
        assert_eq!(stats.artifact.content_hash, b.content_hash());
        for path in [truncated, garbage, good] {
            let _ = std::fs::remove_file(path);
        }
    }

    #[test]
    fn canary_validation_accepts_healthy_predictors() {
        let (a, b) = predictors();
        assert!(validate_candidate(a).is_ok());
        assert!(validate_candidate(b).is_ok());
    }

    #[test]
    fn indexing_is_off_by_default() {
        let (a, _) = predictors();
        let service = SatoService::start(copy_of(a), ServiceConfig::default());
        let corpus = default_corpus(4, 61);
        service.annotate(corpus.tables).unwrap();
        assert_eq!(service.index_len(), 0);
        assert!(matches!(
            service.search_index(&[0.0; 4], 3),
            Err(ServeError::IndexUnavailable)
        ));
        assert!(matches!(
            service.save_index(temp_path("never_written.satoidx")),
            Err(ServeError::IndexUnavailable)
        ));
        let stats = service.shutdown();
        assert_eq!(stats.indexed_columns, 0);
        assert_eq!(stats.index_rollbacks, 0);
    }

    #[test]
    fn index_on_annotate_builds_searchable_idempotent_index() {
        let (a, _) = predictors();
        let corpus = default_corpus(8, 91);
        let total_cols: usize = corpus.iter().map(|t| t.num_columns()).sum();
        let config = ServiceConfig {
            batch_cols: 7, // force the round to span several micro-batches
            index_on_annotate: Some(HnswConfig::default()),
            ..ServiceConfig::default()
        };
        let service = SatoService::start(copy_of(a), config);
        assert!(matches!(
            service.search_index(&[0.0; 4], 3),
            Err(ServeError::IndexUnavailable)
        ));

        service.annotate(corpus.tables.clone()).unwrap();
        assert_eq!(service.index_len(), total_cols);

        // Self-lookup: each annotated column's own embedding (recomputed on
        // the reference copy of the same artifact) finds itself at distance
        // zero — the index holds exactly the bytes the serving path
        // embedded, across micro-batch boundaries.
        for table in corpus.iter().take(4) {
            for (c, embedding) in a.column_embeddings(table).iter().enumerate() {
                let hits = service.search_index(embedding, 1).unwrap();
                assert_eq!(
                    hits[0].key,
                    ColumnRef {
                        table_id: table.id,
                        col_idx: c as u32
                    },
                    "table {} col {c}",
                    table.id
                );
                assert_eq!(hits[0].distance, 0.0);
            }
        }

        // A query of the wrong width is a typed error, not a panic.
        assert!(matches!(
            service.search_index(&[0.0; 3], 1),
            Err(ServeError::Index(IndexError::Corrupt(_)))
        ));

        // Re-annotating the same tables re-serves fine and indexes nothing
        // new: inserts are idempotent by (table_id, col_idx).
        service.annotate(corpus.tables.clone()).unwrap();
        assert_eq!(service.index_len(), total_cols);

        let stats = service.shutdown();
        assert_eq!(stats.indexed_columns, total_cols as u64);
        assert_eq!(stats.index_rollbacks, 0);
    }

    #[test]
    fn hot_swap_invalidates_index_and_sidecar_load_is_validated() {
        let (a, b) = predictors();
        let config = ServiceConfig {
            index_on_annotate: Some(HnswConfig::default()),
            ..ServiceConfig::default()
        };
        let service = SatoService::start(copy_of(a), config);
        let corpus = default_corpus(5, 92);
        service.annotate(corpus.tables.clone()).unwrap();
        let built = service.index_len();
        assert!(built > 0);

        // Persist the index under artifact A, then hot-swap to B: the
        // index is keyed to A's embeddings, so the swap invalidates it.
        let sidecar = temp_path("swap.satoidx");
        service.save_index(&sidecar).unwrap();
        service.swap_predictor(copy_of(b));
        assert_eq!(service.index_len(), 0, "hot-swap must invalidate the index");

        // The sidecar is keyed to A; loading it while B serves is rejected
        // and rolled back (there is no incumbent to disturb).
        assert!(matches!(
            service.load_index(&sidecar),
            Err(ServeError::Index(IndexError::ArtifactMismatch { .. }))
        ));
        assert_eq!(service.index_len(), 0);

        // Annotating under B rebuilds the index from B's embeddings.
        service.annotate(corpus.tables.clone()).unwrap();
        assert_eq!(service.index_len(), built);

        // Swapping back to A invalidates again, and A's sidecar restores
        // the saved index wholesale.
        service.swap_predictor(copy_of(a));
        assert_eq!(service.index_len(), 0);
        assert_eq!(service.load_index(&sidecar).unwrap(), built);
        assert_eq!(service.index_len(), built);

        // A corrupt sidecar is rejected with the incumbent untouched.
        let corrupt = temp_path("corrupt.satoidx");
        let mut bytes = std::fs::read(&sidecar).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&corrupt, &bytes).unwrap();
        assert!(matches!(
            service.load_index(&corrupt),
            Err(ServeError::Index(IndexError::Checksum(_)))
        ));
        assert_eq!(service.index_len(), built);

        let stats = service.shutdown();
        assert_eq!(stats.index_rollbacks, 2);
        assert_eq!(stats.swaps, 2);
        for path in [sidecar, corrupt] {
            let _ = std::fs::remove_file(path);
        }
    }
}
