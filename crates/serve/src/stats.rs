//! Service observability: lock-free counters and histograms updated on the
//! serving hot path, snapshotted into an immutable [`ServiceStats`].
//!
//! Everything here is `AtomicU64` with relaxed ordering — the counters are
//! monotonic telemetry, not synchronization, and a snapshot is allowed to
//! be *torn* across counters (e.g. `admitted` read just before a concurrent
//! request bumps `completed`). What must never happen is a counter update
//! slowing the batch loop down, so there are no locks anywhere in this
//! module.

use sato::ArtifactMeta;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Number of log₂ latency buckets: bucket `i` covers `[2^i, 2^(i+1))` µs,
/// so 40 buckets span 1 µs to ~18 minutes.
pub const LATENCY_BUCKETS: usize = 40;

/// Number of batch-fill buckets: deciles of the configured target
/// `batch_cols` (bucket 10 = filled to or beyond the target — a batch can
/// overshoot when a multi-column table lands on the boundary).
pub const FILL_BUCKETS: usize = 11;

/// Log₂-bucketed latency histogram over microseconds.
pub(crate) struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl LatencyHistogram {
    pub(crate) fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    pub(crate) fn record(&self, us: u64) {
        let idx = (63 - us.max(1).leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Relaxed);
        self.sum_us.fetch_add(us, Relaxed);
        self.max_us.fetch_max(us, Relaxed);
    }

    pub(crate) fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Relaxed)),
            sum_us: self.sum_us.load(Relaxed),
            max_us: self.max_us.load(Relaxed),
        }
    }
}

/// An immutable copy of the service's internal latency histogram, with
/// percentile estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySnapshot {
    /// Per-bucket sample counts (bucket `i` covers `[2^i, 2^(i+1))` µs).
    pub buckets: [u64; LATENCY_BUCKETS],
    /// Sum of all recorded latencies in µs (for the mean).
    pub sum_us: u64,
    /// Largest recorded latency in µs.
    pub max_us: u64,
}

impl LatencySnapshot {
    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean latency in µs (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_us as f64 / n as f64
        }
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`) in µs: the bucket holding the
    /// target rank is found by cumulative count and the value interpolated
    /// linearly inside it. Within a factor of two of the true quantile by
    /// construction; 0 when the histogram is empty.
    pub fn quantile_us(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * n as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &count) in self.buckets.iter().enumerate() {
            if count == 0 {
                continue;
            }
            if cum + count >= rank {
                let lower = (1u64 << i) as f64;
                let upper = lower * 2.0;
                let into = (rank - cum) as f64 / count as f64;
                return (lower + into * (upper - lower)).min(self.max_us.max(1) as f64);
            }
            cum += count;
        }
        self.max_us as f64
    }
}

/// The service's shared counter block (one per [`SatoService`]).
///
/// [`SatoService`]: crate::SatoService
pub(crate) struct StatsCell {
    pub(crate) admitted: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) expired: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) swaps: AtomicU64,
    pub(crate) swap_rollbacks: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) batched_columns: AtomicU64,
    pub(crate) rounds: AtomicU64,
    pub(crate) worker_restarts: AtomicU64,
    pub(crate) quarantined: AtomicU64,
    pub(crate) indexed_columns: AtomicU64,
    pub(crate) index_rollbacks: AtomicU64,
    /// µs since service start at the worker's last liveness beat.
    pub(crate) heartbeat_us: AtomicU64,
    pub(crate) fill: [AtomicU64; FILL_BUCKETS],
    pub(crate) latency: LatencyHistogram,
}

impl StatsCell {
    pub(crate) fn new() -> Self {
        StatsCell {
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            swap_rollbacks: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_columns: AtomicU64::new(0),
            rounds: AtomicU64::new(0),
            worker_restarts: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            indexed_columns: AtomicU64::new(0),
            index_rollbacks: AtomicU64::new(0),
            heartbeat_us: AtomicU64::new(0),
            fill: std::array::from_fn(|_| AtomicU64::new(0)),
            latency: LatencyHistogram::new(),
        }
    }

    /// Record a worker liveness beat, `us` microseconds after service
    /// start. Monotonic via `fetch_max`: a stalled clock read from a
    /// just-restarted worker can never move the heartbeat backwards.
    pub(crate) fn beat(&self, us: u64) {
        self.heartbeat_us.fetch_max(us, Relaxed);
    }

    /// Record one formed micro-batch of `cols` columns against the
    /// configured target.
    pub(crate) fn record_batch(&self, cols: usize, target: usize) {
        self.batches.fetch_add(1, Relaxed);
        self.batched_columns.fetch_add(cols as u64, Relaxed);
        let decile = (cols * 10 / target.max(1)).min(FILL_BUCKETS - 1);
        self.fill[decile].fetch_add(1, Relaxed);
    }
}

/// A point-in-time snapshot of a running service's counters, returned by
/// [`SatoService::stats`]. Counters are cumulative since the service
/// started; the snapshot may be torn across counters (each counter is
/// individually consistent, their sum-relations only eventually so).
///
/// [`SatoService::stats`]: crate::SatoService::stats
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStats {
    /// Requests accepted into the queue.
    pub admitted: u64,
    /// Requests refused at admission because the queue was at depth.
    pub rejected: u64,
    /// Requests dropped at batch formation because their deadline had
    /// passed (they never reached the network).
    pub expired: u64,
    /// Requests answered with predictions.
    pub completed: u64,
    /// Artifact hot-swaps performed.
    pub swaps: u64,
    /// Hot-swap attempts rejected before the `Arc` swap — unreadable or
    /// corrupt artifact file, or a candidate that failed canary
    /// validation. The incumbent artifact kept serving each time.
    pub swap_rollbacks: u64,
    /// Micro-batches run through the network.
    pub batches: u64,
    /// Total columns across all micro-batches.
    pub batched_columns: u64,
    /// Batch-formation rounds the worker has completed pulling from the
    /// queue (the supervisor reads this as its progress signal).
    pub rounds: u64,
    /// Times the supervisor restarted a batcher worker that died to a
    /// panic escaping round containment.
    pub worker_restarts: u64,
    /// Requests failed with [`ServeError::Poisoned`] after quarantine
    /// bisection isolated them as the culprit of a panicking round.
    ///
    /// [`ServeError::Poisoned`]: crate::ServeError::Poisoned
    pub quarantined: u64,
    /// Columns inserted into the annotate-time ANN index (opt-in via
    /// [`ServiceConfig::index_on_annotate`]; idempotent re-inserts of an
    /// already-indexed column are not counted).
    ///
    /// [`ServiceConfig::index_on_annotate`]: crate::ServiceConfig::index_on_annotate
    pub indexed_columns: u64,
    /// Index operations rejected and rolled back: a
    /// [`SatoService::load_index`] candidate that failed to parse,
    /// checksum or match the serving artifact (the incumbent index kept
    /// serving), or an indexing pass that panicked mid-insert and dropped
    /// the possibly-torn index (it rebuilds from subsequent traffic).
    ///
    /// [`SatoService::load_index`]: crate::SatoService::load_index
    pub index_rollbacks: u64,
    /// Age of the worker's last liveness heartbeat in µs at snapshot time.
    /// The worker beats at least every ~100 ms while alive (even idle or
    /// paused); a large value means the worker is stalled or gone.
    pub heartbeat_age_us: u64,
    /// Requests currently queued (instantaneous, not cumulative).
    pub queue_len: usize,
    /// Identity of the artifact currently serving.
    pub artifact: ArtifactMeta,
    /// Batch-fill histogram: bucket `i < 10` counts batches filled to
    /// `[i·10 %, (i+1)·10 %)` of the target `batch_cols`; bucket 10 counts
    /// batches at or beyond the target.
    pub batch_fill_deciles: [u64; FILL_BUCKETS],
    /// Per-request latency histogram (submission → response).
    pub latency: LatencySnapshot,
}

impl ServiceStats {
    /// Mean columns per formed micro-batch (0 when no batch has run).
    pub fn mean_batch_fill_cols(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_columns as f64 / self.batches as f64
        }
    }

    /// Median request latency in µs (estimated from the histogram).
    pub fn p50_us(&self) -> f64 {
        self.latency.quantile_us(0.50)
    }

    /// 99th-percentile request latency in µs (estimated from the histogram).
    pub fn p99_us(&self) -> f64 {
        self.latency.quantile_us(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.snapshot().quantile_us(0.5), 0.0);
        // 0 µs clamps into the first bucket instead of shifting out of range.
        h.record(0);
        h.record(1);
        for _ in 0..98 {
            h.record(1000);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 100);
        assert_eq!(snap.max_us, 1000);
        // p50 and p99 land in the 1000 µs bucket [512, 1024), clamped to max.
        let p50 = snap.quantile_us(0.50);
        let p99 = snap.quantile_us(0.99);
        assert!((512.0..=1000.0).contains(&p50), "p50 {p50}");
        assert!((512.0..=1000.0).contains(&p99), "p99 {p99}");
        assert!(p50 <= p99);
        // p0 effectively the minimum bucket.
        assert!(snap.quantile_us(0.0) <= 2.0);
        assert!((snap.mean_us() - 980.01).abs() < 0.5);
    }

    #[test]
    fn batch_fill_deciles_clamp_at_target() {
        let cell = StatsCell::new();
        cell.record_batch(0, 64); // 0 %
        cell.record_batch(31, 64); // 40 %
        cell.record_batch(64, 64); // exactly full
        cell.record_batch(200, 64); // overshoot clamps into the full bucket
        let fill: Vec<u64> = cell.fill.iter().map(|b| b.load(Relaxed)).collect();
        assert_eq!(fill[0], 1);
        assert_eq!(fill[4], 1);
        assert_eq!(fill[10], 2);
        assert_eq!(cell.batches.load(Relaxed), 4);
        assert_eq!(cell.batched_columns.load(Relaxed), 295);
    }
}
