//! Per-type cell value generators and the shared vocabularies behind them.
//!
//! The real Sato system learns from the VizNet/WebTables corpus; this module
//! is the substitute substrate (see DESIGN.md §2): a deterministic, seedable
//! generator that produces realistic cell values for each of the 78 semantic
//! types. Two properties of the real data are deliberately preserved because
//! the paper's results depend on them:
//!
//! 1. **Cross-type value ambiguity.** Confusable types share vocabulary
//!    pools — `city`, `birthPlace` and `location` all draw city names;
//!    `name`, `person`, `artist`, `director`, `jockey`, `creator` all draw
//!    person names; many numeric types overlap in range. A single-column
//!    model therefore cannot fully separate them, exactly as in Figure 1 of
//!    the paper.
//! 2. **Realistic surface forms.** Character distributions, lengths and the
//!    mixture of numeric/textual cells differ across types, so the Sherlock
//!    feature groups still carry useful signal.

use crate::types::SemanticType;
use rand::rngs::StdRng;
use rand::Rng;

/// Shared vocabulary pools. Exposed publicly so the feature extractors, the
/// topic model tests and the examples can build in-distribution tables.
pub mod vocab {
    /// City names (shared by `city`, `birthPlace`, `location`, `address`).
    pub const CITIES: &[&str] = &[
        "Florence",
        "Warsaw",
        "London",
        "Braunschweig",
        "Paris",
        "Berlin",
        "Madrid",
        "Rome",
        "Vienna",
        "Prague",
        "Lisbon",
        "Dublin",
        "Amsterdam",
        "Brussels",
        "Copenhagen",
        "Oslo",
        "Stockholm",
        "Helsinki",
        "Athens",
        "Budapest",
        "Zurich",
        "Geneva",
        "Munich",
        "Hamburg",
        "Milan",
        "Naples",
        "Turin",
        "Porto",
        "Seville",
        "Valencia",
        "Krakow",
        "Gdansk",
        "Chicago",
        "Boston",
        "Denver",
        "Austin",
        "Portland",
        "Seattle",
        "Toronto",
        "Montreal",
        "Kyoto",
        "Osaka",
        "Nagoya",
        "Shanghai",
        "Mumbai",
        "Nairobi",
        "Lagos",
        "Lima",
    ];

    /// Country names (shared by `country`, `origin`, `nationality` partially).
    pub const COUNTRIES: &[&str] = &[
        "Italy",
        "Poland",
        "United Kingdom",
        "Germany",
        "France",
        "Spain",
        "Austria",
        "Czechia",
        "Portugal",
        "Ireland",
        "Netherlands",
        "Belgium",
        "Denmark",
        "Norway",
        "Sweden",
        "Finland",
        "Greece",
        "Hungary",
        "Switzerland",
        "Japan",
        "China",
        "India",
        "Kenya",
        "Nigeria",
        "Peru",
        "Brazil",
        "Canada",
        "United States",
        "Mexico",
        "Australia",
        "New Zealand",
        "Argentina",
        "Chile",
        "Egypt",
        "Morocco",
        "Turkey",
        "Ukraine",
        "Romania",
    ];

    /// Nationality adjectives (shared by `nationality` and `origin`).
    pub const NATIONALITIES: &[&str] = &[
        "Italian",
        "Polish",
        "British",
        "German",
        "French",
        "Spanish",
        "Austrian",
        "Czech",
        "Portuguese",
        "Irish",
        "Dutch",
        "Belgian",
        "Danish",
        "Norwegian",
        "Swedish",
        "Finnish",
        "Greek",
        "Hungarian",
        "Swiss",
        "Japanese",
        "Chinese",
        "Indian",
        "Kenyan",
        "Nigerian",
        "Peruvian",
        "Brazilian",
        "Canadian",
        "American",
        "Mexican",
        "Australian",
    ];

    /// Continents.
    pub const CONTINENTS: &[&str] = &[
        "Europe",
        "Asia",
        "Africa",
        "North America",
        "South America",
        "Oceania",
        "Antarctica",
    ];

    /// Given names (shared by every person-like type).
    pub const FIRST_NAMES: &[&str] = &[
        "Ada",
        "Alan",
        "Grace",
        "Marie",
        "Nikola",
        "Isaac",
        "Albert",
        "Rosalind",
        "Charles",
        "Dorothy",
        "Leonhard",
        "Emmy",
        "Niels",
        "Lise",
        "Richard",
        "Barbara",
        "James",
        "Katherine",
        "Sofia",
        "Carlos",
        "Elena",
        "Marco",
        "Hannah",
        "Victor",
        "Amelia",
        "Oscar",
        "Lucia",
        "Hugo",
        "Clara",
        "Felix",
        "Nora",
        "Ivan",
        "Maja",
        "Leo",
        "Ines",
        "Tomas",
    ];

    /// Family names (shared by every person-like type).
    pub const LAST_NAMES: &[&str] = &[
        "Lovelace",
        "Turing",
        "Hopper",
        "Curie",
        "Tesla",
        "Newton",
        "Einstein",
        "Franklin",
        "Darwin",
        "Hodgkin",
        "Euler",
        "Noether",
        "Bohr",
        "Meitner",
        "Feynman",
        "McClintock",
        "Maxwell",
        "Johnson",
        "Kowalska",
        "Garcia",
        "Rossi",
        "Novak",
        "Schmidt",
        "Dubois",
        "Silva",
        "Tanaka",
        "Okafor",
        "Mwangi",
        "Larsen",
        "Virtanen",
        "Papadopoulos",
        "Nagy",
    ];

    /// Company-ish organisation names (shared by `company`, `manufacturer`,
    /// `brand`, `publisher`, `affiliation`, `organisation`, `operator`).
    pub const ORGANISATIONS: &[&str] = &[
        "Acme Corp",
        "Globex",
        "Initech",
        "Umbrella Industries",
        "Stark Labs",
        "Wayne Enterprises",
        "Northwind Traders",
        "Contoso",
        "Fabrikam",
        "Tailspin Toys",
        "Wingtip Press",
        "Lakeshore Media",
        "Redwood Systems",
        "Bluepeak Energy",
        "Ironclad Motors",
        "Sunrise Foods",
        "Vertex Pharma",
        "Atlas Logistics",
        "Orion Aerospace",
        "Cascade Software",
        "Pinnacle Bank",
        "Meridian Telecom",
        "Harbor Shipping",
        "Summit Retail",
        "Quantum Devices",
        "Helios Solar",
        "Nimbus Cloudworks",
        "Granite Construction",
        "Aurora Studios",
        "Beacon Insurance",
    ];

    /// Sports team names (shared by `team`, `teamName`, `club`).
    pub const TEAMS: &[&str] = &[
        "Rovers",
        "United",
        "Wanderers",
        "Athletic",
        "City",
        "Dynamo",
        "Sporting",
        "Olympic",
        "Falcons",
        "Tigers",
        "Sharks",
        "Eagles",
        "Wolves",
        "Bears",
        "Lions",
        "Hawks",
        "Mariners",
        "Pioneers",
        "Rangers",
        "Royals",
        "Saints",
        "Titans",
        "Comets",
        "Chargers",
    ];

    /// Town prefixes used to compose team/club names.
    pub const TEAM_PREFIXES: &[&str] = &[
        "North", "South", "East", "West", "Lake", "River", "Hill", "Port", "New", "Old", "Green",
        "Red", "Silver", "Golden", "Iron", "Stone",
    ];

    /// Album-like two/three word titles (`album`, `collection`, `product` partially).
    pub const TITLE_WORDS: &[&str] = &[
        "Midnight", "Echo", "Horizon", "Velvet", "Neon", "Silent", "Golden", "Electric", "Crimson",
        "Winter", "Summer", "Shadow", "Light", "River", "Stone", "Glass", "Paper", "Wild", "Blue",
        "Scarlet", "Hidden", "Broken", "Rising", "Falling",
    ];

    /// Music genres (`genre`).
    pub const GENRES: &[&str] = &[
        "Rock",
        "Jazz",
        "Classical",
        "Hip Hop",
        "Electronic",
        "Folk",
        "Blues",
        "Reggae",
        "Country",
        "Metal",
        "Pop",
        "Ambient",
        "Soul",
        "Funk",
        "Opera",
        "Punk",
    ];

    /// Languages (`language`).
    pub const LANGUAGES: &[&str] = &[
        "English",
        "Polish",
        "Italian",
        "German",
        "French",
        "Spanish",
        "Portuguese",
        "Dutch",
        "Swedish",
        "Finnish",
        "Greek",
        "Hungarian",
        "Japanese",
        "Mandarin",
        "Hindi",
        "Swahili",
        "Arabic",
        "Russian",
        "Korean",
        "Turkish",
    ];

    /// Religions (`religion`).
    pub const RELIGIONS: &[&str] = &[
        "Christianity",
        "Islam",
        "Hinduism",
        "Buddhism",
        "Judaism",
        "Sikhism",
        "Shinto",
        "Taoism",
        "Jainism",
        "None",
    ];

    /// Species common names (`species`).
    pub const SPECIES: &[&str] = &[
        "Red Fox",
        "Gray Wolf",
        "Brown Bear",
        "Snow Leopard",
        "Bald Eagle",
        "Barn Owl",
        "Atlantic Salmon",
        "Monarch Butterfly",
        "Green Sea Turtle",
        "African Elephant",
        "Bengal Tiger",
        "Blue Whale",
        "Emperor Penguin",
        "Honey Bee",
        "Garden Snail",
        "Fire Salamander",
    ];

    /// Biological families (`family` in the taxonomic sense, also surnames above).
    pub const TAXON_FAMILIES: &[&str] = &[
        "Canidae",
        "Felidae",
        "Ursidae",
        "Accipitridae",
        "Strigidae",
        "Salmonidae",
        "Nymphalidae",
        "Cheloniidae",
        "Elephantidae",
        "Balaenopteridae",
        "Apidae",
        "Helicidae",
    ];

    /// Education levels (`education`).
    pub const EDUCATION_LEVELS: &[&str] = &[
        "High School Diploma",
        "Bachelor of Science",
        "Bachelor of Arts",
        "Master of Science",
        "Master of Arts",
        "PhD",
        "Associate Degree",
        "Vocational Certificate",
        "MBA",
    ];

    /// Industries (`industry`).
    pub const INDUSTRIES: &[&str] = &[
        "Automotive",
        "Banking",
        "Telecommunications",
        "Healthcare",
        "Retail",
        "Energy",
        "Aerospace",
        "Agriculture",
        "Construction",
        "Software",
        "Pharmaceuticals",
        "Logistics",
        "Hospitality",
        "Insurance",
        "Publishing",
        "Mining",
    ];

    /// Services (`service`).
    pub const SERVICES: &[&str] = &[
        "Express Delivery",
        "Night Bus",
        "Car Rental",
        "Cloud Hosting",
        "Broadband",
        "Catering",
        "House Cleaning",
        "Tax Advisory",
        "Translation",
        "Equipment Repair",
        "Ferry",
        "Shuttle",
    ];

    /// Products (`product`).
    pub const PRODUCTS: &[&str] = &[
        "Laptop Pro 14",
        "Espresso Maker X2",
        "Trail Running Shoes",
        "Noise Cancelling Headphones",
        "Electric Kettle",
        "Mountain Bike 29",
        "Smart Thermostat",
        "Gaming Mouse",
        "Office Chair",
        "Air Purifier",
        "Robot Vacuum",
        "Standing Desk",
        "Water Bottle 750ml",
        "Solar Charger",
    ];

    /// Mechanical / electronic components (`component`).
    pub const COMPONENTS: &[&str] = &[
        "Resistor",
        "Capacitor",
        "Gearbox",
        "Piston",
        "Crankshaft",
        "Voltage Regulator",
        "Heat Sink",
        "Bearing",
        "Camshaft",
        "Microcontroller",
        "Relay",
        "Fuel Pump",
        "Inverter",
        "Transducer",
        "Actuator",
        "Flywheel",
    ];

    /// Museum/library collections (`collection`).
    pub const COLLECTIONS: &[&str] = &[
        "Renaissance Paintings",
        "Ancient Coins",
        "Modern Sculpture",
        "Rare Manuscripts",
        "Impressionist Works",
        "Medieval Armor",
        "Natural History Specimens",
        "Folk Textiles",
        "Photography Archive",
        "Decorative Arts",
    ];

    /// Currencies (`currency`).
    pub const CURRENCIES: &[&str] = &[
        "USD", "EUR", "GBP", "JPY", "PLN", "CHF", "SEK", "NOK", "DKK", "CAD", "AUD", "INR", "BRL",
        "CNY", "KES", "MXN",
    ];

    /// Shell-like commands (`command`).
    pub const COMMANDS: &[&str] = &[
        "ls -la",
        "git status",
        "make build",
        "cargo test",
        "docker run",
        "kubectl get pods",
        "rm -rf tmp",
        "cp src dst",
        "grep -r TODO",
        "tar -xzf data.tar.gz",
        "ping 10.0.0.1",
        "ssh admin@host",
        "chmod +x run.sh",
        "curl -s api/v1/health",
    ];

    /// File formats (`format`).
    pub const FORMATS: &[&str] = &[
        "PDF",
        "CSV",
        "JSON",
        "XML",
        "MP3",
        "MP4",
        "PNG",
        "JPEG",
        "DOCX",
        "XLSX",
        "TXT",
        "WAV",
        "FLAC",
        "EPUB",
        "ZIP",
        "Paperback",
        "Hardcover",
        "Vinyl",
        "DVD",
        "Blu-ray",
    ];

    /// Week days (`day`).
    pub const DAYS: &[&str] = &[
        "Monday",
        "Tuesday",
        "Wednesday",
        "Thursday",
        "Friday",
        "Saturday",
        "Sunday",
    ];

    /// Genders (`gender`, `sex`).
    pub const GENDERS: &[&str] = &["Male", "Female", "M", "F", "Other"];

    /// Status values (`status`).
    pub const STATUSES: &[&str] = &[
        "Active",
        "Inactive",
        "Pending",
        "Completed",
        "Cancelled",
        "On Hold",
        "Approved",
        "Rejected",
        "Open",
        "Closed",
        "Draft",
        "Archived",
    ];

    /// Match / experiment results (`result`).
    pub const RESULTS: &[&str] = &[
        "Win", "Loss", "Draw", "W", "L", "D", "3-1", "2-2", "0-1", "Pass", "Fail", "DNF",
    ];

    /// Generic categories (`category`, `class`, `type`, `classification`).
    pub const CATEGORIES: &[&str] = &[
        "Standard",
        "Premium",
        "Economy",
        "Deluxe",
        "Basic",
        "Advanced",
        "Junior",
        "Senior",
        "Amateur",
        "Professional",
        "Heavyweight",
        "Lightweight",
        "Compact",
        "Full-size",
        "Residential",
        "Commercial",
        "Public",
        "Private",
        "Indoor",
        "Outdoor",
    ];

    /// Player positions (`position`).
    pub const POSITIONS: &[&str] = &[
        "Goalkeeper",
        "Defender",
        "Midfielder",
        "Forward",
        "Striker",
        "Pitcher",
        "Catcher",
        "Point Guard",
        "Center",
        "Wing",
        "Fullback",
        "Prop",
        "Scrum-half",
        "Libero",
    ];

    /// Letter grades (`grades`).
    pub const GRADES: &[&str] = &["A+", "A", "A-", "B+", "B", "B-", "C+", "C", "D", "F"];

    /// Requirements (`requirement`).
    pub const REQUIREMENTS: &[&str] = &[
        "Valid passport",
        "Two years experience",
        "Safety certification",
        "Background check",
        "Driver license",
        "First aid training",
        "Security clearance",
        "Portfolio review",
        "Language proficiency",
        "Minimum age 18",
    ];

    /// Religion-neutral street names for `address`.
    pub const STREETS: &[&str] = &[
        "Main St",
        "Oak Ave",
        "River Rd",
        "Church Ln",
        "Station Rd",
        "High St",
        "Park Blvd",
        "Mill Lane",
        "Bridge St",
        "Market Sq",
        "King St",
        "Queen Ave",
        "Cedar Ct",
        "Elm Dr",
    ];

    /// US states (`state`).
    pub const STATES: &[&str] = &[
        "California",
        "Texas",
        "New York",
        "Florida",
        "Ohio",
        "Illinois",
        "Oregon",
        "Washington",
        "Colorado",
        "Georgia",
        "Arizona",
        "Michigan",
        "Virginia",
        "Massachusetts",
        "CA",
        "TX",
        "NY",
        "FL",
        "OH",
        "IL",
    ];

    /// Counties (`county`).
    pub const COUNTIES: &[&str] = &[
        "Kent",
        "Essex",
        "Surrey",
        "Yorkshire",
        "Cork",
        "Galway",
        "Dane County",
        "Cook County",
        "Orange County",
        "King County",
        "Devon",
        "Norfolk",
        "Suffolk",
        "Cumbria",
    ];

    /// Regions (`region`).
    pub const REGIONS: &[&str] = &[
        "Tuscany",
        "Bavaria",
        "Catalonia",
        "Provence",
        "Andalusia",
        "Silesia",
        "Lombardy",
        "Scandinavia",
        "Midwest",
        "Pacific Northwest",
        "New England",
        "Outback",
        "Patagonia",
        "Lapland",
    ];

    /// Religion of the art: description sentence fragments (`description`, `notes`).
    pub const DESCRIPTION_PHRASES: &[&str] = &[
        "limited edition release",
        "updated quarterly",
        "includes free shipping",
        "award winning design",
        "out of print",
        "subject to availability",
        "best seller in 2019",
        "requires assembly",
        "hand crafted in small batches",
        "discontinued model",
        "available in three colors",
        "new improved formula",
        "officially licensed",
        "restored original",
        "second revised edition",
        "field recording",
    ];

    /// Occupation-ish affiliations for persons (`affiliation`, `affiliate`).
    pub const AFFILIATIONS: &[&str] = &[
        "University of Bologna",
        "Royal Society",
        "National Observatory",
        "Institute of Physics",
        "Academy of Sciences",
        "Conservatory of Music",
        "Polytechnic Institute",
        "Medical College",
        "School of Economics",
        "Astronomical Union",
        "Historical Society",
        "Chamber of Commerce",
    ];

    /// Owner-ish mixed names (person or org) for `owner`, `operator`, `creator`.
    pub const STOCK_SYMBOLS: &[&str] = &[
        "ACME", "GLBX", "INTC", "UMBR", "STRK", "WAYN", "NWND", "CNTS", "FBRK", "TLSP", "WING",
        "LKSM", "RDWD", "BLPK", "IRNM", "SNRS",
    ];
}

/// Deterministic cell-value generator for the 78 semantic types.
///
/// The generator is intentionally stateless apart from the caller-provided
/// RNG, so corpora are fully reproducible from a seed.
#[derive(Debug, Clone, Default)]
pub struct ValueGenerator;

impl ValueGenerator {
    /// Create a new generator.
    pub fn new() -> Self {
        ValueGenerator
    }

    /// Generate a single cell value for `ty`.
    pub fn generate(&self, ty: SemanticType, rng: &mut StdRng) -> String {
        use vocab::*;
        let pick = |pool: &[&str], rng: &mut StdRng| -> String {
            pool[rng.gen_range(0..pool.len())].to_string()
        };
        let person = |rng: &mut StdRng| -> String {
            format!(
                "{} {}",
                FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())],
                LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())]
            )
        };
        let team = |rng: &mut StdRng| -> String {
            format!(
                "{} {}",
                TEAM_PREFIXES[rng.gen_range(0..TEAM_PREFIXES.len())],
                TEAMS[rng.gen_range(0..TEAMS.len())]
            )
        };
        let title = |rng: &mut StdRng| -> String {
            format!(
                "{} {}",
                TITLE_WORDS[rng.gen_range(0..TITLE_WORDS.len())],
                TITLE_WORDS[rng.gen_range(0..TITLE_WORDS.len())]
            )
        };
        let org = |rng: &mut StdRng| pick(ORGANISATIONS, rng);

        match ty {
            // Person-name pool: deliberately shared across many types.
            SemanticType::Name | SemanticType::Person | SemanticType::Jockey => person(rng),
            SemanticType::Artist | SemanticType::Director | SemanticType::Creator => person(rng),
            SemanticType::Owner | SemanticType::Affiliate => {
                if rng.gen_bool(0.6) {
                    person(rng)
                } else {
                    pick(AFFILIATIONS, rng)
                }
            }
            SemanticType::Operator => {
                if rng.gen_bool(0.5) {
                    person(rng)
                } else {
                    org(rng)
                }
            }

            // City pool shared by location-like types (the Figure 1 ambiguity).
            SemanticType::City | SemanticType::BirthPlace => pick(CITIES, rng),
            SemanticType::Location => {
                if rng.gen_bool(0.7) {
                    pick(CITIES, rng)
                } else {
                    format!("{}, {}", pick(CITIES, rng), pick(COUNTRIES, rng))
                }
            }
            SemanticType::Address => format!(
                "{} {}, {}",
                rng.gen_range(1..999),
                pick(STREETS, rng),
                pick(CITIES, rng)
            ),
            SemanticType::County => pick(COUNTIES, rng),
            SemanticType::Region => pick(REGIONS, rng),
            SemanticType::State => pick(STATES, rng),
            SemanticType::Country => pick(COUNTRIES, rng),
            SemanticType::Continent => pick(CONTINENTS, rng),
            SemanticType::Nationality => pick(NATIONALITIES, rng),
            SemanticType::Origin => {
                if rng.gen_bool(0.5) {
                    pick(COUNTRIES, rng)
                } else {
                    pick(NATIONALITIES, rng)
                }
            }

            // Organisation-like pool.
            SemanticType::Company | SemanticType::Manufacturer | SemanticType::Organisation => {
                org(rng)
            }
            SemanticType::Brand | SemanticType::Publisher => org(rng),
            SemanticType::Affiliation => pick(AFFILIATIONS, rng),

            // Team pool.
            SemanticType::Team | SemanticType::TeamName | SemanticType::Club => team(rng),

            // Titles / media.
            SemanticType::Album => title(rng),
            SemanticType::Collection => pick(COLLECTIONS, rng),
            SemanticType::Genre => pick(GENRES, rng),
            SemanticType::Product => pick(PRODUCTS, rng),
            SemanticType::Component => pick(COMPONENTS, rng),
            SemanticType::Service => pick(SERVICES, rng),

            // Categorical short-vocabulary types.
            SemanticType::Type
            | SemanticType::Category
            | SemanticType::Class
            | SemanticType::Classification => pick(CATEGORIES, rng),
            SemanticType::Status => pick(STATUSES, rng),
            SemanticType::Result => pick(RESULTS, rng),
            SemanticType::Position => pick(POSITIONS, rng),
            SemanticType::Format => pick(FORMATS, rng),
            SemanticType::Day => pick(DAYS, rng),
            SemanticType::Gender | SemanticType::Sex => pick(GENDERS, rng),
            SemanticType::Language => pick(LANGUAGES, rng),
            SemanticType::Religion => pick(RELIGIONS, rng),
            SemanticType::Species => pick(SPECIES, rng),
            SemanticType::Family => {
                if rng.gen_bool(0.6) {
                    pick(TAXON_FAMILIES, rng)
                } else {
                    LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())].to_string()
                }
            }
            SemanticType::Education => pick(EDUCATION_LEVELS, rng),
            SemanticType::Industry => pick(INDUSTRIES, rng),
            SemanticType::Grades => pick(GRADES, rng),
            SemanticType::Requirement => pick(REQUIREMENTS, rng),
            SemanticType::Currency => pick(CURRENCIES, rng),
            SemanticType::Command => pick(COMMANDS, rng),

            // Free-text types.
            SemanticType::Description | SemanticType::Notes => {
                let a = pick(DESCRIPTION_PHRASES, rng);
                if rng.gen_bool(0.4) {
                    let b = pick(DESCRIPTION_PHRASES, rng);
                    format!("{a}, {b}")
                } else {
                    a
                }
            }
            SemanticType::Credit => {
                if rng.gen_bool(0.5) {
                    format!("Photo by {}", person(rng))
                } else {
                    rng.gen_range(1..6).to_string()
                }
            }

            // Codes and symbols (shared short alphanumeric shapes).
            SemanticType::Code => {
                if rng.gen_bool(0.5) {
                    format!("{}{:03}", pick(STOCK_SYMBOLS, rng), rng.gen_range(0..999))
                } else {
                    format!("{:04}", rng.gen_range(0..9999))
                }
            }
            SemanticType::Symbol => pick(STOCK_SYMBOLS, rng),
            SemanticType::Isbn => format!(
                "978-{}-{:03}-{:05}-{}",
                rng.gen_range(0..10),
                rng.gen_range(0..1000),
                rng.gen_range(0..100000),
                rng.gen_range(0..10)
            ),

            // Dates and times.
            SemanticType::Year => rng.gen_range(1850..2021).to_string(),
            SemanticType::BirthDate => format!(
                "{:04}-{:02}-{:02}",
                rng.gen_range(1850..2005),
                rng.gen_range(1..13),
                rng.gen_range(1..29)
            ),
            SemanticType::Duration => {
                if rng.gen_bool(0.6) {
                    format!("{}:{:02}", rng.gen_range(1..10), rng.gen_range(0..60))
                } else {
                    format!("{} min", rng.gen_range(2..240))
                }
            }

            // Numeric types with overlapping ranges (hard for single-column).
            SemanticType::Age => rng.gen_range(16..90).to_string(),
            SemanticType::Weight => {
                if rng.gen_bool(0.5) {
                    rng.gen_range(48..130).to_string()
                } else {
                    format!("{} kg", rng.gen_range(48..130))
                }
            }
            SemanticType::Rank => rng.gen_range(1..50).to_string(),
            SemanticType::Ranking => rng.gen_range(1..120).to_string(),
            SemanticType::Order => rng.gen_range(1..30).to_string(),
            SemanticType::Plays => rng.gen_range(0..5000).to_string(),
            SemanticType::Sales => {
                let v = rng.gen_range(1_000..5_000_000u64);
                group_thousands(v)
            }
            SemanticType::Capacity => {
                let v = rng.gen_range(500..90_000u64);
                group_thousands(v)
            }
            SemanticType::Elevation => {
                if rng.gen_bool(0.5) {
                    format!("{} m", rng.gen_range(1..4900))
                } else {
                    rng.gen_range(1..4900).to_string()
                }
            }
            SemanticType::Depth => {
                if rng.gen_bool(0.5) {
                    format!("{} m", rng.gen_range(1..1100))
                } else {
                    rng.gen_range(1..1100).to_string()
                }
            }
            SemanticType::Area => {
                if rng.gen_bool(0.5) {
                    format!("{} km2", rng.gen_range(10..90_000))
                } else {
                    rng.gen_range(10..90_000).to_string()
                }
            }
            SemanticType::FileSize => {
                let units = ["KB", "MB", "GB"];
                format!(
                    "{:.1} {}",
                    rng.gen_range(1.0..900.0),
                    units[rng.gen_range(0..units.len())]
                )
            }
            SemanticType::Range => format!("{}-{}", rng.gen_range(1..50), rng.gen_range(50..200)),
        }
    }

    /// Generate `n` cell values for a column of type `ty`.
    ///
    /// `missing_rate` is the probability of an empty ("dirty") cell, which the
    /// real WebTables corpus exhibits and which the Sherlock feature
    /// extractors must tolerate.
    pub fn generate_column(
        &self,
        ty: SemanticType,
        n: usize,
        missing_rate: f64,
        rng: &mut StdRng,
    ) -> Vec<String> {
        (0..n)
            .map(|_| {
                if missing_rate > 0.0 && rng.gen_bool(missing_rate) {
                    String::new()
                } else {
                    self.generate(ty, rng)
                }
            })
            .collect()
    }
}

/// Format an integer with thousands separators (e.g. `1_777_972` → `"1,777,972"`).
fn group_thousands(mut v: u64) -> String {
    if v == 0 {
        return "0".to_string();
    }
    let mut groups = Vec::new();
    while v > 0 {
        groups.push((v % 1000) as u16);
        v /= 1000;
    }
    let mut out = String::new();
    for (i, g) in groups.iter().rev().enumerate() {
        if i == 0 {
            out.push_str(&g.to_string());
        } else {
            out.push_str(&format!(",{:03}", g));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn every_type_generates_nonempty_values() {
        let gen = ValueGenerator::new();
        let mut r = rng(1);
        for ty in SemanticType::ALL {
            for _ in 0..20 {
                let v = gen.generate(ty, &mut r);
                assert!(!v.is_empty(), "type {ty} generated an empty value");
            }
        }
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let gen = ValueGenerator::new();
        let mut a = rng(42);
        let mut b = rng(42);
        for ty in SemanticType::ALL {
            assert_eq!(gen.generate(ty, &mut a), gen.generate(ty, &mut b));
        }
    }

    #[test]
    fn ambiguous_types_share_vocabulary() {
        // City and birthPlace must draw from the same pool so that a
        // single-column model cannot trivially separate them (Figure 1).
        let gen = ValueGenerator::new();
        let mut r = rng(7);
        for _ in 0..50 {
            let v = gen.generate(SemanticType::BirthPlace, &mut r);
            assert!(vocab::CITIES.contains(&v.as_str()));
        }
    }

    #[test]
    fn numeric_types_parse_as_numbers() {
        let gen = ValueGenerator::new();
        let mut r = rng(3);
        for _ in 0..50 {
            let v = gen.generate(SemanticType::Age, &mut r);
            let age: u32 = v.parse().expect("age should be a bare integer");
            assert!((16..90).contains(&age));
        }
    }

    #[test]
    fn missing_rate_produces_empty_cells() {
        let gen = ValueGenerator::new();
        let mut r = rng(5);
        let col = gen.generate_column(SemanticType::City, 500, 0.3, &mut r);
        let missing = col.iter().filter(|v| v.is_empty()).count();
        assert!(missing > 80 && missing < 250, "missing count {missing}");
    }

    #[test]
    fn zero_missing_rate_produces_no_empty_cells() {
        let gen = ValueGenerator::new();
        let mut r = rng(5);
        let col = gen.generate_column(SemanticType::Sales, 100, 0.0, &mut r);
        assert!(col.iter().all(|v| !v.is_empty()));
    }

    #[test]
    fn thousands_grouping() {
        assert_eq!(group_thousands(0), "0");
        assert_eq!(group_thousands(999), "999");
        assert_eq!(group_thousands(1_000), "1,000");
        assert_eq!(group_thousands(1_777_972), "1,777,972");
        assert_eq!(group_thousands(380_948), "380,948");
    }

    #[test]
    fn isbn_has_expected_shape() {
        let gen = ValueGenerator::new();
        let mut r = rng(11);
        let v = gen.generate(SemanticType::Isbn, &mut r);
        assert!(v.starts_with("978-"));
        assert_eq!(v.split('-').count(), 5);
    }
}
