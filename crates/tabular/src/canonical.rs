//! Canonicalization of raw column headers into the paper's canonical form.
//!
//! Section 4.1 of the paper: *"The canonicalization process starts with
//! trimming content in parentheses. We then convert strings to lower case,
//! capitalize words except for the first (if there are more than one word)
//! and concatenate the results into a single string."*
//!
//! Examples from the paper:
//! * `"YEAR"`, `"Year"`, `"year (first occurrence)"` → `"year"`
//! * `"birth place (country)"` → `"birthPlace"`

use crate::types::SemanticType;

/// Convert a raw column header into its canonical camel-case form.
///
/// The transformation is:
/// 1. drop any content inside parentheses (including nested/unbalanced ones),
/// 2. split into words on whitespace, underscores, hyphens and other
///    non-alphanumeric separators,
/// 3. lower-case every word, then capitalize the first letter of every word
///    except the first,
/// 4. concatenate.
///
/// ```
/// use sato_tabular::canonical::canonicalize_header;
/// assert_eq!(canonicalize_header("YEAR"), "year");
/// assert_eq!(canonicalize_header("year (first occurrence)"), "year");
/// assert_eq!(canonicalize_header("birth place (country)"), "birthPlace");
/// assert_eq!(canonicalize_header("File_Size"), "fileSize");
/// ```
pub fn canonicalize_header(raw: &str) -> String {
    let trimmed = strip_parentheses(raw);
    // Insert word boundaries at lower-case → upper-case transitions so that
    // headers that are already camel-cased ("birthPlace", "fileSize") are
    // preserved by the round trip rather than collapsed to a single word.
    let mut spaced = String::with_capacity(trimmed.len() + 8);
    let mut prev_lower_or_digit = false;
    for c in trimmed.chars() {
        if c.is_uppercase() && prev_lower_or_digit {
            spaced.push(' ');
        }
        prev_lower_or_digit = c.is_lowercase() || c.is_ascii_digit();
        spaced.push(c);
    }
    let words: Vec<String> = spaced
        .split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty())
        .map(|w| w.to_lowercase())
        .collect();

    let mut out = String::with_capacity(trimmed.len());
    for (i, word) in words.iter().enumerate() {
        if i == 0 {
            out.push_str(word);
        } else {
            let mut chars = word.chars();
            if let Some(first) = chars.next() {
                out.extend(first.to_uppercase());
                out.push_str(chars.as_str());
            }
        }
    }
    out
}

/// Remove all parenthesised content from a header string.
///
/// Unbalanced opening parentheses drop everything that follows them, which
/// matches the "trim content in parentheses" description conservatively.
fn strip_parentheses(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut depth = 0usize;
    for c in s.chars() {
        match c {
            '(' | '[' | '{' => depth += 1,
            ')' | ']' | '}' => depth = depth.saturating_sub(1),
            _ if depth == 0 => out.push(c),
            _ => {}
        }
    }
    out
}

/// Canonicalize a header and look it up in the 78-type registry.
///
/// Returns `None` when the canonical form is not one of the semantic types
/// considered by the paper; such columns are excluded from the dataset
/// exactly as the paper excludes headers outside the 78 types.
pub fn header_to_type(raw: &str) -> Option<SemanticType> {
    SemanticType::from_canonical_name(&canonicalize_header(raw))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_examples() {
        assert_eq!(canonicalize_header("YEAR"), "year");
        assert_eq!(canonicalize_header("Year"), "year");
        assert_eq!(canonicalize_header("year (first occurrence)"), "year");
        assert_eq!(canonicalize_header("birth place (country)"), "birthPlace");
    }

    #[test]
    fn separators_become_camel_case() {
        assert_eq!(canonicalize_header("file_size"), "fileSize");
        assert_eq!(canonicalize_header("file-size"), "fileSize");
        assert_eq!(canonicalize_header("TEAM NAME"), "teamName");
        assert_eq!(canonicalize_header("Birth Date"), "birthDate");
    }

    #[test]
    fn camel_case_headers_are_preserved() {
        assert_eq!(canonicalize_header("birthPlace"), "birthPlace");
        assert_eq!(canonicalize_header("fileSize"), "fileSize");
        assert_eq!(canonicalize_header("teamName"), "teamName");
        // Fully upper-case single words still collapse to lower case.
        assert_eq!(canonicalize_header("ISBN"), "isbn");
    }

    #[test]
    fn nested_and_unbalanced_parentheses() {
        assert_eq!(canonicalize_header("rank (overall (2019))"), "rank");
        assert_eq!(canonicalize_header("rank (overall"), "rank");
        assert_eq!(canonicalize_header("sales [millions]"), "sales");
    }

    #[test]
    fn empty_and_symbol_only_headers() {
        assert_eq!(canonicalize_header(""), "");
        assert_eq!(canonicalize_header("___"), "");
        assert_eq!(canonicalize_header("(hidden)"), "");
    }

    #[test]
    fn header_lookup_matches_registry() {
        assert_eq!(
            header_to_type("Birth Place"),
            Some(SemanticType::BirthPlace)
        );
        assert_eq!(header_to_type("CITY"), Some(SemanticType::City));
        assert_eq!(header_to_type("population"), None);
    }

    #[test]
    fn unicode_headers_do_not_panic() {
        assert_eq!(canonicalize_header("Größe"), "größe");
        assert_eq!(canonicalize_header("année (fr)"), "année");
    }
}
