//! The registry of the 78 semantic types used throughout the Sato paper.
//!
//! The paper (Section 4.1) restricts itself to 78 semantic types that
//! originate from the T2Dv2 gold standard and survive the canonicalization
//! process described in the evaluation. The concrete list is taken from the
//! type axis of Figure 5 of the paper.
//!
//! Each type is represented by a dense integer id (`SemanticType as usize`)
//! so that models can use it directly as a class index, and by its canonical
//! camel-case name (e.g. `birthPlace`) used for matching column headers.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Number of semantic types supported by the classifier (the paper's `|T|`).
pub const NUM_TYPES: usize = 78;

/// A semantic column type, e.g. `city`, `birthPlace` or `sales`.
///
/// The discriminant values are stable and densely packed in `0..NUM_TYPES`,
/// which makes `SemanticType` directly usable as a class index for the
/// neural network and the CRF.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
#[allow(missing_docs)] // the canonical names below document every variant
pub enum SemanticType {
    Name = 0,
    Description,
    Team,
    Type,
    Age,
    Location,
    Year,
    City,
    Rank,
    Status,
    State,
    Category,
    Weight,
    Code,
    Club,
    Artist,
    Result,
    Position,
    Country,
    Notes,
    Class,
    Company,
    Album,
    Symbol,
    Address,
    Duration,
    Format,
    County,
    Day,
    Gender,
    Industry,
    Language,
    Sex,
    Product,
    Jockey,
    Region,
    Area,
    Service,
    TeamName,
    Order,
    Isbn,
    FileSize,
    Grades,
    Publisher,
    Plays,
    Origin,
    Elevation,
    Affiliation,
    Component,
    Owner,
    Genre,
    Manufacturer,
    Brand,
    Family,
    Credit,
    Depth,
    Classification,
    Collection,
    Species,
    Command,
    Nationality,
    Currency,
    Range,
    Affiliate,
    BirthDate,
    Ranking,
    Capacity,
    BirthPlace,
    Person,
    Creator,
    Operator,
    Religion,
    Education,
    Requirement,
    Director,
    Sales,
    Continent,
    Organisation,
}

impl SemanticType {
    /// All 78 semantic types in id order (the order of Figure 5 of the paper,
    /// which is descending frequency in the WebTables sample).
    pub const ALL: [SemanticType; NUM_TYPES] = [
        SemanticType::Name,
        SemanticType::Description,
        SemanticType::Team,
        SemanticType::Type,
        SemanticType::Age,
        SemanticType::Location,
        SemanticType::Year,
        SemanticType::City,
        SemanticType::Rank,
        SemanticType::Status,
        SemanticType::State,
        SemanticType::Category,
        SemanticType::Weight,
        SemanticType::Code,
        SemanticType::Club,
        SemanticType::Artist,
        SemanticType::Result,
        SemanticType::Position,
        SemanticType::Country,
        SemanticType::Notes,
        SemanticType::Class,
        SemanticType::Company,
        SemanticType::Album,
        SemanticType::Symbol,
        SemanticType::Address,
        SemanticType::Duration,
        SemanticType::Format,
        SemanticType::County,
        SemanticType::Day,
        SemanticType::Gender,
        SemanticType::Industry,
        SemanticType::Language,
        SemanticType::Sex,
        SemanticType::Product,
        SemanticType::Jockey,
        SemanticType::Region,
        SemanticType::Area,
        SemanticType::Service,
        SemanticType::TeamName,
        SemanticType::Order,
        SemanticType::Isbn,
        SemanticType::FileSize,
        SemanticType::Grades,
        SemanticType::Publisher,
        SemanticType::Plays,
        SemanticType::Origin,
        SemanticType::Elevation,
        SemanticType::Affiliation,
        SemanticType::Component,
        SemanticType::Owner,
        SemanticType::Genre,
        SemanticType::Manufacturer,
        SemanticType::Brand,
        SemanticType::Family,
        SemanticType::Credit,
        SemanticType::Depth,
        SemanticType::Classification,
        SemanticType::Collection,
        SemanticType::Species,
        SemanticType::Command,
        SemanticType::Nationality,
        SemanticType::Currency,
        SemanticType::Range,
        SemanticType::Affiliate,
        SemanticType::BirthDate,
        SemanticType::Ranking,
        SemanticType::Capacity,
        SemanticType::BirthPlace,
        SemanticType::Person,
        SemanticType::Creator,
        SemanticType::Operator,
        SemanticType::Religion,
        SemanticType::Education,
        SemanticType::Requirement,
        SemanticType::Director,
        SemanticType::Sales,
        SemanticType::Continent,
        SemanticType::Organisation,
    ];

    /// Dense class index in `0..NUM_TYPES`.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`SemanticType::index`]. Returns `None` when `idx >= NUM_TYPES`.
    #[inline]
    pub fn from_index(idx: usize) -> Option<SemanticType> {
        Self::ALL.get(idx).copied()
    }

    /// The canonical camel-case name used by the paper (and by the
    /// canonicalized column headers), e.g. `"birthPlace"` or `"fileSize"`.
    pub fn canonical_name(self) -> &'static str {
        match self {
            SemanticType::Name => "name",
            SemanticType::Description => "description",
            SemanticType::Team => "team",
            SemanticType::Type => "type",
            SemanticType::Age => "age",
            SemanticType::Location => "location",
            SemanticType::Year => "year",
            SemanticType::City => "city",
            SemanticType::Rank => "rank",
            SemanticType::Status => "status",
            SemanticType::State => "state",
            SemanticType::Category => "category",
            SemanticType::Weight => "weight",
            SemanticType::Code => "code",
            SemanticType::Club => "club",
            SemanticType::Artist => "artist",
            SemanticType::Result => "result",
            SemanticType::Position => "position",
            SemanticType::Country => "country",
            SemanticType::Notes => "notes",
            SemanticType::Class => "class",
            SemanticType::Company => "company",
            SemanticType::Album => "album",
            SemanticType::Symbol => "symbol",
            SemanticType::Address => "address",
            SemanticType::Duration => "duration",
            SemanticType::Format => "format",
            SemanticType::County => "county",
            SemanticType::Day => "day",
            SemanticType::Gender => "gender",
            SemanticType::Industry => "industry",
            SemanticType::Language => "language",
            SemanticType::Sex => "sex",
            SemanticType::Product => "product",
            SemanticType::Jockey => "jockey",
            SemanticType::Region => "region",
            SemanticType::Area => "area",
            SemanticType::Service => "service",
            SemanticType::TeamName => "teamName",
            SemanticType::Order => "order",
            SemanticType::Isbn => "isbn",
            SemanticType::FileSize => "fileSize",
            SemanticType::Grades => "grades",
            SemanticType::Publisher => "publisher",
            SemanticType::Plays => "plays",
            SemanticType::Origin => "origin",
            SemanticType::Elevation => "elevation",
            SemanticType::Affiliation => "affiliation",
            SemanticType::Component => "component",
            SemanticType::Owner => "owner",
            SemanticType::Genre => "genre",
            SemanticType::Manufacturer => "manufacturer",
            SemanticType::Brand => "brand",
            SemanticType::Family => "family",
            SemanticType::Credit => "credit",
            SemanticType::Depth => "depth",
            SemanticType::Classification => "classification",
            SemanticType::Collection => "collection",
            SemanticType::Species => "species",
            SemanticType::Command => "command",
            SemanticType::Nationality => "nationality",
            SemanticType::Currency => "currency",
            SemanticType::Range => "range",
            SemanticType::Affiliate => "affiliate",
            SemanticType::BirthDate => "birthDate",
            SemanticType::Ranking => "ranking",
            SemanticType::Capacity => "capacity",
            SemanticType::BirthPlace => "birthPlace",
            SemanticType::Person => "person",
            SemanticType::Creator => "creator",
            SemanticType::Operator => "operator",
            SemanticType::Religion => "religion",
            SemanticType::Education => "education",
            SemanticType::Requirement => "requirement",
            SemanticType::Director => "director",
            SemanticType::Sales => "sales",
            SemanticType::Continent => "continent",
            SemanticType::Organisation => "organisation",
        }
    }

    /// Look up a semantic type from its canonical name.
    pub fn from_canonical_name(name: &str) -> Option<SemanticType> {
        Self::ALL
            .iter()
            .copied()
            .find(|t| t.canonical_name() == name)
    }

    /// Whether the values of this type are predominantly numeric.
    ///
    /// Used by value generators and by the statistics feature extractor tests;
    /// mirrors the paper's observation (Section 5.7) that numerical columns
    /// such as `duration`, `sales`, `age`, `weight`, `code` are particularly
    /// ambiguous for single-column models.
    pub fn is_numeric(self) -> bool {
        matches!(
            self,
            SemanticType::Age
                | SemanticType::Year
                | SemanticType::Rank
                | SemanticType::Weight
                | SemanticType::Duration
                | SemanticType::FileSize
                | SemanticType::Plays
                | SemanticType::Elevation
                | SemanticType::Depth
                | SemanticType::Sales
                | SemanticType::Ranking
                | SemanticType::Capacity
                | SemanticType::Order
                | SemanticType::Credit
                | SemanticType::Area
                | SemanticType::Isbn
        )
    }
}

impl fmt::Display for SemanticType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.canonical_name())
    }
}

/// Error returned when parsing an unknown semantic type name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownTypeError(pub String);

impl fmt::Display for UnknownTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown semantic type: {:?}", self.0)
    }
}

impl std::error::Error for UnknownTypeError {}

impl FromStr for SemanticType {
    type Err = UnknownTypeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        SemanticType::from_canonical_name(s).ok_or_else(|| UnknownTypeError(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn there_are_exactly_78_types() {
        assert_eq!(SemanticType::ALL.len(), NUM_TYPES);
        assert_eq!(NUM_TYPES, 78);
    }

    #[test]
    fn indices_are_dense_and_stable() {
        for (i, t) in SemanticType::ALL.iter().enumerate() {
            assert_eq!(t.index(), i);
            assert_eq!(SemanticType::from_index(i), Some(*t));
        }
        assert_eq!(SemanticType::from_index(NUM_TYPES), None);
    }

    #[test]
    fn canonical_names_are_unique() {
        let names: HashSet<&str> = SemanticType::ALL
            .iter()
            .map(|t| t.canonical_name())
            .collect();
        assert_eq!(names.len(), NUM_TYPES);
    }

    #[test]
    fn canonical_name_round_trips() {
        for t in SemanticType::ALL {
            assert_eq!(
                SemanticType::from_canonical_name(t.canonical_name()),
                Some(t)
            );
            assert_eq!(t.canonical_name().parse::<SemanticType>().unwrap(), t);
        }
    }

    #[test]
    fn from_str_rejects_unknown_names() {
        assert!("population".parse::<SemanticType>().is_err());
        assert!("".parse::<SemanticType>().is_err());
    }

    #[test]
    fn display_matches_canonical_name() {
        assert_eq!(SemanticType::BirthPlace.to_string(), "birthPlace");
        assert_eq!(SemanticType::FileSize.to_string(), "fileSize");
        assert_eq!(SemanticType::Organisation.to_string(), "organisation");
    }

    #[test]
    fn figure5_head_types_have_small_indices() {
        // Figure 5 orders types by descending frequency; the head of the
        // long-tail distribution must come first so the corpus generator can
        // reuse the index as a frequency rank.
        assert_eq!(SemanticType::Name.index(), 0);
        assert!(SemanticType::Description.index() < SemanticType::Sales.index());
        assert!(SemanticType::City.index() < SemanticType::BirthPlace.index());
    }

    #[test]
    fn numeric_flag_covers_expected_types() {
        assert!(SemanticType::Age.is_numeric());
        assert!(SemanticType::Sales.is_numeric());
        assert!(!SemanticType::City.is_numeric());
        assert!(!SemanticType::Name.is_numeric());
    }

    #[test]
    fn serde_round_trip() {
        let t = SemanticType::BirthPlace;
        let json = serde_json::to_string(&t).unwrap();
        let back: SemanticType = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
