//! Semantic-type co-occurrence statistics.
//!
//! Section 4.1 / Figure 6 of the paper analyse how often pairs of semantic
//! types appear in the same table, and Section 4.3 initialises the CRF's
//! pairwise potentials with a column co-occurrence matrix computed from a
//! held-out portion of the corpus. This module provides both statistics:
//! *same-table* co-occurrence (Figure 6) and *adjacent-column* co-occurrence
//! (CRF initialisation).

use crate::table::Corpus;
use crate::types::{SemanticType, NUM_TYPES};
use serde::{Deserialize, Serialize};

/// A dense |T|×|T| matrix of co-occurrence counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CooccurrenceMatrix {
    counts: Vec<u64>,
}

impl Default for CooccurrenceMatrix {
    fn default() -> Self {
        Self::new()
    }
}

impl CooccurrenceMatrix {
    /// An all-zero matrix.
    pub fn new() -> Self {
        CooccurrenceMatrix {
            counts: vec![0; NUM_TYPES * NUM_TYPES],
        }
    }

    /// Count same-table co-occurrences over a corpus (the statistic plotted
    /// in Figure 6). Every unordered pair of columns in a table contributes
    /// one count to both `(a, b)` and `(b, a)`; pairs of columns with the
    /// same type contribute to the diagonal, which is why the paper notes
    /// non-zero diagonal values.
    pub fn same_table(corpus: &Corpus) -> Self {
        let mut m = Self::new();
        for table in corpus.iter() {
            let labels = &table.labels;
            for i in 0..labels.len() {
                for j in (i + 1)..labels.len() {
                    m.increment(labels[i], labels[j]);
                }
            }
        }
        m
    }

    /// Count adjacent-column co-occurrences (columns `i` and `i+1`), which is
    /// what the linear-chain CRF's pairwise potentials model and what the
    /// paper uses to initialise them.
    pub fn adjacent_columns(corpus: &Corpus) -> Self {
        let mut m = Self::new();
        for table in corpus.iter() {
            for pair in table.labels.windows(2) {
                m.increment(pair[0], pair[1]);
            }
        }
        m
    }

    /// Add one symmetric co-occurrence of `(a, b)`.
    pub fn increment(&mut self, a: SemanticType, b: SemanticType) {
        let (ia, ib) = (a.index(), b.index());
        self.counts[ia * NUM_TYPES + ib] += 1;
        if ia != ib {
            self.counts[ib * NUM_TYPES + ia] += 1;
        }
    }

    /// Raw count for the pair `(a, b)`.
    pub fn count(&self, a: SemanticType, b: SemanticType) -> u64 {
        self.counts[a.index() * NUM_TYPES + b.index()]
    }

    /// Natural-log count (`ln(1 + count)`), the scale used by Figure 6 and a
    /// numerically safe initialisation for CRF pairwise potentials.
    pub fn log_count(&self, a: SemanticType, b: SemanticType) -> f64 {
        (1.0 + self.count(a, b) as f64).ln()
    }

    /// The full matrix as a dense row-major `Vec<f64>` of `ln(1 + count)`,
    /// indexed `[a * NUM_TYPES + b]`. This is the initial pairwise-potential
    /// matrix handed to the CRF.
    pub fn log_matrix(&self) -> Vec<f64> {
        self.counts.iter().map(|&c| (1.0 + c as f64).ln()).collect()
    }

    /// Total number of counted pairs (symmetric pairs counted once).
    pub fn total_pairs(&self) -> u64 {
        let mut total = 0;
        for a in 0..NUM_TYPES {
            for b in a..NUM_TYPES {
                total += self.counts[a * NUM_TYPES + b];
            }
        }
        total
    }

    /// The `k` most frequent unordered pairs of *distinct* types, descending.
    /// These are the "most frequently co-occurring pairs" the paper lists
    /// ((city, state), (age, weight), (age, name), (code, description)).
    pub fn top_pairs(&self, k: usize) -> Vec<(SemanticType, SemanticType, u64)> {
        let mut pairs = Vec::new();
        for a in 0..NUM_TYPES {
            for b in (a + 1)..NUM_TYPES {
                let c = self.counts[a * NUM_TYPES + b];
                if c > 0 {
                    pairs.push((
                        SemanticType::from_index(a).unwrap(),
                        SemanticType::from_index(b).unwrap(),
                        c,
                    ));
                }
            }
        }
        pairs.sort_by_key(|p| std::cmp::Reverse(p.2));
        pairs.truncate(k);
        pairs
    }

    /// Extract the log-scale sub-matrix for a selected list of types (the
    /// heat map of Figure 6 shows a selected subset of 28 types).
    pub fn submatrix_log(&self, types: &[SemanticType]) -> Vec<Vec<f64>> {
        types
            .iter()
            .map(|a| types.iter().map(|b| self.log_count(*a, *b)).collect())
            .collect()
    }
}

/// The selected types displayed on the axes of Figure 6 of the paper.
pub const FIGURE6_TYPES: &[SemanticType] = &[
    SemanticType::Address,
    SemanticType::Language,
    SemanticType::Component,
    SemanticType::Elevation,
    SemanticType::Company,
    SemanticType::Collection,
    SemanticType::Gender,
    SemanticType::Day,
    SemanticType::Description,
    SemanticType::Type,
    SemanticType::Rank,
    SemanticType::Year,
    SemanticType::Location,
    SemanticType::Status,
    SemanticType::City,
    SemanticType::State,
    SemanticType::County,
    SemanticType::Country,
    SemanticType::Class,
    SemanticType::Position,
    SemanticType::Code,
    SemanticType::Weight,
    SemanticType::Category,
    SemanticType::Team,
    SemanticType::Notes,
    SemanticType::Result,
    SemanticType::Age,
    SemanticType::Name,
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::default_corpus;
    use crate::table::{Column, Table};

    fn small_corpus() -> Corpus {
        Corpus::new(vec![
            Table::labelled(
                0,
                vec![Column::new(["a"]), Column::new(["b"]), Column::new(["c"])],
                vec![SemanticType::City, SemanticType::State, SemanticType::City],
            ),
            Table::labelled(
                1,
                vec![Column::new(["a"]), Column::new(["b"])],
                vec![SemanticType::Age, SemanticType::Weight],
            ),
        ])
    }

    #[test]
    fn same_table_counts_are_symmetric() {
        let m = CooccurrenceMatrix::same_table(&small_corpus());
        assert_eq!(
            m.count(SemanticType::City, SemanticType::State),
            m.count(SemanticType::State, SemanticType::City)
        );
        assert_eq!(m.count(SemanticType::City, SemanticType::State), 2);
        assert_eq!(m.count(SemanticType::Age, SemanticType::Weight), 1);
        // Diagonal: city co-occurs with itself once in the first table.
        assert_eq!(m.count(SemanticType::City, SemanticType::City), 1);
    }

    #[test]
    fn adjacent_counts_only_neighbours() {
        let m = CooccurrenceMatrix::adjacent_columns(&small_corpus());
        assert_eq!(m.count(SemanticType::City, SemanticType::State), 2);
        // city and city are NOT adjacent in the first table (positions 0, 2).
        assert_eq!(m.count(SemanticType::City, SemanticType::City), 0);
    }

    #[test]
    fn log_count_is_monotone_in_count() {
        let m = CooccurrenceMatrix::same_table(&small_corpus());
        assert!(
            m.log_count(SemanticType::City, SemanticType::State)
                > m.log_count(SemanticType::Age, SemanticType::Weight)
        );
        assert_eq!(m.log_count(SemanticType::Isbn, SemanticType::Day), 0.0);
    }

    #[test]
    fn top_pairs_sorted_descending() {
        let corpus = default_corpus(1500, 6);
        let m = CooccurrenceMatrix::same_table(&corpus);
        let top = m.top_pairs(15);
        assert!(!top.is_empty());
        assert!(top.windows(2).all(|w| w[0].2 >= w[1].2));
        // The paper's flagship pair must be near the top of our corpus too.
        let city_state_rank = top.iter().position(|(a, b, _)| {
            (*a == SemanticType::City && *b == SemanticType::State)
                || (*a == SemanticType::State && *b == SemanticType::City)
        });
        assert!(
            city_state_rank.is_some(),
            "city/state not in top-15: {top:?}"
        );
    }

    #[test]
    fn submatrix_has_requested_shape() {
        let m = CooccurrenceMatrix::same_table(&small_corpus());
        let sub = m.submatrix_log(FIGURE6_TYPES);
        assert_eq!(sub.len(), FIGURE6_TYPES.len());
        assert!(sub.iter().all(|row| row.len() == FIGURE6_TYPES.len()));
    }

    #[test]
    fn log_matrix_dimensions() {
        let m = CooccurrenceMatrix::same_table(&small_corpus());
        assert_eq!(m.log_matrix().len(), NUM_TYPES * NUM_TYPES);
        assert!(m.total_pairs() >= 4);
    }
}
