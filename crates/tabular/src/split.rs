//! Train/test splitting and k-fold cross-validation over tables.
//!
//! The paper performs 5-fold cross-validation at the *table* level: 80% of
//! tables train the model, the held-out 20% are used for evaluation, and the
//! process repeats for each fold (Section 4.1). Splitting by table rather
//! than by column keeps all the columns of one table on the same side, which
//! matters because Sato's prediction is table-wise.

use crate::table::{Corpus, Table};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A single train/test partition of a corpus (tables are cloned so folds can
/// be consumed independently).
#[derive(Debug, Clone)]
pub struct Split {
    /// Training tables.
    pub train: Corpus,
    /// Held-out evaluation tables.
    pub test: Corpus,
}

/// Deterministically shuffle table indices for a seed.
fn shuffled_indices(n: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    idx
}

/// Split a corpus into a train and a test portion with the given test
/// fraction (e.g. `0.2` reproduces the paper's 80/20 held-out evaluation).
pub fn train_test_split(corpus: &Corpus, test_fraction: f64, seed: u64) -> Split {
    assert!(
        (0.0..1.0).contains(&test_fraction),
        "test_fraction must be in [0, 1), got {test_fraction}"
    );
    let idx = shuffled_indices(corpus.len(), seed);
    let test_size = ((corpus.len() as f64) * test_fraction).round() as usize;
    let (test_idx, train_idx) = idx.split_at(test_size.min(corpus.len()));
    Split {
        train: gather(corpus, train_idx),
        test: gather(corpus, test_idx),
    }
}

/// Produce `k` cross-validation folds. Fold `i` uses partition `i` as the
/// test set and the remaining partitions as training data. Every table
/// appears in exactly one test set across the folds.
pub fn k_fold(corpus: &Corpus, k: usize, seed: u64) -> Vec<Split> {
    assert!(k >= 2, "k-fold requires k >= 2, got {k}");
    assert!(
        corpus.len() >= k,
        "cannot build {k} folds from {} tables",
        corpus.len()
    );
    let idx = shuffled_indices(corpus.len(), seed);
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, table_idx) in idx.into_iter().enumerate() {
        folds[i % k].push(table_idx);
    }
    (0..k)
        .map(|fold| {
            let test_idx = &folds[fold];
            let train_idx: Vec<usize> = folds
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != fold)
                .flat_map(|(_, f)| f.iter().copied())
                .collect();
            Split {
                train: gather(corpus, &train_idx),
                test: gather(corpus, test_idx),
            }
        })
        .collect()
}

fn gather(corpus: &Corpus, indices: &[usize]) -> Corpus {
    Corpus::new(indices.iter().map(|&i| corpus.tables[i].clone()).collect())
}

/// Partition a corpus into two disjoint halves by table id parity; used to
/// obtain the "held-out set of the WebTables corpus" the paper uses for the
/// CRF pairwise-potential initialisation without touching the CV folds.
pub fn holdout_by_parity(corpus: &Corpus) -> (Corpus, Corpus) {
    let (even, odd): (Vec<Table>, Vec<Table>) =
        corpus.tables.iter().cloned().partition(|t| t.id % 2 == 0);
    (Corpus::new(even), Corpus::new(odd))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::default_corpus;
    use std::collections::HashSet;

    #[test]
    fn train_test_split_sizes() {
        let corpus = default_corpus(100, 1);
        let split = train_test_split(&corpus, 0.2, 3);
        assert_eq!(split.test.len(), 20);
        assert_eq!(split.train.len(), 80);
    }

    #[test]
    fn split_is_disjoint_and_covers_corpus() {
        let corpus = default_corpus(50, 2);
        let split = train_test_split(&corpus, 0.3, 5);
        let train_ids: HashSet<u64> = split.train.iter().map(|t| t.id).collect();
        let test_ids: HashSet<u64> = split.test.iter().map(|t| t.id).collect();
        assert!(train_ids.is_disjoint(&test_ids));
        assert_eq!(train_ids.len() + test_ids.len(), corpus.len());
    }

    #[test]
    fn split_is_deterministic() {
        let corpus = default_corpus(40, 3);
        let a = train_test_split(&corpus, 0.25, 9);
        let b = train_test_split(&corpus, 0.25, 9);
        let ids = |c: &Corpus| c.iter().map(|t| t.id).collect::<Vec<_>>();
        assert_eq!(ids(&a.test), ids(&b.test));
    }

    #[test]
    #[should_panic(expected = "test_fraction")]
    fn invalid_fraction_panics() {
        let corpus = default_corpus(10, 1);
        train_test_split(&corpus, 1.5, 0);
    }

    #[test]
    fn k_fold_covers_every_table_exactly_once() {
        let corpus = default_corpus(53, 4);
        let folds = k_fold(&corpus, 5, 11);
        assert_eq!(folds.len(), 5);
        let mut seen: Vec<u64> = Vec::new();
        for fold in &folds {
            assert_eq!(fold.train.len() + fold.test.len(), corpus.len());
            seen.extend(fold.test.iter().map(|t| t.id));
        }
        seen.sort_unstable();
        let mut expected: Vec<u64> = corpus.iter().map(|t| t.id).collect();
        expected.sort_unstable();
        assert_eq!(seen, expected);
    }

    #[test]
    fn k_fold_train_and_test_are_disjoint() {
        let corpus = default_corpus(30, 5);
        for fold in k_fold(&corpus, 3, 1) {
            let train_ids: HashSet<u64> = fold.train.iter().map(|t| t.id).collect();
            assert!(fold.test.iter().all(|t| !train_ids.contains(&t.id)));
        }
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn k_fold_rejects_k1() {
        let corpus = default_corpus(10, 1);
        k_fold(&corpus, 1, 0);
    }

    #[test]
    fn holdout_by_parity_is_disjoint() {
        let corpus = default_corpus(21, 6);
        let (even, odd) = holdout_by_parity(&corpus);
        assert_eq!(even.len() + odd.len(), corpus.len());
        assert!(even.iter().all(|t| t.id % 2 == 0));
        assert!(odd.iter().all(|t| t.id % 2 == 1));
    }
}
