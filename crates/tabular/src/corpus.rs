//! Synthetic WebTables-style corpus generation.
//!
//! This is the data substrate that replaces the VizNet/WebTables corpus used
//! by the paper (see DESIGN.md §2). Generation follows the paper's own
//! generative story (Figure 3a): *intent → column types → column values*,
//! with a long-tailed type distribution and realistic table shapes.

use crate::intents::{sample_intent, TableIntent, INTENTS};
use crate::table::{Column, Corpus, Table};
use crate::types::SemanticType;
use crate::values::ValueGenerator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the synthetic corpus generator.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Number of tables to generate (the paper's `D` has 80K; the default is
    /// laptop-sized while keeping the same statistical structure).
    pub num_tables: usize,
    /// RNG seed; the corpus is a pure function of the configuration.
    pub seed: u64,
    /// Fraction of singleton (single-column) tables. The paper keeps them in
    /// `D` but filters them out of `D_mult` (~59% of its 80K tables are
    /// multi-column: 33K/80K ≈ 0.41 singletons).
    pub singleton_fraction: f64,
    /// Minimum number of columns for multi-column tables.
    pub min_columns: usize,
    /// Maximum number of columns for multi-column tables.
    pub max_columns: usize,
    /// Minimum number of rows per table.
    pub min_rows: usize,
    /// Maximum number of rows per table.
    pub max_rows: usize,
    /// Probability that an individual cell is missing (empty).
    pub missing_cell_rate: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            num_tables: 2000,
            seed: 42,
            singleton_fraction: 0.4,
            min_columns: 2,
            max_columns: 6,
            min_rows: 8,
            max_rows: 40,
            missing_cell_rate: 0.03,
        }
    }
}

impl CorpusConfig {
    /// A small configuration for unit tests and doc examples.
    pub fn tiny() -> Self {
        CorpusConfig {
            num_tables: 60,
            seed: 7,
            min_rows: 5,
            max_rows: 12,
            ..CorpusConfig::default()
        }
    }

    /// Set the number of tables (builder style).
    pub fn with_tables(mut self, n: usize) -> Self {
        self.num_tables = n;
        self
    }

    /// Set the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Synthetic corpus generator.
#[derive(Debug, Clone)]
pub struct CorpusGenerator {
    config: CorpusConfig,
    values: ValueGenerator,
}

impl CorpusGenerator {
    /// Create a generator for the given configuration.
    pub fn new(config: CorpusConfig) -> Self {
        CorpusGenerator {
            config,
            values: ValueGenerator::new(),
        }
    }

    /// Generate the full corpus `D` (singletons included).
    pub fn generate(&self) -> Corpus {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let tables = (0..self.config.num_tables)
            .map(|id| self.generate_table(id as u64, &mut rng))
            .collect();
        Corpus::new(tables)
    }

    /// Generate a single table.
    fn generate_table(&self, id: u64, rng: &mut StdRng) -> Table {
        let intent = sample_intent(rng);
        let singleton = rng.gen_bool(self.config.singleton_fraction);
        let num_cols = if singleton {
            1
        } else {
            rng.gen_range(self.config.min_columns..=self.config.max_columns)
        };
        let num_rows = rng.gen_range(self.config.min_rows..=self.config.max_rows);
        self.generate_table_with(id, intent, num_cols, num_rows, rng)
    }

    /// Generate a table with explicit intent and shape. Exposed so examples
    /// and qualitative analyses (Table 4) can construct targeted scenarios.
    pub fn generate_table_with(
        &self,
        id: u64,
        intent: &TableIntent,
        num_cols: usize,
        num_rows: usize,
        rng: &mut StdRng,
    ) -> Table {
        let types = intent.sample_types(num_cols, rng);
        let columns: Vec<Column> = types
            .iter()
            .map(|ty| {
                Column::new(self.values.generate_column(
                    *ty,
                    num_rows,
                    self.config.missing_cell_rate,
                    rng,
                ))
            })
            .collect();
        let mut table = Table::labelled(id, columns, types);
        table.intent = Some(intent.name.to_string());
        table
    }

    /// Generate a table for a *named* intent (panics on unknown name).
    pub fn generate_for_intent(
        &self,
        id: u64,
        intent_name: &str,
        num_cols: usize,
        num_rows: usize,
        seed: u64,
    ) -> Table {
        let intent = INTENTS
            .iter()
            .find(|i| i.name == intent_name)
            .unwrap_or_else(|| panic!("unknown intent {intent_name:?}"));
        let mut rng = StdRng::seed_from_u64(seed);
        self.generate_table_with(id, intent, num_cols, num_rows, &mut rng)
    }

    /// The generator's value backend (useful for building ad-hoc columns).
    pub fn values(&self) -> &ValueGenerator {
        &self.values
    }

    /// The configuration this generator uses.
    pub fn config(&self) -> &CorpusConfig {
        &self.config
    }
}

/// Convenience: generate the default evaluation corpus used across the
/// benchmark binaries (`D`). `D_mult` is obtained with
/// [`Corpus::multi_column_only`].
pub fn default_corpus(num_tables: usize, seed: u64) -> Corpus {
    CorpusGenerator::new(CorpusConfig {
        num_tables,
        seed,
        ..CorpusConfig::default()
    })
    .generate()
}

/// Build the two motivating tables of Figure 1: Table A (influential people,
/// whose last column is `birthPlace`) and Table B (European cities, whose
/// first column is `city`), sharing identical city values.
pub fn figure1_tables() -> (Table, Table) {
    let shared_cities = ["Florence", "Warsaw", "London", "Braunschweig"];
    let table_a = Table::labelled(
        1_000_001,
        vec![
            Column::new([
                "Galileo Galilei",
                "Marie Curie",
                "Michael Faraday",
                "Carl Gauss",
            ]),
            Column::new(["1564-02-15", "1867-11-07", "1791-09-22", "1777-04-30"]),
            Column::new(["Astronomy", "Physics", "Chemistry", "Mathematics"]),
            Column::new(shared_cities),
        ],
        vec![
            SemanticType::Name,
            SemanticType::BirthDate,
            SemanticType::Notes,
            SemanticType::BirthPlace,
        ],
    );
    let table_b = Table::labelled(
        1_000_002,
        vec![
            Column::new(shared_cities),
            Column::new(["Italy", "Poland", "United Kingdom", "Germany"]),
            Column::new(["380,948", "1,777,972", "8,961,989", "248,502"]),
        ],
        vec![
            SemanticType::City,
            SemanticType::Country,
            SemanticType::Capacity,
        ],
    );
    (table_a, table_b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_requested_size_and_labels() {
        let corpus = default_corpus(200, 1);
        assert_eq!(corpus.len(), 200);
        for table in corpus.iter() {
            assert!(table.is_labelled());
            assert!(table.num_columns() >= 1);
            assert!(table.num_rows() >= 5);
            assert!(table.intent.is_some());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = default_corpus(50, 9);
        let b = default_corpus(50, 9);
        assert_eq!(a.tables, b.tables);
    }

    #[test]
    fn different_seeds_differ() {
        let a = default_corpus(50, 1);
        let b = default_corpus(50, 2);
        assert_ne!(a.tables, b.tables);
    }

    #[test]
    fn singleton_fraction_is_respected_roughly() {
        let corpus = default_corpus(1000, 3);
        let singletons = corpus.iter().filter(|t| !t.is_multi_column()).count();
        assert!(
            singletons > 300 && singletons < 500,
            "singletons={singletons}"
        );
        let mult = corpus.multi_column_only();
        assert!(mult.iter().all(|t| t.is_multi_column()));
    }

    #[test]
    fn type_distribution_is_long_tailed() {
        let corpus = default_corpus(2000, 4);
        let counts = corpus.type_counts();
        let head: usize = counts.iter().take(10).map(|(_, c)| c).sum();
        let tail: usize = counts.iter().rev().take(10).map(|(_, c)| c).sum();
        assert!(
            head > 5 * tail.max(1),
            "expected a long tail: head={head} tail={tail}"
        );
        // The rarest types must still be observed at least occasionally so
        // macro-F1 is well defined on a large corpus.
        let observed = counts.iter().filter(|(_, c)| *c > 0).count();
        assert!(observed > 70, "only {observed} types observed");
    }

    #[test]
    fn every_column_matches_its_label_arity() {
        let corpus = default_corpus(100, 5);
        for table in corpus.iter() {
            assert_eq!(table.columns.len(), table.labels.len());
            let rows = table.num_rows();
            for col in &table.columns {
                assert_eq!(col.len(), rows);
            }
        }
    }

    #[test]
    fn figure1_tables_share_city_column_values() {
        let (a, b) = figure1_tables();
        assert_eq!(a.columns.last().unwrap(), &b.columns[0]);
        assert_eq!(*a.labels.last().unwrap(), SemanticType::BirthPlace);
        assert_eq!(b.labels[0], SemanticType::City);
    }

    #[test]
    fn named_intent_generation() {
        let gen = CorpusGenerator::new(CorpusConfig::tiny());
        let t = gen.generate_for_intent(5, "music-catalogue", 4, 10, 11);
        assert_eq!(t.num_columns(), 4);
        assert_eq!(t.intent.as_deref(), Some("music-catalogue"));
    }

    #[test]
    #[should_panic(expected = "unknown intent")]
    fn unknown_intent_panics() {
        let gen = CorpusGenerator::new(CorpusConfig::tiny());
        gen.generate_for_intent(5, "does-not-exist", 2, 5, 1);
    }
}
