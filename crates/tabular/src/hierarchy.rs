//! A parent-category ontology over the 78 semantic types.
//!
//! Section 6 of the paper ("Exploiting type hierarchy through ontology")
//! observes that many of the 78 flat types have natural parent classes —
//! `country` and `city` are kinds of *location*, `club` and `company` are
//! kinds of *organisation* — and that a hierarchy would both enrich
//! downstream use and enable partial credit for near-miss predictions. The
//! paper leaves this as future work; this module implements the ontology and
//! the evaluation crate adds hierarchy-aware metrics on top of it.

use crate::types::SemanticType;
use serde::{Deserialize, Serialize};

/// Coarse parent categories of the 78 semantic types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TypeCategory {
    /// Geographic places and place attributes (city, country, region, …).
    Location,
    /// People and person-name-like attributes (name, person, artist, …).
    Person,
    /// Organisations (company, club, publisher, manufacturer, …).
    Organisation,
    /// Quantities and measurements (age, weight, sales, elevation, …).
    Quantity,
    /// Dates, times and durations (year, birthDate, duration, day).
    Temporal,
    /// Categorical labels drawn from small vocabularies (status, gender, …).
    Categorical,
    /// Identifiers, codes and symbols (code, isbn, symbol, command).
    Identifier,
    /// Free text (description, notes, requirement, address).
    Text,
    /// Creative works and media artefacts (album, collection, product, …).
    Work,
}

impl TypeCategory {
    /// All categories.
    pub const ALL: [TypeCategory; 9] = [
        TypeCategory::Location,
        TypeCategory::Person,
        TypeCategory::Organisation,
        TypeCategory::Quantity,
        TypeCategory::Temporal,
        TypeCategory::Categorical,
        TypeCategory::Identifier,
        TypeCategory::Text,
        TypeCategory::Work,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            TypeCategory::Location => "location",
            TypeCategory::Person => "person",
            TypeCategory::Organisation => "organisation",
            TypeCategory::Quantity => "quantity",
            TypeCategory::Temporal => "temporal",
            TypeCategory::Categorical => "categorical",
            TypeCategory::Identifier => "identifier",
            TypeCategory::Text => "text",
            TypeCategory::Work => "work",
        }
    }
}

/// The parent category of a semantic type.
pub fn category_of(ty: SemanticType) -> TypeCategory {
    use SemanticType as T;
    use TypeCategory as C;
    match ty {
        // Location-like.
        T::Location
        | T::City
        | T::State
        | T::Country
        | T::County
        | T::Region
        | T::Continent
        | T::BirthPlace
        | T::Origin
        | T::Nationality => C::Location,
        // Person-like.
        T::Name
        | T::Person
        | T::Artist
        | T::Jockey
        | T::Creator
        | T::Director
        | T::Owner
        | T::Operator
        | T::Affiliate
        | T::Sex
        | T::Gender
        | T::Religion
        | T::Education
        | T::Family => C::Person,
        // Organisation-like.
        T::Company
        | T::Manufacturer
        | T::Brand
        | T::Publisher
        | T::Affiliation
        | T::Organisation
        | T::Team
        | T::TeamName
        | T::Club
        | T::Industry => C::Organisation,
        // Quantities and measurements.
        T::Age
        | T::Weight
        | T::Rank
        | T::Ranking
        | T::Sales
        | T::Capacity
        | T::Elevation
        | T::Depth
        | T::Area
        | T::FileSize
        | T::Plays
        | T::Order
        | T::Credit
        | T::Range
        | T::Currency => C::Quantity,
        // Temporal.
        T::Year | T::BirthDate | T::Duration | T::Day => C::Temporal,
        // Categorical short vocabularies.
        T::Type
        | T::Category
        | T::Class
        | T::Classification
        | T::Status
        | T::Result
        | T::Position
        | T::Format
        | T::Language
        | T::Grades
        | T::Service
        | T::Species => C::Categorical,
        // Identifiers.
        T::Code | T::Symbol | T::Isbn | T::Command => C::Identifier,
        // Free text.
        T::Description | T::Notes | T::Requirement | T::Address => C::Text,
        // Creative works / artefacts.
        T::Album | T::Collection | T::Genre | T::Product | T::Component => C::Work,
    }
}

/// Whether two types share a parent category (used for lenient, hierarchy-
/// aware evaluation: predicting `city` for a `birthPlace` column is "close").
pub fn same_category(a: SemanticType, b: SemanticType) -> bool {
    category_of(a) == category_of(b)
}

/// All types belonging to a category.
pub fn types_in_category(category: TypeCategory) -> Vec<SemanticType> {
    SemanticType::ALL
        .iter()
        .copied()
        .filter(|t| category_of(*t) == category)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_type_has_exactly_one_category() {
        let total: usize = TypeCategory::ALL
            .iter()
            .map(|c| types_in_category(*c).len())
            .sum();
        assert_eq!(total, SemanticType::ALL.len());
    }

    #[test]
    fn paper_examples_are_grouped_as_described() {
        // Section 6: country and city are types of location; club and
        // company are types of organisation.
        assert_eq!(category_of(SemanticType::Country), TypeCategory::Location);
        assert_eq!(category_of(SemanticType::City), TypeCategory::Location);
        assert_eq!(category_of(SemanticType::Club), TypeCategory::Organisation);
        assert_eq!(
            category_of(SemanticType::Company),
            TypeCategory::Organisation
        );
    }

    #[test]
    fn ambiguous_value_pools_map_to_the_same_category() {
        assert!(same_category(SemanticType::City, SemanticType::BirthPlace));
        assert!(same_category(SemanticType::Name, SemanticType::Artist));
        assert!(same_category(SemanticType::Age, SemanticType::Weight));
        assert!(!same_category(SemanticType::City, SemanticType::Sales));
    }

    #[test]
    fn every_category_is_non_empty_and_named() {
        for c in TypeCategory::ALL {
            assert!(!types_in_category(c).is_empty(), "{} is empty", c.name());
            assert!(!c.name().is_empty());
        }
    }

    #[test]
    fn categories_partition_is_stable_under_round_trip() {
        for t in SemanticType::ALL {
            let c = category_of(t);
            assert!(types_in_category(c).contains(&t));
        }
    }
}
