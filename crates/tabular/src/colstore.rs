//! Columnar on-disk corpus format ("colstore"): the analytic-side
//! representation of a table corpus, separated from the row-oriented
//! ingest formats (CSV, JSON) the way HTAP systems split their ingest and
//! analytic stores.
//!
//! A colstore file is a stream of dictionary-encoded, column-major table
//! frames behind a fixed header:
//!
//! ```text
//! header   := magic "SATOCOL1" (8 bytes) | version u32 | flags u32
//! frame    := payload_len u64 | payload | fnv1a64(payload) u64
//! stream   := header frame* terminator        (terminator: payload_len = 0)
//! ```
//!
//! Every integer is little-endian. Each frame holds one table:
//!
//! ```text
//! payload  := table_id u64
//!           | intent_len u32 (0xFFFF_FFFF = none) | intent bytes
//!           | label_count u32 | label u16 *       (semantic-type indices)
//!           | column_count u32 | column *
//! column   := num_cells u32 | dict_count u32 | code_width u8 (1|2|4)
//!           | value_bytes_len u32
//!           | offsets u32 * (dict_count + 1)      (cumulative, into values)
//!           | value bytes (UTF-8, concatenated distinct cells)
//!           | codes (num_cells * code_width bytes)
//! ```
//!
//! The dictionary keeps distinct cell values in first-occurrence order, so
//! decoding replays the exact original cell sequence; repeated cells (the
//! common case in WebTables-style data) are stored once. The reader decodes
//! frames into a reusable [`TableBuf`] — a string arena plus per-column
//! code vectors — which implements [`TableCells`], so the serving path
//! annotates a corpus straight off disk without ever materializing a
//! [`Table`] (no per-cell `String`s).

use crate::table::{CellSource, Column, Corpus, Table, TableCells};
use crate::types::SemanticType;
use std::collections::HashMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;

/// File magic: 8 bytes at offset zero of every colstore file.
pub const COLSTORE_MAGIC: [u8; 8] = *b"SATOCOL1";

/// Current format version written by [`ColStoreWriter`].
pub const COLSTORE_VERSION: u32 = 1;

/// Sentinel `intent_len` value encoding "no intent".
const NO_INTENT: u32 = u32::MAX;

/// FNV-1a 64-bit hash, the frame checksum — the shared kernel-layer
/// implementation (`sato_kernels::fnv1a64`, 8-byte chunked, bit-identical
/// to the byte-at-a-time definition). The artifact framing in `sato-core`
/// uses the same function, so the two on-disk formats stay
/// checksum-compatible by construction.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    sato_kernels::fnv1a64(bytes)
}

/// Typed decode/IO errors of the colstore format.
#[derive(Debug)]
pub enum ColStoreError {
    /// Underlying reader or writer failed.
    Io(io::Error),
    /// The stream ended before a complete header or frame was read.
    Truncated {
        /// What was being decoded when the bytes ran out.
        what: &'static str,
    },
    /// The first 8 bytes are not [`COLSTORE_MAGIC`].
    BadMagic,
    /// The header version is newer than this reader understands.
    UnsupportedVersion(u32),
    /// A frame's FNV-1a checksum did not match its payload.
    Checksum {
        /// Zero-based index of the corrupt table frame.
        table_index: usize,
    },
    /// Structurally invalid payload (bad offsets, out-of-range codes, …).
    Corrupt(&'static str),
    /// A dictionary page is not valid UTF-8.
    Utf8,
}

impl fmt::Display for ColStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColStoreError::Io(e) => write!(f, "colstore io error: {e}"),
            ColStoreError::Truncated { what } => {
                write!(f, "colstore truncated while reading {what}")
            }
            ColStoreError::BadMagic => write!(f, "not a colstore file (bad magic)"),
            ColStoreError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported colstore version {v} (reader supports {COLSTORE_VERSION})"
                )
            }
            ColStoreError::Checksum { table_index } => {
                write!(f, "colstore checksum mismatch in table frame {table_index}")
            }
            ColStoreError::Corrupt(what) => write!(f, "corrupt colstore frame: {what}"),
            ColStoreError::Utf8 => write!(f, "colstore dictionary page is not valid UTF-8"),
        }
    }
}

impl std::error::Error for ColStoreError {}

impl From<io::Error> for ColStoreError {
    fn from(e: io::Error) -> Self {
        ColStoreError::Io(e)
    }
}

/// Streaming colstore writer: tables go out one frame at a time, so an
/// ingestion pipeline never holds more than the table it is encoding.
pub struct ColStoreWriter<W: Write> {
    out: W,
    /// Reusable frame payload buffer.
    payload: Vec<u8>,
    finished: bool,
}

impl<W: Write> ColStoreWriter<W> {
    /// Start a colstore stream on `out` (writes the header immediately).
    pub fn new(mut out: W) -> io::Result<Self> {
        out.write_all(&COLSTORE_MAGIC)?;
        out.write_all(&COLSTORE_VERSION.to_le_bytes())?;
        out.write_all(&0u32.to_le_bytes())?; // flags, reserved
        Ok(ColStoreWriter {
            out,
            payload: Vec::new(),
            finished: false,
        })
    }

    /// Append one table as a dictionary-encoded column-major frame.
    pub fn write_table(&mut self, table: &Table) -> io::Result<()> {
        assert!(!self.finished, "write_table after finish");
        let payload = &mut self.payload;
        payload.clear();
        payload.extend_from_slice(&table.id.to_le_bytes());
        match &table.intent {
            Some(intent) => {
                let len = u32::try_from(intent.len()).expect("intent too long");
                assert_ne!(len, NO_INTENT, "intent too long");
                payload.extend_from_slice(&len.to_le_bytes());
                payload.extend_from_slice(intent.as_bytes());
            }
            None => payload.extend_from_slice(&NO_INTENT.to_le_bytes()),
        }
        let labels: &[SemanticType] = if table.is_labelled() {
            &table.labels
        } else {
            &[]
        };
        payload.extend_from_slice(&(labels.len() as u32).to_le_bytes());
        for label in labels {
            payload.extend_from_slice(&(label.index() as u16).to_le_bytes());
        }
        payload.extend_from_slice(&(table.columns.len() as u32).to_le_bytes());
        for column in &table.columns {
            encode_column(column, payload);
        }
        let checksum = fnv1a64(payload);
        self.out.write_all(&(payload.len() as u64).to_le_bytes())?;
        self.out.write_all(payload)?;
        self.out.write_all(&checksum.to_le_bytes())?;
        Ok(())
    }

    /// Write the terminator frame, flush, and return the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.finished = true;
        self.out.write_all(&0u64.to_le_bytes())?;
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Dictionary-encode one column into `payload` (format in the module docs).
fn encode_column(column: &Column, payload: &mut Vec<u8>) {
    // Distinct cells in first-occurrence order; codes index into the dict.
    let mut dict_index: HashMap<&str, u32> = HashMap::new();
    let mut dict: Vec<&str> = Vec::new();
    let mut codes: Vec<u32> = Vec::with_capacity(column.len());
    for cell in column.iter() {
        let code = *dict_index.entry(cell).or_insert_with(|| {
            dict.push(cell);
            (dict.len() - 1) as u32
        });
        codes.push(code);
    }
    let code_width: u8 = if dict.len() <= usize::from(u8::MAX) + 1 {
        1
    } else if dict.len() <= usize::from(u16::MAX) + 1 {
        2
    } else {
        4
    };
    let value_bytes: usize = dict.iter().map(|v| v.len()).sum();
    payload.extend_from_slice(&(codes.len() as u32).to_le_bytes());
    payload.extend_from_slice(&(dict.len() as u32).to_le_bytes());
    payload.push(code_width);
    payload.extend_from_slice(
        &u32::try_from(value_bytes)
            .expect("column too large")
            .to_le_bytes(),
    );
    let mut offset = 0u32;
    payload.extend_from_slice(&offset.to_le_bytes());
    for value in &dict {
        offset += value.len() as u32;
        payload.extend_from_slice(&offset.to_le_bytes());
    }
    for value in &dict {
        payload.extend_from_slice(value.as_bytes());
    }
    for &code in &codes {
        match code_width {
            1 => payload.push(code as u8),
            2 => payload.extend_from_slice(&(code as u16).to_le_bytes()),
            _ => payload.extend_from_slice(&code.to_le_bytes()),
        }
    }
}

/// One decoded column: dictionary entry spans into the [`TableBuf`] arena
/// plus the per-cell dictionary codes.
#[derive(Debug, Clone, Default)]
struct ColBuf {
    /// `(start, end)` byte spans of the dictionary entries in the arena.
    dict: Vec<(u32, u32)>,
    /// Per-cell dictionary indices, top to bottom.
    codes: Vec<u32>,
}

/// A reusable decode target for one colstore frame: a string arena holding
/// each column's distinct cell values plus the dictionary codes that replay
/// the original cell order.
///
/// `TableBuf` implements [`TableCells`], so feature extraction and topic
/// estimation run on it directly; after the first few frames a
/// [`ColStoreReader::read_into`] loop allocates nothing new (buffers are
/// reused across frames, matching the allocation-lean serving convention).
#[derive(Debug, Clone, Default)]
pub struct TableBuf {
    id: u64,
    /// Byte length of the intent prefix of `text`; `None` when absent.
    intent_len: Option<usize>,
    /// Intent bytes followed by the dictionary pages of every column.
    text: String,
    labels: Vec<SemanticType>,
    columns: Vec<ColBuf>,
    /// Active column count (`columns` keeps spare buffers beyond this).
    ncols: usize,
}

impl TableBuf {
    /// A fresh, empty decode target.
    pub fn new() -> Self {
        Self::default()
    }

    /// The decoded table's identifier.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of decoded columns.
    pub fn num_columns(&self) -> usize {
        self.ncols
    }

    /// The decoded intent, if the table carried one.
    pub fn intent(&self) -> Option<&str> {
        self.intent_len.map(|n| &self.text[..n])
    }

    /// Ground-truth labels (empty when the table was unlabelled).
    pub fn labels(&self) -> &[SemanticType] {
        &self.labels
    }

    /// Materialize the decoded frame as an owned [`Table`] (debug and
    /// round-trip testing path; serving works on the `TableBuf` directly).
    pub fn to_table(&self) -> Table {
        let columns = (0..self.ncols)
            .map(|c| {
                let cells = self.cells(c);
                Column::new((0..cells.num_cells()).map(|i| cells.cell(i)))
            })
            .collect();
        Table {
            id: self.id,
            columns,
            labels: self.labels.clone(),
            intent: self.intent().map(str::to_string),
        }
    }
}

/// Borrowed [`CellSource`] view of one [`TableBuf`] column.
#[derive(Debug, Clone, Copy)]
pub struct ColCells<'a> {
    text: &'a str,
    col: &'a ColBuf,
}

impl CellSource for ColCells<'_> {
    fn num_cells(&self) -> usize {
        self.col.codes.len()
    }

    fn cell(&self, i: usize) -> &str {
        let (start, end) = self.col.dict[self.col.codes[i] as usize];
        &self.text[start as usize..end as usize]
    }
}

impl TableCells for TableBuf {
    type Cells<'a> = ColCells<'a>;

    fn table_id(&self) -> u64 {
        self.id
    }

    fn cell_columns(&self) -> usize {
        self.ncols
    }

    fn cells(&self, c: usize) -> ColCells<'_> {
        assert!(c < self.ncols, "column index out of range");
        ColCells {
            text: &self.text,
            col: &self.columns[c],
        }
    }

    fn gold_labels(&self) -> &[SemanticType] {
        &self.labels
    }
}

/// Streaming colstore reader: validates the header up front, then decodes
/// one frame per [`Self::read_into`] call into a caller-owned [`TableBuf`].
pub struct ColStoreReader<R: Read> {
    input: R,
    /// Reusable frame payload buffer.
    payload: Vec<u8>,
    tables_read: usize,
    done: bool,
}

impl<R: Read> ColStoreReader<R> {
    /// Open a colstore stream: reads and validates the 16-byte header.
    pub fn new(mut input: R) -> Result<Self, ColStoreError> {
        let mut header = [0u8; 16];
        read_exact_or(&mut input, &mut header, "header")?;
        if header[..8] != COLSTORE_MAGIC {
            return Err(ColStoreError::BadMagic);
        }
        let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if version != COLSTORE_VERSION {
            return Err(ColStoreError::UnsupportedVersion(version));
        }
        Ok(ColStoreReader {
            input,
            payload: Vec::new(),
            tables_read: 0,
            done: false,
        })
    }

    /// Number of table frames decoded so far.
    pub fn tables_read(&self) -> usize {
        self.tables_read
    }

    /// Decode the next frame into `buf`. Returns `Ok(false)` at the
    /// terminator (with `buf` untouched), `Ok(true)` after a successful
    /// decode. `buf` may hold a previous frame's contents on entry; they
    /// are overwritten, and its allocations are reused.
    pub fn read_into(&mut self, buf: &mut TableBuf) -> Result<bool, ColStoreError> {
        // Named injection point `tabular.colstore_decode`, keyed by the
        // frame index (chaos builds only).
        #[cfg(feature = "faults")]
        if sato_faults::fire("tabular.colstore_decode", self.tables_read as u64) {
            return Err(ColStoreError::Io(std::io::Error::other(
                "injected fault: tabular.colstore_decode",
            )));
        }
        if self.done {
            return Ok(false);
        }
        let mut len_bytes = [0u8; 8];
        read_exact_or(&mut self.input, &mut len_bytes, "frame length")?;
        let payload_len = u64::from_le_bytes(len_bytes);
        if payload_len == 0 {
            self.done = true;
            return Ok(false);
        }
        let payload_len =
            usize::try_from(payload_len).map_err(|_| ColStoreError::Corrupt("frame length"))?;
        // Never trust the declared length for an upfront allocation: a
        // corrupted length field could demand exbibytes. `take` grows the
        // buffer only with bytes that actually arrive, then the count is
        // checked against the declaration.
        self.payload.clear();
        let got = (&mut self.input)
            .take(payload_len as u64)
            .read_to_end(&mut self.payload)?;
        if got < payload_len {
            return Err(ColStoreError::Truncated {
                what: "frame payload",
            });
        }
        let mut checksum_bytes = [0u8; 8];
        read_exact_or(&mut self.input, &mut checksum_bytes, "frame checksum")?;
        if u64::from_le_bytes(checksum_bytes) != fnv1a64(&self.payload) {
            return Err(ColStoreError::Checksum {
                table_index: self.tables_read,
            });
        }
        decode_frame(&self.payload, buf)?;
        self.tables_read += 1;
        Ok(true)
    }
}

/// Map `read_exact` EOF to [`ColStoreError::Truncated`].
fn read_exact_or<R: Read>(
    input: &mut R,
    out: &mut [u8],
    what: &'static str,
) -> Result<(), ColStoreError> {
    input.read_exact(out).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ColStoreError::Truncated { what }
        } else {
            ColStoreError::Io(e)
        }
    })
}

/// Little-endian cursor over one frame payload.
struct FrameCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> FrameCursor<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], ColStoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(ColStoreError::Truncated { what })?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, ColStoreError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, ColStoreError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, ColStoreError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, ColStoreError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }
}

/// Decode one checksum-verified frame payload into `buf`.
fn decode_frame(payload: &[u8], buf: &mut TableBuf) -> Result<(), ColStoreError> {
    let mut cur = FrameCursor {
        bytes: payload,
        pos: 0,
    };
    buf.text.clear();
    buf.labels.clear();
    buf.id = cur.u64("table id")?;
    let intent_len = cur.u32("intent length")?;
    buf.intent_len = None;
    if intent_len != NO_INTENT {
        let bytes = cur.take(intent_len as usize, "intent")?;
        let intent = std::str::from_utf8(bytes).map_err(|_| ColStoreError::Utf8)?;
        buf.text.push_str(intent);
        buf.intent_len = Some(intent.len());
    }
    let label_count = cur.u32("label count")?;
    for _ in 0..label_count {
        let idx = cur.u16("label")?;
        let label = SemanticType::from_index(idx as usize)
            .ok_or(ColStoreError::Corrupt("unknown semantic-type index"))?;
        buf.labels.push(label);
    }
    let column_count = cur.u32("column count")? as usize;
    if label_count != 0 && label_count as usize != column_count {
        return Err(ColStoreError::Corrupt("labels not parallel to columns"));
    }
    // Grow the column pool without discarding previously-warmed buffers.
    if buf.columns.len() < column_count {
        buf.columns.resize_with(column_count, ColBuf::default);
    }
    buf.ncols = column_count;
    for col in &mut buf.columns[..column_count] {
        decode_column(&mut cur, &mut buf.text, col)?;
    }
    if cur.pos != payload.len() {
        return Err(ColStoreError::Corrupt("trailing bytes in frame"));
    }
    Ok(())
}

/// Decode one column page, appending its dictionary to the `text` arena.
fn decode_column(
    cur: &mut FrameCursor<'_>,
    text: &mut String,
    col: &mut ColBuf,
) -> Result<(), ColStoreError> {
    col.dict.clear();
    col.codes.clear();
    let num_cells = cur.u32("cell count")? as usize;
    let dict_count = cur.u32("dictionary count")? as usize;
    let code_width = cur.u8("code width")?;
    if !matches!(code_width, 1 | 2 | 4) {
        return Err(ColStoreError::Corrupt("invalid code width"));
    }
    if num_cells > 0 && dict_count == 0 {
        return Err(ColStoreError::Corrupt("cells without dictionary"));
    }
    let value_bytes_len = cur.u32("value page length")? as usize;
    let base = text.len() as u32;
    let mut prev = cur.u32("dictionary offset")?;
    if prev != 0 {
        return Err(ColStoreError::Corrupt("first dictionary offset not zero"));
    }
    col.dict.reserve(dict_count);
    for _ in 0..dict_count {
        let next = cur.u32("dictionary offset")?;
        if next < prev || next as usize > value_bytes_len {
            return Err(ColStoreError::Corrupt("dictionary offsets not monotonic"));
        }
        col.dict.push((base + prev, base + next));
        prev = next;
    }
    if prev as usize != value_bytes_len {
        return Err(ColStoreError::Corrupt(
            "dictionary offsets do not cover page",
        ));
    }
    let value_bytes = cur.take(value_bytes_len, "value page")?;
    let page = std::str::from_utf8(value_bytes).map_err(|_| ColStoreError::Utf8)?;
    // The page as a whole is UTF-8; every entry boundary must also be a
    // character boundary for the per-entry `&str` slices to be valid.
    for &(start, end) in &col.dict {
        if !page.is_char_boundary((start - base) as usize)
            || !page.is_char_boundary((end - base) as usize)
        {
            return Err(ColStoreError::Utf8);
        }
    }
    text.push_str(page);
    col.codes.reserve(num_cells);
    for _ in 0..num_cells {
        let code = match code_width {
            1 => u32::from(cur.u8("cell code")?),
            2 => u32::from(cur.u16("cell code")?),
            _ => cur.u32("cell code")?,
        };
        if code as usize >= dict_count {
            return Err(ColStoreError::Corrupt("cell code out of dictionary range"));
        }
        col.codes.push(code);
    }
    Ok(())
}

/// Encode a whole corpus to colstore bytes in memory.
pub fn corpus_to_bytes(corpus: &Corpus) -> Vec<u8> {
    let mut writer = ColStoreWriter::new(Vec::new()).expect("Vec writes are infallible");
    for table in corpus.iter() {
        writer
            .write_table(table)
            .expect("Vec writes are infallible");
    }
    writer.finish().expect("Vec writes are infallible")
}

/// Decode colstore bytes back into an owned [`Corpus`] (debug/interchange
/// path; serving streams [`TableBuf`]s instead).
pub fn corpus_from_bytes(bytes: &[u8]) -> Result<Corpus, ColStoreError> {
    let mut reader = ColStoreReader::new(bytes)?;
    let mut buf = TableBuf::new();
    let mut tables = Vec::new();
    while reader.read_into(&mut buf)? {
        tables.push(buf.to_table());
    }
    Ok(Corpus::new(tables))
}

/// Write a corpus to a colstore file at `path`.
pub fn write_corpus_to_path(corpus: &Corpus, path: impl AsRef<Path>) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut writer = ColStoreWriter::new(io::BufWriter::new(file))?;
    for table in corpus.iter() {
        writer.write_table(table)?;
    }
    writer.finish()?.into_inner().map_err(|e| e.into_error())?;
    Ok(())
}

/// Open a buffered streaming reader over the colstore file at `path`.
pub fn open_path(
    path: impl AsRef<Path>,
) -> Result<ColStoreReader<io::BufReader<std::fs::File>>, ColStoreError> {
    let file = std::fs::File::open(path)?;
    ColStoreReader::new(io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::default_corpus;

    fn sample_table() -> Table {
        let mut t = Table::labelled(
            42,
            vec![
                Column::new(["Florence", "Warsaw", "Warsaw", "London"]),
                Column::new(["Italy", "Poland", "Poland", "UK"]),
            ],
            vec![SemanticType::City, SemanticType::Country],
        );
        t.intent = Some("geo".to_string());
        t
    }

    #[test]
    fn round_trips_a_synthetic_corpus() {
        let corpus = default_corpus(30, 7);
        let bytes = corpus_to_bytes(&corpus);
        let back = corpus_from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), corpus.len());
        for (a, b) in corpus.iter().zip(back.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn round_trips_edge_case_tables() {
        let tables = vec![
            Table::unlabelled(0, vec![]),
            Table::unlabelled(1, vec![Column::new(Vec::<String>::new())]),
            Table::unlabelled(2, vec![Column::new(["", "", ""])]),
            // Ragged + unicode + repeats.
            Table::unlabelled(
                3,
                vec![Column::new(["ΟΔΟΣ", "naïve", "ΟΔΟΣ"]), Column::new(["x"])],
            ),
            sample_table(),
        ];
        let corpus = Corpus::new(tables);
        let back = corpus_from_bytes(&corpus_to_bytes(&corpus)).unwrap();
        for (a, b) in corpus.iter().zip(back.iter()) {
            assert_eq!(a, b, "table {} did not round-trip", a.id);
        }
    }

    #[test]
    fn table_buf_streams_cells_in_table_order() {
        let table = sample_table();
        let corpus = Corpus::new(vec![table.clone()]);
        let bytes = corpus_to_bytes(&corpus);
        let mut reader = ColStoreReader::new(&bytes[..]).unwrap();
        let mut buf = TableBuf::new();
        assert!(reader.read_into(&mut buf).unwrap());
        assert_eq!(buf.id(), table.id);
        assert_eq!(buf.intent(), Some("geo"));
        assert_eq!(buf.labels(), &table.labels[..]);
        assert_eq!(buf.num_columns(), table.num_columns());
        let mut streamed = Vec::new();
        buf.for_each_cell(|v| streamed.push(v.to_string()));
        let mut direct = Vec::new();
        table.for_each_value(|v| direct.push(v.to_string()));
        assert_eq!(streamed, direct);
        // Repeated cells resolve through the dictionary.
        let cells = buf.cells(0);
        assert_eq!(cells.cell(1), "Warsaw");
        assert_eq!(cells.cell(2), "Warsaw");
        assert!(!reader.read_into(&mut buf).unwrap());
        assert_eq!(reader.tables_read(), 1);
    }

    #[test]
    fn dictionary_compresses_repeats() {
        let repeated = Table::unlabelled(
            1,
            vec![Column::new(std::iter::repeat_n(
                "the-same-long-cell-value",
                500,
            ))],
        );
        let distinct = Table::unlabelled(
            1,
            vec![Column::new(
                (0..500).map(|i| format!("cell-value-number-{i:06}")),
            )],
        );
        let small = corpus_to_bytes(&Corpus::new(vec![repeated])).len();
        let large = corpus_to_bytes(&Corpus::new(vec![distinct])).len();
        assert!(
            small * 10 < large,
            "dictionary encoding gained nothing: {small} vs {large}"
        );
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = corpus_to_bytes(&default_corpus(2, 1));
        bytes[0] ^= 0xFF;
        assert!(matches!(
            ColStoreReader::new(&bytes[..]),
            Err(ColStoreError::BadMagic)
        ));
    }

    #[test]
    fn rejects_unsupported_version() {
        let mut bytes = corpus_to_bytes(&default_corpus(2, 1));
        bytes[8] = 99;
        assert!(matches!(
            ColStoreReader::new(&bytes[..]),
            Err(ColStoreError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn rejects_truncation_at_every_prefix_boundary() {
        let bytes = corpus_to_bytes(&default_corpus(2, 1));
        for cut in [4, 12, 20, bytes.len() - 9, bytes.len() - 1] {
            let err = match ColStoreReader::new(&bytes[..cut]) {
                Err(e) => e,
                Ok(mut reader) => {
                    let mut buf = TableBuf::new();
                    loop {
                        match reader.read_into(&mut buf) {
                            Ok(true) => continue,
                            Ok(false) => panic!("truncated stream at {cut} decoded cleanly"),
                            Err(e) => break e,
                        }
                    }
                }
            };
            assert!(
                matches!(err, ColStoreError::Truncated { .. }),
                "cut at {cut} gave {err}"
            );
        }
    }

    #[test]
    fn rejects_corrupted_payload_bytes() {
        let bytes = corpus_to_bytes(&default_corpus(2, 1));
        // Flip a byte inside the first frame's payload (skip the 16-byte
        // header and the 8-byte frame length).
        let mut corrupted = bytes.clone();
        corrupted[30] ^= 0xFF;
        let mut reader = ColStoreReader::new(&corrupted[..]).unwrap();
        let mut buf = TableBuf::new();
        assert!(matches!(
            reader.read_into(&mut buf),
            Err(ColStoreError::Checksum { table_index: 0 })
        ));
    }

    #[test]
    fn file_round_trip() {
        let corpus = default_corpus(5, 3);
        let dir = std::env::temp_dir().join("sato-colstore-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.satocol");
        write_corpus_to_path(&corpus, &path).unwrap();
        let mut reader = open_path(&path).unwrap();
        let mut buf = TableBuf::new();
        let mut count = 0;
        while reader.read_into(&mut buf).unwrap() {
            assert_eq!(buf.to_table(), corpus.tables[count]);
            count += 1;
        }
        assert_eq!(count, corpus.len());
        std::fs::remove_file(&path).ok();
    }
}
