//! Table *intents*: the latent themes that drive which semantic types appear
//! together in a synthetic table.
//!
//! Section 3.2 of the paper argues that every table is created with an intent
//! in mind, that the intent determines the semantic types of the columns, and
//! that the types in turn generate the values (Figure 3a). The synthetic
//! corpus generator follows this generative story literally: it first samples
//! an intent, then samples column types from the intent's type pool, then
//! samples values from the per-type generators.
//!
//! The intent catalogue below is what produces the two statistical properties
//! the paper's evaluation relies on:
//! * the long-tailed type distribution of Figure 5 (head types such as
//!   `name`, `description`, `type`, `year` appear in many intents with high
//!   weight; tail types such as `organisation`, `continent`, `sales` appear
//!   in few intents with low weight), and
//! * the type co-occurrence structure of Figure 6 (e.g. `city`–`state`,
//!   `age`–`weight`, `code`–`description`).

use crate::types::SemanticType;
use rand::rngs::StdRng;
use rand::Rng;

/// A latent table intent: a named theme plus a weighted pool of semantic
/// types that such a table can express as columns.
#[derive(Debug, Clone)]
pub struct TableIntent {
    /// Human readable intent name (e.g. `"person-biography"`). Stored on
    /// generated tables for analysis only; never used by models.
    pub name: &'static str,
    /// Relative frequency of this intent among generated tables.
    pub frequency: f64,
    /// The types that a table with this intent may contain, with relative
    /// weights. The first entries are the "core" attributes and get picked
    /// more often.
    pub type_pool: &'static [(SemanticType, f64)],
}

impl TableIntent {
    /// Sample `k` distinct column types from the intent's pool, weighted.
    ///
    /// When `k` exceeds the pool size the whole pool is returned (shuffled).
    pub fn sample_types(&self, k: usize, rng: &mut StdRng) -> Vec<SemanticType> {
        let mut remaining: Vec<(SemanticType, f64)> = self.type_pool.to_vec();
        let mut out = Vec::with_capacity(k.min(remaining.len()));
        while out.len() < k && !remaining.is_empty() {
            let total: f64 = remaining.iter().map(|(_, w)| *w).sum();
            let mut target = rng.gen_range(0.0..total);
            let mut idx = remaining.len() - 1;
            for (i, (_, w)) in remaining.iter().enumerate() {
                if target < *w {
                    idx = i;
                    break;
                }
                target -= *w;
            }
            out.push(remaining.remove(idx).0);
        }
        out
    }
}

use SemanticType as T;

/// The catalogue of intents used by the default synthetic corpus.
pub const INTENTS: &[TableIntent] = &[
    TableIntent {
        name: "person-biography",
        frequency: 10.0,
        type_pool: &[
            (T::Name, 3.0),
            (T::BirthPlace, 1.6),
            (T::BirthDate, 1.2),
            (T::Nationality, 1.0),
            (T::Age, 1.4),
            (T::Sex, 0.8),
            (T::Education, 0.6),
            (T::Religion, 0.5),
            (T::Notes, 0.8),
            (T::Affiliation, 0.6),
            (T::Person, 0.7),
        ],
    },
    TableIntent {
        name: "european-cities",
        frequency: 8.0,
        type_pool: &[
            (T::City, 3.0),
            (T::Country, 2.0),
            (T::Region, 1.0),
            (T::Area, 1.0),
            (T::Elevation, 0.8),
            (T::Capacity, 0.6),
            (T::Continent, 0.5),
            (T::Location, 1.0),
            (T::Year, 0.8),
        ],
    },
    TableIntent {
        name: "us-places",
        // city/state is the flagship co-occurring pair of the paper's
        // Figure 6; US place tables dominate WebTables accordingly.
        frequency: 13.0,
        type_pool: &[
            (T::City, 3.2),
            (T::State, 3.6),
            (T::County, 1.4),
            (T::Location, 1.2),
            (T::Area, 0.8),
            (T::Elevation, 0.6),
            (T::Address, 1.0),
            (T::Status, 0.6),
        ],
    },
    TableIntent {
        name: "sports-roster",
        frequency: 9.0,
        type_pool: &[
            (T::Name, 2.4),
            (T::Team, 2.0),
            (T::Position, 1.6),
            (T::Age, 1.6),
            (T::Weight, 1.4),
            (T::Club, 1.2),
            (T::Rank, 1.0),
            (T::Result, 1.0),
            (T::Status, 0.8),
            (T::Plays, 0.6),
            (T::Gender, 0.6),
        ],
    },
    TableIntent {
        name: "league-standings",
        frequency: 7.0,
        type_pool: &[
            (T::TeamName, 2.0),
            (T::Team, 1.6),
            (T::Rank, 1.8),
            (T::Result, 1.4),
            (T::Plays, 1.2),
            (T::Year, 1.2),
            (T::Club, 1.0),
            (T::Ranking, 0.6),
            (T::Location, 0.6),
        ],
    },
    TableIntent {
        name: "horse-racing",
        frequency: 4.0,
        type_pool: &[
            (T::Jockey, 2.0),
            (T::Weight, 1.6),
            (T::Age, 1.4),
            (T::Rank, 1.2),
            (T::Result, 1.0),
            (T::Owner, 0.8),
            (T::Status, 0.6),
        ],
    },
    TableIntent {
        name: "business-listings",
        frequency: 8.0,
        type_pool: &[
            (T::Company, 2.2),
            (T::Code, 1.8),
            (T::Symbol, 1.4),
            (T::Description, 2.0),
            (T::Industry, 1.0),
            (T::Sales, 0.8),
            (T::Address, 0.8),
            (T::Status, 0.8),
            (T::Currency, 0.6),
            (T::Owner, 0.6),
        ],
    },
    TableIntent {
        name: "books-and-publishing",
        frequency: 5.0,
        type_pool: &[
            (T::Isbn, 1.6),
            (T::Publisher, 1.4),
            (T::Sales, 1.0),
            (T::Symbol, 0.8),
            (T::Company, 1.0),
            (T::Description, 1.4),
            (T::Year, 1.2),
            (T::Format, 1.0),
            (T::Creator, 0.8),
            (T::Language, 0.8),
        ],
    },
    TableIntent {
        name: "music-catalogue",
        frequency: 6.0,
        type_pool: &[
            (T::Artist, 2.2),
            (T::Album, 1.8),
            (T::Genre, 1.4),
            (T::Duration, 1.4),
            (T::Year, 1.6),
            (T::Plays, 0.8),
            (T::Format, 0.8),
            (T::Publisher, 0.6),
        ],
    },
    TableIntent {
        name: "file-directory",
        frequency: 5.0,
        type_pool: &[
            (T::FileSize, 1.6),
            (T::Format, 1.6),
            (T::Description, 1.6),
            (T::Command, 1.0),
            (T::Code, 1.0),
            (T::Day, 0.8),
            (T::Year, 0.8),
            (T::Status, 0.8),
            (T::Order, 0.6),
        ],
    },
    TableIntent {
        name: "product-inventory",
        frequency: 6.0,
        type_pool: &[
            (T::Product, 1.8),
            (T::Brand, 1.4),
            (T::Manufacturer, 1.2),
            (T::Category, 1.6),
            (T::Sales, 0.9),
            (T::Currency, 0.8),
            (T::Code, 1.0),
            (T::Description, 1.4),
            (T::Weight, 0.8),
            (T::Status, 0.6),
        ],
    },
    TableIntent {
        name: "biology-taxonomy",
        frequency: 3.5,
        type_pool: &[
            (T::Species, 1.8),
            (T::Family, 1.4),
            (T::Classification, 1.2),
            (T::Class, 1.2),
            (T::Order, 1.0),
            (T::Location, 0.8),
            (T::Notes, 0.8),
        ],
    },
    TableIntent {
        name: "education-programs",
        frequency: 3.5,
        type_pool: &[
            (T::Education, 1.4),
            (T::Grades, 1.4),
            (T::Requirement, 1.2),
            (T::Affiliation, 1.0),
            (T::Credit, 1.0),
            (T::Language, 0.8),
            (T::Duration, 0.8),
            (T::Category, 0.8),
            (T::Name, 1.0),
        ],
    },
    TableIntent {
        name: "transport-services",
        frequency: 4.0,
        type_pool: &[
            (T::Service, 1.6),
            (T::Operator, 1.2),
            (T::Status, 1.2),
            (T::Capacity, 1.0),
            (T::Duration, 1.0),
            (T::Location, 1.0),
            (T::Day, 0.8),
            (T::Range, 0.6),
            (T::Code, 0.8),
        ],
    },
    TableIntent {
        name: "geography-features",
        frequency: 4.0,
        type_pool: &[
            (T::Location, 1.8),
            (T::Elevation, 1.4),
            (T::Depth, 1.0),
            (T::Area, 1.2),
            (T::Country, 1.2),
            (T::Region, 1.0),
            (T::Continent, 0.7),
            (T::Range, 0.8),
            (T::Type, 1.0),
        ],
    },
    TableIntent {
        name: "movies-and-media",
        frequency: 4.5,
        type_pool: &[
            (T::Director, 1.2),
            (T::Creator, 1.0),
            (T::Person, 1.0),
            (T::Year, 1.6),
            (T::Genre, 1.2),
            (T::Duration, 1.2),
            (T::Language, 1.0),
            (T::Company, 0.8),
            (T::Result, 0.6),
            (T::Ranking, 0.7),
        ],
    },
    TableIntent {
        name: "museum-collections",
        frequency: 2.5,
        type_pool: &[
            (T::Collection, 1.4),
            (T::Creator, 1.0),
            (T::Year, 1.2),
            (T::Description, 1.4),
            (T::Owner, 0.8),
            (T::Location, 0.9),
            (T::Category, 0.9),
        ],
    },
    TableIntent {
        name: "hardware-components",
        frequency: 3.0,
        type_pool: &[
            (T::Component, 1.6),
            (T::Manufacturer, 1.2),
            (T::Code, 1.2),
            (T::Weight, 0.9),
            (T::Description, 1.3),
            (T::Type, 1.1),
            (T::Capacity, 0.7),
            (T::Range, 0.6),
        ],
    },
    TableIntent {
        name: "organisation-directory",
        frequency: 2.5,
        type_pool: &[
            (T::Organisation, 1.2),
            (T::Affiliate, 1.0),
            (T::Affiliation, 1.0),
            (T::Address, 1.0),
            (T::Industry, 0.9),
            (T::Country, 0.9),
            (T::Service, 0.7),
            (T::Person, 0.8),
        ],
    },
    TableIntent {
        name: "demographics",
        frequency: 3.0,
        type_pool: &[
            (T::Country, 1.4),
            (T::Nationality, 1.1),
            (T::Language, 1.1),
            (T::Religion, 0.9),
            (T::Continent, 0.8),
            (T::Sex, 0.9),
            (T::Age, 1.1),
            (T::Origin, 0.9),
        ],
    },
    TableIntent {
        name: "generic-records",
        frequency: 9.0,
        type_pool: &[
            (T::Name, 2.0),
            (T::Type, 1.8),
            (T::Description, 1.8),
            (T::Year, 1.4),
            (T::Category, 1.4),
            (T::Status, 1.2),
            (T::Code, 1.2),
            (T::Notes, 1.0),
            (T::Day, 0.8),
            (T::Order, 0.6),
            (T::Class, 1.0),
        ],
    },
];

/// Sample an intent index according to the catalogue frequencies.
pub fn sample_intent(rng: &mut StdRng) -> &'static TableIntent {
    let total: f64 = INTENTS.iter().map(|i| i.frequency).sum();
    let mut target = rng.gen_range(0.0..total);
    for intent in INTENTS {
        if target < intent.frequency {
            return intent;
        }
        target -= intent.frequency;
    }
    // Floating point edge; fall back to the last intent.
    &INTENTS[INTENTS.len() - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn catalogue_is_nonempty_and_weights_positive() {
        assert!(INTENTS.len() >= 15);
        for intent in INTENTS {
            assert!(intent.frequency > 0.0);
            assert!(
                intent.type_pool.len() >= 5,
                "{} pool too small",
                intent.name
            );
            assert!(intent.type_pool.iter().all(|(_, w)| *w > 0.0));
        }
    }

    #[test]
    fn every_semantic_type_is_reachable() {
        let covered: HashSet<SemanticType> = INTENTS
            .iter()
            .flat_map(|i| i.type_pool.iter().map(|(t, _)| *t))
            .collect();
        for t in SemanticType::ALL {
            assert!(covered.contains(&t), "type {t} unreachable from any intent");
        }
    }

    #[test]
    fn sample_types_returns_distinct_types() {
        let mut rng = StdRng::seed_from_u64(1);
        for intent in INTENTS {
            let types = intent.sample_types(4, &mut rng);
            let set: HashSet<_> = types.iter().collect();
            assert_eq!(
                set.len(),
                types.len(),
                "duplicate types from {}",
                intent.name
            );
        }
    }

    #[test]
    fn sample_types_caps_at_pool_size() {
        let mut rng = StdRng::seed_from_u64(2);
        let intent = &INTENTS[0];
        let types = intent.sample_types(1000, &mut rng);
        assert_eq!(types.len(), intent.type_pool.len());
    }

    #[test]
    fn sample_intent_respects_frequencies_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut bio = 0usize;
        let mut museum = 0usize;
        for _ in 0..5000 {
            let i = sample_intent(&mut rng);
            if i.name == "person-biography" {
                bio += 1;
            }
            if i.name == "museum-collections" {
                museum += 1;
            }
        }
        assert!(bio > museum, "frequent intent should be sampled more often");
    }

    #[test]
    fn cooccurring_pairs_from_paper_share_an_intent() {
        // Figure 6 highlights (city, state), (age, weight), (age, name),
        // (code, description) as frequently co-occurring pairs.
        let pairs = [
            (T::City, T::State),
            (T::Age, T::Weight),
            (T::Age, T::Name),
            (T::Code, T::Description),
        ];
        for (a, b) in pairs {
            let ok = INTENTS.iter().any(|i| {
                let types: HashSet<_> = i.type_pool.iter().map(|(t, _)| *t).collect();
                types.contains(&a) && types.contains(&b)
            });
            assert!(ok, "pair ({a}, {b}) never co-occurs in any intent");
        }
    }
}
