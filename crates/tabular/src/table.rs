//! Core table data model: columns of string cell values plus optional
//! semantic-type labels, mirroring how the paper consumes WebTables.
//!
//! Headers are *not* part of the model used for prediction (the paper
//! explicitly predicts from values only); labelled tables carry the
//! ground-truth [`SemanticType`] per column, obtained in the real corpus by
//! canonicalizing the original header.

use crate::types::SemanticType;
use serde::{Deserialize, Serialize};

/// A single table column: an ordered list of cell values.
///
/// Cells are kept as strings (numeric cells are stored in their textual
/// form), which is how the WebTables corpus and the Sherlock feature
/// extractors treat them.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Column {
    /// Cell values from top to bottom. Missing cells are empty strings.
    pub values: Vec<String>,
}

impl Column {
    /// Create a column from anything that yields string-like cells.
    pub fn new<I, S>(values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Column {
            values: values.into_iter().map(Into::into).collect(),
        }
    }

    /// Number of cells (including empty ones).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the column has no cells at all.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of non-empty cells.
    pub fn non_empty_count(&self) -> usize {
        self.values.iter().filter(|v| !v.trim().is_empty()).count()
    }

    /// Iterate over the cell values.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.values.iter().map(String::as_str)
    }
}

/// A relational table: an ordered sequence of columns, optionally labelled
/// with ground-truth semantic types and carrying provenance metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Stable identifier (unique within a corpus).
    pub id: u64,
    /// The columns, left to right. The CRF treats this order as the chain.
    pub columns: Vec<Column>,
    /// Ground-truth semantic types, parallel to `columns`.
    ///
    /// Empty for unlabelled tables (e.g. tables loaded from CSV purely for
    /// prediction).
    pub labels: Vec<SemanticType>,
    /// The latent intent the synthetic generator used (None for real tables).
    ///
    /// Models never look at this; it exists so experiments can verify that
    /// the topic model recovers intent-like structure.
    pub intent: Option<String>,
}

impl Table {
    /// Build an unlabelled table (for prediction).
    pub fn unlabelled(id: u64, columns: Vec<Column>) -> Self {
        Table {
            id,
            columns,
            labels: Vec::new(),
            intent: None,
        }
    }

    /// Build a labelled table. Panics if `labels.len() != columns.len()`.
    pub fn labelled(id: u64, columns: Vec<Column>, labels: Vec<SemanticType>) -> Self {
        assert_eq!(
            columns.len(),
            labels.len(),
            "labels must be parallel to columns"
        );
        Table {
            id,
            columns,
            labels,
            intent: None,
        }
    }

    /// Number of columns (`m` in the paper's notation).
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows (the length of the longest column).
    pub fn num_rows(&self) -> usize {
        self.columns.iter().map(Column::len).max().unwrap_or(0)
    }

    /// Whether ground-truth labels are available.
    pub fn is_labelled(&self) -> bool {
        !self.labels.is_empty() && self.labels.len() == self.columns.len()
    }

    /// A table is *multi-column* when it has at least two columns; singleton
    /// tables are excluded from the paper's `D_mult` dataset because they
    /// carry no table context.
    pub fn is_multi_column(&self) -> bool {
        self.columns.len() > 1
    }

    /// All cell values of the table flattened in column order.
    ///
    /// This is the paper's *global context* ("table values"): the document
    /// handed to the LDA table-intent estimator.
    pub fn all_values(&self) -> impl Iterator<Item = &str> {
        self.columns.iter().flat_map(|c| c.iter())
    }

    /// Visit every cell value in column order — the same order as
    /// [`Self::all_values`] — without materializing anything.
    ///
    /// This is the visitor the streaming topic encoder walks instead of
    /// building the [`Self::as_document`] mega-string: cell boundaries act as
    /// token separators (exactly like the space `as_document` inserts), so a
    /// per-value tokenizer sees the identical token stream.
    pub fn for_each_value(&self, mut f: impl FnMut(&str)) {
        for column in &self.columns {
            for value in column.iter() {
                f(value);
            }
        }
    }

    /// Concatenate every cell into a single whitespace-separated "document"
    /// string, the exact representation used to train/query the LDA model.
    pub fn as_document(&self) -> String {
        let mut doc = String::new();
        for v in self.all_values() {
            if !v.is_empty() {
                if !doc.is_empty() {
                    doc.push(' ');
                }
                doc.push_str(v);
            }
        }
        doc
    }
}

/// Random-access view of one column's cell values: the abstraction the
/// feature extractors consume, so the same single-pass kernels run over an
/// in-memory [`Column`] or a decoded colstore page without copying cells
/// into per-cell `String`s.
///
/// `cell(i)` must be cheap (a borrow, no decoding work) and the order
/// `0..num_cells()` must be the top-to-bottom order of [`Column::iter`];
/// that ordering contract is what keeps streaming and in-memory serving
/// paths bit-identical.
pub trait CellSource {
    /// Number of cells, including empty ones (like [`Column::len`]).
    fn num_cells(&self) -> usize;

    /// The `i`-th cell value. Panics when `i >= num_cells()`.
    fn cell(&self, i: usize) -> &str;

    /// Whether the column has no cells at all.
    fn no_cells(&self) -> bool {
        self.num_cells() == 0
    }
}

impl CellSource for Column {
    fn num_cells(&self) -> usize {
        self.values.len()
    }

    fn cell(&self, i: usize) -> &str {
        &self.values[i]
    }
}

impl<C: CellSource + ?Sized> CellSource for &C {
    fn num_cells(&self) -> usize {
        (**self).num_cells()
    }

    fn cell(&self, i: usize) -> &str {
        (**self).cell(i)
    }
}

/// A table-shaped source of cell values: everything the serving stack needs
/// from a table (identity, per-column cells, gold labels when present)
/// without requiring the materialized [`Table`] struct.
///
/// [`Table`] implements this trivially; the colstore reader's
/// [`crate::colstore::TableBuf`] implements it over dictionary-encoded
/// pages, which is how the serving path annotates a corpus straight off
/// disk.
pub trait TableCells {
    /// The per-column cell view.
    type Cells<'a>: CellSource
    where
        Self: 'a;

    /// Stable table identifier (unique within a corpus).
    fn table_id(&self) -> u64;

    /// Number of columns.
    fn cell_columns(&self) -> usize;

    /// The cells of column `c` (columns are numbered left to right;
    /// `c < cell_columns()`).
    fn cells(&self, c: usize) -> Self::Cells<'_>;

    /// Ground-truth semantic types parallel to the columns, or an empty
    /// slice when the table is unlabelled.
    fn gold_labels(&self) -> &[SemanticType];

    /// Visit every cell value in column order — the trait counterpart of
    /// [`Table::for_each_value`], with the identical visit order.
    fn for_each_cell(&self, mut f: impl FnMut(&str)) {
        for c in 0..self.cell_columns() {
            let cells = self.cells(c);
            for i in 0..cells.num_cells() {
                f(cells.cell(i));
            }
        }
    }
}

impl TableCells for Table {
    type Cells<'a> = &'a Column;

    fn table_id(&self) -> u64 {
        self.id
    }

    fn cell_columns(&self) -> usize {
        self.columns.len()
    }

    fn cells(&self, c: usize) -> &Column {
        &self.columns[c]
    }

    fn gold_labels(&self) -> &[SemanticType] {
        if self.is_labelled() {
            &self.labels
        } else {
            &[]
        }
    }
}

/// A collection of tables: the dataset `D` of the paper (or a fold of it).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Corpus {
    /// The member tables.
    pub tables: Vec<Table>,
}

impl Corpus {
    /// Create a corpus from tables.
    pub fn new(tables: Vec<Table>) -> Self {
        Corpus { tables }
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when the corpus has no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total number of labelled columns across all tables.
    pub fn num_columns(&self) -> usize {
        self.tables.iter().map(Table::num_columns).sum()
    }

    /// Restrict to multi-column tables: the paper's filtered dataset `D_mult`.
    pub fn multi_column_only(&self) -> Corpus {
        Corpus {
            tables: self
                .tables
                .iter()
                .filter(|t| t.is_multi_column())
                .cloned()
                .collect(),
        }
    }

    /// Per-type column counts (the data behind Figure 5).
    pub fn type_counts(&self) -> Vec<(SemanticType, usize)> {
        let mut counts = vec![0usize; crate::types::NUM_TYPES];
        for table in &self.tables {
            for label in &table.labels {
                counts[label.index()] += 1;
            }
        }
        let mut out: Vec<(SemanticType, usize)> = SemanticType::ALL
            .iter()
            .map(|t| (*t, counts[t.index()]))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.index().cmp(&b.0.index())));
        out
    }

    /// Iterate over the tables.
    pub fn iter(&self) -> impl Iterator<Item = &Table> {
        self.tables.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        Table::labelled(
            7,
            vec![
                Column::new(["Florence", "Warsaw", "London"]),
                Column::new(["Italy", "Poland", "UK"]),
            ],
            vec![SemanticType::City, SemanticType::Country],
        )
    }

    #[test]
    fn column_counts_cells() {
        let c = Column::new(["a", "", "  ", "b"]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.non_empty_count(), 2);
        assert!(!c.is_empty());
        assert!(Column::default().is_empty());
    }

    #[test]
    fn table_dimensions() {
        let t = sample_table();
        assert_eq!(t.num_columns(), 2);
        assert_eq!(t.num_rows(), 3);
        assert!(t.is_labelled());
        assert!(t.is_multi_column());
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn labelled_requires_parallel_labels() {
        Table::labelled(0, vec![Column::new(["x"])], vec![]);
    }

    #[test]
    fn document_flattens_in_column_order() {
        let t = sample_table();
        assert_eq!(t.as_document(), "Florence Warsaw London Italy Poland UK");
        assert_eq!(t.all_values().count(), 6);
    }

    #[test]
    fn for_each_value_visits_all_values_in_document_order() {
        let t = sample_table();
        let mut seen = Vec::new();
        t.for_each_value(|v| seen.push(v.to_string()));
        let expected: Vec<String> = t.all_values().map(str::to_string).collect();
        assert_eq!(seen, expected);
        assert_eq!(seen.join(" "), t.as_document());
    }

    #[test]
    fn unlabelled_table_is_not_labelled() {
        let t = Table::unlabelled(1, vec![Column::new(["a"])]);
        assert!(!t.is_labelled());
        assert!(!t.is_multi_column());
    }

    #[test]
    fn corpus_multi_column_filter() {
        let corpus = Corpus::new(vec![
            sample_table(),
            Table::labelled(8, vec![Column::new(["42"])], vec![SemanticType::Age]),
        ]);
        assert_eq!(corpus.len(), 2);
        assert_eq!(corpus.num_columns(), 3);
        let mult = corpus.multi_column_only();
        assert_eq!(mult.len(), 1);
        assert!(mult.tables[0].is_multi_column());
    }

    #[test]
    fn type_counts_are_sorted_descending() {
        let corpus = Corpus::new(vec![sample_table(), sample_table()]);
        let counts = corpus.type_counts();
        assert_eq!(counts.len(), crate::types::NUM_TYPES);
        assert_eq!(counts[0].1, 2); // city and country both occur twice
        assert!(counts.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn cell_source_matches_column_iter() {
        let c = Column::new(["a", "", "b"]);
        assert_eq!(c.num_cells(), c.len());
        assert!(!c.no_cells());
        let via_trait: Vec<&str> = (0..c.num_cells()).map(|i| c.cell(i)).collect();
        let via_iter: Vec<&str> = c.iter().collect();
        assert_eq!(via_trait, via_iter);
        // The blanket reference impl forwards.
        let r = &c;
        assert_eq!(r.num_cells(), 3);
        assert_eq!(r.cell(2), "b");
    }

    #[test]
    fn table_cells_matches_table_accessors() {
        let t = sample_table();
        assert_eq!(t.table_id(), t.id);
        assert_eq!(t.cell_columns(), t.num_columns());
        assert_eq!(t.cells(1).cell(0), "Italy");
        assert_eq!(t.gold_labels(), &t.labels[..]);
        let mut via_trait = Vec::new();
        t.for_each_cell(|v| via_trait.push(v.to_string()));
        let mut via_table = Vec::new();
        t.for_each_value(|v| via_table.push(v.to_string()));
        assert_eq!(via_trait, via_table);
        let unlabelled = Table::unlabelled(1, vec![Column::new(["x"])]);
        assert!(unlabelled.gold_labels().is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let t = sample_table();
        let json = serde_json::to_string(&t).unwrap();
        let back: Table = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
