//! Minimal CSV reading and writing for tables.
//!
//! The examples and the `csv_annotation` workflow load plain CSV files and
//! annotate their columns; this module implements a small RFC-4180-ish
//! parser (quoted fields, embedded commas/newlines, doubled quotes) without
//! pulling in an external dependency.

use crate::canonical::header_to_type;
use crate::table::{Column, Table};
use std::fmt::Write as _;

/// Parse CSV text into rows of fields.
pub fn parse_csv(text: &str) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    row.push(std::mem::take(&mut field));
                }
                '\r' => {} // tolerate CRLF
                '\n' => {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                }
                _ => field.push(c),
            }
        }
    }
    if !field.is_empty() || !row.is_empty() {
        row.push(field);
        rows.push(row);
    }
    rows
}

/// Escape a single CSV field if needed.
fn escape_field(f: &str) -> String {
    if f.contains(',') || f.contains('"') || f.contains('\n') || f.contains('\r') {
        format!("\"{}\"", f.replace('"', "\"\""))
    } else {
        f.to_string()
    }
}

/// Serialize rows of fields to CSV text (LF line endings).
pub fn write_csv(rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    for row in rows {
        let line: Vec<String> = row.iter().map(|f| escape_field(f)).collect();
        let _ = writeln!(out, "{}", line.join(","));
    }
    out
}

/// Convert CSV text (rows of cells, no header) into an unlabelled [`Table`].
///
/// Rows shorter than the widest row are padded with empty cells so all
/// columns have equal length.
pub fn table_from_csv(id: u64, text: &str, has_header: bool) -> Table {
    let mut rows = parse_csv(text);
    let header = if has_header && !rows.is_empty() {
        Some(rows.remove(0))
    } else {
        None
    };
    let width = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut columns = vec![Vec::with_capacity(rows.len()); width];
    for row in &rows {
        for (c, col) in columns.iter_mut().enumerate() {
            col.push(row.get(c).cloned().unwrap_or_default());
        }
    }
    let columns: Vec<Column> = columns
        .into_iter()
        .map(|values| Column { values })
        .collect();

    // If a header is present, try to recover ground-truth labels through
    // canonicalization; only attach them if *every* header maps to a known
    // type (mirroring how the corpus was filtered in the paper).
    if let Some(header) = header {
        let labels: Vec<_> = header.iter().map(|h| header_to_type(h)).collect();
        if labels.len() == columns.len() && labels.iter().all(Option::is_some) {
            return Table::labelled(id, columns, labels.into_iter().flatten().collect());
        }
    }
    Table::unlabelled(id, columns)
}

/// Ingest a stream of CSV documents straight into a colstore stream: each
/// `(table_id, csv_text)` document is parsed with [`table_from_csv`] and
/// written as one dictionary-encoded frame, so only a single table is ever
/// materialized at a time. Returns the number of tables ingested along with
/// the finished writer's inner sink.
///
/// This is the CSV→colstore ingestion path: `csv_to_colstore` once at
/// ingest time, then serve any number of annotation passes from the
/// columnar file through [`crate::colstore::ColStoreReader`].
pub fn csv_to_colstore<'a, W: std::io::Write>(
    documents: impl IntoIterator<Item = (u64, &'a str)>,
    has_header: bool,
    out: W,
) -> std::io::Result<(usize, W)> {
    let mut writer = crate::colstore::ColStoreWriter::new(out)?;
    let mut count = 0usize;
    for (id, text) in documents {
        writer.write_table(&table_from_csv(id, text, has_header))?;
        count += 1;
    }
    Ok((count, writer.finish()?))
}

/// Serialize a table to CSV. When the table is labelled, the canonical type
/// names are written as the header row.
pub fn table_to_csv(table: &Table) -> String {
    let mut rows: Vec<Vec<String>> = Vec::new();
    if table.is_labelled() {
        rows.push(
            table
                .labels
                .iter()
                .map(|t| t.canonical_name().to_string())
                .collect(),
        );
    }
    let n_rows = table.num_rows();
    for r in 0..n_rows {
        rows.push(
            table
                .columns
                .iter()
                .map(|c| c.values.get(r).cloned().unwrap_or_default())
                .collect(),
        );
    }
    write_csv(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SemanticType;

    #[test]
    fn parse_simple_csv() {
        let rows = parse_csv("a,b,c\n1,2,3\n");
        assert_eq!(rows, vec![vec!["a", "b", "c"], vec!["1", "2", "3"]]);
    }

    #[test]
    fn parse_quoted_fields() {
        let rows = parse_csv("name,notes\n\"Smith, John\",\"said \"\"hi\"\"\"\n");
        assert_eq!(rows[1][0], "Smith, John");
        assert_eq!(rows[1][1], "said \"hi\"");
    }

    #[test]
    fn parse_crlf_and_trailing_line() {
        let rows = parse_csv("a,b\r\n1,2");
        assert_eq!(rows, vec![vec!["a", "b"], vec!["1", "2"]]);
    }

    #[test]
    fn quoted_newline_stays_in_field() {
        let rows = parse_csv("a,b\n\"line1\nline2\",x\n");
        assert_eq!(rows[1][0], "line1\nline2");
    }

    #[test]
    fn write_round_trips_through_parse() {
        let rows = vec![
            vec!["city".to_string(), "notes, extra".to_string()],
            vec!["Warsaw".to_string(), "he said \"hi\"".to_string()],
        ];
        let text = write_csv(&rows);
        assert_eq!(parse_csv(&text), rows);
    }

    #[test]
    fn table_from_csv_with_recognized_header_is_labelled() {
        let text = "City,Country\nWarsaw,Poland\nRome,Italy\n";
        let t = table_from_csv(1, text, true);
        assert!(t.is_labelled());
        assert_eq!(t.labels, vec![SemanticType::City, SemanticType::Country]);
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn table_from_csv_with_unknown_header_is_unlabelled() {
        let text = "population,city\n100,Warsaw\n";
        let t = table_from_csv(2, text, true);
        assert!(!t.is_labelled());
        assert_eq!(t.num_columns(), 2);
    }

    #[test]
    fn ragged_rows_are_padded() {
        let text = "a,b,c\n1,2\n";
        let t = table_from_csv(3, text, false);
        assert_eq!(t.num_columns(), 3);
        assert_eq!(t.columns[2].values, vec!["c", ""]);
    }

    #[test]
    fn csv_to_colstore_round_trip() {
        let docs = [
            (7u64, "City,Country\nWarsaw,Poland\nRome,Italy\n"),
            (8u64, "a,b,c\n1,2\n"),
        ];
        let (count, bytes) = csv_to_colstore(docs.iter().copied(), true, Vec::new()).unwrap();
        assert_eq!(count, 2);
        let corpus = crate::colstore::corpus_from_bytes(&bytes).unwrap();
        assert_eq!(corpus.len(), 2);
        for ((id, text), decoded) in docs.iter().zip(corpus.iter()) {
            assert_eq!(decoded, &table_from_csv(*id, text, true));
        }
    }

    #[test]
    fn table_to_csv_round_trip() {
        let table = Table::labelled(
            9,
            vec![
                Column::new(["Warsaw", "Rome"]),
                Column::new(["Poland", "Italy"]),
            ],
            vec![SemanticType::City, SemanticType::Country],
        );
        let text = table_to_csv(&table);
        let back = table_from_csv(9, &text, true);
        assert_eq!(back.labels, table.labels);
        assert_eq!(back.columns, table.columns);
    }
}
