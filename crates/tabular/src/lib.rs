//! # sato-tabular
//!
//! Table data substrate for the Rust reproduction of *Sato: Contextual
//! Semantic Type Detection in Tables* (VLDB 2020).
//!
//! This crate provides everything the models need to know about tables:
//!
//! * the registry of the paper's 78 [`SemanticType`]s ([`types`]),
//! * header canonicalization as described in Section 4.1 ([`canonical`]),
//! * the [`Table`]/[`Column`]/[`Corpus`] data model ([`table`]),
//! * a deterministic synthetic WebTables-style corpus generator that stands
//!   in for the VizNet corpus ([`values`], [`intents`], [`corpus`]),
//! * co-occurrence statistics used for Figure 6 and for initialising the CRF
//!   pairwise potentials ([`cooccurrence`]),
//! * table-level train/test splitting and k-fold cross-validation ([`split`]),
//! * small CSV import/export utilities ([`csv`]).
//!
//! ## Quickstart
//!
//! ```
//! use sato_tabular::corpus::default_corpus;
//! use sato_tabular::types::SemanticType;
//!
//! let corpus = default_corpus(100, 42);
//! assert_eq!(corpus.len(), 100);
//! let counts = corpus.type_counts();
//! assert_eq!(counts.len(), SemanticType::ALL.len());
//! ```

#![warn(missing_docs)]

pub mod canonical;
pub mod colstore;
pub mod cooccurrence;
pub mod corpus;
pub mod csv;
pub mod hierarchy;
pub mod intents;
pub mod split;
pub mod table;
pub mod types;
pub mod values;

pub use colstore::{ColStoreError, ColStoreReader, ColStoreWriter, TableBuf};
pub use cooccurrence::CooccurrenceMatrix;
pub use corpus::{CorpusConfig, CorpusGenerator};
pub use split::{k_fold, train_test_split, Split};
pub use table::{CellSource, Column, Corpus, Table, TableCells};
pub use types::{SemanticType, NUM_TYPES};
