//! Deterministic fault injection for the Sato serving stack.
//!
//! Production crates declare *named injection points* — `serve.round`,
//! `core.artifact_load`, `tabular.colstore_decode`, … — behind their own
//! `faults` cargo feature, so the sites compile to nothing in ordinary
//! builds. With the feature on, a test (or the `service_load --chaos`
//! bench) arms a site with a [`FaultSpec`] and the next matching execution
//! deterministically panics, returns an injected error, or stalls.
//!
//! The registry is process-global and intentionally tiny: chaos tests that
//! share a binary serialize themselves (see the integration suite) and use
//! [`scoped`] so every test starts and ends with a clean slate.
//!
//! # Cookbook
//!
//! ```
//! use sato_faults::{self as faults, FaultSpec};
//! use std::time::Duration;
//!
//! let _guard = faults::scoped(); // clean registry now and on drop
//!
//! // Panic the third round formed by the batcher:
//! faults::set("serve.round_formation", FaultSpec::panic().nth(3));
//! // Fail the first two artifact loads with a transient I/O error:
//! faults::set("core.artifact_load", FaultSpec::error().times(2));
//! // Stall every other serving round by half a millisecond:
//! faults::set("serve.round", FaultSpec::delay(Duration::from_micros(500)).every(2));
//! // Poison exactly the table whose id is 7, every time it is featurized:
//! faults::set("core.feature_extract", FaultSpec::panic().with_key(7));
//! ```
//!
//! Injection points without an error channel (e.g. feature extraction deep
//! inside a prediction) escalate an armed `Error` action to a panic via
//! [`fire_panic`]; the serving layer is expected to contain it.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

/// What happens when an armed injection point fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with a payload starting with `"injected fault:"`.
    Panic,
    /// Ask the call site to surface its crate-native injected error.
    Error,
    /// Sleep for the given duration, then continue normally.
    Delay(Duration),
}

/// When an armed injection point fires, relative to the hits that match
/// its key filter (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Fire on every matching hit.
    Always,
    /// Fire only on the `n`-th matching hit.
    Nth(u64),
    /// Fire on every `n`-th matching hit (the `n`-th, `2n`-th, …).
    EveryNth(u64),
    /// Fire on the first `n` matching hits, then go quiet.
    Times(u64),
}

/// A fault armed at one injection point: an action, an optional key filter
/// and a firing schedule. Built with [`FaultSpec::panic`],
/// [`FaultSpec::error`] or [`FaultSpec::delay`] plus the builder methods.
#[derive(Debug, Clone)]
pub struct FaultSpec {
    action: FaultAction,
    key: Option<u64>,
    trigger: Trigger,
}

impl FaultSpec {
    fn new(action: FaultAction) -> Self {
        FaultSpec {
            action,
            key: None,
            trigger: Trigger::Always,
        }
    }

    /// A fault that panics the call site.
    pub fn panic() -> Self {
        Self::new(FaultAction::Panic)
    }

    /// A fault that makes the call site return its injected error.
    pub fn error() -> Self {
        Self::new(FaultAction::Error)
    }

    /// A fault that stalls the call site for `d`, then continues.
    pub fn delay(d: Duration) -> Self {
        Self::new(FaultAction::Delay(d))
    }

    /// Only hits whose key equals `key` match (sites pass a natural key:
    /// table id, frame index, queue length …). Default: every key matches.
    pub fn with_key(mut self, key: u64) -> Self {
        self.key = Some(key);
        self
    }

    /// Fire exactly once (shorthand for [`times(1)`](Self::times)).
    pub fn once(self) -> Self {
        self.times(1)
    }

    /// Fire only on the `n`-th matching hit (1-based).
    pub fn nth(mut self, n: u64) -> Self {
        self.trigger = Trigger::Nth(n);
        self
    }

    /// Fire on every `n`-th matching hit.
    pub fn every(mut self, n: u64) -> Self {
        self.trigger = Trigger::EveryNth(n);
        self
    }

    /// Fire on the first `n` matching hits, then go quiet.
    pub fn times(mut self, n: u64) -> Self {
        self.trigger = Trigger::Times(n);
        self
    }
}

#[derive(Default)]
struct SiteState {
    /// Executions of the site, armed or not.
    hits: u64,
    /// Hits that matched the armed spec's key filter.
    matched: u64,
    /// Hits on which the armed action actually ran.
    fired: u64,
    plan: Option<FaultSpec>,
}

fn registry() -> MutexGuard<'static, HashMap<String, SiteState>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, SiteState>>> = OnceLock::new();
    REGISTRY
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        // A panic *while armed* is this crate's normal mode of operation,
        // so the registry must shrug off poisoning.
        .unwrap_or_else(PoisonError::into_inner)
}

/// Arm `site` with `spec`, replacing any previous plan and resetting the
/// site's counters.
pub fn set(site: &str, spec: FaultSpec) {
    let mut reg = registry();
    let state = reg.entry(site.to_string()).or_default();
    *state = SiteState {
        plan: Some(spec),
        ..SiteState::default()
    };
}

/// Disarm `site` (its counters keep counting executions).
pub fn clear(site: &str) {
    if let Some(state) = registry().get_mut(site) {
        state.plan = None;
    }
}

/// Disarm every site and zero all counters.
pub fn reset() {
    registry().clear();
}

/// Executions of `site` since the last [`reset`]/[`set`] touching it.
pub fn hits(site: &str) -> u64 {
    registry().get(site).map_or(0, |s| s.hits)
}

/// Times the armed action at `site` actually ran since it was [`set`].
pub fn fired(site: &str) -> u64 {
    registry().get(site).map_or(0, |s| s.fired)
}

/// RAII guard returned by [`scoped`]: the registry is cleared again when
/// it drops, so one test's faults never leak into the next.
pub struct FaultGuard(());

impl Drop for FaultGuard {
    fn drop(&mut self) {
        reset();
    }
}

/// Reset the registry now and return a guard that resets it again on drop.
/// Take one at the top of every chaos test.
#[must_use = "the registry is re-armed for the next test only while the guard lives"]
pub fn scoped() -> FaultGuard {
    reset();
    FaultGuard(())
}

/// Evaluate the injection point `site` for one execution identified by
/// `key`. Called by the production crates at each `#[cfg(feature =
/// "faults")]` site; not normally called by tests.
///
/// Returns `true` when the caller must surface its injected error. A
/// `Panic` action panics here (payload `"injected fault: <site>"`); a
/// `Delay` sleeps (with the registry lock released) and returns `false`.
pub fn fire(site: &str, key: u64) -> bool {
    let action = {
        let mut reg = registry();
        let state = reg.entry(site.to_string()).or_default();
        state.hits += 1;
        let Some(plan) = &state.plan else {
            return false;
        };
        if plan.key.is_some_and(|k| k != key) {
            return false;
        }
        state.matched += 1;
        let fires = match plan.trigger {
            Trigger::Always => true,
            Trigger::Nth(n) => state.matched == n,
            Trigger::EveryNth(n) => n > 0 && state.matched.is_multiple_of(n),
            Trigger::Times(n) => state.matched <= n,
        };
        if !fires {
            return false;
        }
        state.fired += 1;
        plan.action.clone()
    };
    match action {
        FaultAction::Panic => panic!("injected fault: {site}"),
        FaultAction::Delay(d) => {
            std::thread::sleep(d);
            false
        }
        FaultAction::Error => true,
    }
}

/// Like [`fire`], for sites with no error channel: an armed `Error` action
/// escalates to a panic instead of being silently dropped.
pub fn fire_panic(site: &str, key: u64) {
    if fire(site, key) {
        panic!("injected fault: {site}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global, so the unit tests serialize on one
    /// mutex (the test harness runs them concurrently otherwise).
    fn serial() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn unarmed_sites_count_hits_and_never_fire() {
        let _s = serial();
        let _g = scoped();
        assert!(!fire("t.unarmed", 0));
        assert!(!fire("t.unarmed", 7));
        assert_eq!(hits("t.unarmed"), 2);
        assert_eq!(fired("t.unarmed"), 0);
    }

    #[test]
    fn error_action_fires_by_trigger_schedule() {
        let _s = serial();
        let _g = scoped();
        set("t.err", FaultSpec::error().nth(2));
        assert!(!fire("t.err", 0));
        assert!(fire("t.err", 0));
        assert!(!fire("t.err", 0));
        assert_eq!(fired("t.err"), 1);

        set("t.err", FaultSpec::error().times(2));
        assert!(fire("t.err", 0));
        assert!(fire("t.err", 0));
        assert!(!fire("t.err", 0));
        assert_eq!(fired("t.err"), 2);

        set("t.err", FaultSpec::error().every(2));
        assert!(!fire("t.err", 0));
        assert!(fire("t.err", 0));
        assert!(!fire("t.err", 0));
        assert!(fire("t.err", 0));
        assert_eq!(fired("t.err"), 2);
    }

    #[test]
    fn key_filter_only_matches_its_key() {
        let _s = serial();
        let _g = scoped();
        set("t.key", FaultSpec::error().with_key(7).once());
        assert!(!fire("t.key", 1));
        assert!(!fire("t.key", 2));
        assert!(fire("t.key", 7));
        // `once` is exhausted even for the armed key.
        assert!(!fire("t.key", 7));
        assert_eq!(hits("t.key"), 4);
        assert_eq!(fired("t.key"), 1);
    }

    #[test]
    fn panic_action_panics_with_site_payload() {
        let _s = serial();
        let _g = scoped();
        set("t.panic", FaultSpec::panic().once());
        let err = std::panic::catch_unwind(|| fire("t.panic", 0)).unwrap_err();
        let payload = err.downcast_ref::<String>().expect("string payload");
        assert_eq!(payload, "injected fault: t.panic");
        // Exhausted: the site is quiet afterwards, and the registry
        // recovered from the poisoned-while-panicking lock.
        assert!(!fire("t.panic", 0));
    }

    #[test]
    fn delay_action_stalls_then_continues() {
        let _s = serial();
        let _g = scoped();
        set("t.delay", FaultSpec::delay(Duration::from_millis(5)).once());
        let start = std::time::Instant::now();
        assert!(!fire("t.delay", 0));
        assert!(start.elapsed() >= Duration::from_millis(5));
        assert_eq!(fired("t.delay"), 1);
    }

    #[test]
    fn clear_disarms_and_scoped_resets() {
        let _s = serial();
        {
            let _g = scoped();
            set("t.clear", FaultSpec::error());
            assert!(fire("t.clear", 0));
            clear("t.clear");
            assert!(!fire("t.clear", 0));
            assert_eq!(hits("t.clear"), 2);
        }
        // The guard dropped: everything is gone.
        assert_eq!(hits("t.clear"), 0);
    }
}
