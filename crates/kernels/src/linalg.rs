//! `f32` vector primitives for the warm NN forward (and backward) path.

/// `y[i] += a * x[i]`. Element-wise (no reassociation), so every form is
/// bit-identical. The NN matmul calls this once per nonzero left-hand
/// element; callers keep their zero-skip (`a * 0.0` adds can flip `-0.0`).
#[inline]
pub fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    #[cfg(feature = "simd")]
    {
        crate::simd::axpy(a, x, y);
    }
    #[cfg(not(feature = "simd"))]
    {
        for (o, &b) in y.iter_mut().zip(x.iter()) {
            *o += a * b;
        }
    }
}

/// `y[i] += x[i]` (row-broadcast bias add). Element-wise, bit-identical in
/// every form.
#[inline]
pub fn add_assign(x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "add_assign length mismatch");
    #[cfg(feature = "simd")]
    {
        crate::simd::add_assign(x, y);
    }
    #[cfg(not(feature = "simd"))]
    {
        for (o, &b) in y.iter_mut().zip(x.iter()) {
            *o += b;
        }
    }
}

/// `v[i] *= s`. Element-wise, bit-identical in every form.
#[inline]
pub fn scale(v: &mut [f32], s: f32) {
    #[cfg(feature = "simd")]
    {
        crate::simd::scale(v, s);
    }
    #[cfg(not(feature = "simd"))]
    {
        for x in v.iter_mut() {
            *x *= s;
        }
    }
}

/// Dot product over four independent accumulators (ULP-bounded vs the
/// in-order scalar sum: partial sums are reassociated; slices shorter than
/// a chunk stay in order). Used on the training backward path, where the
/// contract is determinism-within-build, not cross-form bit parity.
#[inline]
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    #[cfg(feature = "simd")]
    {
        crate::simd::dot(x, y)
    }
    #[cfg(not(feature = "simd"))]
    {
        chunked_dot(x, y)
    }
}

/// Squared Euclidean distance `Σ (x[i] - y[i])²` over four independent
/// accumulators (ULP-bounded vs the in-order scalar sum, like [`dot`]:
/// partial sums are reassociated; slices shorter than a chunk stay in
/// order). This is the ANN index's distance reduction — nearest-neighbor
/// *ranking* tolerates reassociation, and the recall oracle uses the same
/// form on both sides so rankings agree bit-for-bit. No `simd` form: the
/// chunked loop autovectorizes and the index is not on the bit-parity path.
#[inline]
pub fn squared_l2(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "squared_l2 length mismatch");
    let mut cx = x.chunks_exact(4);
    let mut cy = y.chunks_exact(4);
    let mut acc = [0.0f32; 4];
    for (a, b) in (&mut cx).zip(&mut cy) {
        let d0 = a[0] - b[0];
        let d1 = a[1] - b[1];
        let d2 = a[2] - b[2];
        let d3 = a[3] - b[3];
        acc[0] += d0 * d0;
        acc[1] += d1 * d1;
        acc[2] += d2 * d2;
        acc[3] += d3 * d3;
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (&a, &b) in cx.remainder().iter().zip(cy.remainder()) {
        let d = a - b;
        s += d * d;
    }
    s
}

#[cfg_attr(feature = "simd", allow(dead_code))]
#[inline]
pub(crate) fn chunked_dot(x: &[f32], y: &[f32]) -> f32 {
    let mut cx = x.chunks_exact(4);
    let mut cy = y.chunks_exact(4);
    let mut acc = [0.0f32; 4];
    for (a, b) in (&mut cx).zip(&mut cy) {
        acc[0] += a[0] * b[0];
        acc[1] += a[1] * b[1];
        acc[2] += a[2] * b[2];
        acc[3] += a[3] * b[3];
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (&a, &b) in cx.remainder().iter().zip(cy.remainder()) {
        s += a * b;
    }
    s
}

/// Scalar reference forms (the parity oracle and benchmark baseline).
pub mod scalar {
    /// In-order `y += a * x`.
    pub fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), y.len(), "axpy length mismatch");
        for (o, &b) in y.iter_mut().zip(x.iter()) {
            *o += a * b;
        }
    }

    /// In-order single-accumulator dot product.
    pub fn dot(x: &[f32], y: &[f32]) -> f32 {
        assert_eq!(x.len(), y.len(), "dot length mismatch");
        let mut acc = 0.0f32;
        for (&a, &b) in x.iter().zip(y.iter()) {
            acc += a * b;
        }
        acc
    }

    /// In-order single-accumulator squared Euclidean distance.
    pub fn squared_l2(x: &[f32], y: &[f32]) -> f32 {
        assert_eq!(x.len(), y.len(), "squared_l2 length mismatch");
        let mut acc = 0.0f32;
        for (&a, &b) in x.iter().zip(y.iter()) {
            let d = a - b;
            acc += d * d;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_matches_scalar_bits() {
        let x: Vec<f32> = (0..19).map(|i| (i as f32 - 9.0) * 0.31).collect();
        for len in 0..x.len() {
            let mut a = vec![0.5f32; len];
            let mut b = a.clone();
            axpy(1.7, &x[..len], &mut a);
            scalar::axpy(1.7, &x[..len], &mut b);
            assert_eq!(
                a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "len {len}"
            );
        }
    }

    #[test]
    fn add_assign_and_scale_work() {
        let mut y = vec![1.0f32, 2.0, 3.0];
        add_assign(&[0.5, 0.5, 0.5], &mut y);
        assert_eq!(y, vec![1.5, 2.5, 3.5]);
        scale(&mut y, 2.0);
        assert_eq!(y, vec![3.0, 5.0, 7.0]);
    }

    #[test]
    fn squared_l2_is_close_to_scalar() {
        let x: Vec<f32> = (0..37)
            .map(|i| ((i * 13 % 7) as f32 - 3.0) * 0.21)
            .collect();
        let y: Vec<f32> = (0..37)
            .map(|i| ((i * 5 % 11) as f32 - 5.0) * 0.17)
            .collect();
        for len in 0..x.len() {
            let got = squared_l2(&x[..len], &y[..len]);
            let want = scalar::squared_l2(&x[..len], &y[..len]);
            assert!(got >= 0.0, "len {len}: squared distance must be >= 0");
            assert!((got - want).abs() <= 1e-5 * (1.0 + want.abs()), "len {len}");
            if len < 4 {
                // Sub-chunk slices take the in-order remainder path exactly.
                assert_eq!(got.to_bits(), want.to_bits(), "short len {len}");
            }
        }
        assert_eq!(squared_l2(&x, &x), 0.0, "self-distance is exactly zero");
    }

    #[test]
    fn dot_is_close_to_scalar() {
        let x: Vec<f32> = (0..37)
            .map(|i| ((i * 13 % 7) as f32 - 3.0) * 0.21)
            .collect();
        let y: Vec<f32> = (0..37)
            .map(|i| ((i * 5 % 11) as f32 - 5.0) * 0.17)
            .collect();
        for len in 0..x.len() {
            let got = dot(&x[..len], &y[..len]);
            let want = scalar::dot(&x[..len], &y[..len]);
            assert!((got - want).abs() <= 1e-5 * (1.0 + want.abs()), "len {len}");
            if len < 4 {
                // Sub-chunk slices take the in-order remainder path exactly.
                assert_eq!(got.to_bits(), want.to_bits(), "short len {len}");
            }
        }
    }
}
