//! Shared numeric kernels for the Sato serving hot paths.
//!
//! Every measured inner loop of the serving pipeline — n-gram feature
//! hashing (`sato-features`), CRF flat-DP decode (`sato-crf`), warm NN
//! forward accumulation (`sato-nn`), artifact/colstore checksums
//! (`sato-core`/`sato-tabular`) — bottoms out in a handful of fixed-width
//! primitives. This crate implements each primitive **once**, in up to
//! three forms:
//!
//! * a **scalar** reference implementation (`scalar::*`) — the oracle every
//!   other form is parity-tested against, and the baseline the benchmarks
//!   measure speedups from;
//! * a **chunked** form (the default export) — restructured into fixed-width
//!   chunks with independent accumulators so the stable autovectorizer can
//!   lift it, without changing the documented exactness contract;
//! * an opt-in **`std::simd`** form behind the non-default `simd` feature
//!   (nightly only) — explicit portable-SIMD lanes for the kernels where
//!   they pay.
//!
//! # Exactness contract
//!
//! | Kernel | chunked vs scalar | `simd` vs scalar |
//! |---|---|---|
//! | [`fnv1a64`] / [`Fnv1a`] | bit-identical | (no simd form) |
//! | [`log_sum_exp`], [`log_sum_exp3`] | bit-identical¹ | (no simd form) |
//! | [`max_argmax`], [`relax_max_argmax`], [`max_add_update`], [`exp_sum_update`], [`lse_finish`] | bit-identical¹ | bit-identical¹ |
//! | [`axpy`], [`add_assign`], [`scale`] | bit-identical | bit-identical |
//! | [`dot`] | ULP-bounded (reassociated partial sums) | ULP-bounded |
//! | [`squared_l2`] | ULP-bounded (reassociated partial sums) | (no simd form) |
//! | [`lut_histogram`] | exact (integer counts) | (no simd form) |
//!
//! ¹ for NaN-free inputs; max reductions are reassociated, which is exact
//! for `f64::max` up to the sign of a `±0.0` maximum — and every consumer
//! in this workspace is insensitive to that sign bit (`exp(±0.0) = 1.0`,
//! `x + ±0.0 = x` for the values that can reach it), so parity tests
//! compare bits.
//!
//! The sums inside the log-sum-exp kernels stay in index order (only the
//! max pass is chunked): reassociating a sum of exponentials would change
//! results, and the CRF keeps the dense serving path bit-identical to its
//! historical implementation.

#![cfg_attr(feature = "simd", feature(portable_simd))]

pub mod fnv;
pub mod hist;
pub mod linalg;
pub mod reduce;
#[cfg(feature = "simd")]
pub mod simd;

pub use fnv::{fnv1a64, fnv1a64_seeded, Fnv1a};
pub use hist::{lut_histogram, HIST_SKIP};
pub use linalg::{add_assign, axpy, dot, scale, squared_l2};
pub use reduce::{
    exp_sum_update, log_sum_exp, log_sum_exp3, lse_finish, max_add_update, max_argmax,
    relax_max_argmax,
};
