//! `f64` reductions and DP relaxations: log-sum-exp, max+argmax, and the
//! row-major "relax" updates the CRF flat DP is built from.
//!
//! The CRF inner loops historically iterated destination-major
//! (`for b { for a { prev[a] + pair(a, b) } }`), striding the pairwise
//! matrix by `k` on every read. The kernels here support the row-major
//! restructuring (`for a { relax all b over the contiguous pair row }`)
//! which visits each destination in the same source order — so maxima,
//! argmaxima (first-wins on ties) and the index-ordered exponential sums
//! are bit-identical to the historical loops, while every memory access
//! becomes contiguous and the per-destination updates vectorize.

/// Maximum of `values` (`-inf` for an empty slice), reassociated over four
/// accumulators. Exact for NaN-free input up to the sign of a `±0.0`
/// maximum (see the crate-level contract).
#[inline]
pub fn max(values: &[f64]) -> f64 {
    let mut chunks = values.chunks_exact(4);
    let mut m = [f64::NEG_INFINITY; 4];
    for c in &mut chunks {
        m[0] = m[0].max(c[0]);
        m[1] = m[1].max(c[1]);
        m[2] = m[2].max(c[2]);
        m[3] = m[3].max(c[3]);
    }
    let mut best = m[0].max(m[1]).max(m[2]).max(m[3]);
    for &v in chunks.remainder() {
        best = best.max(v);
    }
    best
}

/// Numerically stable `log Σ exp(v)`: chunked max pass, then the
/// exponential sum **in index order** (reassociating it would change bits;
/// the CRF dense path is a bit-parity oracle).
#[inline]
pub fn log_sum_exp(values: &[f64]) -> f64 {
    let m = max(values);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    m + values.iter().map(|&v| (v - m).exp()).sum::<f64>().ln()
}

/// `log Σ_i exp((x[i] + y[i]) + z[i])` without materialising the term
/// buffer. Same shape as [`log_sum_exp`] over `terms[i] = (x[i] + y[i]) +
/// z[i]` — additions stay left-associated, the sum stays in index order.
#[inline]
pub fn log_sum_exp3(x: &[f64], y: &[f64], z: &[f64]) -> f64 {
    let n = x.len();
    assert!(y.len() == n && z.len() == n, "log_sum_exp3 length mismatch");
    let mut chunks_m = [f64::NEG_INFINITY; 4];
    let mut i = 0;
    while i + 4 <= n {
        chunks_m[0] = chunks_m[0].max((x[i] + y[i]) + z[i]);
        chunks_m[1] = chunks_m[1].max((x[i + 1] + y[i + 1]) + z[i + 1]);
        chunks_m[2] = chunks_m[2].max((x[i + 2] + y[i + 2]) + z[i + 2]);
        chunks_m[3] = chunks_m[3].max((x[i + 3] + y[i + 3]) + z[i + 3]);
        i += 4;
    }
    let mut m = chunks_m[0]
        .max(chunks_m[1])
        .max(chunks_m[2])
        .max(chunks_m[3]);
    while i < n {
        m = m.max((x[i] + y[i]) + z[i]);
        i += 1;
    }
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    let mut s = 0.0;
    for i in 0..n {
        s += (((x[i] + y[i]) + z[i]) - m).exp();
    }
    m + s.ln()
}

/// Maximum value and the index of its **first** occurrence
/// (`(-inf, 0)` for an empty slice). Two passes: a chunked max, then the
/// first index whose value equals it — which is exactly what the scalar
/// strict-`>` scan returns, including the value's bits (re-read at the
/// winning index).
#[inline]
pub fn max_argmax(values: &[f64]) -> (f64, usize) {
    let m = max(values);
    for (i, &v) in values.iter().enumerate() {
        if v == m {
            return (v, i);
        }
    }
    (m, 0)
}

/// One row-major Viterbi relaxation: for every destination `j`,
/// `s = base + row[j]`; where `s > best[j]`, set `best[j] = s` and
/// `arg[j] = src`. Iterating `src` in ascending order reproduces the
/// destination-major strict-`>` scan bit for bit (first source wins ties).
#[inline]
pub fn relax_max_argmax(base: f64, row: &[f64], best: &mut [f64], arg: &mut [u32], src: u32) {
    #[cfg(feature = "simd")]
    {
        crate::simd::relax_max_argmax(base, row, best, arg, src);
    }
    #[cfg(not(feature = "simd"))]
    {
        chunked_relax_max_argmax(base, row, best, arg, src);
    }
}

#[cfg_attr(feature = "simd", allow(dead_code))]
#[inline]
pub(crate) fn chunked_relax_max_argmax(
    base: f64,
    row: &[f64],
    best: &mut [f64],
    arg: &mut [u32],
    src: u32,
) {
    let n = row.len();
    assert!(best.len() == n && arg.len() == n, "relax length mismatch");
    for j in 0..n {
        let s = base + row[j];
        if s > best[j] {
            best[j] = s;
            arg[j] = src;
        }
    }
}

/// Row-major max pass of a log-sum-exp DP step:
/// `best[j] = f64::max(best[j], base + row[j])`. Accumulator-first operand
/// order matches the historical `fold(-inf, f64::max)` sequence.
#[inline]
pub fn max_add_update(base: f64, row: &[f64], best: &mut [f64]) {
    #[cfg(feature = "simd")]
    {
        crate::simd::max_add_update(base, row, best);
    }
    #[cfg(not(feature = "simd"))]
    {
        chunked_max_add_update(base, row, best);
    }
}

#[cfg_attr(feature = "simd", allow(dead_code))]
#[inline]
pub(crate) fn chunked_max_add_update(base: f64, row: &[f64], best: &mut [f64]) {
    let n = row.len();
    assert_eq!(best.len(), n, "max_add_update length mismatch");
    for j in 0..n {
        best[j] = best[j].max(base + row[j]);
    }
}

/// Row-major exponential-sum pass:
/// `acc[j] += exp((base + row[j]) - maxes[j])`. With sources visited in
/// ascending order the per-destination sum is in the historical index
/// order, so the result is bit-identical.
#[inline]
pub fn exp_sum_update(base: f64, row: &[f64], maxes: &[f64], acc: &mut [f64]) {
    let n = row.len();
    assert!(
        maxes.len() == n && acc.len() == n,
        "exp_sum_update length mismatch"
    );
    for j in 0..n {
        acc[j] += ((base + row[j]) - maxes[j]).exp();
    }
}

/// Finish a row-major log-sum-exp: `acc[j] = maxes[j] + acc[j].ln()`, with
/// the `-inf` guard of [`log_sum_exp`] (an all-`-inf` destination yields
/// `-inf`, not NaN).
#[inline]
pub fn lse_finish(maxes: &[f64], acc: &mut [f64]) {
    assert_eq!(maxes.len(), acc.len(), "lse_finish length mismatch");
    for (a, &m) in acc.iter_mut().zip(maxes) {
        *a = if m == f64::NEG_INFINITY {
            f64::NEG_INFINITY
        } else {
            m + a.ln()
        };
    }
}

/// Scalar reference forms (the parity oracle and benchmark baseline).
pub mod scalar {
    /// Sequential `fold(-inf, f64::max)`.
    pub fn max(values: &[f64]) -> f64 {
        values.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
    }

    /// The historical two-pass log-sum-exp (sequential max fold, in-order
    /// exponential sum).
    pub fn log_sum_exp(values: &[f64]) -> f64 {
        let max = max(values);
        if max == f64::NEG_INFINITY {
            return f64::NEG_INFINITY;
        }
        max + values.iter().map(|&v| (v - max).exp()).sum::<f64>().ln()
    }

    /// The historical strict-`>` scan: first maximal index wins.
    pub fn max_argmax(values: &[f64]) -> (f64, usize) {
        let mut best = f64::NEG_INFINITY;
        let mut best_i = 0usize;
        for (i, &v) in values.iter().enumerate() {
            if v > best {
                best = v;
                best_i = i;
            }
        }
        (best, best_i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_and_lse_match_scalar_bits() {
        let vals: Vec<f64> = (0..23)
            .map(|i| ((i * 37 % 11) as f64 - 5.0) * 0.73)
            .collect();
        for len in 0..vals.len() {
            let v = &vals[..len];
            assert_eq!(max(v).to_bits(), scalar::max(v).to_bits(), "max len {len}");
            assert_eq!(
                log_sum_exp(v).to_bits(),
                scalar::log_sum_exp(v).to_bits(),
                "lse len {len}"
            );
        }
    }

    #[test]
    fn empty_reductions_are_neg_inf() {
        assert_eq!(max(&[]), f64::NEG_INFINITY);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        assert_eq!(max_argmax(&[]), (f64::NEG_INFINITY, 0));
    }

    #[test]
    fn argmax_first_occurrence_wins() {
        let v = [1.0, 3.0, 3.0, 2.0, 3.0];
        assert_eq!(max_argmax(&v), (3.0, 1));
        assert_eq!(max_argmax(&v), scalar::max_argmax(&v));
    }

    #[test]
    fn lse3_matches_materialised_terms() {
        let x = [0.1, -2.0, 3.5, 0.0, 1.0, -0.7];
        let y = [1.0, 0.25, -1.5, 2.0, 0.0, 0.3];
        let z = [-0.5, 0.5, 0.75, -3.0, 2.0, 0.0];
        for len in 0..x.len() {
            let terms: Vec<f64> = (0..len).map(|i| (x[i] + y[i]) + z[i]).collect();
            assert_eq!(
                log_sum_exp3(&x[..len], &y[..len], &z[..len]).to_bits(),
                scalar::log_sum_exp(&terms).to_bits(),
                "len {len}"
            );
        }
    }

    /// The row-major relax/update/finish pipeline must reproduce the
    /// destination-major scalar DP step bit for bit.
    #[test]
    fn row_major_dp_step_matches_destination_major() {
        let k = 7;
        let prev: Vec<f64> = (0..k).map(|i| (i as f64) * 0.37 - 1.0).collect();
        let pair: Vec<f64> = (0..k * k)
            .map(|i| ((i * 31 % 17) as f64 - 8.0) * 0.21)
            .collect();

        // Destination-major oracle (the historical loops).
        let mut want_lse = vec![0.0f64; k];
        let mut want_best = vec![0.0f64; k];
        let mut want_arg = vec![0usize; k];
        for b in 0..k {
            let terms: Vec<f64> = (0..k).map(|a| prev[a] + pair[a * k + b]).collect();
            want_lse[b] = scalar::log_sum_exp(&terms);
            let (m, i) = scalar::max_argmax(&terms);
            want_best[b] = m;
            want_arg[b] = i;
        }

        // Row-major kernels.
        let mut maxes = vec![f64::NEG_INFINITY; k];
        let mut acc = vec![0.0f64; k];
        let mut best = vec![f64::NEG_INFINITY; k];
        let mut arg = vec![0u32; k];
        for a in 0..k {
            let row = &pair[a * k..(a + 1) * k];
            max_add_update(prev[a], row, &mut maxes);
            relax_max_argmax(prev[a], row, &mut best, &mut arg, a as u32);
        }
        for a in 0..k {
            exp_sum_update(prev[a], &pair[a * k..(a + 1) * k], &maxes, &mut acc);
        }
        lse_finish(&maxes, &mut acc);

        for b in 0..k {
            assert_eq!(acc[b].to_bits(), want_lse[b].to_bits(), "lse at {b}");
            assert_eq!(best[b].to_bits(), want_best[b].to_bits(), "max at {b}");
            assert_eq!(arg[b] as usize, want_arg[b], "arg at {b}");
        }
    }

    #[test]
    fn lse_finish_guards_neg_inf() {
        let maxes = [f64::NEG_INFINITY, 0.0];
        let mut acc = [f64::NAN, 1.0];
        lse_finish(&maxes, &mut acc);
        assert_eq!(acc[0], f64::NEG_INFINITY);
        assert_eq!(acc[1], 0.0);
    }
}
