//! Streaming 64-bit FNV-1a.
//!
//! One hash, used everywhere: feature hashing (`sato-features`), colstore
//! frame checksums (`sato-tabular`) and artifact section/content checksums
//! (`sato-core`). FNV-1a is a strict byte chain (`h = (h ^ b) * PRIME`), so
//! it cannot be parallelised without changing the output; the chunked form
//! processes the input in eight-byte chunks to amortise bounds checks and
//! keep the multiply chain hot, and is bit-identical to the scalar byte
//! loop on every input.

/// The standard FNV-1a 64-bit offset basis.
pub const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// The standard FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// The multiplier that mixes a caller seed into the offset basis (golden
/// ratio; matches the historical `sato-features` seeding).
pub const FNV_SEED_MIX: u64 = 0x9e37_79b9_7f4a_7c15;

/// Absorb `bytes` into state `h`, eight bytes per iteration. The chain is
/// sequential by construction, so this is bit-identical to the byte loop.
#[inline]
fn absorb(mut h: u64, bytes: &[u8]) -> u64 {
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h = (h ^ c[0] as u64).wrapping_mul(FNV_PRIME);
        h = (h ^ c[1] as u64).wrapping_mul(FNV_PRIME);
        h = (h ^ c[2] as u64).wrapping_mul(FNV_PRIME);
        h = (h ^ c[3] as u64).wrapping_mul(FNV_PRIME);
        h = (h ^ c[4] as u64).wrapping_mul(FNV_PRIME);
        h = (h ^ c[5] as u64).wrapping_mul(FNV_PRIME);
        h = (h ^ c[6] as u64).wrapping_mul(FNV_PRIME);
        h = (h ^ c[7] as u64).wrapping_mul(FNV_PRIME);
    }
    for &b in chunks.remainder() {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Streaming FNV-1a state, so callers can hash incrementally (e.g. char by
/// char across an n-gram window) without materialising a buffer first.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Start an unseeded stream (standard FNV-1a offset basis).
    #[inline]
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET_BASIS)
    }

    /// Start a seeded stream: the basis XORed with a golden-ratio mix of
    /// the seed (`seed == 0` is identical to [`Fnv1a::new`]).
    #[inline]
    pub fn with_seed(seed: u64) -> Self {
        Fnv1a(FNV_OFFSET_BASIS ^ seed.wrapping_mul(FNV_SEED_MIX))
    }

    /// Resume a stream from a previously captured [`Fnv1a::state`].
    #[inline]
    pub fn from_state(state: u64) -> Self {
        Fnv1a(state)
    }

    /// The raw internal state (equals [`Fnv1a::finish`]; named separately
    /// where the intent is to capture-and-resume rather than terminate).
    #[inline]
    pub fn state(self) -> u64 {
        self.0
    }

    /// Absorb raw bytes.
    #[inline]
    pub fn write(&mut self, bytes: &[u8]) {
        self.0 = absorb(self.0, bytes);
    }

    /// Absorb a single byte.
    #[inline]
    pub fn write_u8(&mut self, b: u8) {
        self.0 = (self.0 ^ b as u64).wrapping_mul(FNV_PRIME);
    }

    /// Absorb a character's UTF-8 encoding (identical to hashing the bytes
    /// of a string containing it).
    #[inline]
    pub fn write_char(&mut self, c: char) {
        let mut buf = [0u8; 4];
        self.write(c.encode_utf8(&mut buf).as_bytes());
    }

    /// The accumulated hash value.
    #[inline]
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// Unseeded 64-bit FNV-1a over `bytes` (the standard test-vector variant).
#[inline]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    absorb(FNV_OFFSET_BASIS, bytes)
}

/// Seeded 64-bit FNV-1a over `bytes`; `seed == 0` equals [`fnv1a64`].
#[inline]
pub fn fnv1a64_seeded(bytes: &[u8], seed: u64) -> u64 {
    absorb(FNV_OFFSET_BASIS ^ seed.wrapping_mul(FNV_SEED_MIX), bytes)
}

/// Scalar reference forms (the parity oracle and benchmark baseline).
pub mod scalar {
    use super::{FNV_OFFSET_BASIS, FNV_PRIME, FNV_SEED_MIX};

    /// Byte-at-a-time unseeded FNV-1a.
    pub fn fnv1a64(bytes: &[u8]) -> u64 {
        let mut h = FNV_OFFSET_BASIS;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }

    /// Byte-at-a-time seeded FNV-1a.
    pub fn fnv1a64_seeded(bytes: &[u8], seed: u64) -> u64 {
        let mut h = FNV_OFFSET_BASIS ^ seed.wrapping_mul(FNV_SEED_MIX);
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Standard FNV-1a 64 test vectors (draft-eastlake-fnv).
    #[test]
    fn standard_test_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn chunked_matches_scalar_across_lengths() {
        let data: Vec<u8> = (0..64u8)
            .map(|i| i.wrapping_mul(37).wrapping_add(11))
            .collect();
        for len in 0..data.len() {
            assert_eq!(
                fnv1a64(&data[..len]),
                scalar::fnv1a64(&data[..len]),
                "len {len}"
            );
            assert_eq!(
                fnv1a64_seeded(&data[..len], 0x5a70_0001),
                scalar::fnv1a64_seeded(&data[..len], 0x5a70_0001),
                "seeded len {len}"
            );
        }
    }

    #[test]
    fn seed_zero_equals_unseeded() {
        assert_eq!(fnv1a64_seeded(b"warsaw", 0), fnv1a64(b"warsaw"));
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut h = Fnv1a::with_seed(7);
        h.write(b"war");
        h.write_u8(b's');
        h.write_char('a');
        h.write(b"w");
        assert_eq!(h.finish(), fnv1a64_seeded(b"warsaw", 7));
        let resumed = Fnv1a::from_state(Fnv1a::with_seed(7).state());
        assert_eq!(resumed.state(), Fnv1a::with_seed(7).finish());
    }

    #[test]
    fn write_char_encodes_utf8() {
        let mut h = Fnv1a::new();
        h.write_char('ß');
        h.write_char('Σ');
        assert_eq!(h.finish(), fnv1a64("ßΣ".as_bytes()));
    }
}
