//! Bucketed histogram scan: classify bytes through a 256-entry lookup
//! table and count per bucket. This is the core of the single-pass ASCII
//! cell scan in `sato-features` (the 96-bin character histogram).

/// LUT sentinel: bytes mapping to this value are not counted.
pub const HIST_SKIP: u8 = 0xFF;

/// For each byte `b`, increment `counts[lut[b]]` unless `lut[b] ==`
/// [`HIST_SKIP`]. Integer counts in any order are exact, so the unrolled
/// form is bit-identical to the scalar loop. Panics if a non-skip LUT
/// entry is out of `counts` range.
#[inline]
pub fn lut_histogram(bytes: &[u8], lut: &[u8; 256], counts: &mut [u32]) {
    let mut chunks = bytes.chunks_exact(4);
    for c in &mut chunks {
        let (a, b, d, e) = (
            lut[c[0] as usize],
            lut[c[1] as usize],
            lut[c[2] as usize],
            lut[c[3] as usize],
        );
        if a != HIST_SKIP {
            counts[a as usize] += 1;
        }
        if b != HIST_SKIP {
            counts[b as usize] += 1;
        }
        if d != HIST_SKIP {
            counts[d as usize] += 1;
        }
        if e != HIST_SKIP {
            counts[e as usize] += 1;
        }
    }
    for &byte in chunks.remainder() {
        let class = lut[byte as usize];
        if class != HIST_SKIP {
            counts[class as usize] += 1;
        }
    }
}

/// Scalar reference form (the parity oracle and benchmark baseline).
pub mod scalar {
    use super::HIST_SKIP;

    /// Byte-at-a-time LUT histogram.
    pub fn lut_histogram(bytes: &[u8], lut: &[u8; 256], counts: &mut [u32]) {
        for &byte in bytes {
            let class = lut[byte as usize];
            if class != HIST_SKIP {
                counts[class as usize] += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_lut() -> [u8; 256] {
        let mut lut = [HIST_SKIP; 256];
        for (i, b) in (b'a'..=b'z').enumerate() {
            lut[b as usize] = i as u8;
        }
        lut[b' ' as usize] = 26;
        lut
    }

    #[test]
    fn matches_scalar_on_every_length() {
        let lut = sample_lut();
        let data = b"the quick brown fox jumps over the lazy dog 0123!";
        for len in 0..data.len() {
            let mut a = vec![0u32; 27];
            let mut b = vec![0u32; 27];
            lut_histogram(&data[..len], &lut, &mut a);
            scalar::lut_histogram(&data[..len], &lut, &mut b);
            assert_eq!(a, b, "len {len}");
        }
    }

    #[test]
    fn skip_bytes_are_not_counted() {
        let lut = sample_lut();
        let mut counts = vec![0u32; 27];
        lut_histogram(b"!@#$%^", &lut, &mut counts);
        assert!(counts.iter().all(|&c| c == 0));
    }
}
