//! Opt-in `std::simd` kernel variants (nightly; `--features simd`).
//!
//! Only kernels whose SIMD form keeps the documented exactness contract
//! are implemented here: element-wise maps (`axpy`, `add_assign`, `scale`),
//! the DP relaxations (lane-wise compare+select, no reassociation of
//! per-destination state) and the reassociation-tolerant `dot`. The
//! exponential sums of the log-sum-exp kernels and the sequential FNV
//! chain deliberately have no SIMD form.

use std::simd::prelude::*;

const F32_LANES: usize = 8;
const F64_LANES: usize = 4;

/// `y += a * x` with `f32x8` lanes; element-wise, bit-identical.
#[inline]
pub fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    let va = Simd::<f32, F32_LANES>::splat(a);
    let mut xc = x.chunks_exact(F32_LANES);
    let mut yc = y.chunks_exact_mut(F32_LANES);
    for (xs, ys) in (&mut xc).zip(&mut yc) {
        let v =
            Simd::<f32, F32_LANES>::from_slice(ys) + va * Simd::<f32, F32_LANES>::from_slice(xs);
        v.copy_to_slice(ys);
    }
    for (o, &b) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
        *o += a * b;
    }
}

/// `y += x` with `f32x8` lanes; element-wise, bit-identical.
#[inline]
pub fn add_assign(x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "add_assign length mismatch");
    let mut xc = x.chunks_exact(F32_LANES);
    let mut yc = y.chunks_exact_mut(F32_LANES);
    for (xs, ys) in (&mut xc).zip(&mut yc) {
        let v = Simd::<f32, F32_LANES>::from_slice(ys) + Simd::<f32, F32_LANES>::from_slice(xs);
        v.copy_to_slice(ys);
    }
    for (o, &b) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
        *o += b;
    }
}

/// `v *= s` with `f32x8` lanes; element-wise, bit-identical.
#[inline]
pub fn scale(v: &mut [f32], s: f32) {
    let vs = Simd::<f32, F32_LANES>::splat(s);
    let mut vc = v.chunks_exact_mut(F32_LANES);
    for ch in &mut vc {
        let x = Simd::<f32, F32_LANES>::from_slice(ch) * vs;
        x.copy_to_slice(ch);
    }
    for x in vc.into_remainder() {
        *x *= s;
    }
}

/// Lane-parallel dot product (ULP-bounded: lane partial sums are
/// reassociated, like the chunked form).
#[inline]
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    if x.len() < F32_LANES {
        return crate::linalg::scalar::dot(x, y);
    }
    let mut xc = x.chunks_exact(F32_LANES);
    let mut yc = y.chunks_exact(F32_LANES);
    let mut acc = Simd::<f32, F32_LANES>::splat(0.0);
    for (xs, ys) in (&mut xc).zip(&mut yc) {
        acc += Simd::<f32, F32_LANES>::from_slice(xs) * Simd::<f32, F32_LANES>::from_slice(ys);
    }
    let mut s = acc.reduce_sum();
    for (&a, &b) in xc.remainder().iter().zip(yc.remainder()) {
        s += a * b;
    }
    s
}

/// Lane-wise Viterbi relaxation: `s = base + row`, compare-and-select into
/// `best`/`arg`. Strict `>` keeps the first (lowest-`src`) winner exactly
/// like the scalar scan, because `src` is constant within a call and calls
/// arrive in ascending `src` order.
#[inline]
pub fn relax_max_argmax(base: f64, row: &[f64], best: &mut [f64], arg: &mut [u32], src: u32) {
    let n = row.len();
    assert!(best.len() == n && arg.len() == n, "relax length mismatch");
    let vbase = Simd::<f64, F64_LANES>::splat(base);
    let vsrc = Simd::<u32, F64_LANES>::splat(src);
    let mut i = 0;
    while i + F64_LANES <= n {
        let s = vbase + Simd::<f64, F64_LANES>::from_slice(&row[i..]);
        let b = Simd::<f64, F64_LANES>::from_slice(&best[i..]);
        let gt = s.simd_gt(b);
        gt.select(s, b).copy_to_slice(&mut best[i..i + F64_LANES]);
        let a = Simd::<u32, F64_LANES>::from_slice(&arg[i..]);
        gt.cast::<i32>()
            .select(vsrc, a)
            .copy_to_slice(&mut arg[i..i + F64_LANES]);
        i += F64_LANES;
    }
    while i < n {
        let s = base + row[i];
        if s > best[i] {
            best[i] = s;
            arg[i] = src;
        }
        i += 1;
    }
}

/// Lane-wise `best = max(best, base + row)`.
#[inline]
pub fn max_add_update(base: f64, row: &[f64], best: &mut [f64]) {
    let n = row.len();
    assert_eq!(best.len(), n, "max_add_update length mismatch");
    let vbase = Simd::<f64, F64_LANES>::splat(base);
    let mut i = 0;
    while i + F64_LANES <= n {
        let s = vbase + Simd::<f64, F64_LANES>::from_slice(&row[i..]);
        let b = Simd::<f64, F64_LANES>::from_slice(&best[i..]);
        b.simd_max(s).copy_to_slice(&mut best[i..i + F64_LANES]);
        i += F64_LANES;
    }
    while i < n {
        best[i] = best[i].max(base + row[i]);
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use crate::linalg;

    #[test]
    fn simd_axpy_matches_scalar_bits() {
        let x: Vec<f32> = (0..37).map(|i| (i as f32 - 18.0) * 0.13).collect();
        for len in 0..x.len() {
            let mut a = vec![0.25f32; len];
            let mut b = a.clone();
            super::axpy(-0.9, &x[..len], &mut a);
            linalg::scalar::axpy(-0.9, &x[..len], &mut b);
            assert_eq!(
                a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn simd_relax_matches_chunked() {
        let k = 13;
        let row: Vec<f64> = (0..k).map(|i| ((i * 7 % 5) as f64 - 2.0) * 0.41).collect();
        let mut best_a = vec![f64::NEG_INFINITY; k];
        let mut best_b = vec![f64::NEG_INFINITY; k];
        let mut arg_a = vec![0u32; k];
        let mut arg_b = vec![0u32; k];
        for src in 0..4u32 {
            let base = src as f64 * 0.3 - 0.2;
            super::relax_max_argmax(base, &row, &mut best_a, &mut arg_a, src);
            crate::reduce::chunked_relax_max_argmax(base, &row, &mut best_b, &mut arg_b, src);
        }
        assert_eq!(best_a, best_b);
        assert_eq!(arg_a, arg_b);
    }
}
