//! Property-based parity suite: every kernel's default (chunked, or SIMD
//! when the `simd` feature is on) form against its scalar reference, over
//! ragged / empty / unaligned-length inputs.
//!
//! The scalar forms are the oracle. Kernels documented bit-identical are
//! compared by bits; `dot` (reassociated) is compared with a relative
//! bound. Dependent shapes (a `k × k` matrix for a length-`k` vector) are
//! carved out of max-size buffers, so lengths still sweep 0, 1 and every
//! unaligned remainder.

use proptest::prelude::*;

fn bits64(v: f64) -> u64 {
    v.to_bits()
}

fn bits32_vec(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn fnv_matches_scalar(
        bytes in proptest::collection::vec(0u8..=255, 0..67),
        seed in 0u64..=u64::MAX,
        split_pct in 0usize..=100,
    ) {
        prop_assert_eq!(sato_kernels::fnv1a64(&bytes), sato_kernels::fnv::scalar::fnv1a64(&bytes));
        prop_assert_eq!(
            sato_kernels::fnv1a64_seeded(&bytes, seed),
            sato_kernels::fnv::scalar::fnv1a64_seeded(&bytes, seed)
        );
        // Streaming split at an arbitrary boundary equals the one-shot hash.
        let split = bytes.len() * split_pct / 100;
        let mut h = sato_kernels::Fnv1a::with_seed(seed);
        h.write(&bytes[..split]);
        h.write(&bytes[split..]);
        prop_assert_eq!(h.finish(), sato_kernels::fnv1a64_seeded(&bytes, seed));
    }

    #[test]
    fn max_lse_argmax_match_scalar(values in proptest::collection::vec(-50.0f64..50.0, 0..33)) {
        prop_assert_eq!(
            bits64(sato_kernels::reduce::max(&values)),
            bits64(sato_kernels::reduce::scalar::max(&values))
        );
        prop_assert_eq!(
            bits64(sato_kernels::log_sum_exp(&values)),
            bits64(sato_kernels::reduce::scalar::log_sum_exp(&values))
        );
        let (gv, gi) = sato_kernels::max_argmax(&values);
        let (wv, wi) = sato_kernels::reduce::scalar::max_argmax(&values);
        prop_assert_eq!(bits64(gv), bits64(wv));
        prop_assert_eq!(gi, wi);
    }

    #[test]
    fn lse3_matches_materialised_scalar(
        n in 0usize..29,
        x in proptest::collection::vec(-20.0f64..20.0, 29),
        y in proptest::collection::vec(-20.0f64..20.0, 29),
        z in proptest::collection::vec(-20.0f64..20.0, 29),
    ) {
        let (x, y, z) = (&x[..n], &y[..n], &z[..n]);
        let terms: Vec<f64> = x.iter().zip(y).zip(z).map(|((a, b), c)| (a + b) + c).collect();
        prop_assert_eq!(
            bits64(sato_kernels::log_sum_exp3(x, y, z)),
            bits64(sato_kernels::reduce::scalar::log_sum_exp(&terms))
        );
    }

    /// The row-major DP step (relax + max/exp-sum/finish) against the
    /// destination-major scalar loops, for arbitrary k.
    #[test]
    fn dp_step_matches_destination_major(
        k in 1usize..13,
        prev_buf in proptest::collection::vec(-10.0f64..10.0, 12),
        pair_buf in proptest::collection::vec(-5.0f64..5.0, 144),
    ) {
        let prev = &prev_buf[..k];
        let pair = &pair_buf[..k * k];
        let mut maxes = vec![f64::NEG_INFINITY; k];
        let mut acc = vec![0.0f64; k];
        let mut best = vec![f64::NEG_INFINITY; k];
        let mut arg = vec![0u32; k];
        for a in 0..k {
            let row = &pair[a * k..(a + 1) * k];
            sato_kernels::max_add_update(prev[a], row, &mut maxes);
            sato_kernels::relax_max_argmax(prev[a], row, &mut best, &mut arg, a as u32);
        }
        for a in 0..k {
            sato_kernels::exp_sum_update(prev[a], &pair[a * k..(a + 1) * k], &maxes, &mut acc);
        }
        sato_kernels::lse_finish(&maxes, &mut acc);

        for b in 0..k {
            let terms: Vec<f64> = (0..k).map(|a| prev[a] + pair[a * k + b]).collect();
            prop_assert_eq!(
                bits64(acc[b]),
                bits64(sato_kernels::reduce::scalar::log_sum_exp(&terms)),
                "lse at {}", b
            );
            let (wv, wi) = sato_kernels::reduce::scalar::max_argmax(&terms);
            prop_assert_eq!(bits64(best[b]), bits64(wv), "max at {}", b);
            prop_assert_eq!(arg[b] as usize, wi, "arg at {}", b);
        }
    }

    #[test]
    fn axpy_add_assign_scale_match_scalar(
        n in 0usize..37,
        x_buf in proptest::collection::vec(-50.0f32..50.0, 37),
        y_buf in proptest::collection::vec(-50.0f32..50.0, 37),
        a in -3.0f32..3.0,
    ) {
        let x = &x_buf[..n];
        let y0 = &y_buf[..n];

        let mut got = y0.to_vec();
        let mut want = y0.to_vec();
        sato_kernels::axpy(a, x, &mut got);
        sato_kernels::linalg::scalar::axpy(a, x, &mut want);
        prop_assert_eq!(bits32_vec(&got), bits32_vec(&want));

        let mut got2 = y0.to_vec();
        sato_kernels::add_assign(x, &mut got2);
        let want2: Vec<f32> = y0.iter().zip(x).map(|(v, b)| v + b).collect();
        prop_assert_eq!(bits32_vec(&got2), bits32_vec(&want2));

        let mut got3 = x.to_vec();
        sato_kernels::scale(&mut got3, a);
        let want3: Vec<f32> = x.iter().map(|v| v * a).collect();
        prop_assert_eq!(bits32_vec(&got3), bits32_vec(&want3));
    }

    #[test]
    fn dot_is_ulp_bounded_vs_scalar(
        n in 0usize..53,
        x_buf in proptest::collection::vec(-10.0f32..10.0, 53),
        y_buf in proptest::collection::vec(-10.0f32..10.0, 53),
    ) {
        let (x, y) = (&x_buf[..n], &y_buf[..n]);
        let got = sato_kernels::dot(x, y);
        let want = sato_kernels::linalg::scalar::dot(x, y);
        // Reassociation over <=53 products of magnitude <=100.
        prop_assert!((got - want).abs() <= 1e-3 + 1e-5 * want.abs(),
            "dot diverged: {} vs {}", got, want);
    }

    #[test]
    fn squared_l2_is_ulp_bounded_vs_scalar(
        n in 0usize..53,
        x_buf in proptest::collection::vec(-10.0f32..10.0, 53),
        y_buf in proptest::collection::vec(-10.0f32..10.0, 53),
    ) {
        let (x, y) = (&x_buf[..n], &y_buf[..n]);
        let got = sato_kernels::squared_l2(x, y);
        let want = sato_kernels::linalg::scalar::squared_l2(x, y);
        // Reassociation over <=53 squared differences of magnitude <=400.
        prop_assert!((got - want).abs() <= 1e-3 + 1e-5 * want.abs(),
            "squared_l2 diverged: {} vs {}", got, want);
        prop_assert!(got >= 0.0);
        prop_assert_eq!(sato_kernels::squared_l2(x, x), 0.0);
    }

    #[test]
    fn histogram_matches_scalar(bytes in proptest::collection::vec(0u8..=255, 0..67)) {
        let mut lut = [sato_kernels::HIST_SKIP; 256];
        for b in 0..128u8 {
            // An arbitrary classifier with skips: count only ASCII
            // alphanumerics, into 36 bins.
            if b.is_ascii_digit() {
                lut[b as usize] = b - b'0';
            } else if b.is_ascii_lowercase() {
                lut[b as usize] = 10 + (b - b'a');
            }
        }
        let mut got = vec![0u32; 36];
        let mut want = vec![0u32; 36];
        sato_kernels::lut_histogram(&bytes, &lut, &mut got);
        sato_kernels::hist::scalar::lut_histogram(&bytes, &lut, &mut want);
        prop_assert_eq!(got, want);
    }
}
