//! # sato-eval
//!
//! Evaluation machinery for the Sato reproduction: the metrics of
//! Section 4.4 (per-type F1, macro and support-weighted averages),
//! table-level k-fold cross-validation, permutation feature importance
//! (Section 5.4), 2-D projections of column embeddings (Section 5.6), and
//! plain-text report formatting used by the benchmark binaries.
//!
//! ```
//! use sato_eval::metrics::Evaluation;
//! use sato_tabular::types::SemanticType;
//!
//! let gold = vec![SemanticType::City, SemanticType::Country];
//! let pred = vec![SemanticType::City, SemanticType::Country];
//! let eval = Evaluation::from_pairs(&gold, &pred);
//! assert_eq!(eval.macro_f1, 1.0);
//! ```

#![warn(missing_docs)]

pub mod crossval;
pub mod hierarchical;
pub mod metrics;
pub mod permutation;
pub mod projection;
pub mod report;

pub use crossval::{cross_validate, evaluate_model, CrossValResult, FoldResult};
pub use hierarchical::HierarchicalEvaluation;
pub use metrics::{mean_and_ci95, Evaluation, TypeMetrics};
pub use permutation::{permutation_importance, GroupImportance, ImportanceReport};
pub use projection::{pca_2d, separation_ratio, tsne_2d, TsneConfig};
pub use report::{ascii_bar, fmt_mean_ci, fmt_mean_ci_with_improvement, TextTable};
