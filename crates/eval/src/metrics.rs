//! Evaluation metrics (Section 4.4 of the paper): per-type F1, the
//! support-weighted average F1 (overall performance) and the macro average
//! F1 (sensitive to rare types), plus the full confusion matrix.

use sato_tabular::types::{SemanticType, NUM_TYPES};
use serde::{Deserialize, Serialize};

/// Precision/recall/F1 and support of a single semantic type.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TypeMetrics {
    /// The semantic type.
    pub semantic_type: SemanticType,
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
    /// Number of gold columns of this type in the evaluation set.
    pub support: usize,
    /// Precision (0 when the type was never predicted).
    pub precision: f64,
    /// Recall (0 when the type never occurs).
    pub recall: f64,
    /// F1 = 2PR/(P+R).
    pub f1: f64,
}

/// Aggregate evaluation of a set of (gold, predicted) column labels.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Evaluation {
    /// Per-type metrics, indexed by `SemanticType::index()`.
    pub per_type: Vec<TypeMetrics>,
    /// Unweighted mean of per-type F1 over types with non-zero support.
    pub macro_f1: f64,
    /// Support-weighted mean of per-type F1.
    pub weighted_f1: f64,
    /// Plain accuracy (fraction of columns typed correctly).
    pub accuracy: f64,
    /// Number of evaluated columns.
    pub total: usize,
}

impl Evaluation {
    /// Compute metrics from parallel slices of gold and predicted labels.
    pub fn from_pairs(gold: &[SemanticType], predicted: &[SemanticType]) -> Self {
        assert_eq!(
            gold.len(),
            predicted.len(),
            "gold and predicted label counts differ"
        );
        let mut tp = vec![0usize; NUM_TYPES];
        let mut fp = vec![0usize; NUM_TYPES];
        let mut fn_ = vec![0usize; NUM_TYPES];
        let mut correct = 0usize;
        for (&g, &p) in gold.iter().zip(predicted) {
            if g == p {
                tp[g.index()] += 1;
                correct += 1;
            } else {
                fp[p.index()] += 1;
                fn_[g.index()] += 1;
            }
        }
        let per_type: Vec<TypeMetrics> = SemanticType::ALL
            .iter()
            .map(|&t| {
                let i = t.index();
                let support = tp[i] + fn_[i];
                let precision = if tp[i] + fp[i] > 0 {
                    tp[i] as f64 / (tp[i] + fp[i]) as f64
                } else {
                    0.0
                };
                let recall = if support > 0 {
                    tp[i] as f64 / support as f64
                } else {
                    0.0
                };
                let f1 = if precision + recall > 0.0 {
                    2.0 * precision * recall / (precision + recall)
                } else {
                    0.0
                };
                TypeMetrics {
                    semantic_type: t,
                    tp: tp[i],
                    fp: fp[i],
                    fn_: fn_[i],
                    support,
                    precision,
                    recall,
                    f1,
                }
            })
            .collect();

        let supported: Vec<&TypeMetrics> = per_type.iter().filter(|m| m.support > 0).collect();
        let macro_f1 = if supported.is_empty() {
            0.0
        } else {
            supported.iter().map(|m| m.f1).sum::<f64>() / supported.len() as f64
        };
        let total_support: usize = supported.iter().map(|m| m.support).sum();
        let weighted_f1 = if total_support == 0 {
            0.0
        } else {
            supported
                .iter()
                .map(|m| m.f1 * m.support as f64)
                .sum::<f64>()
                / total_support as f64
        };
        Evaluation {
            per_type,
            macro_f1,
            weighted_f1,
            accuracy: if gold.is_empty() {
                0.0
            } else {
                correct as f64 / gold.len() as f64
            },
            total: gold.len(),
        }
    }

    /// Compute metrics from per-table prediction pairs (flattens columns).
    ///
    /// Tables with an empty gold slice are unlabelled under the empty-gold
    /// convention (see `TablePrediction::gold` in the `sato` crate) and are
    /// skipped: they carry no ground truth to score against.
    pub fn from_tables<'a>(
        pairs: impl Iterator<Item = (&'a [SemanticType], &'a [SemanticType])>,
    ) -> Self {
        let mut gold = Vec::new();
        let mut pred = Vec::new();
        for (g, p) in pairs {
            if g.is_empty() {
                continue;
            }
            assert_eq!(g.len(), p.len(), "table with mismatched label counts");
            gold.extend_from_slice(g);
            pred.extend_from_slice(p);
        }
        Self::from_pairs(&gold, &pred)
    }

    /// F1 of a specific type.
    pub fn f1_of(&self, t: SemanticType) -> f64 {
        self.per_type[t.index()].f1
    }
}

/// Mean and (normal-approximation) 95% confidence interval half-width of a
/// sample of values — the `±` columns of Table 1 and Table 2.
pub fn mean_and_ci95(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
    let se = (var / n).sqrt();
    (mean, 1.96 * se)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use SemanticType as T;

    #[test]
    fn perfect_prediction_scores_one() {
        let gold = vec![T::City, T::Country, T::Age];
        let eval = Evaluation::from_pairs(&gold, &gold);
        assert_eq!(eval.macro_f1, 1.0);
        assert_eq!(eval.weighted_f1, 1.0);
        assert_eq!(eval.accuracy, 1.0);
        assert_eq!(eval.total, 3);
    }

    #[test]
    fn completely_wrong_prediction_scores_zero() {
        let gold = vec![T::City, T::City];
        let pred = vec![T::Country, T::Country];
        let eval = Evaluation::from_pairs(&gold, &pred);
        assert_eq!(eval.macro_f1, 0.0);
        assert_eq!(eval.weighted_f1, 0.0);
        assert_eq!(eval.accuracy, 0.0);
    }

    #[test]
    fn hand_computed_example() {
        // gold: 3 city, 1 country; predictions: 2 city right, 1 city -> country,
        // country right.
        let gold = vec![T::City, T::City, T::City, T::Country];
        let pred = vec![T::City, T::City, T::Country, T::Country];
        let eval = Evaluation::from_pairs(&gold, &pred);
        let city = eval.per_type[T::City.index()];
        assert_eq!(city.support, 3);
        assert!((city.precision - 1.0).abs() < 1e-12);
        assert!((city.recall - 2.0 / 3.0).abs() < 1e-12);
        assert!((city.f1 - 0.8).abs() < 1e-12);
        let country = eval.per_type[T::Country.index()];
        assert!((country.precision - 0.5).abs() < 1e-12);
        assert!((country.recall - 1.0).abs() < 1e-12);
        assert!((country.f1 - 2.0 / 3.0).abs() < 1e-12);
        // macro over the two supported types
        assert!((eval.macro_f1 - (0.8 + 2.0 / 3.0) / 2.0).abs() < 1e-12);
        // weighted by supports 3 and 1
        assert!((eval.weighted_f1 - (0.8 * 3.0 + (2.0 / 3.0)) / 4.0).abs() < 1e-12);
        assert!((eval.accuracy - 0.75).abs() < 1e-12);
    }

    #[test]
    fn weighted_f1_tracks_common_types_macro_tracks_rare_ones() {
        // 99 correct "name" columns, 1 wrong "sales" column: weighted stays
        // high, macro drops towards 0.5.
        let mut gold = vec![T::Name; 99];
        gold.push(T::Sales);
        let mut pred = vec![T::Name; 99];
        pred.push(T::Age);
        let eval = Evaluation::from_pairs(&gold, &pred);
        assert!(eval.weighted_f1 > 0.95);
        assert!(eval.macro_f1 < 0.55);
    }

    #[test]
    fn unsupported_types_are_excluded_from_macro() {
        let gold = vec![T::City];
        let pred = vec![T::City];
        let eval = Evaluation::from_pairs(&gold, &pred);
        assert_eq!(eval.macro_f1, 1.0);
        assert_eq!(eval.per_type[T::Sales.index()].support, 0);
    }

    #[test]
    #[should_panic(expected = "differ")]
    fn mismatched_lengths_panic() {
        Evaluation::from_pairs(&[T::City], &[]);
    }

    #[test]
    fn from_tables_flattens_columns() {
        let g1 = [T::City, T::Country];
        let p1 = [T::City, T::Country];
        let g2 = [T::Age];
        let p2 = [T::Weight];
        let eval =
            Evaluation::from_tables(vec![(&g1[..], &p1[..]), (&g2[..], &p2[..])].into_iter());
        assert_eq!(eval.total, 3);
        assert!((eval.accuracy - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn from_tables_skips_unlabelled_tables() {
        // An empty gold slice marks an unlabelled table (empty-gold
        // convention); its predictions must not panic or dilute metrics.
        let g1 = [T::City, T::Country];
        let p1 = [T::City, T::Country];
        let unlabelled_gold: [T; 0] = [];
        let p2 = [T::Age, T::Weight, T::Name];
        let eval = Evaluation::from_tables(
            vec![(&g1[..], &p1[..]), (&unlabelled_gold[..], &p2[..])].into_iter(),
        );
        assert_eq!(eval.total, 2);
        assert_eq!(eval.accuracy, 1.0);
    }

    #[test]
    fn ci_helper_matches_hand_computation() {
        let (mean, ci) = mean_and_ci95(&[1.0, 2.0, 3.0]);
        assert!((mean - 2.0).abs() < 1e-12);
        // sample std = 1, se = 1/sqrt(3)
        assert!((ci - 1.96 / 3.0_f64.sqrt()).abs() < 1e-9);
        assert_eq!(mean_and_ci95(&[]), (0.0, 0.0));
        assert_eq!(mean_and_ci95(&[5.0]).1, 0.0);
    }

    proptest! {
        #[test]
        fn f1_scores_are_bounded(
            labels in proptest::collection::vec((0usize..10, 0usize..10), 1..200)
        ) {
            let gold: Vec<SemanticType> =
                labels.iter().map(|(g, _)| SemanticType::from_index(*g).unwrap()).collect();
            let pred: Vec<SemanticType> =
                labels.iter().map(|(_, p)| SemanticType::from_index(*p).unwrap()).collect();
            let eval = Evaluation::from_pairs(&gold, &pred);
            prop_assert!((0.0..=1.0).contains(&eval.macro_f1));
            prop_assert!((0.0..=1.0).contains(&eval.weighted_f1));
            prop_assert!((0.0..=1.0).contains(&eval.accuracy));
            for m in &eval.per_type {
                prop_assert!((0.0..=1.0).contains(&m.f1));
                prop_assert!(m.tp + m.fn_ == m.support);
            }
        }

        #[test]
        fn accuracy_equals_weighted_recall(
            labels in proptest::collection::vec((0usize..5, 0usize..5), 1..100)
        ) {
            let gold: Vec<SemanticType> =
                labels.iter().map(|(g, _)| SemanticType::from_index(*g).unwrap()).collect();
            let pred: Vec<SemanticType> =
                labels.iter().map(|(_, p)| SemanticType::from_index(*p).unwrap()).collect();
            let eval = Evaluation::from_pairs(&gold, &pred);
            let weighted_recall: f64 = eval
                .per_type
                .iter()
                .filter(|m| m.support > 0)
                .map(|m| m.recall * m.support as f64)
                .sum::<f64>() / gold.len() as f64;
            prop_assert!((eval.accuracy - weighted_recall).abs() < 1e-9);
        }
    }
}
