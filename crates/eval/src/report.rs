//! Plain-text report formatting shared by the benchmark binaries: aligned
//! tables that mirror the rows/series of the paper's tables and figures.

/// A simple text table builder with left-aligned first column and
/// right-aligned value columns.
#[derive(Debug, Default, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given header cells.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are displayed as given).
    pub fn add_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to an aligned plain-text table.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i == 0 {
                    line.push_str(&format!("{cell:<w$}"));
                } else {
                    line.push_str(&format!("  {cell:>w$}"));
                }
            }
            line
        };
        let mut out = String::new();
        out.push_str(&render_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format a `(mean, ci)` pair the way Table 1 does: `0.735 ±0.022`.
pub fn fmt_mean_ci(mean_ci: (f64, f64)) -> String {
    format!("{:.3} ±{:.3}", mean_ci.0, mean_ci.1)
}

/// Format a `(mean, ci)` pair with a relative improvement over a baseline:
/// `0.735 ±0.022 (14.4%↑)`.
pub fn fmt_mean_ci_with_improvement(mean_ci: (f64, f64), baseline: f64) -> String {
    if baseline <= 0.0 {
        return fmt_mean_ci(mean_ci);
    }
    let pct = (mean_ci.0 - baseline) / baseline * 100.0;
    let arrow = if pct >= 0.0 { "↑" } else { "↓" };
    format!("{} ({:.1}%{})", fmt_mean_ci(mean_ci), pct.abs(), arrow)
}

/// Render an ASCII horizontal bar (used for the figure-style outputs).
pub fn ascii_bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let filled = ((value / max) * width as f64)
        .round()
        .clamp(0.0, width as f64) as usize;
    "#".repeat(filled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new(&["model", "macro F1"]);
        t.add_row(vec!["Base".into(), "0.642".into()]);
        t.add_row(vec!["Sato".into(), "0.735".into()]);
        let text = t.render();
        assert!(text.contains("model"));
        assert!(text.contains("Sato"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows have the same width.
        assert_eq!(lines[0].chars().count(), lines[2].chars().count());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn mean_ci_formatting_matches_paper_style() {
        assert_eq!(fmt_mean_ci((0.735, 0.022)), "0.735 ±0.022");
        let s = fmt_mean_ci_with_improvement((0.735, 0.022), 0.642);
        assert!(s.starts_with("0.735 ±0.022 (14.5%↑)") || s.starts_with("0.735 ±0.022 (14.4%↑)"));
        let down = fmt_mean_ci_with_improvement((0.5, 0.01), 0.6);
        assert!(down.contains("↓"));
        assert_eq!(
            fmt_mean_ci_with_improvement((0.5, 0.01), 0.0),
            "0.500 ±0.010"
        );
    }

    #[test]
    fn ascii_bar_scales_with_value() {
        assert_eq!(ascii_bar(1.0, 1.0, 10).len(), 10);
        assert_eq!(ascii_bar(0.5, 1.0, 10).len(), 5);
        assert_eq!(ascii_bar(0.0, 1.0, 10).len(), 0);
        assert_eq!(ascii_bar(2.0, 0.0, 10), "");
    }
}
