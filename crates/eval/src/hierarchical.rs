//! Hierarchy-aware evaluation (the Section 6 "type hierarchy" extension).
//!
//! The paper's evaluation treats the 78 types as flat classes. Its
//! discussion section argues that an ontology over the types would allow
//! partial credit for near-miss predictions (e.g. predicting `city` for a
//! `birthPlace` column). Using the parent categories of
//! [`sato_tabular::hierarchy`], this module reports both the strict
//! (flat-type) accuracy and the lenient category-level accuracy, plus the
//! share of errors that stay within the gold type's category — a measure of
//! how "semantically close" a model's mistakes are.

use sato_tabular::hierarchy::{category_of, same_category};
use sato_tabular::types::SemanticType;
use serde::{Deserialize, Serialize};

/// Strict and category-level agreement of a set of predictions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HierarchicalEvaluation {
    /// Number of evaluated columns.
    pub total: usize,
    /// Exact (flat 78-type) accuracy.
    pub exact_accuracy: f64,
    /// Accuracy at the parent-category level (predicting any type of the
    /// gold type's category counts as correct).
    pub category_accuracy: f64,
    /// Among the *incorrect* exact predictions, the fraction whose predicted
    /// type still falls in the gold category ("near misses").
    pub near_miss_rate: f64,
}

impl HierarchicalEvaluation {
    /// Evaluate parallel gold/predicted label slices.
    pub fn from_pairs(gold: &[SemanticType], predicted: &[SemanticType]) -> Self {
        assert_eq!(gold.len(), predicted.len(), "label counts differ");
        let total = gold.len();
        if total == 0 {
            return HierarchicalEvaluation {
                total: 0,
                exact_accuracy: 0.0,
                category_accuracy: 0.0,
                near_miss_rate: 0.0,
            };
        }
        let mut exact = 0usize;
        let mut category = 0usize;
        let mut near_miss = 0usize;
        for (&g, &p) in gold.iter().zip(predicted) {
            if g == p {
                exact += 1;
                category += 1;
            } else if same_category(g, p) {
                category += 1;
                near_miss += 1;
            }
        }
        let errors = total - exact;
        HierarchicalEvaluation {
            total,
            exact_accuracy: exact as f64 / total as f64,
            category_accuracy: category as f64 / total as f64,
            near_miss_rate: if errors == 0 {
                0.0
            } else {
                near_miss as f64 / errors as f64
            },
        }
    }

    /// Per-category exact accuracy, useful for spotting which parent classes
    /// a model confuses internally (location vs person vs organisation, …).
    pub fn per_category_accuracy(
        gold: &[SemanticType],
        predicted: &[SemanticType],
    ) -> Vec<(sato_tabular::hierarchy::TypeCategory, usize, f64)> {
        use sato_tabular::hierarchy::TypeCategory;
        assert_eq!(gold.len(), predicted.len(), "label counts differ");
        TypeCategory::ALL
            .iter()
            .filter_map(|&cat| {
                let pairs: Vec<(&SemanticType, &SemanticType)> = gold
                    .iter()
                    .zip(predicted)
                    .filter(|(g, _)| category_of(**g) == cat)
                    .collect();
                if pairs.is_empty() {
                    return None;
                }
                let correct = pairs.iter().filter(|(g, p)| g == p).count();
                Some((cat, pairs.len(), correct as f64 / pairs.len() as f64))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use SemanticType as T;

    #[test]
    fn exact_and_category_accuracy_on_mixed_predictions() {
        let gold = vec![T::City, T::BirthPlace, T::Sales, T::Name];
        let pred = vec![T::City, T::City, T::Age, T::Name];
        let eval = HierarchicalEvaluation::from_pairs(&gold, &pred);
        assert_eq!(eval.total, 4);
        // Exact: city and name correct.
        assert!((eval.exact_accuracy - 0.5).abs() < 1e-12);
        // Category: birthPlace→city stays in Location, sales→age stays in
        // Quantity, so all four are category-correct.
        assert!((eval.category_accuracy - 1.0).abs() < 1e-12);
        // Both errors are near misses.
        assert!((eval.near_miss_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn category_accuracy_never_below_exact_accuracy() {
        let gold = vec![T::City, T::Company, T::Year, T::Isbn];
        let pred = vec![T::Sales, T::Club, T::Day, T::Name];
        let eval = HierarchicalEvaluation::from_pairs(&gold, &pred);
        assert!(eval.category_accuracy >= eval.exact_accuracy);
        assert_eq!(eval.exact_accuracy, 0.0);
        // company→club and year→day are near misses; city→sales, isbn→name not.
        assert!((eval.near_miss_rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_input_is_all_zero() {
        let eval = HierarchicalEvaluation::from_pairs(&[], &[]);
        assert_eq!(eval.total, 0);
        assert_eq!(eval.exact_accuracy, 0.0);
    }

    #[test]
    fn perfect_predictions_have_zero_near_miss_rate() {
        let gold = vec![T::City, T::Sales];
        let eval = HierarchicalEvaluation::from_pairs(&gold, &gold);
        assert_eq!(eval.exact_accuracy, 1.0);
        assert_eq!(eval.category_accuracy, 1.0);
        assert_eq!(eval.near_miss_rate, 0.0);
    }

    #[test]
    fn per_category_breakdown_only_reports_observed_categories() {
        let gold = vec![T::City, T::Country, T::Name];
        let pred = vec![T::City, T::City, T::Artist];
        let rows = HierarchicalEvaluation::per_category_accuracy(&gold, &pred);
        assert_eq!(rows.len(), 2); // Location and Person only
        let loc = rows
            .iter()
            .find(|(c, _, _)| c.name() == "location")
            .unwrap();
        assert_eq!(loc.1, 2);
        assert!((loc.2 - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "differ")]
    fn mismatched_lengths_panic() {
        HierarchicalEvaluation::from_pairs(&[T::City], &[]);
    }
}
