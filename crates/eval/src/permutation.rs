//! Permutation feature importance (Section 5.4 / Figure 9).
//!
//! For a fitted model and a specific feature group, the input tables are
//! "shuffled" by swapping that group's features with those of randomly
//! selected columns from other tables. The resulting drop in macro / weighted
//! F1, averaged over several random trials, is the group's importance score.

use crate::metrics::Evaluation;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sato::dataset::TableInputs;
use sato::{types_from_proba, InputGroup, SatoModel};
use sato_features::FeatureGroup;
use sato_tabular::table::Corpus;
use sato_tabular::types::SemanticType;
use serde::{Deserialize, Serialize};

/// Importance of one input group.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupImportance {
    /// Display name of the group ("char", "word", "par", "rest", "topic").
    pub group: String,
    /// Drop in macro-average F1 caused by permuting the group (mean over trials).
    pub macro_f1_drop: f64,
    /// Drop in support-weighted F1 caused by permuting the group.
    pub weighted_f1_drop: f64,
}

/// The full permutation-importance analysis of one model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ImportanceReport {
    /// Baseline (unpermuted) evaluation.
    pub baseline_macro_f1: f64,
    /// Baseline support-weighted F1.
    pub baseline_weighted_f1: f64,
    /// One entry per input group, in [`InputGroup::order`] order.
    pub groups: Vec<GroupImportance>,
}

/// Evaluate the model on pre-extracted inputs, optionally permuting one group.
fn evaluate_with_inputs(
    model: &SatoModel,
    inputs: &[TableInputs],
    gold: &[Vec<SemanticType>],
) -> Evaluation {
    let mut gold_flat = Vec::new();
    let mut pred_flat = Vec::new();
    for (table_inputs, gold_labels) in inputs.iter().zip(gold) {
        let proba = model.columnwise().predict_proba_from_inputs(table_inputs);
        let pred: Vec<SemanticType> = match model.structured() {
            Some(layer) => layer.decode_proba(&proba),
            None => types_from_proba(&proba),
        };
        gold_flat.extend_from_slice(gold_labels);
        pred_flat.extend(pred);
    }
    Evaluation::from_pairs(&gold_flat, &pred_flat)
}

/// Permute one group across all columns of all tables (in place on a copy).
fn permute_group(inputs: &[TableInputs], group: InputGroup, rng: &mut StdRng) -> Vec<TableInputs> {
    let mut permuted = inputs.to_vec();
    match group {
        InputGroup::Feature(g) => {
            // Collect every column's group vector, shuffle, and write back.
            let mut pool: Vec<Vec<f32>> = permuted
                .iter()
                .flat_map(|t| t.columns.iter().map(|c| c.group(g).to_vec()))
                .collect();
            pool.shuffle(rng);
            let mut cursor = 0usize;
            for table in &mut permuted {
                for col in &mut table.columns {
                    *col.group_mut(g) = pool[cursor].clone();
                    cursor += 1;
                }
            }
        }
        InputGroup::Topic => {
            let mut pool: Vec<Option<Vec<f32>>> =
                permuted.iter().map(|t| t.topic.clone()).collect();
            pool.shuffle(rng);
            for (table, topic) in permuted.iter_mut().zip(pool) {
                table.topic = topic;
            }
        }
    }
    permuted
}

/// Run the permutation-importance analysis of a trained model on a test
/// corpus with `trials` random shuffles per group.
pub fn permutation_importance(
    model: &SatoModel,
    test: &Corpus,
    trials: usize,
    seed: u64,
) -> ImportanceReport {
    let uses_topic = model.columnwise().uses_topic();
    let inputs: Vec<TableInputs> = test
        .iter()
        .map(|t| model.columnwise().extract_inputs(t))
        .collect();
    let gold: Vec<Vec<SemanticType>> = test.iter().map(|t| t.labels.clone()).collect();

    let baseline = evaluate_with_inputs(model, &inputs, &gold);
    let groups = InputGroup::order(uses_topic)
        .into_iter()
        .map(|group| {
            let mut macro_drops = Vec::with_capacity(trials);
            let mut weighted_drops = Vec::with_capacity(trials);
            for trial in 0..trials {
                let mut rng = StdRng::seed_from_u64(seed ^ (trial as u64) << 8 ^ hash_group(group));
                let permuted = permute_group(&inputs, group, &mut rng);
                let eval = evaluate_with_inputs(model, &permuted, &gold);
                macro_drops.push((baseline.macro_f1 - eval.macro_f1).max(0.0));
                weighted_drops.push((baseline.weighted_f1 - eval.weighted_f1).max(0.0));
            }
            GroupImportance {
                group: group.name().to_string(),
                macro_f1_drop: mean(&macro_drops),
                weighted_f1_drop: mean(&weighted_drops),
            }
        })
        .collect();

    ImportanceReport {
        baseline_macro_f1: baseline.macro_f1,
        baseline_weighted_f1: baseline.weighted_f1,
        groups,
    }
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

fn hash_group(group: InputGroup) -> u64 {
    match group {
        InputGroup::Feature(FeatureGroup::Char) => 1,
        InputGroup::Feature(FeatureGroup::Word) => 2,
        InputGroup::Feature(FeatureGroup::Para) => 3,
        InputGroup::Feature(FeatureGroup::Stat) => 4,
        InputGroup::Topic => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sato::{SatoConfig, SatoVariant};
    use sato_tabular::corpus::default_corpus;
    use sato_tabular::split::train_test_split;

    #[test]
    fn importance_report_covers_all_groups() {
        let corpus = default_corpus(60, 23);
        let split = train_test_split(&corpus, 0.3, 1);
        let model = SatoModel::train(&split.train, SatoConfig::fast(), SatoVariant::Base);
        let report = permutation_importance(&model, &split.test, 2, 9);
        assert_eq!(report.groups.len(), 4);
        assert!(report.baseline_weighted_f1 > 0.0);
        for g in &report.groups {
            assert!(g.macro_f1_drop >= 0.0);
            assert!(g.weighted_f1_drop >= 0.0);
            assert!(g.macro_f1_drop <= 1.0);
        }
    }

    #[test]
    fn topic_group_appears_for_topic_aware_models() {
        let corpus = default_corpus(50, 24);
        let split = train_test_split(&corpus, 0.3, 2);
        let model = SatoModel::train(&split.train, SatoConfig::fast(), SatoVariant::SatoNoStruct);
        let report = permutation_importance(&model, &split.test, 1, 3);
        assert_eq!(report.groups.len(), 5);
        assert!(report.groups.iter().any(|g| g.group == "topic"));
    }

    #[test]
    fn permuting_features_hurts_more_than_not_permuting() {
        // Sanity: at least one feature group should have a measurable impact
        // on the weighted F1 (the model relies on its inputs).
        let corpus = default_corpus(70, 25);
        let split = train_test_split(&corpus, 0.3, 4);
        let model = SatoModel::train(&split.train, SatoConfig::fast(), SatoVariant::Base);
        let report = permutation_importance(&model, &split.test, 2, 11);
        let max_drop = report
            .groups
            .iter()
            .map(|g| g.weighted_f1_drop)
            .fold(0.0f64, f64::max);
        assert!(max_drop > 0.01, "no feature group mattered: {report:?}");
    }
}
