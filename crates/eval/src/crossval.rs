//! Cross-validated evaluation of the Sato variants (the experimental
//! protocol behind Table 1 and Figures 7/8): k-fold CV at the table level,
//! with each fold evaluated on the full held-out set `D` and on its
//! multi-column subset `D_mult`.

use crate::metrics::{mean_and_ci95, Evaluation};
use sato::{SatoConfig, SatoModel, SatoVariant};
use sato_tabular::split::k_fold;
use sato_tabular::table::Corpus;
use sato_tabular::types::SemanticType;
use serde::{Deserialize, Serialize};

/// The evaluation of one fold for one variant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FoldResult {
    /// Fold index.
    pub fold: usize,
    /// Metrics over every held-out table (dataset `D`).
    pub all_tables: Evaluation,
    /// Metrics over the multi-column held-out tables only (`D_mult`).
    pub multi_column: Evaluation,
}

/// Aggregated cross-validation result for one variant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrossValResult {
    /// The evaluated variant.
    pub variant: SatoVariant,
    /// Per-fold evaluations.
    pub folds: Vec<FoldResult>,
}

/// A (mean, ±95% CI half-width) pair.
pub type MeanCi = (f64, f64);

impl CrossValResult {
    /// Mean ± CI of the macro-average F1 over folds.
    pub fn macro_f1(&self, multi_column_only: bool) -> MeanCi {
        self.aggregate(|f| self.pick(f, multi_column_only).macro_f1)
    }

    /// Mean ± CI of the support-weighted F1 over folds.
    pub fn weighted_f1(&self, multi_column_only: bool) -> MeanCi {
        self.aggregate(|f| self.pick(f, multi_column_only).weighted_f1)
    }

    /// Mean per-type F1 across folds (for Figures 7 and 8).
    pub fn per_type_f1(&self, multi_column_only: bool) -> Vec<(SemanticType, f64)> {
        SemanticType::ALL
            .iter()
            .map(|&t| {
                let scores: Vec<f64> = self
                    .folds
                    .iter()
                    .map(|f| self.pick(f, multi_column_only).f1_of(t))
                    .collect();
                (t, scores.iter().sum::<f64>() / scores.len().max(1) as f64)
            })
            .collect()
    }

    fn pick<'a>(&self, fold: &'a FoldResult, multi_column_only: bool) -> &'a Evaluation {
        if multi_column_only {
            &fold.multi_column
        } else {
            &fold.all_tables
        }
    }

    fn aggregate(&self, metric: impl Fn(&FoldResult) -> f64) -> MeanCi {
        let values: Vec<f64> = self.folds.iter().map(metric).collect();
        mean_and_ci95(&values)
    }
}

/// Evaluate a trained model on a held-out corpus, producing both the `D` and
/// `D_mult` views.
pub fn evaluate_model(model: &SatoModel, test: &Corpus) -> (Evaluation, Evaluation) {
    let predictions = model.predict_corpus(test);
    let all = Evaluation::from_tables(
        predictions
            .iter()
            .map(|p| (p.gold.as_slice(), p.predicted.as_slice())),
    );
    let multi = Evaluation::from_tables(
        predictions
            .iter()
            .filter(|p| p.gold.len() > 1)
            .map(|p| (p.gold.as_slice(), p.predicted.as_slice())),
    );
    (all, multi)
}

/// Run `k`-fold cross-validation of one variant over a corpus.
///
/// This is the paper's protocol: the model (LDA, column-wise network, CRF)
/// is re-trained from scratch on the training portion of every fold and
/// evaluated on the held-out portion.
pub fn cross_validate(
    corpus: &Corpus,
    k: usize,
    config: &SatoConfig,
    variant: SatoVariant,
) -> CrossValResult {
    let folds = k_fold(corpus, k, config.seed ^ 0xf01d);
    let fold_results = folds
        .iter()
        .enumerate()
        .map(|(i, split)| {
            let model = SatoModel::train(&split.train, config.clone(), variant);
            let (all_tables, multi_column) = evaluate_model(&model, &split.test);
            FoldResult {
                fold: i,
                all_tables,
                multi_column,
            }
        })
        .collect();
    CrossValResult {
        variant,
        folds: fold_results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sato_tabular::corpus::default_corpus;

    #[test]
    fn cross_validation_produces_one_result_per_fold() {
        let corpus = default_corpus(60, 14);
        let config = SatoConfig::fast();
        let result = cross_validate(&corpus, 2, &config, SatoVariant::Base);
        assert_eq!(result.folds.len(), 2);
        for fold in &result.folds {
            assert!(fold.all_tables.total >= fold.multi_column.total);
            assert!(fold.all_tables.total > 0);
        }
        let (macro_mean, macro_ci) = result.macro_f1(true);
        assert!((0.0..=1.0).contains(&macro_mean));
        assert!(macro_ci >= 0.0);
        let per_type = result.per_type_f1(false);
        assert_eq!(per_type.len(), 78);
    }

    #[test]
    fn evaluate_model_separates_d_and_dmult() {
        let corpus = default_corpus(50, 15);
        let model = SatoModel::train(&corpus, SatoConfig::fast(), SatoVariant::Base);
        let (all, multi) = evaluate_model(&model, &corpus);
        // D includes singleton-table columns, so it has strictly more columns
        // than D_mult for this corpus configuration.
        assert!(all.total > multi.total);
        assert!(multi.total > 0);
    }
}
