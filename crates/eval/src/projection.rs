//! Dimensionality reduction for the column-embedding analysis
//! (Section 5.6 / Figure 10): PCA and a small exact t-SNE implementation.
//!
//! The paper projects column embeddings with t-SNE; a deterministic PCA is
//! also provided because it is faster and sufficient to inspect whether the
//! topic-aware model separates the organisation-like types better than the
//! Sherlock baseline.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// A 2-D point.
pub type Point2 = [f64; 2];

fn center(data: &[Vec<f32>]) -> Vec<Vec<f64>> {
    let n = data.len();
    let d = data.first().map_or(0, Vec::len);
    let mut mean = vec![0.0f64; d];
    for row in data {
        for (m, &v) in mean.iter_mut().zip(row) {
            *m += v as f64;
        }
    }
    mean.iter_mut().for_each(|m| *m /= n.max(1) as f64);
    data.iter()
        .map(|row| row.iter().zip(&mean).map(|(&v, m)| v as f64 - m).collect())
        .collect()
}

fn matvec(data: &[Vec<f64>], v: &[f64]) -> Vec<f64> {
    // Computes Covariance * v without forming the covariance matrix:
    // C v = (1/n) Xᵀ (X v).
    let n = data.len();
    let d = v.len();
    let mut xv = vec![0.0f64; n];
    for (i, row) in data.iter().enumerate() {
        xv[i] = row.iter().zip(v).map(|(a, b)| a * b).sum();
    }
    let mut out = vec![0.0f64; d];
    for (i, row) in data.iter().enumerate() {
        for (o, &a) in out.iter_mut().zip(row) {
            *o += a * xv[i];
        }
    }
    out.iter_mut().for_each(|x| *x /= n.max(1) as f64);
    out
}

fn normalize(v: &mut [f64]) -> f64 {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 1e-12 {
        v.iter_mut().for_each(|x| *x /= norm);
    }
    norm
}

/// Project rows to two dimensions with PCA (power iteration + deflation).
pub fn pca_2d(data: &[Vec<f32>], seed: u64) -> Vec<Point2> {
    if data.is_empty() {
        return Vec::new();
    }
    let centered = center(data);
    let d = centered[0].len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut components: Vec<Vec<f64>> = Vec::new();

    for _ in 0..2.min(d) {
        let mut v: Vec<f64> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
        normalize(&mut v);
        for _ in 0..100 {
            let mut next = matvec(&centered, &v);
            // Deflate previously found components.
            for c in &components {
                let dot: f64 = next.iter().zip(c).map(|(a, b)| a * b).sum();
                for (n, &ci) in next.iter_mut().zip(c) {
                    *n -= dot * ci;
                }
            }
            if normalize(&mut next) < 1e-12 {
                break;
            }
            v = next;
        }
        components.push(v);
    }
    centered
        .iter()
        .map(|row| {
            let mut p = [0.0f64; 2];
            for (k, c) in components.iter().enumerate() {
                p[k] = row.iter().zip(c).map(|(a, b)| a * b).sum();
            }
            p
        })
        .collect()
}

/// Configuration for the exact t-SNE implementation.
#[derive(Debug, Clone)]
pub struct TsneConfig {
    /// Target perplexity of the conditional distributions.
    pub perplexity: f64,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Random seed for the initial layout.
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        TsneConfig {
            perplexity: 20.0,
            iterations: 300,
            learning_rate: 100.0,
            seed: 5,
        }
    }
}

/// Exact (O(n²)) t-SNE to two dimensions. Suitable for the few hundred
/// column embeddings plotted in Figure 10.
pub fn tsne_2d(data: &[Vec<f32>], config: &TsneConfig) -> Vec<Point2> {
    let n = data.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![[0.0, 0.0]];
    }

    // Pairwise squared distances in the input space.
    let mut d2 = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let dist: f64 = data[i]
                .iter()
                .zip(&data[j])
                .map(|(&a, &b)| (a as f64 - b as f64).powi(2))
                .sum();
            d2[i * n + j] = dist;
            d2[j * n + i] = dist;
        }
    }

    // Binary-search per-point bandwidths to match the target perplexity.
    let target_entropy = config.perplexity.max(2.0).ln();
    let mut p = vec![0.0f64; n * n];
    for i in 0..n {
        let mut beta = 1.0f64;
        let mut beta_min = f64::NEG_INFINITY;
        let mut beta_max = f64::INFINITY;
        for _ in 0..50 {
            let mut sum = 0.0;
            for j in 0..n {
                if i != j {
                    p[i * n + j] = (-beta * d2[i * n + j]).exp();
                    sum += p[i * n + j];
                } else {
                    p[i * n + j] = 0.0;
                }
            }
            let sum = sum.max(1e-300);
            let mut entropy = 0.0;
            for j in 0..n {
                if i != j && p[i * n + j] > 0.0 {
                    let pj = p[i * n + j] / sum;
                    entropy -= pj * pj.max(1e-300).ln();
                }
            }
            let diff = entropy - target_entropy;
            if diff.abs() < 1e-4 {
                break;
            }
            if diff > 0.0 {
                beta_min = beta;
                beta = if beta_max.is_infinite() {
                    beta * 2.0
                } else {
                    (beta + beta_max) / 2.0
                };
            } else {
                beta_max = beta;
                beta = if beta_min.is_infinite() {
                    beta / 2.0
                } else {
                    (beta + beta_min) / 2.0
                };
            }
        }
        let sum: f64 = (0..n)
            .filter(|&j| j != i)
            .map(|j| p[i * n + j])
            .sum::<f64>()
            .max(1e-300);
        for j in 0..n {
            if i != j {
                p[i * n + j] /= sum;
            }
        }
    }
    // Symmetrise.
    let mut pij = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            pij[i * n + j] = ((p[i * n + j] + p[j * n + i]) / (2.0 * n as f64)).max(1e-12);
        }
    }

    // Gradient descent on the 2-D layout.
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut y: Vec<Point2> = (0..n)
        .map(|_| [rng.gen_range(-1e-2..1e-2), rng.gen_range(-1e-2..1e-2)])
        .collect();
    let mut velocity = vec![[0.0f64; 2]; n];

    for iter in 0..config.iterations {
        // Student-t affinities in the embedding.
        let mut q = vec![0.0f64; n * n];
        let mut q_sum = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                let dx = y[i][0] - y[j][0];
                let dy = y[i][1] - y[j][1];
                let t = 1.0 / (1.0 + dx * dx + dy * dy);
                q[i * n + j] = t;
                q[j * n + i] = t;
                q_sum += 2.0 * t;
            }
        }
        let q_sum = q_sum.max(1e-300);
        // Early exaggeration.
        let exaggeration = if iter < config.iterations / 4 {
            4.0
        } else {
            1.0
        };
        let momentum = if iter < 50 { 0.5 } else { 0.8 };

        for i in 0..n {
            let mut grad = [0.0f64; 2];
            for j in 0..n {
                if i == j {
                    continue;
                }
                let qij_un = q[i * n + j];
                let qij = (qij_un / q_sum).max(1e-12);
                let coeff = 4.0 * (exaggeration * pij[i * n + j] - qij) * qij_un;
                grad[0] += coeff * (y[i][0] - y[j][0]);
                grad[1] += coeff * (y[i][1] - y[j][1]);
            }
            for k in 0..2 {
                velocity[i][k] = momentum * velocity[i][k] - config.learning_rate * grad[k];
            }
        }
        for i in 0..n {
            y[i][0] += velocity[i][0];
            y[i][1] += velocity[i][1];
        }
    }
    y
}

/// Mean pairwise distance between two groups of 2-D points relative to the
/// mean within-group distance — a scalar "separation" measure used by tests
/// and by the Figure 10 report to compare the embeddings of two models.
pub fn separation_ratio(a: &[Point2], b: &[Point2]) -> f64 {
    let dist = |x: &Point2, y: &Point2| ((x[0] - y[0]).powi(2) + (x[1] - y[1]).powi(2)).sqrt();
    let mean_pair = |xs: &[Point2], ys: &[Point2]| {
        let mut total = 0.0;
        let mut count = 0usize;
        for x in xs {
            for y in ys {
                total += dist(x, y);
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    };
    let within = (mean_pair(a, a) + mean_pair(b, b)) / 2.0;
    let between = mean_pair(a, b);
    if within < 1e-12 {
        f64::INFINITY
    } else {
        between / within
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated Gaussian-ish blobs in 10 dimensions.
    fn blobs() -> (Vec<Vec<f32>>, usize) {
        let mut rng = StdRng::seed_from_u64(3);
        let mut data = Vec::new();
        for i in 0..40 {
            let offset = if i < 20 { 0.0 } else { 5.0 };
            let row: Vec<f32> = (0..10).map(|_| offset + rng.gen_range(-0.5..0.5)).collect();
            data.push(row);
        }
        (data, 20)
    }

    #[test]
    fn pca_preserves_blob_separation() {
        let (data, split) = blobs();
        let proj = pca_2d(&data, 1);
        assert_eq!(proj.len(), data.len());
        let ratio = separation_ratio(&proj[..split], &proj[split..]);
        assert!(ratio > 2.0, "PCA separation ratio too low: {ratio}");
    }

    #[test]
    fn pca_handles_empty_and_single_point() {
        assert!(pca_2d(&[], 0).is_empty());
        let one = pca_2d(&[vec![1.0, 2.0, 3.0]], 0);
        assert_eq!(one.len(), 1);
        assert!(one[0].iter().all(|v| v.is_finite()));
    }

    #[test]
    fn tsne_preserves_blob_separation() {
        let (data, split) = blobs();
        let config = TsneConfig {
            iterations: 150,
            ..TsneConfig::default()
        };
        let proj = tsne_2d(&data, &config);
        assert_eq!(proj.len(), data.len());
        assert!(proj.iter().all(|p| p.iter().all(|v| v.is_finite())));
        let ratio = separation_ratio(&proj[..split], &proj[split..]);
        assert!(ratio > 1.5, "t-SNE separation ratio too low: {ratio}");
    }

    #[test]
    fn tsne_trivial_inputs() {
        assert!(tsne_2d(&[], &TsneConfig::default()).is_empty());
        let one = tsne_2d(&[vec![1.0, 2.0]], &TsneConfig::default());
        assert_eq!(one, vec![[0.0, 0.0]]);
    }

    #[test]
    fn separation_ratio_of_identical_groups_is_about_one() {
        let pts = vec![[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]];
        let r = separation_ratio(&pts, &pts);
        assert!((r - 1.0).abs() < 0.3, "ratio {r}");
    }

    #[test]
    fn projections_are_deterministic() {
        let (data, _) = blobs();
        assert_eq!(pca_2d(&data, 7), pca_2d(&data, 7));
        let cfg = TsneConfig {
            iterations: 50,
            ..TsneConfig::default()
        };
        assert_eq!(tsne_2d(&data, &cfg), tsne_2d(&data, &cfg));
    }
}
