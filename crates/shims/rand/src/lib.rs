//! Offline, deterministic stand-in for the subset of the `rand` 0.8 API this
//! workspace uses: [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`],
//! the [`Rng`] extension methods `gen`, `gen_range` and `gen_bool`, and
//! [`seq::SliceRandom::shuffle`].
//!
//! The build environment has no registry access, so this crate is vendored as
//! a workspace member. The generator is xoshiro256++ seeded through SplitMix64
//! — not the real `StdRng` (ChaCha12), but of comparable statistical quality
//! for tests and synthetic data generation, and fully deterministic for a
//! given seed.

#![warn(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from the unit/standard distribution
/// by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Scalars [`Rng::gen_range`] can sample uniformly between two bounds.
///
/// The blanket [`SampleRange`] impls below go through this trait so that
/// `Range<{integer}>` unifies with a single impl during type inference,
/// exactly like real rand's `SampleUniform`.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws uniformly from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) + i128::from(inclusive);
                assert!(span > 0, "gen_range called with empty range");
                let offset = (rng.next_u64() as u128) % span as u128;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "gen_range called with empty range");
                    // Unit draw over [0, 1] (denominator 2^53 - 1 makes the
                    // top value reachable), then clamp: the lo + unit*(hi-lo)
                    // arithmetic can overshoot hi by an ulp in $t.
                    let unit =
                        (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                    let v = (lo as f64 + unit * (hi as f64 - lo as f64)) as $t;
                    if v > hi { hi } else { v }
                } else {
                    assert!(lo < hi, "gen_range called with empty range");
                    let unit = f64::sample_standard(rng);
                    let v = (lo as f64 + unit * (hi as f64 - lo as f64)) as $t;
                    // The guard must run in $t: the f64 value can sit below
                    // hi yet round up to exactly hi when cast (f32 ranges).
                    if v >= hi { lo } else { v }
                }
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// High-level convenience methods over any [`RngCore`], mirroring
/// `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seeding constructors, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice extension methods, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// Random operations on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(1..=6);
            assert!((1..=6).contains(&i));
        }
    }

    #[test]
    fn f32_range_stays_below_upper_bound() {
        // The exclusivity guard must run in f32: an f64 draw just below the
        // bound can round up to exactly the bound when cast.
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200_000 {
            let v = rng.gen_range(-50.0f32..50.0);
            assert!(v < 50.0, "f32 gen_range returned the exclusive bound");
            assert!(v >= -50.0);
        }
    }

    #[test]
    fn inclusive_float_range_is_honoured() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&v));
        }
        // Degenerate inclusive range is valid and returns the single point.
        assert_eq!(rng.gen_range(2.5f32..=2.5), 2.5);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
