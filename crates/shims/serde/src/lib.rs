//! Offline, API-compatible stand-in for the subset of `serde` this workspace
//! uses: the [`Serialize`] / [`Deserialize`] traits plus their derive macros
//! (re-exported from the hand-rolled `serde_derive` shim when the `derive`
//! feature is on).
//!
//! Unlike real serde's visitor architecture, this shim round-trips through a
//! self-describing [`Value`] tree; `serde_json` renders/parses that tree. The
//! derive macros support exactly the shapes this workspace declares: structs
//! with named fields and enums with unit variants, without `#[serde(...)]`
//! attributes.

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Self-describing data tree, the interchange format between [`Serialize`],
/// [`Deserialize`] and data formats such as `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Ordered map with string keys (insertion order preserved).
    Map(Vec<(String, Value)>),
}

/// Error produced when a [`Value`] cannot be decoded into the requested type.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

impl Value {
    /// Looks up `name` in a [`Value::Map`], failing with a descriptive error.
    pub fn field<'a>(&'a self, name: &str) -> Result<&'a Value, DeError> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError(format!("missing field `{name}`"))),
            other => Err(DeError(format!(
                "expected map with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Human-readable name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Types that can be encoded as a [`Value`] tree.
pub trait Serialize {
    /// Encodes `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be decoded from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Decodes a value, reporting shape mismatches as [`DeError`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// `Value` round-trips through itself (like real `serde_json::Value`), so
// callers can parse a document into the raw tree, inspect or patch it —
// e.g. defaulting a field that older artifacts lack — and then decode it
// into a typed struct.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, found {}", other.kind()))),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i128 = match v {
                    Value::Int(i) => *i as i128,
                    Value::UInt(u) => *u as i128,
                    other => return Err(DeError(format!(
                        "expected integer, found {}", other.kind()))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError(format!("integer {wide} out of range")))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u128;
                if wide <= i64::MAX as u128 {
                    Value::Int(wide as i64)
                } else {
                    Value::UInt(wide as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i128 = match v {
                    Value::Int(i) => *i as i128,
                    Value::UInt(u) => *u as i128,
                    other => return Err(DeError(format!(
                        "expected integer, found {}", other.kind()))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError(format!("integer {wide} out of range")))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        // f32 -> f64 is exact, so the round-trip back through `as f32` is
        // lossless even after text formatting.
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(DeError(format!("expected number, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError(format!(
                "expected single-char string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(Deserialize::from_value).collect(),
            other => Err(DeError(format!(
                "expected sequence, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError(format!(
                "expected 2-tuple sequence, found {}",
                other.kind()
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(DeError(format!(
                "expected 3-tuple sequence, found {}",
                other.kind()
            ))),
        }
    }
}

/// Types usable as map keys in serialized maps (encoded as strings).
pub trait MapKey: Sized + Ord {
    /// Encodes the key as a string.
    fn to_key(&self) -> String;
    /// Decodes the key from a string.
    fn from_key(s: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(s: &str) -> Result<Self, DeError> {
        Ok(s.to_owned())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, DeError> {
                s.parse()
                    .map_err(|_| DeError(format!("invalid integer map key `{s}`")))
            }
        }
    )*};
}
impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + std::hash::Hash, V: Serialize, S: std::hash::BuildHasher> Serialize
    for HashMap<K, V, S>
{
    fn to_value(&self) -> Value {
        // Sorted for deterministic output across hasher states.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Map(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + std::hash::Hash + Eq, V: Deserialize, S: std::hash::BuildHasher + Default>
    Deserialize for HashMap<K, V, S>
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError(format!("expected map, found {}", other.kind()))),
        }
    }
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError(format!("expected map, found {}", other.kind()))),
        }
    }
}
