//! Offline, API-compatible stand-in for the subset of Criterion this
//! workspace's benches use: `Criterion::benchmark_group`, `sample_size`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of Criterion's statistical engine it runs a short calibrated
//! timing loop per benchmark and prints mean ns/iter — enough to compare
//! hot paths across commits without any registry dependency.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under Criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a displayed parameter only.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { id: name.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { id: name }
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    iters_hint: u64,
}

impl Bencher {
    /// Times `routine`, first calibrating an iteration count so one sample
    /// lasts roughly a millisecond. Matches Criterion's `()` return type;
    /// the harness reads the timing back through `iters_hint`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: one timed run, then scale.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(1);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        self.iters_hint = iters;

        for _ in 0..iters {
            black_box(routine());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples to take per benchmark (Criterion API parity).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let samples = self.samples.min(10);
        let mut best = Duration::MAX;
        for _ in 0..samples {
            best = best.min(one_sample(&mut f));
        }
        println!(
            "bench {}/{}: ~{:?}/iter (best of {})",
            self.name, id, best, samples
        );
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        self.run(&id.id, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(&id.id, |b| f(b, input));
        self
    }

    /// Ends the group (Criterion API parity; nothing to flush here).
    pub fn finish(self) {}
}

/// Runs the benchmark closure once and returns the per-iteration mean.
fn one_sample<F: FnMut(&mut Bencher)>(f: &mut F) -> Duration {
    let mut bencher = Bencher { iters_hint: 1 };
    let start = Instant::now();
    f(&mut bencher);
    // The closure calls `Bencher::iter`, which runs a calibration pass plus
    // `iters_hint` timed iterations; divide wall time by the total count.
    start.elapsed() / (bencher.iters_hint.max(1) + 1) as u32
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group("");
        group.bench_function(name, f);
        self
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main`, running each group unless invoked by `cargo test`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` may execute harness-less bench binaries with
            // `--test`; benches only run under `cargo bench` (`--bench`).
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}
