//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline serde shim. Supports exactly the type shapes this workspace
//! declares: non-generic structs with named fields and enums with unit
//! variants, with no `#[serde(...)]` attributes. Anything else is a
//! compile error pointing here.
//!
//! No `syn`/`quote` (registry is offline); the derive input is parsed
//! directly from the token stream and code is generated as a string.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving type.
enum Shape {
    /// Struct with named fields.
    Struct { name: String, fields: Vec<String> },
    /// Enum with unit variants.
    Enum { name: String, variants: Vec<String> },
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes and visibility to reach `struct` / `enum`.
    let kind = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute: consume the bracket group that follows.
                match tokens.next() {
                    Some(TokenTree::Group(_)) => {}
                    _ => return Err("malformed attribute".into()),
                }
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                // `pub`, `pub(crate)` etc: `pub` is an ident; a following
                // paren group is consumed on its own iteration.
            }
            Some(TokenTree::Group(_)) => {} // visibility restriction `(crate)`
            Some(other) => return Err(format!("unexpected token `{other}`")),
            None => return Err("no struct or enum found".into()),
        }
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("missing type name".into()),
    };
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err(format!(
                    "serde shim derive does not support generic type `{name}`"
                ))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Err(format!(
                    "serde shim derive does not support tuple/unit struct `{name}`"
                ))
            }
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "serde shim derive does not support tuple struct `{name}`"
                ))
            }
            Some(_) => {}
            None => return Err(format!("missing body for `{name}`")),
        }
    };

    if kind == "struct" {
        Ok(Shape::Struct {
            name,
            fields: parse_named_fields(body.stream())?,
        })
    } else {
        Ok(Shape::Enum {
            name,
            variants: parse_unit_variants(body.stream())?,
        })
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip attributes (doc comments) and `pub` before the field name.
        let field = loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => match tokens.next() {
                    Some(TokenTree::Group(_)) => {}
                    _ => return Err("malformed field attribute".into()),
                },
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    // `pub(crate)` etc: skip a following paren group.
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => return Err(format!("unexpected token `{other}` in fields")),
                None => return Ok(fields),
            }
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("field `{field}` missing `:` (tuple struct?)")),
        }
        fields.push(field);
        // Skip the type up to the next top-level comma; `<`/`>` track
        // generic nesting (commas inside parens/brackets are hidden in
        // their own groups).
        let mut angle_depth = 0i32;
        loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
                None => return Ok(fields),
            }
        }
    }
}

fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter();
    loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => match tokens.next() {
                Some(TokenTree::Group(_)) => {}
                _ => return Err("malformed variant attribute".into()),
            },
            Some(TokenTree::Ident(id)) => {
                let variant = id.to_string();
                match tokens.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                        variants.push(variant);
                    }
                    None => {
                        variants.push(variant);
                        return Ok(variants);
                    }
                    Some(TokenTree::Group(_)) => {
                        return Err(format!(
                            "serde shim derive does not support data-carrying variant `{variant}`"
                        ))
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                        // Explicit discriminant: skip tokens up to the comma.
                        variants.push(variant);
                        loop {
                            match tokens.next() {
                                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                                Some(_) => {}
                                None => return Ok(variants),
                            }
                        }
                    }
                    Some(other) => {
                        return Err(format!("unexpected token `{other}` after `{variant}`"))
                    }
                }
            }
            Some(other) => return Err(format!("unexpected token `{other}` in enum body")),
            None => return Ok(variants),
        }
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Derives the shim `serde::Serialize` (encode to `serde::Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(shape) => shape,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("Self::{v} => {v:?},"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(::std::string::String::from(\
                             match self {{ {arms} }}))\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

/// Derives the shim `serde::Deserialize` (decode from `serde::Value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(shape) => shape,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field({f:?})?)?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                         ::core::result::Result::Ok(Self {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => ::core::result::Result::Ok(Self::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => ::core::result::Result::Err(::serde::DeError(\
                                     ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             other => ::core::result::Result::Err(::serde::DeError(\
                                 ::std::format!(\"expected string for {name}, found {{}}\", \
                                     other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}
