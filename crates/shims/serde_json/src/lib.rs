//! Offline JSON encoder/decoder for the serde shim: renders and parses the
//! shim's `serde::Value` tree. API-compatible with the `serde_json` calls
//! this workspace makes (`to_string`, `from_str`, `Error`).

#![warn(missing_docs)]

use serde::{DeError, Deserialize, Serialize, Value};

/// Error raised by [`from_str`] on malformed JSON or a shape mismatch.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` as a compact JSON string.
///
/// Non-finite floats have no JSON representation and are emitted as `null`
/// (matching real serde_json's lossy behaviour for such values).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Deserializes a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's float Display prints the shortest decimal that
                // round-trips, and never uses exponent notation.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains('.') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error(format!("bad sequence at offset {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    entries.push((key, self.parse_value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error(format!("bad map at offset {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error(format!("unexpected input at offset {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            // Surrogate pairs are not produced by this
                            // writer; reject them rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error("surrogate \\u escape".into()))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(Error("bad escape".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // on char boundaries is safe via chars()).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
    }

    #[test]
    fn float_round_trip_is_exact() {
        for &x in &[0.1f32, 1e-8, 3.402_823_5e38, -1.0 / 3.0] {
            let json = to_string(&x).unwrap();
            assert_eq!(from_str::<f32>(&json).unwrap(), x);
        }
        for &x in &[0.1f64, 1e-300, std::f64::consts::PI] {
            let json = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), x);
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "a \"quoted\"\\ line\nwith\ttabs and unicode: déjà 中".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![vec![1u32, 2], vec![3]];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[3]]");
        assert_eq!(from_str::<Vec<Vec<u32>>>(&json).unwrap(), v);

        let opt: Vec<Option<f64>> = vec![Some(1.0), None];
        let json = to_string(&opt).unwrap();
        assert_eq!(json, "[1.0,null]");
        assert_eq!(from_str::<Vec<Option<f64>>>(&json).unwrap(), opt);

        let mut map = std::collections::HashMap::new();
        map.insert("b".to_string(), 2usize);
        map.insert("a".to_string(), 1usize);
        let json = to_string(&map).unwrap();
        assert_eq!(json, "{\"a\":1,\"b\":2}");
        assert_eq!(
            from_str::<std::collections::HashMap<String, usize>>(&json).unwrap(),
            map
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("4x").is_err());
        assert!(from_str::<Vec<u64>>("[1,2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
