//! Offline, API-compatible stand-in for the subset of proptest this
//! workspace's tests use: the [`proptest!`] macro with optional
//! `#![proptest_config(...)]`, numeric range strategies, tuple strategies,
//! [`collection::vec`], and the `prop_assert*` macros.
//!
//! Unlike real proptest there is no shrinking: each test runs `cases`
//! deterministically seeded random samples and fails with the ordinary
//! assert message (the failing case index is included via a panic note
//! printed by the harness on the sampled values being deterministic — rerun
//! reproduces the same inputs).

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::Rng;

/// Runtime configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Builds a config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values for one test argument.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Strategy returning a fixed value, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Length specification for [`vec()`](fn@vec): an exact size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values drawn from `element` with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything the tests import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over deterministically seeded
/// random samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $( $(#[$meta:meta])* fn $name:ident
        ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases as u64 {
                    // Seed varies per test (via the name's bytes) and per case.
                    let seed = stringify!($name)
                        .bytes()
                        .fold(0xcafe_f00d_u64, |h, b| {
                            h.wrapping_mul(31).wrapping_add(b as u64)
                        })
                        .wrapping_add(case);
                    let mut __rng =
                        <::rand::rngs::StdRng as ::rand::SeedableRng>::seed_from_u64(seed);
                    $(
                        let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}
