//! The `SATOIDX1` sidecar binary format.
//!
//! Same framing as the `SATOART1` predictor artifact (one codec idiom
//! across the workspace's binary formats; deliberately duplicated per
//! crate — any fix here must be mirrored in `sato::artifact` and
//! `sato_tabular::colstore`):
//!
//! ```text
//! header   : magic "SATOIDX1" (8) | version u32 | section_count u32
//! table    : section_count × { id [u8;4] | offset u64 | len u64 | checksum u64 }
//! payloads : each section's bytes, 8-byte aligned, zero-padded gaps
//! ```
//!
//! `checksum` is FNV-1a 64 (the shared `sato_kernels::fnv1a64`) over the
//! payload, verified before any decoding. Sections:
//!
//! | id     | contents                                                    |
//! |--------|-------------------------------------------------------------|
//! | `META` | dim, M, ef knobs, seed, sampler state, artifact hash, entry |
//! | `KEYS` | per node: `table_id u64 \| col_idx u32`                     |
//! | `LVLS` | per node: top level `u8`                                    |
//! | `VECS` | row-major `len × dim` embeddings, `f32`                     |
//! | `LINK` | per node, per level: `len u32 \| neighbor u32 × len`        |
//!
//! The `META` artifact hash is the load-time guard: an index only answers
//! for the predictor artifact whose embeddings it was built from, and
//! [`HnswIndex::load_sidecar`] rejects any other pairing with
//! [`IndexError::ArtifactMismatch`].

use crate::hnsw::{ColumnRef, HnswConfig, HnswIndex};
use crate::IndexError;
use std::collections::HashMap;

/// Magic bytes opening every index sidecar.
pub const INDEX_MAGIC: [u8; 8] = *b"SATOIDX1";

/// Current sidecar format version.
pub const INDEX_VERSION: u32 = 1;

/// Bytes per section-table entry: id (4) + offset (8) + len (8) + checksum (8).
const SECTION_ENTRY_LEN: usize = 28;

/// Header length: magic (8) + version (4) + section count (4).
const HEADER_LEN: usize = 16;

const SEC_META: [u8; 4] = *b"META";
const SEC_KEYS: [u8; 4] = *b"KEYS";
const SEC_LVLS: [u8; 4] = *b"LVLS";
const SEC_VECS: [u8; 4] = *b"VECS";
const SEC_LINK: [u8; 4] = *b"LINK";

/// Level values above this are structurally impossible (see
/// `hnsw::MAX_LEVEL`) and rejected as corrupt.
const MAX_LEVEL: u8 = 31;

fn fnv1a64(bytes: &[u8]) -> u64 {
    sato_kernels::fnv1a64(bytes)
}

fn section_name(id: [u8; 4]) -> &'static str {
    match id {
        SEC_META => "META",
        SEC_KEYS => "KEYS",
        SEC_LVLS => "LVLS",
        SEC_VECS => "VECS",
        SEC_LINK => "LINK",
        _ => "unknown section",
    }
}

/// Parsed section table over a borrowed buffer; payload slices are
/// bounds- and checksum-verified before being handed out.
struct Sections<'a> {
    entries: Vec<([u8; 4], &'a [u8])>,
}

impl<'a> Sections<'a> {
    fn parse(bytes: &'a [u8]) -> Result<Self, IndexError> {
        if bytes.len() < HEADER_LEN {
            return Err(IndexError::Truncated("index header"));
        }
        if bytes[..8] != INDEX_MAGIC {
            return Err(IndexError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != INDEX_VERSION {
            return Err(IndexError::UnsupportedVersion(version));
        }
        let count = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
        let table_end = HEADER_LEN
            + count.checked_mul(SECTION_ENTRY_LEN).ok_or_else(|| {
                IndexError::Corrupt("section count overflows the table size".to_string())
            })?;
        if bytes.len() < table_end {
            return Err(IndexError::Truncated("section table"));
        }
        let mut entries = Vec::with_capacity(count);
        for i in 0..count {
            let at = HEADER_LEN + i * SECTION_ENTRY_LEN;
            let id: [u8; 4] = bytes[at..at + 4].try_into().expect("4 bytes");
            let offset = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().expect("8 bytes"));
            let len = u64::from_le_bytes(bytes[at + 12..at + 20].try_into().expect("8 bytes"));
            let checksum = u64::from_le_bytes(bytes[at + 20..at + 28].try_into().expect("8 bytes"));
            let start = usize::try_from(offset)
                .ok()
                .filter(|&s| s >= table_end)
                .ok_or_else(|| {
                    IndexError::Corrupt(format!(
                        "section {} has an invalid offset",
                        section_name(id)
                    ))
                })?;
            let end = usize::try_from(len)
                .ok()
                .and_then(|l| start.checked_add(l))
                .filter(|&e| e <= bytes.len())
                .ok_or_else(|| IndexError::Truncated(section_name(id)))?;
            let payload = &bytes[start..end];
            if fnv1a64(payload) != checksum {
                return Err(IndexError::Checksum(section_name(id)));
            }
            entries.push((id, payload));
        }
        Ok(Sections { entries })
    }

    fn require(&self, id: [u8; 4]) -> Result<&'a [u8], IndexError> {
        self.entries
            .iter()
            .find(|(entry_id, _)| *entry_id == id)
            .map(|(_, payload)| *payload)
            .ok_or_else(|| IndexError::MissingSection(section_name(id)))
    }
}

/// Little-endian cursor over one section payload.
struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], IndexError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(IndexError::Truncated(what))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, IndexError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, IndexError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, IndexError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    fn f32_vec(&mut self, len: usize, what: &'static str) -> Result<Vec<f32>, IndexError> {
        let raw = self.take(len.checked_mul(4).ok_or(IndexError::Truncated(what))?, what)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    fn finish(&self, section: &'static str) -> Result<(), IndexError> {
        if self.pos != self.bytes.len() {
            return Err(IndexError::Corrupt(format!(
                "section {section} has trailing bytes"
            )));
        }
        Ok(())
    }
}

/// Assemble the framed sidecar from `(id, payload)` section bodies.
fn assemble(sections: &[([u8; 4], Vec<u8>)]) -> Vec<u8> {
    let table_end = HEADER_LEN + sections.len() * SECTION_ENTRY_LEN;
    let total: usize = sections.iter().map(|(_, p)| p.len() + 7).sum();
    let mut out = Vec::with_capacity(table_end + total);
    out.extend_from_slice(&INDEX_MAGIC);
    out.extend_from_slice(&INDEX_VERSION.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    let mut offset = table_end;
    let mut placed = Vec::with_capacity(sections.len());
    for (id, payload) in sections {
        offset = (offset + 7) & !7;
        placed.push((*id, offset as u64, payload.len() as u64, fnv1a64(payload)));
        offset += payload.len();
    }
    for (id, off, len, sum) in &placed {
        out.extend_from_slice(id);
        out.extend_from_slice(&off.to_le_bytes());
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&sum.to_le_bytes());
    }
    for ((_, payload), (_, off, _, _)) in sections.iter().zip(&placed) {
        out.resize(*off as usize, 0); // zero padding up to the aligned offset
        out.extend_from_slice(payload);
    }
    out
}

/// Sentinel for "no entry point" (empty index) in the META section.
const NO_ENTRY: u64 = u64::MAX;

impl HnswIndex {
    /// Serialize into the `SATOIDX1` sidecar bytes (see this module's
    /// source header for the layout). Round-trips exactly: the
    /// loaded index is byte-identical when re-serialized, answers every
    /// query identically, and continues the same level-sampler stream if
    /// inserts resume after the round-trip.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut meta = Vec::with_capacity(60);
        meta.extend_from_slice(&(self.dim as u32).to_le_bytes());
        meta.extend_from_slice(&(self.config.m as u32).to_le_bytes());
        meta.extend_from_slice(&(self.config.ef_construction as u32).to_le_bytes());
        meta.extend_from_slice(&(self.config.ef_search as u32).to_le_bytes());
        meta.extend_from_slice(&self.config.seed.to_le_bytes());
        meta.extend_from_slice(&self.rng_state.to_le_bytes());
        meta.extend_from_slice(&self.artifact_hash.to_le_bytes());
        meta.extend_from_slice(&(self.keys.len() as u64).to_le_bytes());
        meta.extend_from_slice(&self.entry.map_or(NO_ENTRY, u64::from).to_le_bytes());
        meta.extend_from_slice(&u32::from(self.max_level).to_le_bytes());

        let mut keys = Vec::with_capacity(self.keys.len() * 12);
        for k in &self.keys {
            keys.extend_from_slice(&k.table_id.to_le_bytes());
            keys.extend_from_slice(&k.col_idx.to_le_bytes());
        }
        let lvls = self.levels.clone();
        let mut vecs = Vec::with_capacity(self.vectors.len() * 4);
        for v in &self.vectors {
            vecs.extend_from_slice(&v.to_le_bytes());
        }
        let mut link = Vec::new();
        for per_node in &self.links {
            for per_level in per_node {
                link.extend_from_slice(&(per_level.len() as u32).to_le_bytes());
                for &nb in per_level {
                    link.extend_from_slice(&nb.to_le_bytes());
                }
            }
        }
        assemble(&[
            (SEC_META, meta),
            (SEC_KEYS, keys),
            (SEC_LVLS, lvls),
            (SEC_VECS, vecs),
            (SEC_LINK, link),
        ])
    }

    /// Rebuild an index from `SATOIDX1` bytes written by
    /// [`Self::to_bytes`]. Errors are typed, never panics: truncation,
    /// bad magic, version skew, per-section checksum mismatches, missing
    /// sections and structurally invalid graphs all map to their
    /// [`IndexError`] variant — and every graph invariant the search
    /// relies on (in-range neighbor ids, neighbors present at their
    /// level, a valid entry point) is re-validated here so a frame-valid
    /// but hostile sidecar cannot panic a query.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, IndexError> {
        let sections = Sections::parse(bytes)?;

        let mut r = ByteReader {
            bytes: sections.require(SEC_META)?,
            pos: 0,
        };
        let dim = r.u32("embedding dim")? as usize;
        let m = r.u32("m")? as usize;
        let ef_construction = r.u32("ef_construction")? as usize;
        let ef_search = r.u32("ef_search")? as usize;
        let seed = r.u64("seed")?;
        let rng_state = r.u64("rng state")?;
        let artifact_hash = r.u64("artifact hash")?;
        let count = usize::try_from(r.u64("node count")?)
            .ok()
            .filter(|&n| n <= u32::MAX as usize)
            .ok_or_else(|| IndexError::Corrupt("node count is out of range".to_string()))?;
        let entry_raw = r.u64("entry point")?;
        let max_level = r.u32("max level")?;
        r.finish("META")?;
        if dim == 0 || m < 2 || ef_construction == 0 || ef_search == 0 {
            return Err(IndexError::Corrupt(
                "index configuration is out of range".to_string(),
            ));
        }
        if max_level > u32::from(MAX_LEVEL) {
            return Err(IndexError::Corrupt("max level is out of range".to_string()));
        }

        let mut r = ByteReader {
            bytes: sections.require(SEC_KEYS)?,
            pos: 0,
        };
        let mut keys = Vec::with_capacity(count);
        let mut by_key = HashMap::with_capacity(count);
        for node in 0..count {
            let key = ColumnRef {
                table_id: r.u64("key table id")?,
                col_idx: r.u32("key column index")?,
            };
            if by_key.insert(key, node as u32).is_some() {
                return Err(IndexError::Corrupt(format!(
                    "duplicate column key (table {}, column {})",
                    key.table_id, key.col_idx
                )));
            }
            keys.push(key);
        }
        r.finish("KEYS")?;

        let mut r = ByteReader {
            bytes: sections.require(SEC_LVLS)?,
            pos: 0,
        };
        let mut levels = Vec::with_capacity(count);
        for _ in 0..count {
            let level = r.u8("node level")?;
            if level > MAX_LEVEL {
                return Err(IndexError::Corrupt(
                    "node level is out of range".to_string(),
                ));
            }
            levels.push(level);
        }
        r.finish("LVLS")?;

        let mut r = ByteReader {
            bytes: sections.require(SEC_VECS)?,
            pos: 0,
        };
        let n_floats = count
            .checked_mul(dim)
            .ok_or(IndexError::Truncated("embedding rows"))?;
        let vectors = r.f32_vec(n_floats, "embedding rows")?;
        r.finish("VECS")?;

        let mut r = ByteReader {
            bytes: sections.require(SEC_LINK)?,
            pos: 0,
        };
        let mut links = Vec::with_capacity(count);
        for node in 0..count {
            let mut per_node = Vec::with_capacity(levels[node] as usize + 1);
            for level in 0..=levels[node] {
                let len = r.u32("neighbor list length")? as usize;
                let mut per_level = Vec::with_capacity(len.min(4096));
                for _ in 0..len {
                    let nb = r.u32("neighbor id")?;
                    if nb as usize >= count || levels[nb as usize] < level {
                        return Err(IndexError::Corrupt(format!(
                            "node {node} links to {nb}, which does not exist at level {level}"
                        )));
                    }
                    per_level.push(nb);
                }
                per_node.push(per_level);
            }
            links.push(per_node);
        }
        r.finish("LINK")?;

        let entry = if entry_raw == NO_ENTRY {
            None
        } else {
            let e = u32::try_from(entry_raw)
                .ok()
                .filter(|&e| (e as usize) < count)
                .ok_or_else(|| IndexError::Corrupt("entry point is out of range".to_string()))?;
            if u32::from(levels[e as usize]) != max_level {
                return Err(IndexError::Corrupt(
                    "entry point does not live on the max level".to_string(),
                ));
            }
            Some(e)
        };
        if entry.is_none() && count != 0 {
            return Err(IndexError::Corrupt(
                "non-empty index without an entry point".to_string(),
            ));
        }

        Ok(HnswIndex {
            dim,
            config: HnswConfig {
                m,
                ef_construction,
                ef_search,
                seed,
            },
            artifact_hash,
            rng_state,
            vectors,
            keys,
            levels,
            links,
            entry,
            max_level: max_level as u8,
            by_key,
        })
    }

    /// Check that this index was built over `expected`'s embedding space
    /// (the predictor artifact's `content_hash`).
    pub fn verify_artifact(&self, expected: u64) -> Result<(), IndexError> {
        if self.artifact_hash != expected {
            return Err(IndexError::ArtifactMismatch {
                expected,
                found: self.artifact_hash,
            });
        }
        Ok(())
    }

    /// Write the sidecar to a file (see [`Self::to_bytes`]).
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), IndexError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Load an index sidecar from a file (see [`Self::from_bytes`]).
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, IndexError> {
        // Named injection point `index.load` (chaos builds only): an armed
        // Error presents as transient I/O, which is what the serving
        // layer's validated-load rollback path exists for.
        #[cfg(feature = "faults")]
        if sato_faults::fire("index.load", 0) {
            return Err(IndexError::Io(std::io::Error::other(
                "injected fault: index.load",
            )));
        }
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
    }

    /// Load an index sidecar *next to its artifact*: reject it with
    /// [`IndexError::ArtifactMismatch`] unless it was built over the
    /// embeddings of the predictor whose `content_hash` is
    /// `expected_artifact`. This is the deployment entry point — serving
    /// neighbors from another artifact's embedding space would be
    /// silently wrong, so the pairing is enforced here.
    pub fn load_sidecar(
        path: impl AsRef<std::path::Path>,
        expected_artifact: u64,
    ) -> Result<Self, IndexError> {
        let index = Self::load(path)?;
        index.verify_artifact(expected_artifact)?;
        Ok(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_index() -> HnswIndex {
        let mut index = HnswIndex::new(3, 0xdead_beef, HnswConfig::default());
        let mut state = 5u64;
        for i in 0..80u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = [
                (state >> 33) as f32 / 1e9,
                (i % 9) as f32,
                -((i % 4) as f32),
            ];
            index.insert(
                ColumnRef {
                    table_id: i,
                    col_idx: (i % 3) as u32,
                },
                &v,
            );
        }
        index
    }

    #[test]
    fn round_trip_is_byte_identical_and_resumes_the_sampler() {
        let mut index = sample_index();
        let bytes = index.to_bytes();
        let mut loaded = HnswIndex::from_bytes(&bytes).unwrap();
        assert_eq!(loaded.to_bytes(), bytes);
        assert_eq!(loaded.len(), index.len());
        assert_eq!(loaded.artifact_hash(), 0xdead_beef);
        let q = [0.1, 4.0, -1.0];
        assert_eq!(loaded.search_knn(&q, 5), index.search_knn(&q, 5));
        // Resuming inserts after the round-trip equals never having saved.
        let extra = ColumnRef {
            table_id: 900,
            col_idx: 0,
        };
        index.insert(extra, &[9.0, 9.0, 9.0]);
        loaded.insert(extra, &[9.0, 9.0, 9.0]);
        assert_eq!(loaded.to_bytes(), index.to_bytes());
    }

    #[test]
    fn empty_index_round_trips() {
        let index = HnswIndex::new(7, 42, HnswConfig::default());
        let loaded = HnswIndex::from_bytes(&index.to_bytes()).unwrap();
        assert!(loaded.is_empty());
        assert_eq!(loaded.dim(), 7);
        assert_eq!(loaded.search_knn(&[0.0; 7], 3), vec![]);
    }

    #[test]
    fn corrupted_sidecars_are_rejected_with_typed_errors() {
        let bytes = sample_index().to_bytes();
        for cut in [0, 4, 15, 40, bytes.len() - 1] {
            assert!(
                matches!(
                    HnswIndex::from_bytes(&bytes[..cut]),
                    Err(IndexError::Truncated(_) | IndexError::Checksum(_))
                ),
                "prefix of {cut} bytes was not rejected"
            );
        }
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            HnswIndex::from_bytes(&bad),
            Err(IndexError::BadMagic)
        ));
        let mut versioned = bytes.clone();
        versioned[8] = 9;
        assert!(matches!(
            HnswIndex::from_bytes(&versioned),
            Err(IndexError::UnsupportedVersion(9))
        ));
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xFF;
        assert!(matches!(
            HnswIndex::from_bytes(&flipped),
            Err(IndexError::Checksum(_))
        ));
    }

    #[test]
    fn artifact_pairing_is_enforced() {
        let index = sample_index();
        assert!(index.verify_artifact(0xdead_beef).is_ok());
        match index.verify_artifact(0x1234) {
            Err(IndexError::ArtifactMismatch { expected, found }) => {
                assert_eq!(expected, 0x1234);
                assert_eq!(found, 0xdead_beef);
            }
            other => panic!("expected ArtifactMismatch, got {other:?}"),
        }
    }

    #[test]
    fn sidecar_file_round_trip_and_pairing() {
        let index = sample_index();
        let dir = std::env::temp_dir().join("sato_index_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lake.satoidx");
        index.save(&path).unwrap();
        let loaded = HnswIndex::load_sidecar(&path, 0xdead_beef).unwrap();
        assert_eq!(loaded.len(), index.len());
        assert!(matches!(
            HnswIndex::load_sidecar(&path, 0x5678),
            Err(IndexError::ArtifactMismatch { .. })
        ));
        std::fs::remove_file(&path).ok();
    }
}
