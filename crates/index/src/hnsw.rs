//! The HNSW graph: deterministic construction, incremental insert, beam
//! search, and the exact brute-force oracle.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Identity of an indexed column: which table, which column position.
///
/// This is the unit the annotation service serves and the unit data
/// discovery returns — a search result is "column 2 of table 917".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ColumnRef {
    /// The owning table's id (`Table::id` / `TableCells::table_id`).
    pub table_id: u64,
    /// Zero-based column position within the table.
    pub col_idx: u32,
}

/// One search result: an indexed column and its squared-L2 distance from
/// the query embedding (ascending = more similar).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// The matched column.
    pub key: ColumnRef,
    /// Squared Euclidean distance from the query.
    pub distance: f32,
}

/// HNSW construction and search knobs.
///
/// The defaults are tuned for the serving embedding widths (48–128 dims)
/// at 10⁵–10⁷ columns: recall@10 ≥ 0.9 against the exact oracle at an
/// order of magnitude fewer distance evaluations than a scan. Raise
/// `ef_search` for recall, lower it for speed; `m`/`ef_construction`
/// trade build time and memory for graph quality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HnswConfig {
    /// Max links per node on levels above 0 (level 0 keeps `2 * m`).
    pub m: usize,
    /// Beam width while building: candidate pool per inserted node.
    pub ef_construction: usize,
    /// Default beam width while searching ([`HnswIndex::search_knn`]
    /// widens it to `k` when `k` is larger).
    pub ef_search: usize,
    /// Seed of the internal level sampler — fixes the graph byte-for-byte
    /// for a given insert sequence.
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        HnswConfig {
            m: 16,
            ef_construction: 128,
            ef_search: 64,
            seed: 0x5a70_1d45,
        }
    }
}

/// Heap entry with a *total* deterministic order: distance first
/// (`f32::total_cmp`), node id as the tie-break. The tie-break is what
/// makes equal-distance neighborhoods reproducible across builds and
/// makes ANN-vs-exact recall comparisons fair.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Cand {
    dist: f32,
    node: u32,
}

impl Eq for Cand {}

impl Ord for Cand {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then(self.node.cmp(&other.node))
    }
}

impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable visited-set bitmap for one search pass.
#[derive(Default)]
struct Visited {
    words: Vec<u64>,
}

impl Visited {
    fn reset(&mut self, n: usize) {
        self.words.clear();
        self.words.resize(n.div_ceil(64), 0);
    }

    /// Mark `i`; returns `true` if it was not yet marked.
    fn insert(&mut self, i: u32) -> bool {
        let (word, bit) = ((i / 64) as usize, i % 64);
        let fresh = self.words[word] & (1 << bit) == 0;
        self.words[word] |= 1 << bit;
        fresh
    }
}

/// Levels are geometrically distributed; 31 caps the graph height far
/// above anything reachable at billions of nodes (p ≈ m⁻³¹).
const MAX_LEVEL: usize = 31;

/// An HNSW index over fixed-width `f32` embeddings, keyed by
/// [`ColumnRef`] and stamped with the predictor artifact
/// (`SatoPredictor::content_hash`) whose embedding space it indexes.
///
/// See the [crate docs](crate) for the contract; see
/// [`crate::IndexError`] and [`HnswIndex::load_sidecar`] for the
/// `SATOIDX1` sidecar behavior.
pub struct HnswIndex {
    pub(crate) dim: usize,
    pub(crate) config: HnswConfig,
    pub(crate) artifact_hash: u64,
    /// splitmix64 state of the level sampler (serialized: resuming
    /// inserts after a round-trip continues the same stream).
    pub(crate) rng_state: u64,
    /// Row-major `len × dim` embedding storage.
    pub(crate) vectors: Vec<f32>,
    pub(crate) keys: Vec<ColumnRef>,
    /// Top level of each node.
    pub(crate) levels: Vec<u8>,
    /// `links[node][level]` = neighbor node ids (level ≤ `levels[node]`).
    pub(crate) links: Vec<Vec<Vec<u32>>>,
    pub(crate) entry: Option<u32>,
    pub(crate) max_level: u8,
    pub(crate) by_key: HashMap<ColumnRef, u32>,
}

/// Summary form: the full adjacency is megabytes at lake scale and never
/// what a debug line wants.
impl std::fmt::Debug for HnswIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HnswIndex")
            .field("dim", &self.dim)
            .field("len", &self.keys.len())
            .field("max_level", &self.max_level)
            .field("config", &self.config)
            .field(
                "artifact_hash",
                &format_args!("{:#018x}", self.artifact_hash),
            )
            .finish_non_exhaustive()
    }
}

impl HnswIndex {
    /// Create an empty index over `dim`-wide embeddings of the predictor
    /// artifact whose `content_hash` is `artifact_hash`.
    ///
    /// # Panics
    /// If `dim == 0`, `config.m < 2` or a beam width is 0 — these are
    /// build-time configuration bugs, not data errors.
    pub fn new(dim: usize, artifact_hash: u64, config: HnswConfig) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        assert!(config.m >= 2, "HNSW m must be at least 2");
        assert!(config.ef_construction >= 1, "ef_construction must be >= 1");
        assert!(config.ef_search >= 1, "ef_search must be >= 1");
        HnswIndex {
            dim,
            config,
            artifact_hash,
            rng_state: config.seed,
            vectors: Vec::new(),
            keys: Vec::new(),
            levels: Vec::new(),
            links: Vec::new(),
            entry: None,
            max_level: 0,
            by_key: HashMap::new(),
        }
    }

    /// Number of indexed columns.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when nothing has been indexed yet.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Embedding width this index was built for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The construction/search knobs this index was built with.
    pub fn config(&self) -> HnswConfig {
        self.config
    }

    /// `content_hash` of the predictor artifact whose embeddings are
    /// indexed here.
    pub fn artifact_hash(&self) -> u64 {
        self.artifact_hash
    }

    /// True if `key` has already been inserted.
    pub fn contains(&self, key: ColumnRef) -> bool {
        self.by_key.contains_key(&key)
    }

    /// The stored embedding of an indexed column, if present.
    pub fn vector_of(&self, key: ColumnRef) -> Option<&[f32]> {
        self.by_key.get(&key).map(|&n| self.vector(n))
    }

    /// Iterate over the indexed column identities, in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = ColumnRef> + '_ {
        self.keys.iter().copied()
    }

    /// Height of the layer hierarchy (top level of the entry node).
    pub fn top_level(&self) -> usize {
        if self.entry.is_some() {
            self.max_level as usize
        } else {
            0
        }
    }

    fn vector(&self, node: u32) -> &[f32] {
        let at = node as usize * self.dim;
        &self.vectors[at..at + self.dim]
    }

    fn dist_to(&self, query: &[f32], node: u32) -> f32 {
        sato_kernels::squared_l2(query, self.vector(node))
    }

    /// Max links kept per node at `level`.
    fn cap(&self, level: usize) -> usize {
        if level == 0 {
            self.config.m * 2
        } else {
            self.config.m
        }
    }

    fn sample_level(&mut self) -> usize {
        // splitmix64: tiny, seedable, and ours — determinism does not
        // hinge on an external RNG crate's stream stability.
        self.rng_state = self.rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let x = z ^ (z >> 31);
        // Uniform in (0, 1]; u = 1 maps to level 0.
        let u = ((x >> 11) as f64 + 1.0) * (1.0 / (1u64 << 53) as f64);
        let ml = 1.0 / (self.config.m as f64).ln();
        ((-u.ln() * ml) as usize).min(MAX_LEVEL)
    }

    /// Index one column. Returns `false` (and changes nothing, not even
    /// the level sampler) when `key` is already present — re-annotating a
    /// table or replaying a quarantined round must not duplicate nodes.
    ///
    /// # Panics
    /// If `vector.len() != self.dim()`.
    pub fn insert(&mut self, key: ColumnRef, vector: &[f32]) -> bool {
        assert_eq!(
            vector.len(),
            self.dim,
            "embedding width does not match the index"
        );
        if self.by_key.contains_key(&key) {
            return false;
        }
        // Named injection point `index.insert` (chaos builds only), keyed
        // by the owning table so a chaos test can poison one table's
        // indexing without touching the rest of the round.
        #[cfg(feature = "faults")]
        sato_faults::fire_panic("index.insert", key.table_id);

        let level = self.sample_level();
        let node = self.keys.len() as u32;
        self.vectors.extend_from_slice(vector);
        self.keys.push(key);
        self.levels.push(level as u8);
        self.links.push(vec![Vec::new(); level + 1]);
        self.by_key.insert(key, node);

        let Some(entry) = self.entry else {
            self.entry = Some(node);
            self.max_level = level as u8;
            return true;
        };

        let mut visited = Visited::default();
        let mut ep = Cand {
            dist: self.dist_to(vector, entry),
            node: entry,
        };
        // Greedy descent through the levels above the new node's.
        for l in ((level + 1)..=(self.max_level as usize)).rev() {
            ep = self.search_layer(vector, ep, 1, l, &mut visited)[0];
        }
        // Link on every level the new node lives on.
        for l in (0..=level.min(self.max_level as usize)).rev() {
            let found = self.search_layer(vector, ep, self.config.ef_construction, l, &mut visited);
            // New nodes start with m links on every level; only overflow
            // growth at level 0 may use the roomier 2m cap.
            let neighbors = self.select_neighbors(&found, self.config.m);
            for &nb in &neighbors {
                self.links[nb as usize][l].push(node);
                if self.links[nb as usize][l].len() > self.cap(l) {
                    self.shrink_links(nb, l);
                }
            }
            ep = found[0];
            self.links[node as usize][l] = neighbors;
        }
        if level > self.max_level as usize {
            self.max_level = level as u8;
            self.entry = Some(node);
        }
        true
    }

    /// Beam search one layer: returns up to `ef` candidates, ascending by
    /// `(distance, node)`. `ep` seeds the beam; `visited` is reset here.
    fn search_layer(
        &self,
        query: &[f32],
        ep: Cand,
        ef: usize,
        level: usize,
        visited: &mut Visited,
    ) -> Vec<Cand> {
        visited.reset(self.keys.len());
        visited.insert(ep.node);
        let mut frontier: BinaryHeap<Reverse<Cand>> = BinaryHeap::new();
        let mut best: BinaryHeap<Cand> = BinaryHeap::new();
        frontier.push(Reverse(ep));
        best.push(ep);
        while let Some(Reverse(c)) = frontier.pop() {
            let worst = *best.peek().expect("best is never empty");
            if best.len() >= ef && c > worst {
                break;
            }
            for &nb in &self.links[c.node as usize][level] {
                if !visited.insert(nb) {
                    continue;
                }
                let cand = Cand {
                    dist: self.dist_to(query, nb),
                    node: nb,
                };
                if best.len() < ef || cand < *best.peek().expect("non-empty") {
                    frontier.push(Reverse(cand));
                    best.push(cand);
                    if best.len() > ef {
                        best.pop();
                    }
                }
            }
        }
        best.into_sorted_vec()
    }

    /// The HNSW paper's neighbor-selection heuristic: walk candidates in
    /// ascending distance and keep one only if it is closer to the query
    /// than to every neighbor already kept — this spreads links across
    /// clusters instead of saturating them inside one, which is what keeps
    /// the graph navigable (and recall high) on clustered embeddings like
    /// per-semantic-type columns. Slots left over are backfilled with the
    /// nearest pruned candidates so nodes keep their full degree.
    fn select_neighbors(&self, candidates: &[Cand], m: usize) -> Vec<u32> {
        let mut selected: Vec<Cand> = Vec::with_capacity(m);
        let mut pruned: Vec<Cand> = Vec::new();
        for &c in candidates {
            if selected.len() >= m {
                break;
            }
            let cv = self.vector(c.node);
            let diverse = selected
                .iter()
                .all(|s| sato_kernels::squared_l2(cv, self.vector(s.node)) >= c.dist);
            if diverse {
                selected.push(c);
            } else {
                pruned.push(c);
            }
        }
        for &c in &pruned {
            if selected.len() >= m {
                break;
            }
            selected.push(c);
        }
        selected.into_iter().map(|c| c.node).collect()
    }

    /// Re-select `node`'s links at `level` after an overflow, using the
    /// same diversity heuristic relative to `node`'s own vector.
    fn shrink_links(&mut self, node: u32, level: usize) {
        let nv_start = node as usize * self.dim;
        let mut cands: Vec<Cand> = self.links[node as usize][level]
            .iter()
            .map(|&nb| Cand {
                dist: sato_kernels::squared_l2(
                    &self.vectors[nv_start..nv_start + self.dim],
                    self.vector(nb),
                ),
                node: nb,
            })
            .collect();
        cands.sort_unstable();
        let kept = self.select_neighbors(&cands, self.cap(level));
        self.links[node as usize][level] = kept;
    }

    /// Approximate k-nearest-neighbor search with the configured
    /// `ef_search` beam (widened to `k` when `k` is larger). Results are
    /// ascending by distance; fewer than `k` when the index is smaller.
    ///
    /// # Panics
    /// If `query.len() != self.dim()`.
    pub fn search_knn(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        self.search_knn_with_ef(query, k, self.config.ef_search)
    }

    /// [`Self::search_knn`] with an explicit beam width — the
    /// recall-vs-latency knob, per query.
    pub fn search_knn_with_ef(&self, query: &[f32], k: usize, ef: usize) -> Vec<Neighbor> {
        assert_eq!(
            query.len(),
            self.dim,
            "query width does not match the index"
        );
        let Some(entry) = self.entry else {
            return Vec::new();
        };
        if k == 0 {
            return Vec::new();
        }
        let mut visited = Visited::default();
        let mut ep = Cand {
            dist: self.dist_to(query, entry),
            node: entry,
        };
        for l in (1..=(self.max_level as usize)).rev() {
            ep = self.search_layer(query, ep, 1, l, &mut visited)[0];
        }
        let found = self.search_layer(query, ep, ef.max(k).max(1), 0, &mut visited);
        found
            .into_iter()
            .take(k)
            .map(|c| Neighbor {
                key: self.keys[c.node as usize],
                distance: c.dist,
            })
            .collect()
    }

    /// Exact k-nearest-neighbor search by brute-force scan — the recall
    /// oracle and the baseline every speedup is measured against. Same
    /// distance kernel, same `(distance, node)` tie-break as the graph
    /// search, so the two differ only by traversal.
    pub fn search_exact(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        assert_eq!(
            query.len(),
            self.dim,
            "query width does not match the index"
        );
        if k == 0 {
            return Vec::new();
        }
        let mut best: BinaryHeap<Cand> = BinaryHeap::with_capacity(k + 1);
        for node in 0..self.keys.len() as u32 {
            let cand = Cand {
                dist: self.dist_to(query, node),
                node,
            };
            if best.len() < k {
                best.push(cand);
            } else if cand < *best.peek().expect("non-empty") {
                best.push(cand);
                best.pop();
            }
        }
        best.into_sorted_vec()
            .into_iter()
            .map(|c| Neighbor {
                key: self.keys[c.node as usize],
                distance: c.dist,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random test vectors (splitmix64-driven, no
    /// dev-dependency on an RNG crate).
    fn test_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        (0..n)
            .map(|_| {
                (0..dim)
                    .map(|_| (next() >> 40) as f32 / (1u64 << 24) as f32 - 0.5)
                    .collect()
            })
            .collect()
    }

    fn key(i: usize) -> ColumnRef {
        ColumnRef {
            table_id: i as u64 / 4,
            col_idx: (i % 4) as u32,
        }
    }

    fn build(vectors: &[Vec<f32>], config: HnswConfig) -> HnswIndex {
        let mut index = HnswIndex::new(vectors[0].len(), 0xabc, config);
        for (i, v) in vectors.iter().enumerate() {
            assert!(index.insert(key(i), v));
        }
        index
    }

    #[test]
    fn empty_and_tiny_indexes_search_safely() {
        let index = HnswIndex::new(8, 1, HnswConfig::default());
        assert!(index.is_empty());
        assert_eq!(index.search_knn(&[0.0; 8], 5), vec![]);
        assert_eq!(index.search_exact(&[0.0; 8], 5), vec![]);

        let mut one = HnswIndex::new(2, 1, HnswConfig::default());
        one.insert(key(0), &[1.0, 2.0]);
        let hits = one.search_knn(&[1.0, 2.0], 3);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].key, key(0));
        assert_eq!(hits[0].distance, 0.0);
        assert_eq!(one.search_knn(&[1.0, 2.0], 0), vec![]);
    }

    #[test]
    fn insert_is_idempotent_per_key() {
        let vectors = test_vectors(50, 6, 7);
        let mut index = build(&vectors, HnswConfig::default());
        let before = index.len();
        assert!(!index.insert(key(3), &vectors[3]));
        assert_eq!(index.len(), before);
        assert!(index.contains(key(3)));
        assert_eq!(index.vector_of(key(3)).unwrap(), &vectors[3][..]);
        assert_eq!(index.vector_of(key(999)), None);
    }

    #[test]
    fn self_queries_return_themselves_first() {
        let vectors = test_vectors(120, 12, 11);
        let index = build(&vectors, HnswConfig::default());
        for (i, v) in vectors.iter().enumerate() {
            let hits = index.search_knn(v, 1);
            assert_eq!(hits[0].key, key(i), "query {i}");
            assert_eq!(hits[0].distance, 0.0);
        }
    }

    #[test]
    fn recall_at_10_is_high_on_random_clouds() {
        let vectors = test_vectors(400, 16, 23);
        let queries = test_vectors(40, 16, 99);
        let index = build(&vectors, HnswConfig::default());
        let mut hit = 0usize;
        let mut total = 0usize;
        for q in &queries {
            let exact: Vec<_> = index.search_exact(q, 10).iter().map(|n| n.key).collect();
            let ann = index.search_knn(q, 10);
            total += exact.len();
            hit += ann.iter().filter(|n| exact.contains(&n.key)).count();
        }
        let recall = hit as f64 / total as f64;
        assert!(recall >= 0.9, "recall@10 = {recall}");
    }

    #[test]
    fn same_seed_same_build_different_seed_still_searches() {
        let vectors = test_vectors(150, 8, 31);
        let a = build(&vectors, HnswConfig::default());
        let b = build(&vectors, HnswConfig::default());
        assert_eq!(
            a.to_bytes(),
            b.to_bytes(),
            "same seed must be byte-identical"
        );
        let other = build(
            &vectors,
            HnswConfig {
                seed: 777,
                ..HnswConfig::default()
            },
        );
        let q = &vectors[17];
        assert_eq!(other.search_knn(q, 1)[0].key, key(17));
    }

    #[test]
    fn exact_oracle_matches_a_naive_scan() {
        let vectors = test_vectors(90, 5, 3);
        let index = build(&vectors, HnswConfig::default());
        let q = test_vectors(1, 5, 1234).pop().unwrap();
        let mut naive: Vec<(f32, usize)> = vectors
            .iter()
            .enumerate()
            .map(|(i, v)| (sato_kernels::squared_l2(&q, v), i))
            .collect();
        naive.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let exact = index.search_exact(&q, 7);
        for (got, want) in exact.iter().zip(naive.iter()) {
            assert_eq!(got.key, key(want.1));
            assert_eq!(got.distance, want.0);
        }
    }
}
