//! HNSW approximate-nearest-neighbor index over Sato column embeddings.
//!
//! `examples/data_discovery.rs` motivated the workload: once every column
//! in a data lake carries a fixed-length embedding
//! (`SatoPredictor::column_embeddings`), joinable- and similar-column
//! queries are nearest-neighbor searches in that space. A linear scan is
//! O(N) in repository size; this crate makes it sublinear with a
//! Hierarchical Navigable Small World graph ([Malkov & Yashunin 2018],
//! the index family DeepJoin-style systems deploy at data-lake scale).
//!
//! Design points, in the order the rest of the workspace relies on them:
//!
//! * **Deterministic under seed.** Level assignment draws from an internal
//!   splitmix64 stream seeded by [`HnswConfig::seed`]; neighbor selection
//!   breaks distance ties by node id. Two builds over the same insert
//!   sequence are byte-identical, and the sampler state is serialized so
//!   *resuming* inserts after a save/load continues the same stream.
//! * **Incremental.** [`HnswIndex::insert`] indexes one column at a time,
//!   so the `sato-serve` batcher can feed embeddings into the index as
//!   corpora are annotated. Re-inserting an already-indexed
//!   [`ColumnRef`] is a no-op (idempotent), which is what crash-replay
//!   and quarantine re-serves in the service need.
//! * **Exact oracle.** [`HnswIndex::search_exact`] is the brute-force
//!   scan over the same distance kernel ([`sato_kernels::squared_l2`])
//!   with the same tie-break, so recall@k is measured against an oracle
//!   that differs only in graph traversal, not arithmetic.
//! * **Sidecar artifact.** [`HnswIndex::to_bytes`] writes the `SATOIDX1`
//!   binary format — the same magic/version/section-table/FNV-checksum
//!   framing as the `SATOART1` predictor artifact — stamped with the
//!   `SatoPredictor::content_hash` of the predictor whose embeddings it
//!   indexes. [`HnswIndex::load_sidecar`] rejects an index whose stamp
//!   does not match the artifact it is deployed next to: embeddings from
//!   different artifacts are different spaces, and serving across them
//!   silently returns garbage neighbors.
//!
//! [Malkov & Yashunin 2018]: https://arxiv.org/abs/1603.09320
//!
//! # Quick start
//!
//! ```
//! use sato_index::{ColumnRef, HnswConfig, HnswIndex};
//!
//! let mut index = HnswIndex::new(4, 0xfeed, HnswConfig::default());
//! for i in 0..100u64 {
//!     let v = [i as f32, (i % 7) as f32, 0.5, -(i as f32)];
//!     index.insert(ColumnRef { table_id: i, col_idx: 0 }, &v);
//! }
//! let hits = index.search_knn(&[3.0, 3.0, 0.5, -3.0], 5);
//! assert_eq!(hits.len(), 5);
//! assert_eq!(hits[0].key.table_id, 3); // its own neighborhood
//! let bytes = index.to_bytes();
//! let reloaded = HnswIndex::from_bytes(&bytes).unwrap();
//! assert_eq!(reloaded.search_knn(&[3.0, 3.0, 0.5, -3.0], 5), hits);
//! ```

#![warn(missing_docs)]

mod format;
mod hnsw;

pub use format::{INDEX_MAGIC, INDEX_VERSION};
pub use hnsw::{ColumnRef, HnswConfig, HnswIndex, Neighbor};

/// Typed errors for the `SATOIDX1` sidecar codec — never panics on
/// attacker-shaped bytes; every structural defect maps to a variant.
#[derive(Debug)]
pub enum IndexError {
    /// Reading or writing the sidecar file failed.
    Io(std::io::Error),
    /// The buffer ends before the named structure is complete.
    Truncated(&'static str),
    /// The buffer does not open with the `SATOIDX1` magic.
    BadMagic,
    /// The format version is not one this build can read.
    UnsupportedVersion(u32),
    /// The named section's payload does not match its stored checksum.
    Checksum(&'static str),
    /// A required section is absent from the section table.
    MissingSection(&'static str),
    /// The frame is valid but the decoded structure is not.
    Corrupt(String),
    /// The index was built over a different predictor artifact's
    /// embeddings than the one it is being loaded next to.
    ArtifactMismatch {
        /// The `content_hash` of the artifact being served.
        expected: u64,
        /// The `content_hash` stamped into the index sidecar.
        found: u64,
    },
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::Io(e) => write!(f, "index I/O error: {e}"),
            IndexError::Truncated(what) => write!(f, "index truncated at {what}"),
            IndexError::BadMagic => write!(f, "not a SATOIDX1 index (bad magic)"),
            IndexError::UnsupportedVersion(v) => {
                write!(f, "unsupported index format version {v}")
            }
            IndexError::Checksum(section) => {
                write!(f, "index section {section} failed its checksum")
            }
            IndexError::MissingSection(section) => {
                write!(f, "index is missing required section {section}")
            }
            IndexError::Corrupt(msg) => write!(f, "corrupt index: {msg}"),
            IndexError::ArtifactMismatch { expected, found } => write!(
                f,
                "index was built for artifact {found:016x}, not the served artifact {expected:016x}"
            ),
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IndexError {
    fn from(e: std::io::Error) -> Self {
        IndexError::Io(e)
    }
}
