//! # sato-bench
//!
//! The benchmark harness of the Sato reproduction: one binary per table and
//! figure of the paper's evaluation (see DESIGN.md §4 for the index), plus
//! Criterion micro-benchmarks of the hot paths.
//!
//! Every binary accepts the same command-line options:
//!
//! ```text
//! --tables N    number of synthetic tables in the corpus   (default 400)
//! --seed S      corpus / model seed                        (default 42)
//! --folds F     cross-validation folds                     (default 3)
//! --topics K    LDA topic count                            (default 64)
//! --epochs E    column-wise network training epochs        (default 40)
//! --trials T    repetitions for timing / permutation runs  (default 3)
//! --threads N   serving threads for parallel prediction    (default: CPU count)
//! --sampler S   serving topic sampler: dense | sparse | mh (default dense)
//! --fast        shrink everything for a quick smoke run
//! ```

#![warn(missing_docs)]

use sato::{SamplerKind, SatoConfig, SatoVariant};
use sato_tabular::corpus::default_corpus;
use sato_tabular::table::Corpus;

/// Common experiment options parsed from the command line.
#[derive(Debug, Clone)]
pub struct ExperimentOptions {
    /// Number of synthetic tables to generate.
    pub tables: usize,
    /// Corpus and model seed.
    pub seed: u64,
    /// Number of cross-validation folds.
    pub folds: usize,
    /// LDA topic count.
    pub topics: usize,
    /// Column-wise network epochs.
    pub epochs: usize,
    /// Trials for repeated measurements.
    pub trials: usize,
    /// Number of serving threads for parallel prediction benchmarks.
    pub threads: usize,
    /// Serving-time topic sampler (`--sampler dense|sparse|mh`).
    pub sampler: SamplerKind,
    /// Whether `--fast` was passed.
    pub fast: bool,
}

/// The machine's logical CPU count (1 when it cannot be determined).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            tables: 400,
            seed: 42,
            folds: 3,
            topics: 64,
            epochs: 40,
            trials: 3,
            threads: default_threads(),
            sampler: SamplerKind::Dense,
            fast: false,
        }
    }
}

impl ExperimentOptions {
    /// Parse options from an iterator of arguments (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        Self::parse_impl(args, false)
    }

    /// Like [`Self::parse`], but unknown options are skipped instead of
    /// panicking. Criterion benches run under `cargo bench`, which forwards
    /// harness flags (`--bench`, filter strings, …) that the experiment
    /// options must tolerate.
    pub fn parse_lenient<I: IntoIterator<Item = String>>(args: I) -> Self {
        Self::parse_impl(args, true)
    }

    fn parse_impl<I: IntoIterator<Item = String>>(args: I, lenient: bool) -> Self {
        let mut opts = ExperimentOptions::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let mut take_usize = |name: &str| -> usize {
                iter.next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("{name} expects an integer value"))
            };
            match arg.as_str() {
                "--tables" => opts.tables = take_usize("--tables"),
                "--seed" => opts.seed = take_usize("--seed") as u64,
                "--folds" => opts.folds = take_usize("--folds"),
                "--topics" => opts.topics = take_usize("--topics"),
                "--epochs" => opts.epochs = take_usize("--epochs"),
                "--trials" => opts.trials = take_usize("--trials"),
                "--threads" => opts.threads = take_usize("--threads").max(1),
                "--sampler" => {
                    opts.sampler = match iter.next().as_deref() {
                        Some("dense") => SamplerKind::Dense,
                        Some("sparse") | Some("sparse-alias") => SamplerKind::SparseAlias,
                        Some("mh") | Some("metropolis-hastings") => SamplerKind::MetropolisHastings,
                        other => panic!("--sampler expects dense|sparse|mh (got {other:?})"),
                    }
                }
                "--fast" => opts.fast = true,
                "--help" | "-h" if !lenient => {
                    println!(
                        "options: --tables N --seed S --folds F --topics K --epochs E --trials T --threads N --sampler dense|sparse|mh --fast"
                    );
                    std::process::exit(0);
                }
                other if !lenient => panic!("unknown option {other:?}"),
                _ => {}
            }
        }
        if opts.fast {
            opts.tables = opts.tables.min(120);
            opts.folds = opts.folds.min(2);
            opts.topics = opts.topics.min(16);
            opts.epochs = opts.epochs.min(15);
            opts.trials = opts.trials.min(2);
        }
        opts
    }

    /// Parse from the real process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parse from the real process arguments, tolerating harness flags
    /// (for Criterion benches).
    pub fn from_env_lenient() -> Self {
        Self::parse_lenient(std::env::args().skip(1))
    }

    /// Build the synthetic evaluation corpus `D` for these options.
    pub fn corpus(&self) -> Corpus {
        default_corpus(self.tables, self.seed)
    }

    /// Build the Sato configuration for these options.
    pub fn sato_config(&self) -> SatoConfig {
        let mut config = if self.fast {
            SatoConfig::fast()
        } else {
            SatoConfig::default()
        };
        config.seed = self.seed;
        config.lda.num_topics = self.topics;
        config.network.epochs = self.epochs;
        config
    }

    /// Short human-readable description printed at the top of every report.
    pub fn describe(&self) -> String {
        format!(
            "synthetic corpus: {} tables (seed {}), {} folds, {} topics, {} epochs",
            self.tables, self.seed, self.folds, self.topics, self.epochs
        )
    }
}

/// Print the standard experiment banner.
pub fn banner(title: &str, paper_ref: &str, opts: &ExperimentOptions) {
    println!("================================================================");
    println!("{title}");
    println!("reproduces: {paper_ref}");
    println!("{}", opts.describe());
    println!("================================================================");
}

/// The Table-1 row order of the paper.
pub fn table1_variants() -> [SatoVariant; 4] {
    [
        SatoVariant::Base,
        SatoVariant::Full,
        SatoVariant::SatoNoStruct,
        SatoVariant::SatoNoTopic,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_are_sensible() {
        let opts = ExperimentOptions::default();
        assert!(opts.tables >= 100);
        assert!(opts.folds >= 2);
        assert!(!opts.fast);
    }

    #[test]
    fn parsing_overrides_fields() {
        let opts = ExperimentOptions::parse(args(&[
            "--tables",
            "50",
            "--seed",
            "7",
            "--folds",
            "4",
            "--topics",
            "8",
            "--epochs",
            "3",
            "--trials",
            "2",
            "--threads",
            "6",
            "--sampler",
            "sparse",
        ]));
        assert_eq!(opts.tables, 50);
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.folds, 4);
        assert_eq!(opts.topics, 8);
        assert_eq!(opts.epochs, 3);
        assert_eq!(opts.trials, 2);
        assert_eq!(opts.threads, 6);
        assert_eq!(opts.sampler, SamplerKind::SparseAlias);
    }

    #[test]
    fn sampler_defaults_to_dense_and_parses_both_spellings() {
        assert_eq!(ExperimentOptions::default().sampler, SamplerKind::Dense);
        for (flag, kind) in [
            ("dense", SamplerKind::Dense),
            ("sparse", SamplerKind::SparseAlias),
            ("sparse-alias", SamplerKind::SparseAlias),
            ("mh", SamplerKind::MetropolisHastings),
            ("metropolis-hastings", SamplerKind::MetropolisHastings),
        ] {
            let opts = ExperimentOptions::parse(args(&["--sampler", flag]));
            assert_eq!(opts.sampler, kind, "flag {flag}");
        }
    }

    #[test]
    #[should_panic(expected = "--sampler expects dense|sparse|mh")]
    fn unknown_sampler_panics() {
        ExperimentOptions::parse(args(&["--sampler", "turbo"]));
    }

    #[test]
    fn threads_default_to_cpu_count_and_clamp_to_one() {
        assert_eq!(ExperimentOptions::default().threads, default_threads());
        assert!(default_threads() >= 1);
        let opts = ExperimentOptions::parse(args(&["--threads", "0"]));
        assert_eq!(opts.threads, 1, "--threads 0 clamps to 1");
    }

    #[test]
    fn lenient_parse_skips_harness_flags() {
        // `cargo bench` forwards flags like `--bench` and filter strings.
        let opts = ExperimentOptions::parse_lenient(args(&[
            "--bench",
            "prediction_latency",
            "--threads",
            "3",
        ]));
        assert_eq!(opts.threads, 3);
        assert_eq!(opts.tables, ExperimentOptions::default().tables);
    }

    #[test]
    fn fast_flag_shrinks_the_run() {
        let opts = ExperimentOptions::parse(args(&["--fast"]));
        assert!(opts.fast);
        assert!(opts.tables <= 120);
        assert!(opts.topics <= 16);
    }

    #[test]
    #[should_panic(expected = "unknown option")]
    fn unknown_option_panics() {
        ExperimentOptions::parse(args(&["--bogus"]));
    }

    #[test]
    fn corpus_and_config_follow_options() {
        let opts = ExperimentOptions::parse(args(&["--tables", "30", "--topics", "9"]));
        assert_eq!(opts.corpus().len(), 30);
        assert_eq!(opts.sato_config().lda.num_topics, 9);
        assert!(opts.describe().contains("30 tables"));
    }

    #[test]
    fn variants_cover_table1_rows() {
        let v = table1_variants();
        assert_eq!(v.len(), 4);
        assert_eq!(v[0], SatoVariant::Base);
        assert_eq!(v[1], SatoVariant::Full);
    }
}
