//! **Table 2** — average training and prediction time of Base vs Sato on the
//! multi-column dataset `D_mult`, with the column-wise ("Features") and CRF
//! ("Structured") training costs reported separately, over repeated trials.
//!
//! Prediction timing uses the frozen [`sato::SatoPredictor`] serving
//! artifact and reports per-table sequential, corpus-batched
//! (`predict_corpus_batched`) and multi-threaded (`--threads N`, default:
//! CPU count) serving throughput — the serving-side extension of the
//! paper's efficiency study.
//!
//! Besides the human-readable table, the run writes `BENCH_serving.json`
//! (all single-threaded measurements, so the numbers are valid on a 1-CPU
//! container): per-table vs batched serving throughput, single-pass vs
//! reference (per-alphabet-character) feature extraction µs/column (with a
//! per-group char/word/para/stat breakdown of the reference cost), the
//! `hashing` section — kernel-layer (prefix-extension) vs scalar
//! (length-major) n-gram token hashing µs/token — scratch (streaming) vs
//! reference (mega-string) LDA topic estimation µs/table, the `crf_decode`
//! section — kernel-layer (row-major `relax_max_argmax`) vs reference
//! (destination-major loop) Viterbi decode µs/chain — the `gibbs_sampler`
//! section — dense vs sparse/alias vs Metropolis–Hastings topic sampling
//! µs/table with the mean L1 theta drift of each approximate sampler — and
//! the `artifact` section — JSON vs SATOART1 binary predictor artifact size
//! and load time, plus a cold serve straight off the columnar (colstore)
//! corpus bytes — each with its speedup recorded from the same run.
//!
//! `--sampler {dense,sparse,mh}` selects the topic sampler the serving
//! throughput measurements run with (the sampler comparison section always
//! measures all three).

use sato::{SamplerKind, SatoModel, SatoPredictor, SatoVariant, TopicSampler};
use sato_bench::{banner, ExperimentOptions};
use sato_eval::metrics::mean_and_ci95;
use sato_eval::report::TextTable;
use sato_features::{reference, FeatureExtractor, FeatureScratch};
use sato_tabular::split::train_test_split;
use sato_tabular::table::Corpus;
use sato_topic::{TableIntentEstimator, TopicScratch};
use std::hint::black_box;
use std::time::Instant;

/// Micro-batch width (columns per forward pass) used for the batched
/// serving measurements.
const BATCH_COLS: usize = 256;

/// Repetitions per serving measurement; the best (minimum) time is
/// recorded, which is the standard way to strip scheduler noise from
/// millisecond-scale wall-clock timings on a shared machine.
const SERVING_REPS: usize = 5;

/// Best-of-[`SERVING_REPS`] wall-clock seconds of `f` (after one untimed
/// warm-up call whose result is returned for correctness checks).
fn best_of<T>(mut f: impl FnMut() -> T) -> (T, f64) {
    let warmup = f();
    let mut best = f64::INFINITY;
    for _ in 0..SERVING_REPS {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    (warmup, best)
}

/// Mean of a (possibly empty) sample of timings.
fn mean(v: &[f64]) -> f64 {
    v.iter().sum::<f64>() / v.len().max(1) as f64
}

fn main() {
    let opts = ExperimentOptions::from_env();
    banner(
        "Table 2: training / prediction time of Base vs Sato",
        "Table 2 of the Sato paper (Section 5.3, Efficiency)",
        &opts,
    );

    let corpus = opts.corpus().multi_column_only();
    let config = opts.sato_config();
    let split = train_test_split(&corpus, 0.2, opts.seed);
    println!(
        "training on {} multi-column tables, predicting {} held-out tables (serving with {} threads, {} sampler)",
        split.train.len(),
        split.test.len(),
        opts.threads,
        opts.sampler.name()
    );

    let mut rows = Vec::new();
    let mut full_predict_times = Vec::new();
    let mut full_batched_times = Vec::new();
    let mut full_predictor: Option<SatoPredictor> = None;
    for variant in [SatoVariant::Base, SatoVariant::Full] {
        let mut feature_times = Vec::new();
        let mut crf_times = Vec::new();
        let mut predict_times = Vec::new();
        let mut batched_times = Vec::new();
        let mut parallel_times = Vec::new();
        for trial in 0..opts.trials {
            eprintln!(
                "[table2] {} trial {}/{}",
                variant.name(),
                trial + 1,
                opts.trials
            );
            let mut cfg = config.clone();
            cfg.seed = opts.seed ^ (trial as u64);
            let model = SatoModel::train(&split.train, cfg, variant);
            feature_times.push(model.timings().columnwise_secs);
            crf_times.push(model.timings().crf_secs);

            // Freeze into the immutable serving artifact; all timing paths
            // share the same weights and the configured topic sampler.
            let predictor = model.into_predictor().with_sampler(opts.sampler);

            let (sequential, secs) = best_of(|| predictor.predict_corpus(&split.test));
            predict_times.push(secs);
            assert_eq!(sequential.len(), split.test.len());

            let (batched, secs) =
                best_of(|| predictor.predict_corpus_batched(&split.test, BATCH_COLS));
            batched_times.push(secs);
            assert_eq!(
                sequential, batched,
                "batched serving must reproduce per-table output exactly"
            );

            let (parallel, secs) =
                best_of(|| predictor.predict_corpus_parallel(&split.test, opts.threads));
            parallel_times.push(secs);
            assert_eq!(
                sequential, parallel,
                "parallel serving must reproduce sequential output exactly"
            );
            if variant == SatoVariant::Full {
                full_predictor = Some(predictor);
            }
        }
        if variant == SatoVariant::Full {
            full_predict_times.clone_from(&predict_times);
            full_batched_times.clone_from(&batched_times);
        }
        rows.push((
            variant,
            feature_times,
            crf_times,
            predict_times,
            batched_times,
            parallel_times,
        ));
    }

    let threads_header = format!("predict {}T [s]", opts.threads);
    let batched_header = format!("batched({BATCH_COLS}) [s]");
    let mut table = TextTable::new(&[
        "model",
        "train features [s]",
        "train CRF [s]",
        "predict 1T [s]",
        &batched_header,
        &threads_header,
        "per table [ms]",
    ]);
    let fmt = |values: &[f64]| {
        let (mean, ci) = mean_and_ci95(values);
        format!("{mean:.2} ±{ci:.2}")
    };
    for (variant, features, crf, predict, batched, parallel) in &rows {
        let per_table_ms: Vec<f64> = predict
            .iter()
            .map(|t| t * 1000.0 / split.test.len().max(1) as f64)
            .collect();
        let crf_cell = if *variant == SatoVariant::Base {
            "N/A".to_string()
        } else {
            fmt(crf)
        };
        table.add_row(vec![
            variant.name().to_string(),
            fmt(features),
            crf_cell,
            fmt(predict),
            fmt(batched),
            fmt(parallel),
            fmt(&per_table_ms),
        ]);
    }
    println!("\n{}", table.render());

    // Single-pass vs reference feature extraction, timed on the same held
    // out tables (µs per column, single-threaded), with the reference cost
    // broken down per feature group.
    let features_bench = time_feature_extraction(&split.test, &config.features, opts.trials);
    let (single_pass_us, baseline_us) = (features_bench.single_pass_us, features_bench.baseline_us);
    println!(
        "feature extraction: single-pass {single_pass_us:.1} µs/col vs reference {baseline_us:.1} µs/col ({:.2}x)",
        baseline_us / single_pass_us.max(1e-9)
    );
    println!(
        "  reference groups: char {:.1} / word {:.1} / para {:.1} / stat {:.1} µs/col",
        features_bench.char_us,
        features_bench.word_us,
        features_bench.para_us,
        features_bench.stat_us
    );

    // Kernel-layer (prefix-extension) vs scalar (length-major) n-gram token
    // hashing over every whitespace token of the held-out corpus.
    let (hashing_kernel_us, hashing_scalar_us) =
        time_hashing(&split.test, config.features.word_dim, opts.trials);
    println!(
        "n-gram hashing: kernel {hashing_kernel_us:.3} µs/token vs scalar {hashing_scalar_us:.3} µs/token ({:.2}x)",
        hashing_scalar_us / hashing_kernel_us.max(1e-12)
    );

    // Scratch (streaming encoder + reused Gibbs buffers) vs reference
    // (mega-string document + fresh buffers) topic estimation, on the Full
    // model's intent estimator over the same held-out tables (µs per table,
    // single-threaded).
    let intent = full_predictor
        .as_ref()
        .and_then(|p| p.columnwise().intent_estimator())
        .expect("the Full model carries an intent estimator");
    let (topic_scratch_us, topic_reference_us) =
        time_topic_estimation(intent, &split.test, opts.trials);
    println!(
        "topic estimation: scratch {topic_scratch_us:.1} µs/table vs reference {topic_reference_us:.1} µs/table ({:.2}x)",
        topic_reference_us / topic_scratch_us.max(1e-9)
    );

    // Kernel-layer vs reference Viterbi decode on the Full model's CRF,
    // over chains shaped like the held-out tables.
    let crf = full_predictor
        .as_ref()
        .and_then(|p| p.crf())
        .expect("the Full model carries a CRF");
    let (crf_kernel_us, crf_reference_us) = time_crf_decode(crf, &split.test, opts.trials);
    println!(
        "crf decode: kernel {crf_kernel_us:.1} µs/chain vs reference {crf_reference_us:.1} µs/chain ({:.2}x)",
        crf_reference_us / crf_kernel_us.max(1e-12)
    );

    // Dense vs sparse/alias vs Metropolis–Hastings Gibbs sampling on the
    // same intent estimator and held-out tables: µs/table for each sampler
    // plus the mean L1 theta drift each approximate sampler introduces.
    let gibbs = time_gibbs_samplers(intent, &split.test, opts.trials);
    println!(
        "gibbs sampler: dense {:.1} µs/table vs sparse-alias {:.1} µs/table ({:.2}x, L1 drift {:.4}) vs MH {:.1} µs/table ({:.2}x over sparse, L1 drift {:.4})",
        gibbs.dense_us,
        gibbs.sparse_us,
        gibbs.dense_us / gibbs.sparse_us.max(1e-9),
        gibbs.mean_l1_drift,
        gibbs.mh_us,
        gibbs.sparse_us / gibbs.mh_us.max(1e-9),
        gibbs.mh_l1_drift
    );

    // Artifact formats: JSON vs SATOART1 binary size and load time, plus a
    // cold serve straight off the columnar corpus bytes (frame decode
    // included in the timing).
    let artifact = time_artifacts(
        full_predictor
            .as_ref()
            .expect("the Full predictor survives the trial loop"),
        &split.test,
    );
    println!(
        "artifact: binary {} KiB loads in {:.0} µs vs JSON {} KiB in {:.0} µs ({:.2}x smaller, {:.2}x faster load)",
        artifact.binary_bytes / 1024,
        artifact.binary_load_us,
        artifact.json_bytes / 1024,
        artifact.json_load_us,
        artifact.json_bytes as f64 / artifact.binary_bytes.max(1) as f64,
        artifact.json_load_us / artifact.binary_load_us.max(1e-9),
    );
    println!(
        "colstore cold serve: {:.1} tables/s off {} KiB of columnar corpus (decode + predict, batch {BATCH_COLS})",
        artifact.colstore_tables_per_sec,
        artifact.colstore_bytes / 1024,
    );

    write_serving_json(
        &opts,
        &split.test,
        &full_predict_times,
        &full_batched_times,
        &features_bench,
        (hashing_kernel_us, hashing_scalar_us),
        topic_scratch_us,
        topic_reference_us,
        (crf_kernel_us, crf_reference_us),
        &gibbs,
        &artifact,
    );

    println!("paper reference (64-core machine, 26K training tables): Base 596.9s / N/A / 3.8s,");
    println!("Sato 678.5s / 366.9s / 5.2s; prediction overhead ≈ 0.2 ms per table.");
    println!(
        "Expected shape: Sato adds topic + CRF training cost; per-table prediction stays in the"
    );
    println!(
        "millisecond range, and the frozen predictor scales serving throughput with batching and --threads."
    );
}

/// Feature-extraction timings recorded in the `feature_extraction` section
/// of `BENCH_serving.json`: single-pass vs joint reference, plus the
/// reference cost of each feature group on its own (all mean µs/column).
struct FeatureBench {
    single_pass_us: f64,
    baseline_us: f64,
    char_us: f64,
    word_us: f64,
    para_us: f64,
    stat_us: f64,
}

/// Time single-pass (scratch-reusing) and reference (per-alphabet-character)
/// feature extraction over every column of `corpus`, plus each reference
/// group separately; returns mean µs/column for each, over `trials`
/// repetitions.
fn time_feature_extraction(
    corpus: &Corpus,
    features: &sato_features::FeatureConfig,
    trials: usize,
) -> FeatureBench {
    let extractor = FeatureExtractor::new(features.clone());
    let total_cols: usize = corpus.iter().map(|t| t.num_columns()).sum();
    let total_cols = total_cols.max(1);
    let mut single_pass = Vec::new();
    let mut baseline = Vec::new();
    let mut group_times = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for _ in 0..trials.max(1) {
        let mut scratch = FeatureScratch::new();
        let start = Instant::now();
        for table in corpus.iter() {
            for column in &table.columns {
                black_box(extractor.extract_column_with(black_box(column), &mut scratch));
            }
        }
        single_pass.push(start.elapsed().as_secs_f64() * 1e6 / total_cols as f64);

        let start = Instant::now();
        for table in corpus.iter() {
            for column in &table.columns {
                black_box(reference::char_features(black_box(column)));
                black_box(reference::word_features(column, features.word_dim));
                black_box(reference::para_features(column, features.para_dim));
                black_box(reference::stat_features(column));
            }
        }
        baseline.push(start.elapsed().as_secs_f64() * 1e6 / total_cols as f64);

        // The same four reference groups timed on their own, so the
        // breakdown and the joint baseline come from the same run.
        for (g, times) in group_times.iter_mut().enumerate() {
            let start = Instant::now();
            for table in corpus.iter() {
                for column in &table.columns {
                    match g {
                        0 => drop(black_box(reference::char_features(black_box(column)))),
                        1 => drop(black_box(reference::word_features(
                            column,
                            features.word_dim,
                        ))),
                        2 => drop(black_box(reference::para_features(
                            column,
                            features.para_dim,
                        ))),
                        _ => drop(black_box(reference::stat_features(column))),
                    }
                }
            }
            times.push(start.elapsed().as_secs_f64() * 1e6 / total_cols as f64);
        }
    }
    FeatureBench {
        single_pass_us: mean(&single_pass),
        baseline_us: mean(&baseline),
        char_us: mean(&group_times[0]),
        word_us: mean(&group_times[1]),
        para_us: mean(&group_times[2]),
        stat_us: mean(&group_times[3]),
    }
}

/// Time kernel-layer (prefix-extension `sato_kernels::Fnv1a`) vs scalar
/// (length-major window) n-gram hashing over every whitespace token of
/// every cell of `corpus`, with the standard Word-group space (`(3, 5)`
/// n-grams, `dim`-bucket output). Returns mean µs/token for each, over
/// `trials` repetitions; asserts bit-for-bit parity on the side.
fn time_hashing(corpus: &Corpus, dim: usize, trials: usize) -> (f64, f64) {
    use sato_features::hashing::{hash_token_into, hash_token_into_scalar};
    const NGRAMS: (usize, usize) = (3, 5);
    let seed = sato_features::word_embed::WORD_EMBED_SEED;
    let mut tokens: Vec<&str> = Vec::new();
    for table in corpus.iter() {
        for column in &table.columns {
            for cell in &column.values {
                tokens.extend(cell.split_whitespace());
            }
        }
    }
    let total = tokens.len().max(1) as f64;
    let mut chars = Vec::new();
    let (mut fast, mut slow) = (vec![0.0f32; dim], vec![0.0f32; dim]);
    for &token in tokens.iter().take(500) {
        hash_token_into(token, NGRAMS, seed, &mut chars, &mut fast);
        hash_token_into_scalar(token, NGRAMS, seed, &mut chars, &mut slow);
        assert_eq!(fast, slow, "kernel hashing drifted on token {token:?}");
    }
    let mut kernel_times = Vec::new();
    let mut scalar_times = Vec::new();
    for _ in 0..trials.max(1) {
        let start = Instant::now();
        for &token in &tokens {
            hash_token_into(black_box(token), NGRAMS, seed, &mut chars, &mut fast);
            black_box(&fast);
        }
        kernel_times.push(start.elapsed().as_secs_f64() * 1e6 / total);

        let start = Instant::now();
        for &token in &tokens {
            hash_token_into_scalar(black_box(token), NGRAMS, seed, &mut chars, &mut slow);
            black_box(&slow);
        }
        scalar_times.push(start.elapsed().as_secs_f64() * 1e6 / total);
    }
    (mean(&kernel_times), mean(&scalar_times))
}

/// Time kernel-layer (`viterbi_flat`, row-major `relax_max_argmax`) vs
/// reference (destination-major loop) Viterbi decoding on `crf`, over one
/// chain per table of `corpus` (chain length = column count) with
/// deterministic pseudo-random unary potentials. Returns mean µs/chain for
/// each, over `trials` repetitions; asserts identical decodes on the side.
fn time_crf_decode(crf: &sato_crf::LinearChainCrf, corpus: &Corpus, trials: usize) -> (f64, f64) {
    let k = crf.num_states();
    // Deterministic unary potentials; a tiny LCG keeps the bench
    // self-contained and repeatable.
    let mut state = 0x2545_f491_4f6c_dd1du64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) * 10.0 - 5.0
    };
    let chains: Vec<Vec<f64>> = corpus
        .iter()
        .map(|t| (0..t.num_columns().max(1) * k).map(|_| next()).collect())
        .collect();
    let total = chains.len().max(1) as f64;
    for unary in chains.iter().take(50) {
        assert_eq!(
            crf.viterbi_flat(unary),
            crf.viterbi_flat_reference(unary),
            "kernel Viterbi decode drifted"
        );
    }
    let mut kernel_times = Vec::new();
    let mut reference_times = Vec::new();
    for _ in 0..trials.max(1) {
        let start = Instant::now();
        for unary in &chains {
            black_box(crf.viterbi_flat(black_box(unary)));
        }
        kernel_times.push(start.elapsed().as_secs_f64() * 1e6 / total);

        let start = Instant::now();
        for unary in &chains {
            black_box(crf.viterbi_flat_reference(black_box(unary)));
        }
        reference_times.push(start.elapsed().as_secs_f64() * 1e6 / total);
    }
    (mean(&kernel_times), mean(&reference_times))
}

/// Time the scratch (streaming) and reference (mega-string) topic-estimation
/// paths over every table of `corpus`; returns mean µs/table for each, over
/// `trials` repetitions. Asserts bit-for-bit parity on the side.
fn time_topic_estimation(
    intent: &TableIntentEstimator,
    corpus: &Corpus,
    trials: usize,
) -> (f64, f64) {
    let tables = corpus.len().max(1) as f64;
    let mut scratch = TopicScratch::new();
    assert_eq!(
        intent.estimate_corpus_with(corpus, &TopicSampler::Dense, &mut scratch),
        intent.estimate_corpus(corpus),
        "scratch topic estimation must reproduce the reference exactly"
    );
    let mut scratch_times = Vec::new();
    let mut reference_times = Vec::new();
    for _ in 0..trials.max(1) {
        let start = Instant::now();
        black_box(intent.estimate_corpus_with(
            black_box(corpus),
            &TopicSampler::Dense,
            &mut scratch,
        ));
        scratch_times.push(start.elapsed().as_secs_f64() * 1e6 / tables);

        let start = Instant::now();
        black_box(intent.estimate_corpus(black_box(corpus)));
        reference_times.push(start.elapsed().as_secs_f64() * 1e6 / tables);
    }
    (mean(&scratch_times), mean(&reference_times))
}

/// Dense vs sparse/alias vs Metropolis–Hastings sampler comparison recorded
/// in the `gibbs_sampler` section of `BENCH_serving.json`.
struct GibbsSamplerBench {
    /// Mean µs/table of the dense sampler (scratch path).
    dense_us: f64,
    /// Mean µs/table of the sparse/alias sampler (scratch path; the alias
    /// tables are pre-built outside the timed loop, as at freeze time).
    sparse_us: f64,
    /// Mean (over tables) L1 distance between the dense and sparse thetas —
    /// the quantified approximation cost of the fast sampler.
    mean_l1_drift: f64,
    /// Mean µs/table of the Metropolis–Hastings cycle sampler (scratch
    /// path; reuses the same pre-built alias tables).
    mh_us: f64,
    /// Mean (over tables) L1 distance between the dense and MH thetas.
    mh_l1_drift: f64,
}

/// Mean (over tables) L1 distance between two theta corpora.
fn mean_l1(a: &[Vec<f32>], b: &[Vec<f32>]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            x.iter()
                .zip(y)
                .map(|(p, q)| (p - q).abs() as f64)
                .sum::<f64>()
        })
        .sum::<f64>()
        / a.len().max(1) as f64
}

/// Time the dense, sparse/alias and Metropolis–Hastings topic samplers over
/// every table of `corpus` through one warm scratch each, and measure the
/// mean L1 theta drift of each approximate sampler against dense; returns
/// mean µs/table per sampler, over `trials` repetitions.
fn time_gibbs_samplers(
    intent: &TableIntentEstimator,
    corpus: &Corpus,
    trials: usize,
) -> GibbsSamplerBench {
    let tables = corpus.len().max(1) as f64;
    let sparse = intent.build_sampler(SamplerKind::SparseAlias);
    let mh = intent.build_sampler(SamplerKind::MetropolisHastings);
    let mut scratch = TopicScratch::new();

    let dense_thetas = intent.estimate_corpus_with(corpus, &TopicSampler::Dense, &mut scratch);
    let sparse_thetas = intent.estimate_corpus_with(corpus, &sparse, &mut scratch);
    let mh_thetas = intent.estimate_corpus_with(corpus, &mh, &mut scratch);
    let mean_l1_drift = mean_l1(&dense_thetas, &sparse_thetas);
    let mh_l1_drift = mean_l1(&dense_thetas, &mh_thetas);

    let mut dense_times = Vec::new();
    let mut sparse_times = Vec::new();
    let mut mh_times = Vec::new();
    for _ in 0..trials.max(1) {
        let start = Instant::now();
        black_box(intent.estimate_corpus_with(
            black_box(corpus),
            &TopicSampler::Dense,
            &mut scratch,
        ));
        dense_times.push(start.elapsed().as_secs_f64() * 1e6 / tables);

        let start = Instant::now();
        black_box(intent.estimate_corpus_with(black_box(corpus), &sparse, &mut scratch));
        sparse_times.push(start.elapsed().as_secs_f64() * 1e6 / tables);

        let start = Instant::now();
        black_box(intent.estimate_corpus_with(black_box(corpus), &mh, &mut scratch));
        mh_times.push(start.elapsed().as_secs_f64() * 1e6 / tables);
    }
    GibbsSamplerBench {
        dense_us: mean(&dense_times),
        sparse_us: mean(&sparse_times),
        mean_l1_drift,
        mh_us: mean(&mh_times),
        mh_l1_drift,
    }
}

/// Artifact-format comparison recorded in the `artifact` section of
/// `BENCH_serving.json`.
struct ArtifactBench {
    /// Size of the JSON interchange artifact in bytes.
    json_bytes: usize,
    /// Size of the SATOART1 binary artifact in bytes.
    binary_bytes: usize,
    /// Mean µs to rebuild a predictor from the JSON artifact.
    json_load_us: f64,
    /// Mean µs to rebuild a predictor from the binary artifact.
    binary_load_us: f64,
    /// Size of the columnar (colstore) form of the held-out corpus in bytes.
    colstore_bytes: usize,
    /// Best-of wall-clock seconds of one cold serve straight off the
    /// colstore bytes (frame decode + batched prediction).
    colstore_serve_secs: f64,
    /// Tables per second of the cold colstore serve.
    colstore_tables_per_sec: f64,
}

/// Measure both predictor artifact formats (size + load time, asserting the
/// loaded predictors reproduce the source bit for bit) and a cold serve of
/// the held-out corpus from its columnar bytes.
fn time_artifacts(predictor: &SatoPredictor, test: &Corpus) -> ArtifactBench {
    let json = predictor.to_json();
    let binary = predictor.to_bytes();

    let (from_json, json_secs) =
        best_of(|| SatoPredictor::from_json(black_box(&json)).expect("JSON artifact loads"));
    let (from_binary, binary_secs) =
        best_of(|| SatoPredictor::from_bytes(black_box(&binary)).expect("binary artifact loads"));
    for table in test.iter().take(5) {
        let expected = predictor.predict(table);
        assert_eq!(expected, from_json.predict(table), "JSON load drifted");
        assert_eq!(expected, from_binary.predict(table), "binary load drifted");
    }

    let colstore_bytes = sato_tabular::colstore::corpus_to_bytes(test);
    let (served, colstore_serve_secs) = best_of(|| {
        predictor
            .predict_colstore_bytes(black_box(&colstore_bytes), BATCH_COLS)
            .expect("colstore corpus serves")
    });
    assert_eq!(
        served,
        predictor.predict_corpus_batched(test, BATCH_COLS),
        "colstore serving must reproduce the in-memory batched output exactly"
    );

    ArtifactBench {
        json_bytes: json.len(),
        binary_bytes: binary.len(),
        json_load_us: json_secs * 1e6,
        binary_load_us: binary_secs * 1e6,
        colstore_bytes: colstore_bytes.len(),
        colstore_serve_secs,
        colstore_tables_per_sec: test.len() as f64 / colstore_serve_secs.max(1e-12),
    }
}

/// Emit `BENCH_serving.json`: the machine-readable perf trajectory of the
/// serving path (all single-threaded numbers).
#[allow(clippy::too_many_arguments)]
fn write_serving_json(
    opts: &ExperimentOptions,
    test: &Corpus,
    per_table_secs: &[f64],
    batched_secs: &[f64],
    features: &FeatureBench,
    (hashing_kernel_us, hashing_scalar_us): (f64, f64),
    topic_scratch_us: f64,
    topic_reference_us: f64,
    (crf_kernel_us, crf_reference_us): (f64, f64),
    gibbs: &GibbsSamplerBench,
    artifact: &ArtifactBench,
) {
    let tables = test.len().max(1) as f64;
    let columns: usize = test.iter().map(|t| t.num_columns()).sum();
    let per_table = mean(per_table_secs);
    let batched = mean(batched_secs);
    let (single_pass_us, baseline_us) = (features.single_pass_us, features.baseline_us);
    let json = format!(
        "{{\n  \"schema\": \"sato-bench/serving-v1\",\n  \"single_threaded\": true,\n  \"model\": \"Sato (Full)\",\n  \"corpus\": {{ \"tables\": {}, \"columns\": {}, \"seed\": {}, \"trials\": {} }},\n  \"serving\": {{\n    \"batch_cols\": {BATCH_COLS},\n    \"sampler\": \"{}\",\n    \"per_table_secs\": {per_table:.6},\n    \"batched_secs\": {batched:.6},\n    \"per_table_tables_per_sec\": {:.2},\n    \"batched_tables_per_sec\": {:.2},\n    \"batched_speedup\": {:.3}\n  }},\n  \"feature_extraction\": {{\n    \"single_pass_us_per_column\": {single_pass_us:.2},\n    \"baseline_us_per_column\": {baseline_us:.2},\n    \"single_pass_speedup\": {:.3},\n    \"reference_groups_us_per_column\": {{\n      \"char\": {:.2},\n      \"word\": {:.2},\n      \"para\": {:.2},\n      \"stat\": {:.2}\n    }}\n  }},\n  \"hashing\": {{\n    \"kernel_us_per_token\": {hashing_kernel_us:.4},\n    \"scalar_us_per_token\": {hashing_scalar_us:.4},\n    \"hashing_speedup\": {:.3}\n  }},\n  \"topic_estimation\": {{\n    \"scratch_us_per_table\": {topic_scratch_us:.2},\n    \"reference_us_per_table\": {topic_reference_us:.2},\n    \"topic_speedup\": {:.3}\n  }},\n  \"crf_decode\": {{\n    \"kernel_us_per_chain\": {crf_kernel_us:.2},\n    \"reference_us_per_chain\": {crf_reference_us:.2},\n    \"crf_decode_speedup\": {:.3}\n  }},\n  \"gibbs_sampler\": {{\n    \"dense_us_per_table\": {:.2},\n    \"sparse_us_per_table\": {:.2},\n    \"sparse_speedup\": {:.3},\n    \"mean_l1_drift_vs_dense\": {:.4}\n  }},\n  \"mh_sampler\": {{\n    \"mh_us_per_table\": {:.2},\n    \"mh_speedup\": {:.3},\n    \"mh_speedup_vs_dense\": {:.3},\n    \"mh_l1_drift_vs_dense\": {:.4}\n  }},\n  \"artifact\": {{\n    \"json_bytes\": {},\n    \"binary_bytes\": {},\n    \"binary_size_ratio\": {:.3},\n    \"json_load_us\": {:.2},\n    \"binary_load_us\": {:.2},\n    \"binary_load_speedup\": {:.3},\n    \"colstore_bytes\": {},\n    \"colstore_cold_serve_secs\": {:.6},\n    \"colstore_cold_tables_per_sec\": {:.2}\n  }}\n}}\n",
        test.len(),
        columns,
        opts.seed,
        opts.trials,
        opts.sampler.name(),
        tables / per_table.max(1e-12),
        tables / batched.max(1e-12),
        per_table / batched.max(1e-12),
        baseline_us / single_pass_us.max(1e-9),
        features.char_us,
        features.word_us,
        features.para_us,
        features.stat_us,
        hashing_scalar_us / hashing_kernel_us.max(1e-12),
        topic_reference_us / topic_scratch_us.max(1e-9),
        crf_reference_us / crf_kernel_us.max(1e-12),
        gibbs.dense_us,
        gibbs.sparse_us,
        gibbs.dense_us / gibbs.sparse_us.max(1e-9),
        gibbs.mean_l1_drift,
        gibbs.mh_us,
        gibbs.sparse_us / gibbs.mh_us.max(1e-9),
        gibbs.dense_us / gibbs.mh_us.max(1e-9),
        gibbs.mh_l1_drift,
        artifact.json_bytes,
        artifact.binary_bytes,
        artifact.json_bytes as f64 / artifact.binary_bytes.max(1) as f64,
        artifact.json_load_us,
        artifact.binary_load_us,
        artifact.json_load_us / artifact.binary_load_us.max(1e-9),
        artifact.colstore_bytes,
        artifact.colstore_serve_secs,
        artifact.colstore_tables_per_sec,
    );
    std::fs::write("BENCH_serving.json", &json).expect("write BENCH_serving.json");
    println!("wrote BENCH_serving.json:\n{json}");
}
