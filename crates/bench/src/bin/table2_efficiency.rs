//! **Table 2** — average training and prediction time of Base vs Sato on the
//! multi-column dataset `D_mult`, with the column-wise ("Features") and CRF
//! ("Structured") training costs reported separately, over repeated trials.
//!
//! Prediction timing uses the frozen [`sato::SatoPredictor`] serving
//! artifact and reports both sequential and multi-threaded
//! (`--threads N`, default: CPU count) corpus throughput — the serving-side
//! extension of the paper's efficiency study.

use sato::{SatoModel, SatoVariant};
use sato_bench::{banner, ExperimentOptions};
use sato_eval::metrics::mean_and_ci95;
use sato_eval::report::TextTable;
use sato_tabular::split::train_test_split;
use std::time::Instant;

fn main() {
    let opts = ExperimentOptions::from_env();
    banner(
        "Table 2: training / prediction time of Base vs Sato",
        "Table 2 of the Sato paper (Section 5.3, Efficiency)",
        &opts,
    );

    let corpus = opts.corpus().multi_column_only();
    let config = opts.sato_config();
    let split = train_test_split(&corpus, 0.2, opts.seed);
    println!(
        "training on {} multi-column tables, predicting {} held-out tables (serving with {} threads)",
        split.train.len(),
        split.test.len(),
        opts.threads
    );

    let mut rows = Vec::new();
    for variant in [SatoVariant::Base, SatoVariant::Full] {
        let mut feature_times = Vec::new();
        let mut crf_times = Vec::new();
        let mut predict_times = Vec::new();
        let mut parallel_times = Vec::new();
        for trial in 0..opts.trials {
            eprintln!(
                "[table2] {} trial {}/{}",
                variant.name(),
                trial + 1,
                opts.trials
            );
            let mut cfg = config.clone();
            cfg.seed = opts.seed ^ (trial as u64);
            let model = SatoModel::train(&split.train, cfg, variant);
            feature_times.push(model.timings().columnwise_secs);
            crf_times.push(model.timings().crf_secs);

            // Freeze into the immutable serving artifact; both timing paths
            // share the same weights.
            let predictor = model.into_predictor();

            let start = Instant::now();
            let sequential = predictor.predict_corpus(&split.test);
            predict_times.push(start.elapsed().as_secs_f64());
            assert_eq!(sequential.len(), split.test.len());

            let start = Instant::now();
            let parallel = predictor.predict_corpus_parallel(&split.test, opts.threads);
            parallel_times.push(start.elapsed().as_secs_f64());
            assert_eq!(
                sequential, parallel,
                "parallel serving must reproduce sequential output exactly"
            );
        }
        rows.push((
            variant,
            feature_times,
            crf_times,
            predict_times,
            parallel_times,
        ));
    }

    let threads_header = format!("predict {}T [s]", opts.threads);
    let mut table = TextTable::new(&[
        "model",
        "train features [s]",
        "train CRF [s]",
        "predict 1T [s]",
        &threads_header,
        "speedup",
        "per table [ms]",
    ]);
    let fmt = |values: &[f64]| {
        let (mean, ci) = mean_and_ci95(values);
        format!("{mean:.2} ±{ci:.2}")
    };
    let mean = |values: &[f64]| values.iter().sum::<f64>() / values.len().max(1) as f64;
    for (variant, features, crf, predict, parallel) in &rows {
        let per_table_ms: Vec<f64> = predict
            .iter()
            .map(|t| t * 1000.0 / split.test.len().max(1) as f64)
            .collect();
        let crf_cell = if *variant == SatoVariant::Base {
            "N/A".to_string()
        } else {
            fmt(crf)
        };
        let speedup = mean(predict) / mean(parallel).max(1e-12);
        table.add_row(vec![
            variant.name().to_string(),
            fmt(features),
            crf_cell,
            fmt(predict),
            fmt(parallel),
            format!("{speedup:.1}x"),
            fmt(&per_table_ms),
        ]);
    }
    println!("\n{}", table.render());
    println!("paper reference (64-core machine, 26K training tables): Base 596.9s / N/A / 3.8s,");
    println!("Sato 678.5s / 366.9s / 5.2s; prediction overhead ≈ 0.2 ms per table.");
    println!(
        "Expected shape: Sato adds topic + CRF training cost; per-table prediction stays in the"
    );
    println!(
        "millisecond range, and the frozen predictor scales serving throughput with --threads."
    );
}
