//! **Table 2** — average training and prediction time of Base vs Sato on the
//! multi-column dataset `D_mult`, with the column-wise ("Features") and CRF
//! ("Structured") training costs reported separately, over repeated trials.

use sato::{SatoModel, SatoVariant};
use sato_bench::{banner, ExperimentOptions};
use sato_eval::metrics::mean_and_ci95;
use sato_eval::report::TextTable;
use sato_tabular::split::train_test_split;
use std::time::Instant;

fn main() {
    let opts = ExperimentOptions::from_env();
    banner(
        "Table 2: training / prediction time of Base vs Sato",
        "Table 2 of the Sato paper (Section 5.3, Efficiency)",
        &opts,
    );

    let corpus = opts.corpus().multi_column_only();
    let config = opts.sato_config();
    let split = train_test_split(&corpus, 0.2, opts.seed);
    println!(
        "training on {} multi-column tables, predicting {} held-out tables",
        split.train.len(),
        split.test.len()
    );

    let mut rows = Vec::new();
    for variant in [SatoVariant::Base, SatoVariant::Full] {
        let mut feature_times = Vec::new();
        let mut crf_times = Vec::new();
        let mut predict_times = Vec::new();
        for trial in 0..opts.trials {
            eprintln!(
                "[table2] {} trial {}/{}",
                variant.name(),
                trial + 1,
                opts.trials
            );
            let mut cfg = config.clone();
            cfg.seed = opts.seed ^ (trial as u64);
            let mut model = SatoModel::train(&split.train, cfg, variant);
            feature_times.push(model.timings().columnwise_secs);
            crf_times.push(model.timings().crf_secs);

            let start = Instant::now();
            let predictions = model.predict_corpus(&split.test);
            let elapsed = start.elapsed().as_secs_f64();
            assert_eq!(predictions.len(), split.test.len());
            predict_times.push(elapsed);
        }
        rows.push((variant, feature_times, crf_times, predict_times));
    }

    let mut table = TextTable::new(&[
        "model",
        "train features [s]",
        "train CRF [s]",
        "predict all [s]",
        "predict per table [ms]",
    ]);
    let fmt = |values: &[f64]| {
        let (mean, ci) = mean_and_ci95(values);
        format!("{mean:.2} ±{ci:.2}")
    };
    for (variant, features, crf, predict) in &rows {
        let per_table_ms: Vec<f64> = predict
            .iter()
            .map(|t| t * 1000.0 / split.test.len().max(1) as f64)
            .collect();
        let crf_cell = if *variant == SatoVariant::Base {
            "N/A".to_string()
        } else {
            fmt(crf)
        };
        table.add_row(vec![
            variant.name().to_string(),
            fmt(features),
            crf_cell,
            fmt(predict),
            fmt(&per_table_ms),
        ]);
    }
    println!("\n{}", table.render());
    println!("paper reference (64-core machine, 26K training tables): Base 596.9s / N/A / 3.8s,");
    println!("Sato 678.5s / 366.9s / 5.2s; prediction overhead ≈ 0.2 ms per table.");
    println!("Expected shape: Sato adds topic + CRF training cost; per-table prediction stays in the millisecond range.");
}
