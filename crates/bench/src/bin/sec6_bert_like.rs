//! **Section 6 (Using learned representations)** — a "featurisation-free"
//! single-column predictor (the BERT-fine-tuning analogue) compared against
//! the Sherlock baseline and the multi-column Sato model.

use sato::{
    BertLikeConfig, BertLikeModel, ColumnwiseInference, ColumnwiseTrainer, SatoModel, SatoVariant,
};
use sato_bench::{banner, ExperimentOptions};
use sato_eval::crossval::evaluate_model;
use sato_eval::metrics::Evaluation;
use sato_eval::report::TextTable;
use sato_tabular::split::train_test_split;
use sato_tabular::table::Corpus;

fn evaluate_columnwise(model: &dyn ColumnwiseInference, test: &Corpus) -> Evaluation {
    let mut gold = Vec::new();
    let mut pred = Vec::new();
    for table in test.iter().filter(|t| t.is_multi_column()) {
        gold.extend(table.labels.iter().copied());
        pred.extend(model.predict_types(table));
    }
    Evaluation::from_pairs(&gold, &pred)
}

fn main() {
    let opts = ExperimentOptions::from_env();
    banner(
        "Section 6: featurisation-free single-column model (BERT analogue) vs Sherlock vs Sato",
        "Section 6, 'Using learned representations', of the Sato paper",
        &opts,
    );

    let corpus = opts.corpus().multi_column_only();
    let config = opts.sato_config();
    let split = train_test_split(&corpus, 0.25, opts.seed);

    eprintln!("[sec6] training the BERT-like raw-text model ...");
    let mut bert = BertLikeModel::new(BertLikeConfig::from_sato(&config));
    bert.fit(&split.train);
    let bert_eval = evaluate_columnwise(&bert, &split.test);

    eprintln!("[sec6] training the Base (Sherlock) model ...");
    let base = SatoModel::train(&split.train, config.clone(), SatoVariant::Base);
    let (_, base_eval) = evaluate_model(&base, &split.test);

    eprintln!("[sec6] training the full Sato model ...");
    let full = SatoModel::train(&split.train, config, SatoVariant::Full);
    let (_, full_eval) = evaluate_model(&full, &split.test);

    let mut table = TextTable::new(&["model", "weighted F1 (D_mult)", "macro F1 (D_mult)"]);
    for (name, eval) in [
        ("Sherlock (Base)", &base_eval),
        ("BERT-like (raw text)", &bert_eval),
        ("Sato (multi-column)", &full_eval),
    ] {
        table.add_row(vec![
            name.to_string(),
            format!("{:.3}", eval.weighted_f1),
            format!("{:.3}", eval.macro_f1),
        ]);
    }
    println!("\n{}", table.render());
    println!(
        "paper reference: BERT reaches weighted F1 0.866 vs Sherlock's 0.852, while multi-column"
    );
    println!("Sato still outperforms both by a large margin.");
    println!("Expected shape: the featurisation-free model lands in the same range as Sherlock; Sato stays clearly ahead of both.");
}
