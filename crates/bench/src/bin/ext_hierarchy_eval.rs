//! **Extension (Section 6, type hierarchy)** — hierarchy-aware evaluation of
//! the Sato variants: exact 78-type accuracy, parent-category accuracy and
//! the near-miss rate (errors that stay inside the gold type's category),
//! using the ontology in `sato_tabular::hierarchy`.

use sato::SatoModel;
use sato_bench::{banner, table1_variants, ExperimentOptions};
use sato_eval::hierarchical::HierarchicalEvaluation;
use sato_eval::report::TextTable;
use sato_tabular::split::train_test_split;
use sato_tabular::types::SemanticType;

fn main() {
    let opts = ExperimentOptions::from_env();
    banner(
        "Extension: hierarchy-aware evaluation (exact vs parent-category accuracy)",
        "Section 6 of the Sato paper ('Exploiting type hierarchy through ontology', future work)",
        &opts,
    );

    let corpus = opts.corpus().multi_column_only();
    let config = opts.sato_config();
    let split = train_test_split(&corpus, 0.25, opts.seed);

    let mut table = TextTable::new(&[
        "model",
        "exact accuracy",
        "category accuracy",
        "near-miss rate",
    ]);
    for variant in table1_variants() {
        eprintln!("[hierarchy] training {} ...", variant.name());
        let model = SatoModel::train(&split.train, config.clone(), variant);
        let predictions = model.predict_corpus(&split.test);
        // Pair gold/predicted per table, skipping unlabelled tables
        // (empty-gold convention) so the two flat vectors stay aligned.
        let (gold, pred): (Vec<SemanticType>, Vec<SemanticType>) = predictions
            .iter()
            .filter(|p| !p.gold.is_empty())
            .flat_map(|p| p.gold.iter().copied().zip(p.predicted.iter().copied()))
            .unzip();
        let eval = HierarchicalEvaluation::from_pairs(&gold, &pred);
        table.add_row(vec![
            variant.name().to_string(),
            format!("{:.3}", eval.exact_accuracy),
            format!("{:.3}", eval.category_accuracy),
            format!("{:.3}", eval.near_miss_rate),
        ]);
        if variant == sato::SatoVariant::Full {
            println!("\nper-category exact accuracy of the full Sato model:");
            let mut per_cat = TextTable::new(&["category", "columns", "accuracy"]);
            for (cat, n, acc) in HierarchicalEvaluation::per_category_accuracy(&gold, &pred) {
                per_cat.add_row(vec![
                    cat.name().to_string(),
                    n.to_string(),
                    format!("{acc:.3}"),
                ]);
            }
            println!("{}", per_cat.render());
        }
    }
    println!("{}", table.render());
    println!(
        "Expected shape: category accuracy is well above exact accuracy for every model (most"
    );
    println!(
        "errors are near misses inside the gold category), and the gap narrows for Sato because"
    );
    println!("table context resolves exactly those within-category ambiguities (city vs birthPlace, ...).");
}
