//! **Figure 9** — permutation feature importance of the feature groups
//! (topic, word, char, par, rest) for Base, Sato_noTopic, Sato_noStruct and
//! the full Sato model, measured as the drop in macro / weighted F1 when one
//! group is shuffled across tables.

use sato::SatoModel;
use sato_bench::{banner, table1_variants, ExperimentOptions};
use sato_eval::permutation::permutation_importance;
use sato_eval::report::{ascii_bar, TextTable};
use sato_tabular::split::train_test_split;

fn main() {
    let opts = ExperimentOptions::from_env();
    banner(
        "Figure 9: permutation importance of the feature groups",
        "Figure 9 of the Sato paper (Section 5.4)",
        &opts,
    );

    let corpus = opts.corpus().multi_column_only();
    let config = opts.sato_config();
    let split = train_test_split(&corpus, 0.25, opts.seed);

    for variant in table1_variants() {
        eprintln!(
            "[fig9] training {} and permuting feature groups ...",
            variant.name()
        );
        let model = SatoModel::train(&split.train, config.clone(), variant);
        let report = permutation_importance(&model, &split.test, opts.trials, opts.seed ^ 0x919);

        println!(
            "\n{} (baseline macro F1 {:.3}, weighted F1 {:.3})",
            variant.name(),
            report.baseline_macro_f1,
            report.baseline_weighted_f1
        );
        let max_drop = report
            .groups
            .iter()
            .map(|g| g.macro_f1_drop.max(g.weighted_f1_drop))
            .fold(0.0f64, f64::max)
            .max(1e-9);
        let mut table = TextTable::new(&[
            "feature group",
            "macro F1 drop",
            "weighted F1 drop",
            "importance (macro)",
        ]);
        for g in &report.groups {
            table.add_row(vec![
                g.group.clone(),
                format!("{:.3}", g.macro_f1_drop),
                format!("{:.3}", g.weighted_f1_drop),
                ascii_bar(g.macro_f1_drop, max_drop, 30),
            ]);
        }
        println!("{}", table.render());
    }

    println!(
        "paper reference: Word and Char dominate for Base and Sato_noTopic; once the table topic"
    );
    println!(
        "is available (Sato_noStruct, Sato) the Topic group has comparable or greater importance,"
    );
    println!("especially for the macro-average F1 (i.e. for the rare types).");
}
