//! **Figure 6** — log-scale co-occurrence counts of selected semantic type
//! pairs appearing in the same table, and the most frequent pairs overall.

use sato_bench::{banner, ExperimentOptions};
use sato_eval::report::TextTable;
use sato_tabular::cooccurrence::{CooccurrenceMatrix, FIGURE6_TYPES};

fn main() {
    let opts = ExperimentOptions::from_env();
    banner(
        "Figure 6: semantic type co-occurrence (log counts)",
        "Figure 6 of the Sato paper (Section 4.1)",
        &opts,
    );

    let corpus = opts.corpus();
    let matrix = CooccurrenceMatrix::same_table(&corpus);

    println!("\nTop-15 most frequently co-occurring type pairs:");
    let mut top = TextTable::new(&["pair", "count", "log(1+count)"]);
    for (a, b, count) in matrix.top_pairs(15) {
        top.add_row(vec![
            format!("({}, {})", a.canonical_name(), b.canonical_name()),
            count.to_string(),
            format!("{:.2}", (1.0 + count as f64).ln()),
        ]);
    }
    println!("{}", top.render());

    println!("Heat-map values (log scale) for the selected Figure-6 types:");
    // Compact heat map: one row per type, one column per type, log counts
    // rounded to one decimal.
    let header: Vec<String> = std::iter::once("type".to_string())
        .chain(
            FIGURE6_TYPES
                .iter()
                .map(|t| t.canonical_name().chars().take(5).collect()),
        )
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut heat = TextTable::new(&header_refs);
    let sub = matrix.submatrix_log(FIGURE6_TYPES);
    for (i, ty) in FIGURE6_TYPES.iter().enumerate() {
        let mut row = vec![ty.canonical_name().to_string()];
        row.extend(sub[i].iter().map(|v| {
            if *v == 0.0 {
                ".".to_string()
            } else {
                format!("{v:.1}")
            }
        }));
        heat.add_row(row);
    }
    println!("{}", heat.render());
    println!("paper reference: the most frequent pairs include (city, state), (age, weight), (age, name), (code, description),");
    println!("and the diagonal is non-zero because tables can contain multiple columns of the same type.");
}
