//! **Figure 8** — per-type F1 with vs without structured (CRF) prediction:
//! (a) Sato vs Sato_noStruct and (b) Sato_noTopic vs Base, on the
//! multi-column dataset `D_mult`.

use sato::SatoVariant;
use sato_bench::{banner, ExperimentOptions};
use sato_eval::crossval::{cross_validate, CrossValResult};
use sato_eval::report::TextTable;

fn compare(title: &str, with_struct: &CrossValResult, without_struct: &CrossValResult) {
    let with = with_struct.per_type_f1(true);
    let without = without_struct.per_type_f1(true);
    let mut improved = 0usize;
    let mut equal = 0usize;
    let mut worse = 0usize;
    let mut rows: Vec<(String, f64, f64, f64)> = Vec::new();
    for ((ty, a), (_, b)) in with.iter().zip(&without) {
        if a > b {
            improved += 1;
        } else if (a - b).abs() < 1e-12 {
            equal += 1;
        } else {
            worse += 1;
        }
        rows.push((ty.canonical_name().to_string(), *a, *b, a - b));
    }
    rows.sort_by(|x, y| y.3.partial_cmp(&x.3).unwrap_or(std::cmp::Ordering::Equal));

    println!("\n{title}");
    println!(
        "types improved by structured prediction: {improved}, unchanged: {equal}, worse: {worse}"
    );
    let mut table = TextTable::new(&[
        "semantic type",
        &format!("F1 {}", with_struct.variant.name()),
        &format!("F1 {}", without_struct.variant.name()),
        "delta",
    ]);
    println!("largest gains:");
    for (name, a, b, d) in rows.iter().take(10) {
        table.add_row(vec![
            name.clone(),
            format!("{a:.3}"),
            format!("{b:.3}"),
            format!("{d:+.3}"),
        ]);
    }
    println!("{}", table.render());
    println!(
        "types hurt by structured prediction: {}",
        rows.iter().filter(|r| r.3 < 0.0).count()
    );
}

fn main() {
    let opts = ExperimentOptions::from_env();
    banner(
        "Figure 8: per-type F1 with vs without structured (CRF) prediction (D_mult)",
        "Figure 8 of the Sato paper (Section 5.2)",
        &opts,
    );
    let corpus = opts.corpus();
    let config = opts.sato_config();

    eprintln!("[fig8] cross-validating the four variants ...");
    let full = cross_validate(&corpus, opts.folds, &config, SatoVariant::Full);
    let no_struct = cross_validate(&corpus, opts.folds, &config, SatoVariant::SatoNoStruct);
    let no_topic = cross_validate(&corpus, opts.folds, &config, SatoVariant::SatoNoTopic);
    let base = cross_validate(&corpus, opts.folds, &config, SatoVariant::Base);

    compare(
        "(a) Sato vs Sato_noStruct (CRF on top of topic-aware prediction)",
        &full,
        &no_struct,
    );
    compare(
        "(b) Sato_noTopic vs Base (CRF on top of single-column prediction)",
        &no_topic,
        &base,
    );

    println!(
        "\npaper reference: structured prediction improved 59 types in (a) and 50 types in (b);"
    );
    println!("its per-type gains are smaller than the topic module's but it degrades fewer types,");
    println!("because modelling neighbouring columns 'salvages' overly aggressive predictions.");
}
