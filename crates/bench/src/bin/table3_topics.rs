//! **Table 3** — the most salient LDA topics, the semantic types most
//! associated with each of them, and a mechanical interpretation hint
//! (Section 5.5, Topic interpretation).

use sato_bench::{banner, ExperimentOptions};
use sato_eval::report::TextTable;
use sato_tabular::types::SemanticType;
use sato_topic::{analyze_topics, TableIntentEstimator};

/// A light-weight automatic "interpretation" of a topic: a coarse theme based
/// on which family of semantic types dominates its top types (the paper's
/// interpretations are manual; this hint plays the same role in the report).
fn interpret(types: &[(SemanticType, f64)]) -> &'static str {
    use SemanticType as T;
    let has =
        |candidates: &[SemanticType]| types.iter().filter(|(t, _)| candidates.contains(t)).count();
    let person = has(&[
        T::Name,
        T::Person,
        T::BirthPlace,
        T::BirthDate,
        T::Nationality,
        T::Sex,
        T::Age,
        T::Education,
        T::Religion,
        T::Affiliate,
    ]);
    let business = has(&[
        T::Company,
        T::Code,
        T::Symbol,
        T::Industry,
        T::Sales,
        T::Currency,
        T::Brand,
        T::Manufacturer,
        T::Product,
    ]);
    let geo = has(&[
        T::City,
        T::Country,
        T::State,
        T::County,
        T::Region,
        T::Location,
        T::Continent,
        T::Elevation,
        T::Area,
    ]);
    let sports = has(&[
        T::Team,
        T::TeamName,
        T::Club,
        T::Position,
        T::Rank,
        T::Result,
        T::Jockey,
        T::Weight,
        T::Plays,
    ]);
    let media = has(&[
        T::Artist,
        T::Album,
        T::Genre,
        T::Duration,
        T::Publisher,
        T::Isbn,
        T::Creator,
        T::Director,
        T::Collection,
    ]);
    let best = [
        (person, "person"),
        (business, "business"),
        (geo, "geography"),
        (sports, "sports"),
        (media, "media/publishing"),
    ]
    .into_iter()
    .max_by_key(|(count, _)| *count)
    .unwrap();
    if best.0 == 0 {
        "mixed"
    } else {
        best.1
    }
}

fn main() {
    let opts = ExperimentOptions::from_env();
    banner(
        "Table 3: salient LDA topics and their representative semantic types",
        "Table 3 of the Sato paper (Section 5.5)",
        &opts,
    );

    let corpus = opts.corpus();
    let config = opts.sato_config();
    eprintln!(
        "[table3] training LDA table-intent estimator ({} topics) ...",
        config.lda.num_topics
    );
    let estimator = TableIntentEstimator::fit(&corpus, config.lda.clone());
    let analysis = analyze_topics(&estimator, &corpus, 5);

    let mut table = TextTable::new(&[
        "topic",
        "saliency",
        "top-5 semantic types",
        "interpretation",
    ]);
    for summary in analysis.topics_by_saliency.iter().take(5) {
        let types: Vec<String> = summary
            .top_types
            .iter()
            .map(|(t, _)| t.canonical_name().to_string())
            .collect();
        table.add_row(vec![
            format!("#{}", summary.topic),
            format!("{:.3}", summary.saliency),
            types.join(", "),
            interpret(&summary.top_types).to_string(),
        ]);
    }
    println!("\n{}", table.render());
    println!(
        "paper reference: topic #192 (origin, nationality, country, continent, sex) -> person;"
    );
    println!("topic #99 (affiliate, class, person, notes, language) -> person; topic #264 (code,");
    println!("description, creator, company, symbol) -> business.");
    println!("Expected shape: the most salient topics align with coherent table themes (person / business / geography / ...).");
}
