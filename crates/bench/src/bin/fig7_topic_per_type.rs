//! **Figure 7** — per-type F1 with vs without topic-aware prediction:
//! (a) Sato vs Sato_noTopic and (b) Sato_noStruct vs Base, on the
//! multi-column dataset `D_mult`.

use sato::SatoVariant;
use sato_bench::{banner, ExperimentOptions};
use sato_eval::crossval::{cross_validate, CrossValResult};
use sato_eval::report::TextTable;

fn compare(title: &str, with_topic: &CrossValResult, without_topic: &CrossValResult) {
    let with = with_topic.per_type_f1(true);
    let without = without_topic.per_type_f1(true);
    let mut improved = 0usize;
    let mut equal = 0usize;
    let mut worse = 0usize;
    let mut rows: Vec<(String, f64, f64, f64)> = Vec::new();
    for ((ty, a), (_, b)) in with.iter().zip(&without) {
        if a > b {
            improved += 1;
        } else if (a - b).abs() < 1e-12 {
            equal += 1;
        } else {
            worse += 1;
        }
        rows.push((ty.canonical_name().to_string(), *a, *b, a - b));
    }
    rows.sort_by(|x, y| y.3.partial_cmp(&x.3).unwrap_or(std::cmp::Ordering::Equal));

    println!("\n{title}");
    println!(
        "types improved by the topic-aware model: {improved}, unchanged: {equal}, worse: {worse}"
    );
    let mut table = TextTable::new(&[
        "semantic type",
        &format!("F1 {}", with_topic.variant.name()),
        &format!("F1 {}", without_topic.variant.name()),
        "delta",
    ]);
    println!("largest gains:");
    for (name, a, b, d) in rows.iter().take(10) {
        table.add_row(vec![
            name.clone(),
            format!("{a:.3}"),
            format!("{b:.3}"),
            format!("{d:+.3}"),
        ]);
    }
    println!("{}", table.render());
    let mut losses = TextTable::new(&["semantic type", "F1 with", "F1 without", "delta"]);
    println!("largest losses:");
    for (name, a, b, d) in rows.iter().rev().take(5) {
        losses.add_row(vec![
            name.clone(),
            format!("{a:.3}"),
            format!("{b:.3}"),
            format!("{d:+.3}"),
        ]);
    }
    println!("{}", losses.render());
}

fn main() {
    let opts = ExperimentOptions::from_env();
    banner(
        "Figure 7: per-type F1 with vs without topic-aware prediction (D_mult)",
        "Figure 7 of the Sato paper (Section 5.1)",
        &opts,
    );
    let corpus = opts.corpus();
    let config = opts.sato_config();

    eprintln!("[fig7] cross-validating the four variants ...");
    let full = cross_validate(&corpus, opts.folds, &config, SatoVariant::Full);
    let no_topic = cross_validate(&corpus, opts.folds, &config, SatoVariant::SatoNoTopic);
    let no_struct = cross_validate(&corpus, opts.folds, &config, SatoVariant::SatoNoStruct);
    let base = cross_validate(&corpus, opts.folds, &config, SatoVariant::Base);

    compare(
        "(a) Sato vs Sato_noTopic (topic on top of structured prediction)",
        &full,
        &no_topic,
    );
    compare(
        "(b) Sato_noStruct vs Base (topic on top of single-column prediction)",
        &no_struct,
        &base,
    );

    println!("paper reference: topic-aware prediction improved 59/78 types in (a) and 64/78 types in (b),");
    println!("with the largest gains on rare types (affiliate, director, person, ranking, sales).");
    println!("Expected shape: a clear majority of types improve, and the biggest winners sit in the long tail.");
}
