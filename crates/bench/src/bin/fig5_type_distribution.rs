//! **Figure 5** — counts of the 78 semantic types in the dataset `D`,
//! showing the long-tailed distribution that motivates Sato's focus on
//! underrepresented types.

use sato_bench::{banner, ExperimentOptions};
use sato_eval::report::{ascii_bar, TextTable};

fn main() {
    let opts = ExperimentOptions::from_env();
    banner(
        "Figure 5: semantic type counts in D (long-tailed distribution)",
        "Figure 5 of the Sato paper (Section 4.1)",
        &opts,
    );

    let corpus = opts.corpus();
    let counts = corpus.type_counts();
    let max = counts.first().map(|(_, c)| *c).unwrap_or(1);

    let mut table = TextTable::new(&["rank", "semantic type", "columns", "distribution"]);
    for (rank, (ty, count)) in counts.iter().enumerate() {
        table.add_row(vec![
            (rank + 1).to_string(),
            ty.canonical_name().to_string(),
            count.to_string(),
            ascii_bar(*count as f64, max as f64, 40),
        ]);
    }
    println!("\n{}", table.render());

    let total: usize = counts.iter().map(|(_, c)| c).sum();
    let head: usize = counts.iter().take(10).map(|(_, c)| c).sum();
    let tail: usize = counts.iter().rev().take(39).map(|(_, c)| c).sum();
    println!("total labelled columns: {total}");
    println!(
        "top-10 types cover {:.1}% of columns; the bottom half of the types covers {:.1}%",
        100.0 * head as f64 / total as f64,
        100.0 * tail as f64 / total as f64
    );
    println!("Expected shape: a steep head (name, description, type, ...) and a long tail of rare types, as in the paper's Figure 5.");
}
