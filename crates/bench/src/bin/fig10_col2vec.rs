//! **Figure 10** — two-dimensional projections (t-SNE) of the column
//! embeddings produced by Sato_noStruct (topic-aware) and by the Sherlock
//! baseline, restricted to the organisation-like semantic types
//! (affiliate, teamName, family, manufacturer), together with a scalar
//! separation score per model (Section 5.6, Col2Vec).

use sato::{SatoModel, SatoVariant};
use sato_bench::{banner, ExperimentOptions};
use sato_eval::projection::{separation_ratio, tsne_2d, Point2, TsneConfig};
use sato_eval::report::TextTable;
use sato_tabular::split::train_test_split;
use sato_tabular::table::Corpus;
use sato_tabular::types::SemanticType;

/// The organisation-like types visualised in Figure 10.
const FIG10_TYPES: [SemanticType; 4] = [
    SemanticType::Affiliate,
    SemanticType::TeamName,
    SemanticType::Family,
    SemanticType::Manufacturer,
];

/// Collect (embedding, type) pairs of test columns with the Figure-10 types.
fn collect_embeddings(model: &SatoModel, test: &Corpus) -> (Vec<Vec<f32>>, Vec<SemanticType>) {
    let mut embeddings = Vec::new();
    let mut labels = Vec::new();
    for table in test.iter() {
        let embs = model.columnwise().column_embeddings(table);
        for (emb, label) in embs.into_iter().zip(&table.labels) {
            if FIG10_TYPES.contains(label) {
                embeddings.push(emb);
                labels.push(*label);
            }
        }
    }
    (embeddings, labels)
}

/// Mean pairwise separation across all type pairs in a 2-D layout.
fn mean_separation(points: &[Point2], labels: &[SemanticType]) -> f64 {
    let mut ratios = Vec::new();
    for (i, a) in FIG10_TYPES.iter().enumerate() {
        for b in FIG10_TYPES.iter().skip(i + 1) {
            let pa: Vec<Point2> = points
                .iter()
                .zip(labels)
                .filter(|(_, l)| *l == a)
                .map(|(p, _)| *p)
                .collect();
            let pb: Vec<Point2> = points
                .iter()
                .zip(labels)
                .filter(|(_, l)| *l == b)
                .map(|(p, _)| *p)
                .collect();
            if pa.len() >= 2 && pb.len() >= 2 {
                ratios.push(separation_ratio(&pa, &pb));
            }
        }
    }
    if ratios.is_empty() {
        0.0
    } else {
        ratios.iter().sum::<f64>() / ratios.len() as f64
    }
}

fn main() {
    let opts = ExperimentOptions::from_env();
    banner(
        "Figure 10: 2-D column embeddings (Col2Vec) of organisation-like types",
        "Figure 10 of the Sato paper (Section 5.6)",
        &opts,
    );

    let corpus = opts.corpus();
    let config = opts.sato_config();
    let split = train_test_split(&corpus, 0.25, opts.seed);

    let mut summary = TextTable::new(&[
        "model",
        "columns projected",
        "mean between/within separation",
    ]);
    for variant in [SatoVariant::SatoNoStruct, SatoVariant::Base] {
        eprintln!(
            "[fig10] training {} and projecting embeddings ...",
            variant.name()
        );
        let model = SatoModel::train(&split.train, config.clone(), variant);
        let (embeddings, labels) = collect_embeddings(&model, &split.test);
        if embeddings.len() < 8 {
            println!(
                "{}: only {} organisation-like columns in the held-out set — rerun with more tables",
                variant.name(),
                embeddings.len()
            );
            continue;
        }
        let points = tsne_2d(
            &embeddings,
            &TsneConfig {
                iterations: 250,
                perplexity: 10.0,
                ..TsneConfig::default()
            },
        );
        let sep = mean_separation(&points, &labels);
        summary.add_row(vec![
            variant.name().to_string(),
            embeddings.len().to_string(),
            format!("{sep:.2}"),
        ]);

        // Per-type centroid coordinates (a textual stand-in for the scatter plot).
        let mut centroids = TextTable::new(&["type", "n", "centroid x", "centroid y"]);
        for ty in FIG10_TYPES {
            let pts: Vec<&Point2> = points
                .iter()
                .zip(&labels)
                .filter(|(_, l)| **l == ty)
                .map(|(p, _)| p)
                .collect();
            if pts.is_empty() {
                continue;
            }
            let cx = pts.iter().map(|p| p[0]).sum::<f64>() / pts.len() as f64;
            let cy = pts.iter().map(|p| p[1]).sum::<f64>() / pts.len() as f64;
            centroids.add_row(vec![
                ty.canonical_name().to_string(),
                pts.len().to_string(),
                format!("{cx:.2}"),
                format!("{cy:.2}"),
            ]);
        }
        println!("\n{} t-SNE centroids:", variant.name());
        println!("{}", centroids.render());
    }
    println!("{}", summary.render());
    println!("paper reference: the Sato (topic-aware) embeddings separate the organisation-related types");
    println!("more cleanly than Sherlock's, whose clusters overlap (Figure 10a vs 10b).");
    println!("Expected shape: the Sato_noStruct separation score exceeds the Base score.");
}
