//! **Service load** — open-loop load test of the always-on annotation
//! service (`sato-serve`): a synthetic client submits single-table requests
//! at a fixed *offered* rate regardless of completions (open loop, so
//! queueing delay is visible instead of self-throttled away), sweeping the
//! offered load from well below to well above the calibrated single-core
//! serving capacity.
//!
//! Per load point the run records achieved throughput, the p50/p99/max
//! request latency from the service's own histogram, admission-control
//! rejections, deadline expiries and the mean micro-batch fill — the
//! saturation story of the serving stack in one sweep, written to
//! `BENCH_service.json`.
//!
//! Options: the standard experiment flags (`--tables`, `--seed`,
//! `--epochs`, `--fast`, `--sampler`, ...) plus `--smoke` (tiny model, very
//! short load windows — CI uses it to validate the harness and the JSON
//! shape, not the numbers) and `--chaos` (requires the `faults` feature):
//! at the 1x load point the run injects worker crashes, delayed rounds, a
//! recurring poison-pill table and repeated corrupt-artifact hot-swaps,
//! proving the fault-tolerance counters (`worker_restarts`, `quarantined`,
//! `swap_rollbacks`) under load while every served response stays
//! bit-identical and correctly artifact-tagged.

use sato::{SatoModel, SatoVariant};
use sato_bench::{banner, ExperimentOptions};
use sato_serve::{RequestOptions, SatoService, ServiceConfig, ServiceStats};
use sato_tabular::split::train_test_split;
use sato_tabular::table::Table;
use std::time::{Duration, Instant};

/// Target columns per shared micro-batch for the service under test.
const BATCH_COLS: usize = 32;

/// Admission bound (queued requests) for the service under test.
const QUEUE_DEPTH: usize = 64;

/// Per-request deadline: far above queue-drain time at moderate load, so it
/// only fires when the service is genuinely saturated.
const DEADLINE: Duration = Duration::from_millis(500);

/// Offered-load multipliers applied to the calibrated serving capacity.
const LOAD_FACTORS: [f64; 4] = [0.25, 0.5, 1.0, 2.0];

/// One measured point of the sweep.
struct LoadPoint {
    offered_rps: f64,
    submitted: u64,
    wall_secs: f64,
    stats: ServiceStats,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let chaos = args.iter().any(|a| a == "--chaos");
    #[cfg(not(feature = "faults"))]
    if chaos {
        eprintln!(
            "--chaos needs the fault-injection sites compiled in:\n  \
             cargo run --release -p sato-bench --features faults --bin service_load -- --chaos"
        );
        std::process::exit(2);
    }
    #[cfg(feature = "faults")]
    if chaos {
        quiet_injected_panics();
    }
    let mut opts = ExperimentOptions::parse_lenient(args);
    if smoke {
        // Smoke mode: the harness and JSON shape are under test, not the
        // numbers — shrink the model and the load windows to seconds total.
        opts.tables = opts.tables.min(60);
        opts.topics = opts.topics.min(8);
        opts.epochs = opts.epochs.min(5);
    }
    banner(
        "Service load: open-loop sweep of the always-on annotation service",
        "serving-scale extension of Table 2 (Section 5.3, Efficiency)",
        &opts,
    );

    let corpus = opts.corpus();
    let split = train_test_split(&corpus, 0.3, opts.seed);
    println!(
        "training Full model on {} tables; load pool: {} held-out tables ({} sampler)",
        split.train.len(),
        split.test.len(),
        opts.sampler.name()
    );
    let predictor = SatoModel::train(&split.train, opts.sato_config(), SatoVariant::Full)
        .into_predictor()
        .with_sampler(opts.sampler);

    // Calibrate single-core capacity with a closed-loop batched pass over
    // the pool — the sweep's offered rates are multiples of this.
    let start = Instant::now();
    let reference = predictor.predict_corpus_batched(&split.test, BATCH_COLS);
    let capacity_rps = split.test.len() as f64 / start.elapsed().as_secs_f64().max(1e-9);
    println!("calibrated closed-loop capacity: {capacity_rps:.0} tables/s (batch {BATCH_COLS})");

    let pool: Vec<Table> = split.test.tables.clone();
    let window = if smoke {
        Duration::from_millis(400)
    } else {
        Duration::from_secs(4)
    };

    // Chaos mode perturbs only the 1x point: a corrupt artifact file (a
    // torn write of the serving artifact) repeatedly tries to swap in
    // while injected faults crash, stall and poison the worker.
    let corrupt_path = std::env::temp_dir().join(format!(
        "sato_service_load_corrupt_{}.satoart",
        std::process::id()
    ));
    if chaos {
        let bytes = predictor.to_bytes();
        std::fs::write(&corrupt_path, &bytes[..bytes.len() / 2]).expect("write corrupt artifact");
    }

    let mut points = Vec::new();
    for factor in LOAD_FACTORS {
        let offered_rps = (capacity_rps * factor).max(1.0);
        let chaos_here = chaos && factor == 1.0;
        #[cfg(feature = "faults")]
        if chaos_here {
            arm_chaos(pool[0].id);
        }
        let point = run_load_point(
            &predictor,
            &reference,
            &pool,
            offered_rps,
            window,
            chaos_here.then_some(corrupt_path.as_path()),
        );
        #[cfg(feature = "faults")]
        if chaos_here {
            sato_faults::reset();
        }
        let s = &point.stats;
        println!(
            "offered {:>7.0} rps ({factor:>4.2}x{}): {:>7.0} rps served | p50 {:>8.0} µs | p99 {:>8.0} µs | fill {:>5.1} cols | admitted {} rejected {} expired {} | restarts {} quarantined {} rollbacks {}",
            point.offered_rps,
            if chaos_here { ", chaos" } else { "" },
            s.completed as f64 / point.wall_secs.max(1e-9),
            s.p50_us(),
            s.p99_us(),
            s.mean_batch_fill_cols(),
            s.admitted,
            s.rejected,
            s.expired,
            s.worker_restarts,
            s.quarantined,
            s.swap_rollbacks,
        );
        if chaos_here {
            assert!(
                s.worker_restarts >= 1 && s.quarantined >= 1 && s.swap_rollbacks >= 1,
                "the chaos point must actually exercise restart, quarantine and rollback"
            );
        }
        points.push(point);
    }
    if chaos {
        let _ = std::fs::remove_file(&corrupt_path);
    }

    write_service_json(&opts, smoke, chaos, capacity_rps, &points);
}

/// Arm the 1x-point chaos: two early worker crashes, a stall every 25th
/// round, and one recurring poison-pill table from the load pool.
#[cfg(feature = "faults")]
fn arm_chaos(poison_table_id: u64) {
    use sato_faults::FaultSpec;
    sato_faults::reset();
    sato_faults::set("serve.round_formation", FaultSpec::panic().times(2));
    sato_faults::set(
        "serve.round",
        FaultSpec::delay(Duration::from_micros(500)).every(25),
    );
    sato_faults::set(
        "core.feature_extract",
        FaultSpec::panic().with_key(poison_table_id),
    );
}

/// Injected panics are the chaos point's working fluid; keep their default
/// stderr backtraces out of the bench output (anything else still reports).
#[cfg(feature = "faults")]
fn quiet_injected_panics() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let message = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&'static str>().copied());
        if message.is_some_and(|m| m.contains("injected fault")) {
            return;
        }
        previous(info);
    }));
}

/// Run one open-loop load point: submit single-table requests at
/// `offered_rps` for `window`, then drain and snapshot the service's own
/// counters. Arrival times are scheduled from the wall clock (batched
/// arrivals, 1 ms pacing), so submission never waits on completions.
fn run_load_point(
    predictor: &sato::SatoPredictor,
    reference: &[sato::TablePrediction],
    pool: &[Table],
    offered_rps: f64,
    window: Duration,
    chaos_swap: Option<&std::path::Path>,
) -> LoadPoint {
    let service = SatoService::start(
        sato::SatoPredictor::from_bytes(&predictor.to_bytes()).expect("artifact round-trips"),
        ServiceConfig {
            batch_cols: BATCH_COLS,
            queue_depth: QUEUE_DEPTH,
            default_deadline: Some(DEADLINE),
            topic_memo_capacity: 0,
            index_on_annotate: None,
        },
    );
    let expected_hash = predictor.content_hash();
    let total = (offered_rps * window.as_secs_f64()).ceil().max(1.0) as u64;
    let start = Instant::now();
    let mut handles = Vec::with_capacity(total as usize);
    let mut submitted = 0u64;
    let mut last_swap = Instant::now();
    while submitted < total {
        let due = ((start.elapsed().as_secs_f64() * offered_rps) as u64).min(total);
        while submitted < due {
            let table = pool[submitted as usize % pool.len()].clone();
            // Rejections are the service's admission control doing its job
            // under overload; they are counted in the service stats.
            if let Ok(handle) = service.submit_table(table, RequestOptions::default()) {
                handles.push((submitted as usize % pool.len(), handle));
            }
            submitted += 1;
        }
        // Chaos: a corrupt artifact keeps trying to swap in mid-load; every
        // attempt must roll back without a single wrong-artifact response.
        if let Some(path) = chaos_swap {
            if last_swap.elapsed() >= Duration::from_millis(100) {
                last_swap = Instant::now();
                assert!(
                    service.load_artifact(path).is_err(),
                    "a corrupt artifact must never swap in"
                );
            }
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    // Drain: wait for every admitted request (open loop ends at the window;
    // the tail of the queue still gets served or expires — and under
    // chaos, poison-pill requests come back quarantined instead).
    for (pool_idx, handle) in handles {
        if let Ok(response) = handle.wait() {
            assert_eq!(
                response.artifact_hash, expected_hash,
                "every response must be tagged by the one artifact that served"
            );
            assert_eq!(
                response.predictions[0], reference[pool_idx],
                "served response must be bit-identical to the batched reference"
            );
        }
    }
    let wall_secs = start.elapsed().as_secs_f64();
    let stats = service.shutdown();
    LoadPoint {
        offered_rps,
        submitted,
        wall_secs,
        stats,
    }
}

/// Emit `BENCH_service.json`: the machine-readable saturation sweep of the
/// annotation service (all numbers from a single-worker service on one
/// core).
fn write_service_json(
    opts: &ExperimentOptions,
    smoke: bool,
    chaos: bool,
    capacity_rps: f64,
    points: &[LoadPoint],
) {
    let mut body = String::new();
    for (i, point) in points.iter().enumerate() {
        let s = &point.stats;
        body.push_str(&format!(
            "    {{\n      \"sampler\": \"{}\",\n      \"offered_rps\": {:.2},\n      \"window_secs\": {:.3},\n      \"submitted\": {},\n      \"admitted\": {},\n      \"rejected\": {},\n      \"expired\": {},\n      \"completed\": {},\n      \"throughput_rps\": {:.2},\n      \"p50_us\": {:.1},\n      \"p99_us\": {:.1},\n      \"max_us\": {},\n      \"mean_latency_us\": {:.1},\n      \"batches\": {},\n      \"mean_batch_fill_cols\": {:.2},\n      \"worker_restarts\": {},\n      \"quarantined\": {},\n      \"swap_rollbacks\": {}\n    }}{}\n",
            opts.sampler.name(),
            point.offered_rps,
            point.wall_secs,
            point.submitted,
            s.admitted,
            s.rejected,
            s.expired,
            s.completed,
            s.completed as f64 / point.wall_secs.max(1e-9),
            s.p50_us(),
            s.p99_us(),
            s.latency.max_us,
            s.latency.mean_us(),
            s.batches,
            s.mean_batch_fill_cols(),
            s.worker_restarts,
            s.quarantined,
            s.swap_rollbacks,
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    let json = format!(
        "{{\n  \"schema\": \"sato-bench/service-v1\",\n  \"single_threaded\": true,\n  \"model\": \"Sato (Full)\",\n  \"smoke\": {smoke},\n  \"chaos\": {chaos},\n  \"sampler\": \"{}\",\n  \"service\": {{\n    \"batch_cols\": {BATCH_COLS},\n    \"queue_depth\": {QUEUE_DEPTH},\n    \"deadline_ms\": {},\n    \"calibrated_capacity_rps\": {capacity_rps:.2}\n  }},\n  \"load_points\": [\n{body}  ]\n}}\n",
        opts.sampler.name(),
        DEADLINE.as_millis(),
    );
    std::fs::write("BENCH_service.json", &json).expect("write BENCH_service.json");
    println!("wrote BENCH_service.json:\n{json}");
}
