//! **Table 4** — qualitative examples of tables whose column-wise
//! mispredictions are corrected by the structured (CRF) prediction step:
//! (a) Base errors corrected by Sato_noTopic, and (b) Sato_noStruct errors
//! corrected by the full Sato model (Section 5.7).

use sato::{SatoModel, SatoVariant};
use sato_bench::{banner, ExperimentOptions};
use sato_eval::report::TextTable;
use sato_tabular::split::train_test_split;
use sato_tabular::table::Corpus;
use sato_tabular::types::SemanticType;

fn labels_to_string(labels: &[SemanticType]) -> String {
    labels
        .iter()
        .map(|t| t.canonical_name())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Collect up to `limit` test tables where `without` is wrong on at least one
/// column and `with` fixes every column `without` got wrong (and is not worse
/// anywhere else).
/// (table id, gold labels, prediction without structure, prediction with structure).
type CorrectedExample = (u64, Vec<SemanticType>, Vec<SemanticType>, Vec<SemanticType>);

fn corrected_examples(
    test: &Corpus,
    without: &SatoModel,
    with: &SatoModel,
    limit: usize,
) -> Vec<CorrectedExample> {
    let mut out = Vec::new();
    for table in test.iter().filter(|t| t.is_multi_column()) {
        let before = without.predict(table);
        let after = with.predict(table);
        let wrong_before = before
            .iter()
            .zip(&table.labels)
            .filter(|(p, g)| p != g)
            .count();
        let wrong_after = after
            .iter()
            .zip(&table.labels)
            .filter(|(p, g)| p != g)
            .count();
        if wrong_before > 0 && wrong_after < wrong_before {
            out.push((table.id, table.labels.clone(), before, after));
            if out.len() >= limit {
                break;
            }
        }
    }
    out
}

fn print_panel(
    title: &str,
    column_model: &str,
    structured_model: &str,
    examples: &[CorrectedExample],
) {
    println!("\n{title}");
    let mut table = TextTable::new(&[
        "table id",
        "true columns",
        &format!("{column_model} (w/o structured)"),
        &format!("{structured_model} (w/ structured)"),
    ]);
    for (id, gold, before, after) in examples {
        table.add_row(vec![
            id.to_string(),
            labels_to_string(gold),
            labels_to_string(before),
            labels_to_string(after),
        ]);
    }
    if table.is_empty() {
        println!("(no corrected tables found in this held-out sample — rerun with more tables)");
    } else {
        println!("{}", table.render());
    }
}

fn main() {
    let opts = ExperimentOptions::from_env();
    banner(
        "Table 4: mispredictions corrected by structured (CRF) prediction",
        "Table 4 of the Sato paper (Section 5.7, Qualitative analysis)",
        &opts,
    );

    let corpus = opts.corpus().multi_column_only();
    let config = opts.sato_config();
    let split = train_test_split(&corpus, 0.25, opts.seed);

    eprintln!("[table4] training Base / Sato_noTopic / Sato_noStruct / Sato ...");
    let base = SatoModel::train(&split.train, config.clone(), SatoVariant::Base);
    let no_topic = SatoModel::train(&split.train, config.clone(), SatoVariant::SatoNoTopic);
    let no_struct = SatoModel::train(&split.train, config.clone(), SatoVariant::SatoNoStruct);
    let full = SatoModel::train(&split.train, config, SatoVariant::Full);

    let panel_a = corrected_examples(&split.test, &base, &no_topic, 5);
    print_panel(
        "(a) Corrected tables from Base predictions",
        "Base",
        "Sato_noTopic",
        &panel_a,
    );

    let panel_b = corrected_examples(&split.test, &no_struct, &full, 5);
    print_panel(
        "(b) Corrected tables from Sato_noStruct predictions",
        "Sato_noStruct",
        "Sato",
        &panel_b,
    );

    println!("\npaper reference: e.g. table #4575 (symbol, company, isbn, sales) — Base predicted");
    println!(
        "(symbol, name, isbn, duration) and the CRF corrected company/sales via the co-occurring"
    );
    println!(
        "symbol/isbn columns. Expected shape: the CRF repairs columns whose values are ambiguous"
    );
    println!("in isolation but whose neighbours disambiguate them.");
}
