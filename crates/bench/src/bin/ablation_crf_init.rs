//! **Ablation** — initialisation of the CRF pairwise potentials: the paper
//! initialises them with the column co-occurrence matrix of a held-out set
//! (Section 4.3). This bench compares that choice against a zero
//! initialisation and against using the raw (untrained) co-occurrence
//! potentials without any CRF training.

use sato::{
    unary_from_proba, ColumnwiseInference, ColumnwiseModel, ColumnwiseTrainer, SatoVariant,
};
use sato_bench::{banner, ExperimentOptions};
use sato_crf::{train_crf, CrfExample, LinearChainCrf};
use sato_eval::metrics::Evaluation;
use sato_eval::report::TextTable;
use sato_tabular::cooccurrence::CooccurrenceMatrix;
use sato_tabular::split::train_test_split;
use sato_tabular::table::Corpus;
use sato_tabular::types::{SemanticType, NUM_TYPES};

fn crf_examples(model: &ColumnwiseModel, corpus: &Corpus) -> Vec<CrfExample> {
    corpus
        .iter()
        .filter(|t| t.is_multi_column() && t.is_labelled())
        .map(|table| CrfExample {
            unary: model
                .predict_proba(table)
                .iter()
                .map(|p| unary_from_proba(p))
                .collect(),
            labels: table.labels.iter().map(|l| l.index()).collect(),
        })
        .collect()
}

fn evaluate_crf(model: &ColumnwiseModel, crf: &LinearChainCrf, test: &Corpus) -> Evaluation {
    let mut gold = Vec::new();
    let mut pred = Vec::new();
    for table in test.iter().filter(|t| t.is_multi_column()) {
        let unary: Vec<Vec<f64>> = model
            .predict_proba(table)
            .iter()
            .map(|p| unary_from_proba(p))
            .collect();
        let decoded = crf.viterbi(&unary);
        gold.extend(table.labels.iter().copied());
        pred.extend(
            decoded
                .into_iter()
                .map(|i| SemanticType::from_index(i).unwrap()),
        );
    }
    Evaluation::from_pairs(&gold, &pred)
}

fn main() {
    let opts = ExperimentOptions::from_env();
    banner(
        "Ablation: CRF pairwise-potential initialisation",
        "Section 4.3 design choice of the Sato paper (co-occurrence initialisation of the CRF)",
        &opts,
    );

    let corpus = opts.corpus().multi_column_only();
    let config = opts.sato_config();
    let split = train_test_split(&corpus, 0.25, opts.seed);

    eprintln!("[ablation] training the topic-aware column-wise model ...");
    let mut columnwise = ColumnwiseModel::topic_aware(config.clone());
    columnwise.fit(&split.train);
    let examples = crf_examples(&columnwise, &split.train);
    let cooc_init: Vec<f64> = CooccurrenceMatrix::adjacent_columns(&split.train)
        .log_matrix()
        .iter()
        .map(|v| 0.1 * v)
        .collect();
    let crf_config = config.crf.to_crf_config(opts.seed);

    eprintln!("[ablation] training CRF variants ...");
    let (crf_cooc, _) = train_crf(
        LinearChainCrf::with_pairwise(NUM_TYPES, cooc_init.clone()),
        &examples,
        &crf_config,
    );
    let (crf_zero, _) = train_crf(LinearChainCrf::new(NUM_TYPES), &examples, &crf_config);
    let crf_untrained = LinearChainCrf::with_pairwise(NUM_TYPES, cooc_init);
    let crf_identity = LinearChainCrf::new(NUM_TYPES);

    let mut table = TextTable::new(&["CRF variant", "weighted F1 (D_mult)", "macro F1 (D_mult)"]);
    for (name, crf) in [
        ("no CRF (column-wise argmax)", &crf_identity),
        ("co-occurrence init, untrained", &crf_untrained),
        ("zero init, trained (paper ablation)", &crf_zero),
        ("co-occurrence init, trained (Sato)", &crf_cooc),
    ] {
        let eval = evaluate_crf(&columnwise, crf, &split.test);
        table.add_row(vec![
            name.to_string(),
            format!("{:.3}", eval.weighted_f1),
            format!("{:.3}", eval.macro_f1),
        ]);
    }
    println!("\n{}", table.render());
    println!("Expected shape (Sato variant = {}): training the CRF helps over the plain column-wise argmax,", SatoVariant::Full.name());
    println!("and the co-occurrence initialisation is at least as good as starting from zeros.");
}
