//! **Table 1** — performance comparison of Base, Sato, Sato_noStruct and
//! Sato_noTopic across the datasets `D_mult` (multi-column tables only) and
//! `D` (all tables), reported as macro-average and support-weighted F1 with
//! 95% confidence intervals over cross-validation folds and relative
//! improvements over the Base (Sherlock) model.

use sato_bench::{banner, table1_variants, ExperimentOptions};
use sato_eval::crossval::cross_validate;
use sato_eval::report::{fmt_mean_ci, fmt_mean_ci_with_improvement, TextTable};

fn main() {
    let opts = ExperimentOptions::from_env();
    banner(
        "Table 1: macro / support-weighted F1 of the Sato variants",
        "Table 1 of Zhang et al., 'Sato: Contextual Semantic Type Detection in Tables' (VLDB 2020)",
        &opts,
    );

    let corpus = opts.corpus();
    let config = opts.sato_config();
    println!(
        "dataset D: {} tables ({} columns); D_mult: {} tables",
        corpus.len(),
        corpus.num_columns(),
        corpus.multi_column_only().len()
    );

    let results: Vec<_> = table1_variants()
        .iter()
        .map(|&variant| {
            eprintln!("[table1] cross-validating {} ...", variant.name());
            (
                variant,
                cross_validate(&corpus, opts.folds, &config, variant),
            )
        })
        .collect();

    let base_macro_mult = results[0].1.macro_f1(true).0;
    let base_weighted_mult = results[0].1.weighted_f1(true).0;
    let base_macro_all = results[0].1.macro_f1(false).0;
    let base_weighted_all = results[0].1.weighted_f1(false).0;

    let mut table = TextTable::new(&[
        "model",
        "D_mult macro F1",
        "D_mult weighted F1",
        "D macro F1",
        "D weighted F1",
    ]);
    for (variant, result) in &results {
        let is_base = *variant == sato::SatoVariant::Base;
        let fmt = |mean_ci: (f64, f64), baseline: f64| {
            if is_base {
                fmt_mean_ci(mean_ci)
            } else {
                fmt_mean_ci_with_improvement(mean_ci, baseline)
            }
        };
        table.add_row(vec![
            variant.name().to_string(),
            fmt(result.macro_f1(true), base_macro_mult),
            fmt(result.weighted_f1(true), base_weighted_mult),
            fmt(result.macro_f1(false), base_macro_all),
            fmt(result.weighted_f1(false), base_weighted_all),
        ]);
    }
    println!("\n{}", table.render());
    println!(
        "paper reference values (D_mult): Base 0.642 / 0.879, Sato 0.735 (+14.4%) / 0.925 (+5.3%),"
    );
    println!(
        "Sato_noStruct 0.713 (+11.0%) / 0.909 (+3.5%), Sato_noTopic 0.681 (+6.6%) / 0.907 (+3.2%)."
    );
    println!(
        "Expected shape: every Sato variant beats Base; the full model is best; macro-F1 gains exceed weighted-F1 gains."
    );
}
