//! **Index discovery** — data-lake discovery at scale over the HNSW column
//! index (`sato-index`): annotate-and-embed a ≥100k-column synthetic lake,
//! build the index incrementally as the corpus streams through the batched
//! embedding path, and answer joinable/similar-column queries in sublinear
//! time.
//!
//! The run reports the three numbers that matter for the index:
//!
//! - **build rate** — columns/s through embed + incremental `insert`
//!   (embedding time and graph time are also broken out separately),
//! - **query throughput** — `search_knn` queries/s against an exact
//!   brute-force scan (`search_exact`, the recall oracle) over the same
//!   vectors, and the resulting `speedup_vs_bruteforce`,
//! - **recall@10** — fraction of the exact top-10 the ANN search returns,
//!   averaged over held-out query columns that are *not* in the index.
//!
//! It also round-trips the index through its `SATOIDX1` sidecar file to
//! time save/load, then writes everything to `BENCH_index.json`.
//!
//! Options: the standard experiment flags (`--tables`, `--seed`, `--fast`,
//! ...) plus `--lake-cols N` (target lake size in columns, default 100000)
//! and `--smoke` (tiny lake, assertions off — CI uses it to validate the
//! harness and the JSON shape, not the numbers). The standard run asserts
//! recall@10 ≥ 0.9 at ≥ 10x query speedup over brute force.

use sato::{SatoModel, SatoVariant, ServingScratch};
use sato_bench::{banner, ExperimentOptions};
use sato_index::{ColumnRef, HnswConfig, HnswIndex};
use sato_tabular::corpus::default_corpus;
use sato_tabular::table::Corpus;
use std::time::{Duration, Instant};

/// Columns per micro-batch of the streaming embedding pass.
const BATCH_COLS: usize = 256;

/// Neighbours per query (the paper-style joinability question is "which
/// columns embed closest to this one?").
const K: usize = 10;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut lake_cols_target: usize = 100_000;
    if let Some(pos) = args.iter().position(|a| a == "--lake-cols") {
        lake_cols_target = args
            .get(pos + 1)
            .and_then(|v| v.parse().ok())
            .expect("--lake-cols expects an integer value");
    }
    let opts = ExperimentOptions::parse_lenient(args);
    if smoke {
        lake_cols_target = lake_cols_target.min(1_500);
    }
    banner(
        "Index discovery: HNSW ANN search over column embeddings",
        "data-lake discovery extension of Section 5.4 (column embeddings / col2vec)",
        &opts,
    );

    // Train the embedding model once; the lake is only ever *served*.
    let train = opts.corpus();
    println!(
        "training Full model on {} tables ({} sampler)",
        train.len(),
        opts.sampler.name()
    );
    let predictor = SatoModel::train(&train, opts.sato_config(), SatoVariant::Full)
        .into_predictor()
        .with_sampler(opts.sampler);
    let dim = predictor.embedding_dim();

    // The lake: fresh synthetic tables (disjoint seed), trimmed at table
    // granularity to the first prefix reaching the target column count.
    let lake = generate_lake(lake_cols_target, opts.seed ^ 0x1a4e);
    let lake_cols: usize = lake.iter().map(|t| t.num_columns()).sum();
    println!(
        "lake: {} tables / {lake_cols} columns (target {lake_cols_target}), embedding dim {dim}",
        lake.len()
    );

    // Incremental build: stream the lake through the batched embedding
    // path, inserting each column as it is embedded — exactly what the
    // serve-side index-on-annotate hook does, minus the service.
    let config = HnswConfig::default();
    let mut index = HnswIndex::new(dim, predictor.content_hash(), config);
    let mut scratch = ServingScratch::new();
    let mut insert_time = Duration::ZERO;
    let build_start = Instant::now();
    predictor.embed_corpus_batched_with(
        &lake,
        BATCH_COLS,
        &mut scratch,
        |table_id, col_idx, embedding| {
            let t = Instant::now();
            index.insert(ColumnRef { table_id, col_idx }, embedding);
            insert_time += t.elapsed();
        },
    );
    let build_time = build_start.elapsed();
    let embed_time = build_time.saturating_sub(insert_time);
    assert_eq!(index.len(), lake_cols, "every lake column must be indexed");
    let build_cols_per_s = lake_cols as f64 / build_time.as_secs_f64().max(1e-9);
    println!(
        "build: {lake_cols} columns in {:.2}s ({build_cols_per_s:.0} cols/s; embed {:.2}s, graph {:.2}s, top level {})",
        build_time.as_secs_f64(),
        embed_time.as_secs_f64(),
        insert_time.as_secs_f64(),
        index.top_level(),
    );

    // Queries: embeddings of held-out tables *not* in the index — the
    // discovery scenario where a newly arrived table asks which lake
    // columns it could join against.
    let query_tables = default_corpus(if smoke { 20 } else { 120 }, opts.seed ^ 0x9e37);
    let mut queries: Vec<Vec<f32>> = Vec::new();
    for table in query_tables.iter() {
        let rows = predictor.column_embeddings_into(table, &mut scratch);
        for r in 0..rows.rows() {
            queries.push(rows.row(r).to_vec());
        }
    }
    println!("queries: {} held-out columns, k = {K}", queries.len());

    // Exact oracle: brute-force scan over the same vectors.
    let bf_start = Instant::now();
    let exact: Vec<Vec<ColumnRef>> = queries
        .iter()
        .map(|q| {
            index
                .search_exact(q, K)
                .into_iter()
                .map(|n| n.key)
                .collect()
        })
        .collect();
    let bf_time = bf_start.elapsed();
    let bf_qps = queries.len() as f64 / bf_time.as_secs_f64().max(1e-9);

    // ANN: repeat the query set for a stable timing window, score recall
    // on the first pass (the search is deterministic, so every pass
    // returns the same neighbours).
    let reps = if smoke { 2 } else { 5 };
    let mut hits = 0usize;
    let mut possible = 0usize;
    let ann_start = Instant::now();
    for rep in 0..reps {
        for (q, want) in queries.iter().zip(&exact) {
            let got = index.search_knn(q, K);
            if rep == 0 {
                possible += want.len();
                hits += got.iter().filter(|n| want.contains(&n.key)).count();
            }
        }
    }
    let ann_time = ann_start.elapsed();
    let ann_qps = (queries.len() * reps) as f64 / ann_time.as_secs_f64().max(1e-9);
    let recall = hits as f64 / possible.max(1) as f64;
    let speedup = ann_qps / bf_qps.max(1e-9);
    println!(
        "search: recall@{K} {recall:.4} | ANN {ann_qps:.0} q/s vs brute force {bf_qps:.0} q/s ({speedup:.1}x)"
    );

    // SATOIDX1 sidecar round-trip: the persisted index must load next to
    // its artifact and answer queries identically.
    let sidecar = std::env::temp_dir().join(format!(
        "sato_index_discovery_{}.satoidx",
        std::process::id()
    ));
    let save_start = Instant::now();
    index.save(&sidecar).expect("save SATOIDX1 sidecar");
    let save_s = save_start.elapsed().as_secs_f64();
    let sidecar_bytes = std::fs::metadata(&sidecar).map(|m| m.len()).unwrap_or(0);
    let load_start = Instant::now();
    let reloaded =
        HnswIndex::load_sidecar(&sidecar, predictor.content_hash()).expect("load SATOIDX1 sidecar");
    let load_s = load_start.elapsed().as_secs_f64();
    assert_eq!(reloaded.len(), index.len());
    for q in queries.iter().take(16) {
        assert_eq!(reloaded.search_knn(q, K), index.search_knn(q, K));
    }
    let _ = std::fs::remove_file(&sidecar);
    println!(
        "sidecar: {sidecar_bytes} bytes, save {:.3}s, load {:.3}s (query-identical after reload)",
        save_s, load_s
    );

    if !smoke {
        assert!(
            lake_cols >= 100_000,
            "standard run must index a >= 100k-column lake (got {lake_cols})"
        );
        assert!(recall >= 0.9, "recall@{K} {recall:.4} below the 0.9 floor");
        assert!(
            speedup >= 10.0,
            "ANN speedup {speedup:.1}x below the 10x floor"
        );
    }

    let json = format!(
        "{{\n  \"schema\": \"sato-bench/index-v1\",\n  \"single_threaded\": true,\n  \"model\": \"Sato (Full)\",\n  \"smoke\": {smoke},\n  \"lake_tables\": {},\n  \"lake_columns\": {lake_cols},\n  \"embedding_dim\": {dim},\n  \"hnsw\": {{\n    \"m\": {},\n    \"ef_construction\": {},\n    \"ef_search\": {},\n    \"seed\": {},\n    \"top_level\": {}\n  }},\n  \"build_s\": {:.3},\n  \"embed_s\": {:.3},\n  \"graph_insert_s\": {:.3},\n  \"build_cols_per_s\": {build_cols_per_s:.1},\n  \"queries\": {},\n  \"k\": {K},\n  \"recall_at_10\": {recall:.4},\n  \"ann_queries_per_s\": {ann_qps:.1},\n  \"bruteforce_queries_per_s\": {bf_qps:.1},\n  \"speedup_vs_bruteforce\": {speedup:.2},\n  \"sidecar_bytes\": {sidecar_bytes},\n  \"sidecar_save_s\": {save_s:.4},\n  \"sidecar_load_s\": {load_s:.4}\n}}\n",
        lake.len(),
        config.m,
        config.ef_construction,
        config.ef_search,
        config.seed,
        index.top_level(),
        build_time.as_secs_f64(),
        embed_time.as_secs_f64(),
        insert_time.as_secs_f64(),
        queries.len(),
    );
    std::fs::write("BENCH_index.json", &json).expect("write BENCH_index.json");
    println!("wrote BENCH_index.json:\n{json}");
}

/// Generate the synthetic lake: enough default-shaped tables to reach
/// `target_cols` columns, trimmed at table granularity (ids stay the
/// generator's 0..n, unique within the lake).
fn generate_lake(target_cols: usize, seed: u64) -> Corpus {
    // Default shapes average ~2.8 columns/table (40% singletons, 2..=6
    // otherwise); 10% headroom, then trim.
    let estimated_tables = (target_cols as f64 / 2.8 * 1.1).ceil() as usize;
    let mut corpus = default_corpus(estimated_tables.max(8), seed);
    let mut cols = 0usize;
    let mut keep = corpus.tables.len();
    for (i, table) in corpus.iter().enumerate() {
        cols += table.num_columns();
        if cols >= target_cols {
            keep = i + 1;
            break;
        }
    }
    assert!(
        cols >= target_cols,
        "lake generation undershot: {cols} < {target_cols} columns from {estimated_tables} tables"
    );
    corpus.tables.truncate(keep);
    corpus
}
