//! Criterion micro-benchmark: linear-chain CRF inference over the 78-type
//! state space (forward–backward for training, Viterbi for prediction) as a
//! function of the number of table columns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sato_crf::LinearChainCrf;
use sato_tabular::types::NUM_TYPES;

fn random_unary(columns: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    (0..columns)
        .map(|_| (0..NUM_TYPES).map(|_| rng.gen_range(-3.0..0.0)).collect())
        .collect()
}

fn bench_crf(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let pairwise: Vec<f64> = (0..NUM_TYPES * NUM_TYPES)
        .map(|_| rng.gen_range(-0.5..0.5))
        .collect();
    let crf = LinearChainCrf::with_pairwise(NUM_TYPES, pairwise);

    let mut group = c.benchmark_group("crf_78_states");
    for columns in [2usize, 4, 8] {
        let unary = random_unary(columns, &mut rng);
        group.bench_with_input(BenchmarkId::new("viterbi", columns), &unary, |b, u| {
            b.iter(|| crf.viterbi(std::hint::black_box(u)))
        });
        group.bench_with_input(
            BenchmarkId::new("forward_backward", columns),
            &unary,
            |b, u| b.iter(|| crf.marginals(std::hint::black_box(u))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_crf);
criterion_main!(benches);
