//! Criterion micro-benchmark: LDA table-intent inference (the per-table cost
//! Sato adds on top of Sherlock for the global context signal), on the
//! reference path (`estimate`: mega-string document, per-token `String`s,
//! fresh Gibbs buffers), the allocation-lean scratch path (`estimate_with` +
//! dense sampler: streaming encoder + reused [`TopicScratch`]) and the
//! sparse/alias sampler (`estimate_with` + [`SamplerKind::SparseAlias`]:
//! `O(k_d)` per token against pre-built per-word alias tables).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sato_tabular::corpus::default_corpus;
use sato_topic::{LdaConfig, SamplerKind, TableIntentEstimator, TopicSampler, TopicScratch};

fn bench_lda(c: &mut Criterion) {
    let corpus = default_corpus(200, 7);
    let mut group = c.benchmark_group("lda");
    group.sample_size(20);

    for topics in [16usize, 64] {
        let config = LdaConfig {
            num_topics: topics,
            train_iterations: 30,
            infer_iterations: 15,
            ..LdaConfig::default()
        };
        let estimator = TableIntentEstimator::fit(&corpus, config);
        let table = &corpus.tables[0];
        group.bench_with_input(
            BenchmarkId::new("infer_table_topic_vector", topics),
            &estimator,
            |b, est| b.iter(|| est.estimate(std::hint::black_box(table))),
        );
        let mut scratch = TopicScratch::new();
        group.bench_with_input(
            BenchmarkId::new("infer_table_topic_vector_scratch", topics),
            &estimator,
            |b, est| {
                b.iter(|| {
                    est.estimate_with(
                        std::hint::black_box(table),
                        &TopicSampler::Dense,
                        &mut scratch,
                    )
                })
            },
        );
        // Sparse/alias sampler: alias tables built once (freeze time), the
        // timed loop is the O(k_d)-per-token warm sampling path.
        let sparse = estimator.build_sampler(SamplerKind::SparseAlias);
        group.bench_with_input(
            BenchmarkId::new("infer_table_topic_vector_sparse_alias", topics),
            &estimator,
            |b, est| {
                b.iter(|| est.estimate_with(std::hint::black_box(table), &sparse, &mut scratch))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lda);
criterion_main!(benches);
