//! Criterion micro-benchmark: end-to-end per-table prediction latency of a
//! frozen Base and full Sato predictor (the paper reports ≈0.8 ms per table
//! and argues the CRF overhead of ≈0.2 ms is unnoticeable; Section 5.3),
//! plus corpus serving throughput single- vs multi-threaded
//! (`--threads N`, default: CPU count) through
//! `SatoPredictor::predict_corpus_parallel`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sato::{SatoConfig, SatoModel, SatoVariant};
use sato_bench::ExperimentOptions;
use sato_tabular::corpus::default_corpus;

fn bench_prediction(c: &mut Criterion) {
    let opts = ExperimentOptions::from_env_lenient();
    let corpus = default_corpus(80, 31);
    let config = SatoConfig::fast();
    let table = corpus
        .iter()
        .find(|t| t.num_columns() >= 3)
        .expect("multi-column table available")
        .clone();

    let mut group = c.benchmark_group("prediction_latency");
    group.sample_size(30);
    for variant in [SatoVariant::Base, SatoVariant::Full] {
        let predictor = SatoModel::train(&corpus, config.clone(), variant).into_predictor();
        group.bench_with_input(
            BenchmarkId::new("predict_table", variant.name()),
            &table,
            |b, t| b.iter(|| predictor.predict(std::hint::black_box(t))),
        );
    }
    group.finish();

    // Serving throughput over the whole corpus: the same frozen predictor,
    // sequentially and fanned out over scoped threads.
    let predictor = SatoModel::train(&corpus, config, SatoVariant::Full).into_predictor();
    let mut group = c.benchmark_group("serving_throughput");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("predict_corpus", "1_thread"),
        &corpus,
        |b, corp| b.iter(|| predictor.predict_corpus(std::hint::black_box(corp))),
    );
    group.bench_with_input(
        BenchmarkId::new("predict_corpus", format!("{}_threads", opts.threads)),
        &corpus,
        |b, corp| {
            b.iter(|| predictor.predict_corpus_parallel(std::hint::black_box(corp), opts.threads))
        },
    );
    group.finish();
}

criterion_group!(benches, bench_prediction);
criterion_main!(benches);
