//! Criterion micro-benchmark: end-to-end per-table prediction latency of a
//! frozen Base and full Sato predictor (the paper reports ≈0.8 ms per table
//! and argues the CRF overhead of ≈0.2 ms is unnoticeable; Section 5.3),
//! plus corpus serving throughput single- vs multi-threaded
//! (`--threads N`, default: CPU count) through
//! `SatoPredictor::predict_corpus_parallel`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sato::{SatoConfig, SatoModel, SatoVariant};
use sato_bench::ExperimentOptions;
use sato_features::char_dist::char_features_into;
use sato_features::para_embed::{para_features_into, DEFAULT_PARA_DIM};
use sato_features::stats::stat_features_into;
use sato_features::word_embed::{word_features_into, DEFAULT_WORD_DIM};
use sato_features::{char_dist, stats, FeatureScratch};
use sato_tabular::corpus::default_corpus;

fn bench_prediction(c: &mut Criterion) {
    let opts = ExperimentOptions::from_env_lenient();
    let corpus = default_corpus(80, 31);
    let config = SatoConfig::fast();
    let table = corpus
        .iter()
        .find(|t| t.num_columns() >= 3)
        .expect("multi-column table available")
        .clone();

    let mut group = c.benchmark_group("prediction_latency");
    group.sample_size(30);
    for variant in [SatoVariant::Base, SatoVariant::Full] {
        let predictor = SatoModel::train(&corpus, config.clone(), variant).into_predictor();
        group.bench_with_input(
            BenchmarkId::new("predict_table", variant.name()),
            &table,
            |b, t| b.iter(|| predictor.predict(std::hint::black_box(t))),
        );
    }
    group.finish();

    // Serving throughput over the whole corpus: the same frozen predictor,
    // sequentially and fanned out over scoped threads.
    let predictor = SatoModel::train(&corpus, config, SatoVariant::Full).into_predictor();
    let mut group = c.benchmark_group("serving_throughput");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("predict_corpus", "1_thread"),
        &corpus,
        |b, corp| b.iter(|| predictor.predict_corpus(std::hint::black_box(corp))),
    );
    group.bench_with_input(
        BenchmarkId::new("predict_corpus", format!("{}_threads", opts.threads)),
        &corpus,
        |b, corp| {
            b.iter(|| predictor.predict_corpus_parallel(std::hint::black_box(corp), opts.threads))
        },
    );
    // Corpus-batched serving: one forward pass per micro-batch of columns.
    for batch_cols in [16usize, 256] {
        group.bench_with_input(
            BenchmarkId::new("predict_corpus_batched", batch_cols),
            &corpus,
            |b, corp| {
                b.iter(|| predictor.predict_corpus_batched(std::hint::black_box(corp), batch_cols))
            },
        );
    }
    group.finish();
}

/// Per-group feature extraction cost (single-pass, scratch-reusing path) so
/// a regression in any one of the four Sherlock groups is visible on its
/// own, not just through end-to-end latency.
fn bench_feature_groups(c: &mut Criterion) {
    let corpus = default_corpus(40, 19);
    let column = corpus
        .iter()
        .flat_map(|t| t.columns.iter())
        .max_by_key(|col| col.values.len())
        .expect("corpus has columns")
        .clone();
    let mut scratch = FeatureScratch::new();
    let mut char_out = vec![0.0f32; char_dist::CHAR_FEATURE_DIM];
    let mut word_out = vec![0.0f32; 2 * DEFAULT_WORD_DIM];
    let mut para_out = vec![0.0f32; DEFAULT_PARA_DIM];
    let mut stat_out = vec![0.0f32; stats::STAT_FEATURE_DIM];

    let mut group = c.benchmark_group("feature_groups");
    group.sample_size(20);
    group.bench_function("char", |b| {
        b.iter(|| char_features_into(std::hint::black_box(&column), &mut scratch, &mut char_out))
    });
    group.bench_function("word", |b| {
        b.iter(|| {
            word_features_into(
                std::hint::black_box(&column),
                DEFAULT_WORD_DIM,
                &mut scratch,
                &mut word_out,
            )
        })
    });
    group.bench_function("para", |b| {
        b.iter(|| para_features_into(std::hint::black_box(&column), &mut scratch, &mut para_out))
    });
    group.bench_function("stat", |b| {
        b.iter(|| stat_features_into(std::hint::black_box(&column), &mut scratch, &mut stat_out))
    });
    group.finish();
}

criterion_group!(benches, bench_prediction, bench_feature_groups);
criterion_main!(benches);
