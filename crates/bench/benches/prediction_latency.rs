//! Criterion micro-benchmark: end-to-end per-table prediction latency of a
//! trained Base and a trained full Sato model (the paper reports ≈0.8 ms per
//! table and argues the CRF overhead of ≈0.2 ms is unnoticeable; Section 5.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sato::{SatoConfig, SatoModel, SatoVariant};
use sato_tabular::corpus::default_corpus;

fn bench_prediction(c: &mut Criterion) {
    let corpus = default_corpus(80, 31);
    let config = SatoConfig::fast();
    let table = corpus
        .iter()
        .find(|t| t.num_columns() >= 3)
        .expect("multi-column table available")
        .clone();

    let mut group = c.benchmark_group("prediction_latency");
    group.sample_size(30);
    for variant in [SatoVariant::Base, SatoVariant::Full] {
        let mut model = SatoModel::train(&corpus, config.clone(), variant);
        group.bench_with_input(
            BenchmarkId::new("predict_table", variant.name()),
            &table,
            |b, t| b.iter(|| model.predict(std::hint::black_box(t))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_prediction);
criterion_main!(benches);
