//! Criterion micro-benchmark: Sherlock-style feature extraction throughput
//! (the per-column cost that dominates Sato's prediction path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sato_features::{FeatureConfig, FeatureExtractor, FeatureScratch};
use sato_tabular::corpus::default_corpus;

fn bench_feature_extraction(c: &mut Criterion) {
    let corpus = default_corpus(50, 123);
    let extractor = FeatureExtractor::new(FeatureConfig::default());
    let mut group = c.benchmark_group("feature_extraction");

    let table = corpus
        .iter()
        .find(|t| t.num_columns() >= 3)
        .expect("corpus has a multi-column table");
    // Serving-path shape: one warm scratch reused across iterations, like
    // the batched predictor; the allocating `extract_table` is not what
    // serving runs.
    group.bench_function("extract_table_3plus_columns", |b| {
        let mut scratch = FeatureScratch::new();
        b.iter(|| extractor.extract_table_with(std::hint::black_box(table), &mut scratch))
    });

    for (name, column) in [
        ("city_column", &table.columns[0]),
        ("numeric_column", &corpus.tables[1].columns[0]),
    ] {
        group.bench_with_input(
            BenchmarkId::new("extract_column", name),
            column,
            |b, col| b.iter(|| extractor.extract_column(std::hint::black_box(col))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_feature_extraction);
criterion_main!(benches);
