//! Allocation-count regression test for warm LDA topic inference.
//!
//! The serving hot path relies on `LdaModel::infer_tokens_into` (and the
//! streaming `TableIntentEstimator::estimate_into` built on it) performing
//! **zero** heap allocations once the scratch buffers are warm — no fresh
//! `doc_topic`/`assignments`/`weights`/`accum` per table, no `as_document`
//! mega-string, no per-token `String`. A counting global allocator makes
//! that a hard assertion rather than a code-review convention, mirroring
//! `crates/nn/tests/alloc_free_infer.rs`.
//!
//! This file deliberately contains a single `#[test]`: the counter is
//! process-global, and a concurrent test would pollute the window between
//! the two counter reads.

use sato_tabular::table::{Column, Table};
use sato_topic::{
    LdaConfig, LdaInferScratch, LdaModel, SamplerKind, TableIntentEstimator, TopicSampler,
    TopicScratch,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocation_count() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn warm_topic_inference_allocates_nothing() {
    let docs: Vec<String> = (0..30)
        .map(|i| {
            if i % 2 == 0 {
                "rock jazz blues album artist guitar song melody".to_string()
            } else {
                "warsaw london paris city country europe capital river".to_string()
            }
        })
        .collect();
    let model = LdaModel::fit(&docs, 1, LdaConfig::tiny());

    // Raw token-level inference: warm `infer_tokens_into` must not allocate
    // — with either sampler. The sparse/alias sampler's tables are built
    // once here (freeze-time in the serving pipeline), outside the counted
    // window; its per-token sparse structures live in the scratch.
    let tokens = model
        .vocabulary()
        .encode("rock jazz blues artist album city");
    let sparse = model.sampler(SamplerKind::SparseAlias);
    let mut scratch = LdaInferScratch::new();
    let mut out = vec![0.0f32; model.num_topics()];
    // Warm-up: the first calls size every buffer.
    model.infer_tokens_into(&tokens, 7, &TopicSampler::Dense, &mut scratch, &mut out);
    model.infer_tokens_into(&tokens, 7, &TopicSampler::Dense, &mut scratch, &mut out);
    let expected = model.infer_tokens(&tokens, 7);
    assert_eq!(out, expected, "scratch path must match the allocating path");

    let before = allocation_count();
    for _ in 0..20 {
        model.infer_tokens_into(&tokens, 7, &TopicSampler::Dense, &mut scratch, &mut out);
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "warm dense LdaModel::infer_tokens_into must not allocate (got {} allocations over 20 calls)",
        after - before
    );
    assert_eq!(out, expected);

    // Sparse/alias sampler: same zero-allocation contract once warm.
    model.infer_tokens_into(&tokens, 7, &sparse, &mut scratch, &mut out);
    model.infer_tokens_into(&tokens, 7, &sparse, &mut scratch, &mut out);
    let sparse_expected = out.clone();
    let before = allocation_count();
    for _ in 0..20 {
        model.infer_tokens_into(&tokens, 7, &sparse, &mut scratch, &mut out);
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "warm sparse-alias LdaModel::infer_tokens_into must not allocate (got {} allocations over 20 calls)",
        after - before
    );
    assert_eq!(
        out, sparse_expected,
        "sparse sampler must stay deterministic"
    );

    // Metropolis–Hastings sampler: same zero-allocation contract once warm.
    // The cycle proposals draw straight off the pre-built alias tables and
    // the in-scratch assignment array — no per-token structures at all.
    let mh = model.sampler(SamplerKind::MetropolisHastings);
    model.infer_tokens_into(&tokens, 7, &mh, &mut scratch, &mut out);
    model.infer_tokens_into(&tokens, 7, &mh, &mut scratch, &mut out);
    let mh_expected = out.clone();
    let before = allocation_count();
    for _ in 0..20 {
        model.infer_tokens_into(&tokens, 7, &mh, &mut scratch, &mut out);
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "warm MH LdaModel::infer_tokens_into must not allocate (got {} allocations over 20 calls)",
        after - before
    );
    assert_eq!(out, mh_expected, "MH sampler must stay deterministic");

    // Same contract one level up: the streaming table estimate (visitor over
    // cell values + `&str` vocabulary lookups + scratch inference).
    let estimator = TableIntentEstimator::from_model(model);
    let table = Table::unlabelled(
        1,
        vec![
            Column::new(["rock", "jazz blues", "artist"]),
            Column::new(["warsaw", "london", "unknown-token"]),
        ],
    );
    let mut topic_scratch = TopicScratch::new();
    let mut theta = vec![0.0f32; estimator.num_topics()];
    estimator.estimate_into(&table, &TopicSampler::Dense, &mut topic_scratch, &mut theta);
    estimator.estimate_into(&table, &TopicSampler::Dense, &mut topic_scratch, &mut theta);
    let reference = estimator.estimate(&table);
    assert_eq!(theta, reference, "streaming estimate must match the oracle");

    let before = allocation_count();
    for _ in 0..20 {
        estimator.estimate_into(&table, &TopicSampler::Dense, &mut topic_scratch, &mut theta);
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "warm dense TableIntentEstimator::estimate_into must not allocate (got {} allocations over 20 calls)",
        after - before
    );
    assert_eq!(theta, reference);

    // And the estimator-level sparse path.
    estimator.estimate_into(&table, &sparse, &mut topic_scratch, &mut theta);
    estimator.estimate_into(&table, &sparse, &mut topic_scratch, &mut theta);
    let sparse_theta = theta.clone();
    let before = allocation_count();
    for _ in 0..20 {
        estimator.estimate_into(&table, &sparse, &mut topic_scratch, &mut theta);
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "warm sparse-alias TableIntentEstimator::estimate_into must not allocate (got {} allocations over 20 calls)",
        after - before
    );
    assert_eq!(theta, sparse_theta);
}
