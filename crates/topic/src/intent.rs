//! The table intent estimator (Figure 3b of the paper): a pre-trained LDA
//! model that maps a table's values to a fixed-length *table topic vector*
//! shared by every column of the table.

use crate::lda::{LdaConfig, LdaInferScratch, LdaModel};
use crate::sampler::{SamplerKind, TopicSampler};
use sato_tabular::table::{Corpus, Table, TableCells};
use serde::{Deserialize, Serialize};

/// Reusable workspace for streaming table-topic estimation: the encoded
/// token ids of one table, the lower-cased token buffer of the streaming
/// encoder, and the Gibbs-inference buffers. One scratch serves any number
/// of tables; warm estimation allocates nothing beyond the caller's output.
#[derive(Debug, Clone, Default)]
pub struct TopicScratch {
    /// Encoded token ids of the table under estimation.
    tokens: Vec<usize>,
    /// Reusable lower-cased token buffer for the streaming encoder.
    token_buf: String,
    /// Gibbs-inference working buffers.
    infer: LdaInferScratch,
}

impl TopicScratch {
    /// A fresh workspace with empty (but growable) buffers.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The table intent estimator: wraps a pre-trained [`LdaModel`] and exposes
/// table-level inference.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableIntentEstimator {
    model: LdaModel,
}

impl TableIntentEstimator {
    /// Pre-train the estimator on a corpus of tables. Only the cell values
    /// are used (no headers, no labels), mirroring the unsupervised LDA
    /// pre-training of the paper.
    pub fn fit(corpus: &Corpus, config: LdaConfig) -> Self {
        let documents: Vec<String> = corpus.iter().map(Table::as_document).collect();
        let model = LdaModel::fit(&documents, 2, config);
        TableIntentEstimator { model }
    }

    /// Wrap an already trained LDA model.
    pub fn from_model(model: LdaModel) -> Self {
        TableIntentEstimator { model }
    }

    /// Dimensionality of the topic vectors this estimator produces.
    pub fn num_topics(&self) -> usize {
        self.model.num_topics()
    }

    /// Estimate the topic vector of a table (the paper's "table topic
    /// vector"), shared by all of the table's columns.
    ///
    /// This is the **reference path**: it materializes the table as one
    /// document string ([`Table::as_document`]), re-tokenizes it with
    /// per-token `String`s and allocates fresh inference buffers. It is kept
    /// as the parity oracle (and benchmark baseline) for the streaming
    /// [`Self::estimate_with`] path, like `sato_features::reference`.
    pub fn estimate(&self, table: &Table) -> Vec<f32> {
        self.model.infer(&table.as_document())
    }

    /// Estimate topic vectors for every table of a corpus (reference path;
    /// see [`Self::estimate`]).
    pub fn estimate_corpus(&self, corpus: &Corpus) -> Vec<Vec<f32>> {
        corpus.iter().map(|t| self.estimate(t)).collect()
    }

    /// Build a ready-to-run [`TopicSampler`] for this estimator's model
    /// (see [`LdaModel::sampler`]); `SparseAlias` pre-builds the per-word
    /// alias tables once, at predictor freeze/load time.
    pub fn build_sampler(&self, kind: SamplerKind) -> TopicSampler {
        self.model.sampler(kind)
    }

    /// Estimate the topic vector of a table with an explicit sampling
    /// strategy (allocating convenience over [`Self::estimate_into`]).
    /// With [`TopicSampler::Dense`] the output is bit-identical to
    /// [`Self::estimate`].
    pub fn estimate_sampled(&self, table: &Table, sampler: &TopicSampler) -> Vec<f32> {
        let mut out = vec![0.0f32; self.num_topics()];
        self.estimate_into(table, sampler, &mut TopicScratch::new(), &mut out);
        out
    }

    /// Streaming, allocation-lean estimate: walks the table's cell values
    /// directly (no `as_document` mega-string), encodes tokens by `&str`
    /// lookup (no per-token `String`) and runs Gibbs inference with the
    /// given sampling strategy in the caller's scratch. With
    /// [`TopicSampler::Dense`] the output is **bit-identical** to
    /// [`Self::estimate`].
    pub fn estimate_with(
        &self,
        table: &Table,
        sampler: &TopicSampler,
        scratch: &mut TopicScratch,
    ) -> Vec<f32> {
        let mut out = vec![0.0f32; self.num_topics()];
        self.estimate_into(table, sampler, scratch, &mut out);
        out
    }

    /// [`Self::estimate_with`] writing into a caller-provided slice of
    /// length [`Self::num_topics`]: a warm call performs zero heap
    /// allocations for either sampler (rare exact-case-fold fallback
    /// aside).
    pub fn estimate_into(
        &self,
        table: &Table,
        sampler: &TopicSampler,
        scratch: &mut TopicScratch,
        out: &mut [f32],
    ) {
        self.estimate_cells_into(table, sampler, scratch, out);
    }

    /// [`Self::estimate_into`] over any [`TableCells`] source: the cells of
    /// an in-memory [`Table`] and of a decoded colstore frame visit in the
    /// identical column order, so the two inputs produce bit-identical
    /// topic vectors.
    pub fn estimate_cells_into<T: TableCells + ?Sized>(
        &self,
        table: &T,
        sampler: &TopicSampler,
        scratch: &mut TopicScratch,
        out: &mut [f32],
    ) {
        let TopicScratch {
            tokens,
            token_buf,
            infer,
        } = scratch;
        tokens.clear();
        let vocab = self.model.vocabulary();
        table.for_each_cell(|value| vocab.encode_value_into(value, token_buf, tokens));
        self.model
            .infer_tokens_into(tokens, self.model.default_infer_seed(), sampler, infer, out);
    }

    /// Estimate topic vectors for every table of a corpus through one shared
    /// scratch — the corpus-batched counterpart of [`Self::estimate_corpus`],
    /// bit-identical to it under [`TopicSampler::Dense`].
    pub fn estimate_corpus_with(
        &self,
        corpus: &Corpus,
        sampler: &TopicSampler,
        scratch: &mut TopicScratch,
    ) -> Vec<Vec<f32>> {
        corpus
            .iter()
            .map(|t| self.estimate_with(t, sampler, scratch))
            .collect()
    }

    /// Borrow the underlying LDA model (for topic interpretation).
    pub fn model(&self) -> &LdaModel {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sato_tabular::corpus::{default_corpus, figure1_tables};

    fn estimator() -> TableIntentEstimator {
        let corpus = default_corpus(150, 21);
        TableIntentEstimator::fit(&corpus, LdaConfig::tiny())
    }

    #[test]
    fn topic_vectors_are_normalised_probabilities() {
        let est = estimator();
        let corpus = default_corpus(10, 99);
        for theta in est.estimate_corpus(&corpus) {
            assert_eq!(theta.len(), est.num_topics());
            let s: f32 = theta.iter().sum();
            assert!((s - 1.0).abs() < 1e-3);
            assert!(theta.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn every_column_of_a_table_shares_the_topic_vector() {
        // By construction the estimator works per table; this documents the
        // contract used by the topic-aware model.
        let est = estimator();
        let (a, _) = figure1_tables();
        let t1 = est.estimate(&a);
        let t2 = est.estimate(&a);
        assert_eq!(t1, t2);
    }

    #[test]
    fn streaming_estimate_is_bit_identical_to_reference() {
        use sato_tabular::table::{Column, Table};
        let est = estimator();
        let corpus = default_corpus(12, 5);
        let mut scratch = TopicScratch::new();
        assert_eq!(
            est.estimate_corpus(&corpus),
            est.estimate_corpus_with(&corpus, &TopicSampler::Dense, &mut scratch)
        );
        // Edge cases: empty table, one-token table, OOV-only table.
        let edge_tables = [
            Table::unlabelled(900, vec![]),
            Table::unlabelled(901, vec![Column::new(["Warsaw"])]),
            Table::unlabelled(902, vec![Column::new(["zzzzqq", "xxyyzz"])]),
            Table::unlabelled(903, vec![Column::new(["", "  "]), Column::new(["ΟΔΟΣ"])]),
        ];
        for table in &edge_tables {
            assert_eq!(
                est.estimate(table),
                est.estimate_with(table, &TopicSampler::Dense, &mut scratch),
                "streaming estimate diverged on table {}",
                table.id
            );
            assert_eq!(
                est.estimate(table),
                est.estimate_sampled(table, &TopicSampler::Dense),
                "allocating sampled estimate diverged on table {}",
                table.id
            );
        }
    }

    /// The sparse/alias sampler produces valid, deterministic topic
    /// vectors at the estimator level (the serving entry point).
    #[test]
    fn sparse_sampler_estimates_are_valid_and_deterministic() {
        use sato_tabular::table::{Column, Table};
        let est = estimator();
        let sampler = est.build_sampler(SamplerKind::SparseAlias);
        assert_eq!(sampler.kind(), SamplerKind::SparseAlias);
        let mut scratch = TopicScratch::new();
        let corpus = default_corpus(10, 31);
        for table in corpus.iter() {
            let a = est.estimate_with(table, &sampler, &mut scratch);
            let b = est.estimate_with(table, &sampler, &mut scratch);
            assert_eq!(a, b, "sparse estimate not deterministic");
            assert_eq!(a, est.estimate_sampled(table, &sampler));
            let sum: f32 = a.iter().sum();
            assert!((sum - 1.0).abs() < 1e-3);
            assert!(a.iter().all(|&x| x >= 0.0));
        }
        // Empty and OOV-only tables behave exactly like the dense sampler
        // (no tokens → uniform, before any sampling happens).
        let empty = Table::unlabelled(900, vec![]);
        let oov = Table::unlabelled(901, vec![Column::new(["zzzzqq", "xxyyzz"])]);
        for table in [&empty, &oov] {
            assert_eq!(
                est.estimate(table),
                est.estimate_with(table, &sampler, &mut scratch)
            );
        }
    }

    #[test]
    fn different_intents_produce_different_vectors() {
        let est = estimator();
        let (a, b) = figure1_tables();
        let ta = est.estimate(&a);
        let tb = est.estimate(&b);
        let l1: f32 = ta.iter().zip(&tb).map(|(x, y)| (x - y).abs()).sum();
        assert!(
            l1 > 1e-3,
            "biography and city tables got identical topic vectors"
        );
    }
}
