//! The table intent estimator (Figure 3b of the paper): a pre-trained LDA
//! model that maps a table's values to a fixed-length *table topic vector*
//! shared by every column of the table.

use crate::lda::{LdaConfig, LdaModel};
use sato_tabular::table::{Corpus, Table};
use serde::{Deserialize, Serialize};

/// The table intent estimator: wraps a pre-trained [`LdaModel`] and exposes
/// table-level inference.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableIntentEstimator {
    model: LdaModel,
}

impl TableIntentEstimator {
    /// Pre-train the estimator on a corpus of tables. Only the cell values
    /// are used (no headers, no labels), mirroring the unsupervised LDA
    /// pre-training of the paper.
    pub fn fit(corpus: &Corpus, config: LdaConfig) -> Self {
        let documents: Vec<String> = corpus.iter().map(Table::as_document).collect();
        let model = LdaModel::fit(&documents, 2, config);
        TableIntentEstimator { model }
    }

    /// Wrap an already trained LDA model.
    pub fn from_model(model: LdaModel) -> Self {
        TableIntentEstimator { model }
    }

    /// Dimensionality of the topic vectors this estimator produces.
    pub fn num_topics(&self) -> usize {
        self.model.num_topics()
    }

    /// Estimate the topic vector of a table (the paper's "table topic
    /// vector"), shared by all of the table's columns.
    pub fn estimate(&self, table: &Table) -> Vec<f32> {
        self.model.infer(&table.as_document())
    }

    /// Estimate topic vectors for every table of a corpus.
    pub fn estimate_corpus(&self, corpus: &Corpus) -> Vec<Vec<f32>> {
        corpus.iter().map(|t| self.estimate(t)).collect()
    }

    /// Borrow the underlying LDA model (for topic interpretation).
    pub fn model(&self) -> &LdaModel {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sato_tabular::corpus::{default_corpus, figure1_tables};

    fn estimator() -> TableIntentEstimator {
        let corpus = default_corpus(150, 21);
        TableIntentEstimator::fit(&corpus, LdaConfig::tiny())
    }

    #[test]
    fn topic_vectors_are_normalised_probabilities() {
        let est = estimator();
        let corpus = default_corpus(10, 99);
        for theta in est.estimate_corpus(&corpus) {
            assert_eq!(theta.len(), est.num_topics());
            let s: f32 = theta.iter().sum();
            assert!((s - 1.0).abs() < 1e-3);
            assert!(theta.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn every_column_of_a_table_shares_the_topic_vector() {
        // By construction the estimator works per table; this documents the
        // contract used by the topic-aware model.
        let est = estimator();
        let (a, _) = figure1_tables();
        let t1 = est.estimate(&a);
        let t2 = est.estimate(&a);
        assert_eq!(t1, t2);
    }

    #[test]
    fn different_intents_produce_different_vectors() {
        let est = estimator();
        let (a, b) = figure1_tables();
        let ta = est.estimate(&a);
        let tb = est.estimate(&b);
        let l1: f32 = ta.iter().zip(&tb).map(|(x, y)| (x - y).abs()).sum();
        assert!(
            l1 > 1e-3,
            "biography and city tables got identical topic vectors"
        );
    }
}
