//! Topic interpretation and saliency analysis (Section 5.5 / Table 3).
//!
//! The paper interprets LDA topics by (1) computing the average topic
//! distribution of every semantic type (averaging the θ of the tables that
//! contain the type), (2) selecting, for each topic, the top-k semantic
//! types by probability, and (3) ranking topics by a *saliency* score — the
//! mean probability of those top-k types — so that "flat" topics that do not
//! discriminate between types sink to the bottom.

use crate::intent::TableIntentEstimator;
use sato_tabular::table::Corpus;
use sato_tabular::types::{SemanticType, NUM_TYPES};
use serde::{Deserialize, Serialize};

/// The analysis result for one topic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopicSummary {
    /// Topic index in the LDA model.
    pub topic: usize,
    /// Saliency score (mean probability of the top-k types).
    pub saliency: f64,
    /// The top-k semantic types for this topic with their probabilities.
    pub top_types: Vec<(SemanticType, f64)>,
}

/// Per-type average topic distributions plus the derived topic summaries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopicTypeAnalysis {
    /// `type_topic[t][k]`: average probability of topic `k` for tables that
    /// contain a column of type `t`.
    pub type_topic: Vec<Vec<f64>>,
    /// One summary per topic, sorted by descending saliency.
    pub topics_by_saliency: Vec<TopicSummary>,
}

/// Run the Section 5.5 analysis: estimate topic vectors for every table of a
/// labelled corpus, average them per semantic type, and rank topics by
/// saliency of their top-`k` types.
pub fn analyze_topics(
    estimator: &TableIntentEstimator,
    corpus: &Corpus,
    top_k: usize,
) -> TopicTypeAnalysis {
    let num_topics = estimator.num_topics();
    let mut type_topic = vec![vec![0.0f64; num_topics]; NUM_TYPES];
    let mut type_counts = vec![0usize; NUM_TYPES];

    for table in corpus.iter() {
        if !table.is_labelled() {
            continue;
        }
        let theta = estimator.estimate(table);
        // A type present several times in one table still counts once, the
        // table-level θ being the unit of aggregation.
        let mut seen = [false; NUM_TYPES];
        for label in &table.labels {
            let t = label.index();
            if seen[t] {
                continue;
            }
            seen[t] = true;
            type_counts[t] += 1;
            for (k, &p) in theta.iter().enumerate() {
                type_topic[t][k] += p as f64;
            }
        }
    }
    for (t, row) in type_topic.iter_mut().enumerate() {
        if type_counts[t] > 0 {
            let n = type_counts[t] as f64;
            row.iter_mut().for_each(|x| *x /= n);
        }
    }

    // For each topic, rank types by their (average) probability of that topic.
    let mut topics_by_saliency: Vec<TopicSummary> = (0..num_topics)
        .map(|k| {
            let mut scored: Vec<(SemanticType, f64)> = SemanticType::ALL
                .iter()
                .filter(|t| type_counts[t.index()] > 0)
                .map(|t| (*t, type_topic[t.index()][k]))
                .collect();
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            scored.truncate(top_k);
            let saliency = if scored.is_empty() {
                0.0
            } else {
                scored.iter().map(|(_, p)| p).sum::<f64>() / scored.len() as f64
            };
            TopicSummary {
                topic: k,
                saliency,
                top_types: scored,
            }
        })
        .collect();
    topics_by_saliency.sort_by(|a, b| {
        b.saliency
            .partial_cmp(&a.saliency)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    TopicTypeAnalysis {
        type_topic,
        topics_by_saliency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lda::LdaConfig;
    use sato_tabular::corpus::default_corpus;

    fn analysis() -> TopicTypeAnalysis {
        let corpus = default_corpus(200, 33);
        let estimator = TableIntentEstimator::fit(&corpus, LdaConfig::tiny());
        analyze_topics(&estimator, &corpus, 5)
    }

    #[test]
    fn every_topic_is_summarised_once() {
        let a = analysis();
        assert_eq!(a.topics_by_saliency.len(), 8);
        let mut topics: Vec<usize> = a.topics_by_saliency.iter().map(|s| s.topic).collect();
        topics.sort_unstable();
        assert_eq!(topics, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn summaries_are_sorted_by_saliency() {
        let a = analysis();
        assert!(a
            .topics_by_saliency
            .windows(2)
            .all(|w| w[0].saliency >= w[1].saliency));
        assert!(a.topics_by_saliency[0].saliency > 0.0);
    }

    #[test]
    fn top_types_are_at_most_k_and_probabilities_valid() {
        let a = analysis();
        for s in &a.topics_by_saliency {
            assert!(s.top_types.len() <= 5);
            assert!(s.top_types.iter().all(|(_, p)| (0.0..=1.0).contains(p)));
            // sorted descending
            assert!(s.top_types.windows(2).all(|w| w[0].1 >= w[1].1));
        }
    }

    #[test]
    fn type_topic_rows_are_distributions_for_observed_types() {
        let a = analysis();
        let mut observed = 0;
        for row in &a.type_topic {
            let s: f64 = row.iter().sum();
            if s > 0.0 {
                observed += 1;
                assert!(
                    (s - 1.0).abs() < 0.05,
                    "type topic distribution sums to {s}"
                );
            }
        }
        assert!(observed > 40, "only {observed} types observed in analysis");
    }
}
