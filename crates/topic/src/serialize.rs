//! Flat binary codecs for the frozen topic-model state: the [`LdaModel`]
//! (config scalars, vocabulary, topic–word counts) and the pre-built
//! per-word Walker alias tables of [`SparseAliasTables`].
//!
//! These produce the raw *section payloads* of the `sato-core` binary
//! predictor artifact; the section framing (magic, section table,
//! checksums, alignment) lives there. Everything is little-endian, and the
//! heavy buffers are laid out exactly as they sit in memory (`u32`/`f64`
//! runs), so loading is a bounds check plus one pass of
//! `from_le_bytes` per element — no tree of JSON values, no per-token
//! re-hashing beyond rebuilding the vocabulary map.
//!
//! JSON (through the serde derives on the same types) remains the
//! debug/interchange representation; both decode to bit-identical models.

use crate::lda::{LdaConfig, LdaModel};
use crate::sampler::SparseAliasTables;
use crate::vocab::Vocabulary;
use std::fmt;

/// Typed decode errors of the topic binary codecs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopicBytesError {
    /// The buffer ended before the named field was fully read.
    Truncated(&'static str),
    /// A structurally invalid payload (bad shapes, non-finite priors, …).
    Corrupt(&'static str),
    /// A vocabulary token is not valid UTF-8.
    Utf8,
}

impl fmt::Display for TopicBytesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopicBytesError::Truncated(what) => {
                write!(f, "topic payload truncated while reading {what}")
            }
            TopicBytesError::Corrupt(what) => write!(f, "corrupt topic payload: {what}"),
            TopicBytesError::Utf8 => write!(f, "vocabulary token is not valid UTF-8"),
        }
    }
}

impl std::error::Error for TopicBytesError {}

/// Little-endian field reader over a byte payload.
///
/// Deliberately the same minimal helper as its siblings in `sato-nn` and
/// `sato-core` (the crates cannot share one without a new dependency
/// edge); keep fixes mirrored.
struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], TopicBytesError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(TopicBytesError::Truncated(what))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, TopicBytesError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, TopicBytesError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn f64(&mut self, what: &'static str) -> Result<f64, TopicBytesError> {
        Ok(f64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn u32_vec(&mut self, len: usize, what: &'static str) -> Result<Vec<u32>, TopicBytesError> {
        let bytes = self.take(
            len.checked_mul(4).ok_or(TopicBytesError::Corrupt(what))?,
            what,
        )?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn f64_vec(&mut self, len: usize, what: &'static str) -> Result<Vec<f64>, TopicBytesError> {
        let bytes = self.take(
            len.checked_mul(8).ok_or(TopicBytesError::Corrupt(what))?,
            what,
        )?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn finish(self, what: &'static str) -> Result<(), TopicBytesError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(TopicBytesError::Corrupt(what))
        }
    }
}

fn push_u32s(out: &mut Vec<u8>, values: &[u32]) {
    out.reserve(values.len() * 4);
    for &v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn push_f64s(out: &mut Vec<u8>, values: &[f64]) {
    out.reserve(values.len() * 8);
    for &v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

impl LdaModel {
    /// Append the model's flat binary form to `out`: config scalars, the
    /// vocabulary tokens in id order (offset table + one UTF-8 page), the
    /// topic–word counts and the per-topic totals.
    pub fn write_bytes(&self, out: &mut Vec<u8>) {
        let config = self.config();
        out.extend_from_slice(&(config.num_topics as u64).to_le_bytes());
        out.extend_from_slice(&config.alpha.to_le_bytes());
        out.extend_from_slice(&config.beta.to_le_bytes());
        out.extend_from_slice(&(config.train_iterations as u64).to_le_bytes());
        out.extend_from_slice(&(config.infer_iterations as u64).to_le_bytes());
        out.extend_from_slice(&config.seed.to_le_bytes());
        let vocab = self.vocabulary();
        out.extend_from_slice(&(vocab.len() as u32).to_le_bytes());
        let mut offset = 0u32;
        out.extend_from_slice(&offset.to_le_bytes());
        for id in 0..vocab.len() {
            offset += vocab.token(id).expect("dense vocabulary ids").len() as u32;
            out.extend_from_slice(&offset.to_le_bytes());
        }
        for id in 0..vocab.len() {
            out.extend_from_slice(vocab.token(id).expect("dense vocabulary ids").as_bytes());
        }
        push_u32s(out, self.topic_word_counts());
        push_u32s(out, self.topic_total_counts());
    }

    /// Decode a model written by [`Self::write_bytes`]. The result is
    /// bit-identical to the JSON round-trip of the same model.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TopicBytesError> {
        let mut r = ByteReader::new(bytes);
        let num_topics = usize::try_from(r.u64("num_topics")?)
            .map_err(|_| TopicBytesError::Corrupt("num_topics"))?;
        let alpha = r.f64("alpha")?;
        let beta = r.f64("beta")?;
        let train_iterations = usize::try_from(r.u64("train_iterations")?)
            .map_err(|_| TopicBytesError::Corrupt("train_iterations"))?;
        let infer_iterations = usize::try_from(r.u64("infer_iterations")?)
            .map_err(|_| TopicBytesError::Corrupt("infer_iterations"))?;
        let seed = r.u64("seed")?;
        if num_topics < 2 || !(alpha.is_finite() && alpha > 0.0 && beta.is_finite() && beta > 0.0) {
            return Err(TopicBytesError::Corrupt("invalid LDA config"));
        }
        let config = LdaConfig {
            num_topics,
            alpha,
            beta,
            train_iterations,
            infer_iterations,
            seed,
        };
        let vocab_len = r.u32("vocabulary length")? as usize;
        let offsets = r.u32_vec(vocab_len + 1, "vocabulary offsets")?;
        if offsets[0] != 0 || offsets.windows(2).any(|w| w[1] < w[0]) {
            return Err(TopicBytesError::Corrupt("vocabulary offsets"));
        }
        let page = r.take(offsets[vocab_len] as usize, "vocabulary page")?;
        let mut tokens = Vec::with_capacity(vocab_len);
        for w in offsets.windows(2) {
            let token = std::str::from_utf8(&page[w[0] as usize..w[1] as usize])
                .map_err(|_| TopicBytesError::Utf8)?;
            tokens.push(token.to_string());
        }
        let vocab = Vocabulary::from_id_tokens(tokens);
        let v = vocab.len().max(1);
        let topic_word = r.u32_vec(num_topics * v, "topic-word counts")?;
        let topic_totals = r.u32_vec(num_topics, "topic totals")?;
        r.finish("trailing bytes after LDA model")?;
        LdaModel::from_parts(config, vocab, topic_word, topic_totals)
            .ok_or(TopicBytesError::Corrupt("count shapes"))
    }
}

impl SparseAliasTables {
    /// Append the pre-built tables' flat binary form to `out`. Storing them
    /// lets an artifact load skip the `O(K·V)` Walker rebuild entirely.
    pub fn write_bytes(&self, out: &mut Vec<u8>) {
        let (k, v, phi, alias_prob, alias, static_mass) = self.parts();
        out.extend_from_slice(&(k as u64).to_le_bytes());
        out.extend_from_slice(&(v as u64).to_le_bytes());
        push_f64s(out, phi);
        push_f64s(out, alias_prob);
        push_u32s(out, alias);
        push_f64s(out, static_mass);
    }

    /// Decode tables written by [`Self::write_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TopicBytesError> {
        let mut r = ByteReader::new(bytes);
        let k = usize::try_from(r.u64("topic count")?)
            .map_err(|_| TopicBytesError::Corrupt("topic count"))?;
        let v = usize::try_from(r.u64("vocabulary size")?)
            .map_err(|_| TopicBytesError::Corrupt("vocabulary size"))?;
        let cells = v
            .checked_mul(k)
            .ok_or(TopicBytesError::Corrupt("table shape overflow"))?;
        let phi = r.f64_vec(cells, "phi table")?;
        let alias_prob = r.f64_vec(cells, "alias probabilities")?;
        let alias = r.u32_vec(cells, "alias indices")?;
        let static_mass = r.f64_vec(v, "static mass")?;
        r.finish("trailing bytes after alias tables")?;
        SparseAliasTables::from_parts(k, v, phi, alias_prob, alias, static_mass)
            .ok_or(TopicBytesError::Corrupt("alias table shapes"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::{SamplerKind, TopicSampler};

    fn themed_documents() -> Vec<String> {
        (0..30)
            .map(|i| {
                if i % 2 == 0 {
                    "rock jazz blues album artist guitar song melody".to_string()
                } else {
                    "warsaw london paris city country europe capital river".to_string()
                }
            })
            .collect()
    }

    fn trained() -> LdaModel {
        LdaModel::fit(&themed_documents(), 1, LdaConfig::tiny())
    }

    #[test]
    fn lda_model_round_trips_bit_identically() {
        let model = trained();
        let mut bytes = Vec::new();
        model.write_bytes(&mut bytes);
        let back = LdaModel::from_bytes(&bytes).unwrap();
        assert_eq!(back.config(), model.config());
        assert_eq!(back.vocabulary().len(), model.vocabulary().len());
        for id in 0..model.vocabulary().len() {
            assert_eq!(back.vocabulary().token(id), model.vocabulary().token(id));
        }
        assert_eq!(back.topic_word_counts(), model.topic_word_counts());
        assert_eq!(back.topic_total_counts(), model.topic_total_counts());
        // Inference (the serving contract) is bit-identical too.
        assert_eq!(
            back.infer("rock jazz album"),
            model.infer("rock jazz album")
        );
    }

    #[test]
    fn alias_tables_round_trip_bit_identically() {
        let model = trained();
        let built = match model.sampler(SamplerKind::SparseAlias) {
            TopicSampler::SparseAlias(t) => t,
            _ => unreachable!(),
        };
        let mut bytes = Vec::new();
        built.write_bytes(&mut bytes);
        let back = SparseAliasTables::from_bytes(&bytes).unwrap();
        let (k, v, phi, alias_prob, alias, static_mass) = built.parts();
        let (k2, v2, phi2, alias_prob2, alias2, static_mass2) = back.parts();
        assert_eq!((k, v), (k2, v2));
        assert_eq!(phi, phi2);
        assert_eq!(alias_prob, alias_prob2);
        assert_eq!(alias, alias2);
        assert_eq!(static_mass, static_mass2);
    }

    #[test]
    fn truncation_is_reported_at_every_prefix() {
        let model = trained();
        let mut bytes = Vec::new();
        model.write_bytes(&mut bytes);
        for cut in [0, 7, 40, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                matches!(
                    LdaModel::from_bytes(&bytes[..cut]),
                    Err(TopicBytesError::Truncated(_))
                ),
                "cut at {cut} not reported as truncation"
            );
        }
        let mut alias_bytes = Vec::new();
        match model.sampler(SamplerKind::SparseAlias) {
            TopicSampler::SparseAlias(t) => t.write_bytes(&mut alias_bytes),
            _ => unreachable!(),
        }
        for cut in [0, 8, alias_bytes.len() - 1] {
            assert!(matches!(
                SparseAliasTables::from_bytes(&alias_bytes[..cut]),
                Err(TopicBytesError::Truncated(_))
            ));
        }
    }

    #[test]
    fn trailing_garbage_is_corrupt() {
        let model = trained();
        let mut bytes = Vec::new();
        model.write_bytes(&mut bytes);
        bytes.push(0);
        assert!(matches!(
            LdaModel::from_bytes(&bytes),
            Err(TopicBytesError::Corrupt(_))
        ));
    }

    #[test]
    fn invalid_config_is_corrupt_not_panic() {
        let model = trained();
        let mut bytes = Vec::new();
        model.write_bytes(&mut bytes);
        // Overwrite alpha (offset 8) with NaN.
        bytes[8..16].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(matches!(
            LdaModel::from_bytes(&bytes),
            Err(TopicBytesError::Corrupt(_))
        ));
    }

    #[test]
    fn out_of_range_alias_index_is_corrupt() {
        let model = trained();
        let built = match model.sampler(SamplerKind::SparseAlias) {
            TopicSampler::SparseAlias(t) => t,
            _ => unreachable!(),
        };
        let mut bytes = Vec::new();
        built.write_bytes(&mut bytes);
        let (k, v, ..) = built.parts();
        // First alias index lives after k,v and the two f64 tables.
        let alias_offset = 16 + 2 * (v * k) * 8;
        bytes[alias_offset..alias_offset + 4].copy_from_slice(&(k as u32).to_le_bytes());
        assert!(matches!(
            SparseAliasTables::from_bytes(&bytes),
            Err(TopicBytesError::Corrupt(_))
        ));
    }
}
