//! Latent Dirichlet Allocation trained with collapsed Gibbs sampling.
//!
//! This replaces the gensim LDA model the paper pre-trains on 10K tables
//! (Section 4.2). Documents are tables (all cell values concatenated), the
//! number of topics is configurable (the paper uses 400; the scaled-down
//! experiments default to fewer), and inference for unseen tables runs a few
//! Gibbs sweeps against the frozen topic–word counts.

use crate::sampler::{pick_bucket, sample_discrete, SamplerKind, SparseAliasTables, TopicSampler};
use crate::vocab::Vocabulary;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the LDA model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LdaConfig {
    /// Number of latent topics (the paper's table-intent dimensions).
    pub num_topics: usize,
    /// Dirichlet prior on the document–topic distribution.
    pub alpha: f64,
    /// Dirichlet prior on the topic–word distribution.
    pub beta: f64,
    /// Gibbs sweeps over the training corpus.
    pub train_iterations: usize,
    /// Gibbs sweeps when inferring the topic vector of an unseen document.
    pub infer_iterations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LdaConfig {
    fn default() -> Self {
        LdaConfig {
            num_topics: 64,
            alpha: 0.1,
            beta: 0.01,
            train_iterations: 60,
            infer_iterations: 20,
            seed: 13,
        }
    }
}

impl LdaConfig {
    /// A tiny configuration for unit tests.
    pub fn tiny() -> Self {
        LdaConfig {
            num_topics: 8,
            train_iterations: 30,
            infer_iterations: 15,
            ..LdaConfig::default()
        }
    }

    /// Panic unless the configuration describes a well-defined Gibbs
    /// sampler: at least two topics and strictly positive, finite Dirichlet
    /// priors. `alpha <= 0` or `beta <= 0` (or a NaN/infinite prior) would
    /// let NaN weights flow through the discrete sampler and silently
    /// produce garbage topic vectors.
    pub fn validate(&self) {
        assert!(self.num_topics >= 2, "need at least 2 topics");
        assert!(
            self.alpha.is_finite() && self.alpha > 0.0,
            "alpha must be a positive finite Dirichlet prior (got {})",
            self.alpha
        );
        assert!(
            self.beta.is_finite() && self.beta > 0.0,
            "beta must be a positive finite Dirichlet prior (got {})",
            self.beta
        );
    }
}

/// A trained LDA model: frozen topic–word counts plus the vocabulary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LdaModel {
    config: LdaConfig,
    vocab: Vocabulary,
    /// `topic_word[k * V + w]`: number of tokens of word `w` assigned to `k`.
    topic_word: Vec<u32>,
    /// `topic_totals[k]`: total tokens assigned to topic `k`.
    topic_totals: Vec<u32>,
}

impl LdaModel {
    /// Train an LDA model on the given documents (one string per table).
    pub fn train(documents: &[String], vocab: Vocabulary, config: LdaConfig) -> Self {
        config.validate();
        let k = config.num_topics;
        let v = vocab.len().max(1);
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Encode documents.
        let docs: Vec<Vec<usize>> = documents.iter().map(|d| vocab.encode(d)).collect();

        let mut topic_word = vec![0u32; k * v];
        let mut topic_totals = vec![0u32; k];
        let mut doc_topic: Vec<Vec<u32>> = docs.iter().map(|_| vec![0u32; k]).collect();
        let mut assignments: Vec<Vec<usize>> = docs
            .iter()
            .map(|doc| doc.iter().map(|_| rng.gen_range(0..k)).collect())
            .collect();

        // Initialise counts from the random assignment.
        for (d, doc) in docs.iter().enumerate() {
            for (i, &w) in doc.iter().enumerate() {
                let z = assignments[d][i];
                topic_word[z * v + w] += 1;
                topic_totals[z] += 1;
                doc_topic[d][z] += 1;
            }
        }

        let alpha = config.alpha;
        let beta = config.beta;
        let v_beta = beta * v as f64;
        let mut weights = vec![0.0f64; k];

        for _ in 0..config.train_iterations {
            for (d, doc) in docs.iter().enumerate() {
                for (i, &w) in doc.iter().enumerate() {
                    let old = assignments[d][i];
                    // Remove the token from the counts.
                    topic_word[old * v + w] -= 1;
                    topic_totals[old] -= 1;
                    doc_topic[d][old] -= 1;

                    // Full conditional P(z = k | rest).
                    let mut total = 0.0;
                    for (t, wt) in weights.iter_mut().enumerate() {
                        let phi = (topic_word[t * v + w] as f64 + beta)
                            / (topic_totals[t] as f64 + v_beta);
                        let theta = doc_topic[d][t] as f64 + alpha;
                        *wt = phi * theta;
                        total += *wt;
                    }
                    let new = sample_discrete(&weights, total, &mut rng);

                    assignments[d][i] = new;
                    topic_word[new * v + w] += 1;
                    topic_totals[new] += 1;
                    doc_topic[d][new] += 1;
                }
            }
        }

        LdaModel {
            config,
            vocab,
            topic_word,
            topic_totals,
        }
    }

    /// Convenience: build the vocabulary and train in one call.
    pub fn fit(documents: &[String], min_count: usize, config: LdaConfig) -> Self {
        let vocab = Vocabulary::build(documents.iter().map(String::as_str), min_count);
        Self::train(documents, vocab, config)
    }

    /// Number of topics.
    pub fn num_topics(&self) -> usize {
        self.config.num_topics
    }

    /// The vocabulary the model was trained with.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The configuration the model was trained with.
    pub fn config(&self) -> &LdaConfig {
        &self.config
    }

    /// Topic–word probability `phi[k][w]`.
    pub fn phi(&self, topic: usize, word: usize) -> f64 {
        let v = self.vocab.len().max(1);
        (self.topic_word[topic * v + word] as f64 + self.config.beta)
            / (self.topic_totals[topic] as f64 + self.config.beta * v as f64)
    }

    /// The `top_n` most probable words of a topic (for interpretation, as in
    /// Table 3 of the paper).
    pub fn top_words(&self, topic: usize, top_n: usize) -> Vec<(String, f64)> {
        let mut scored: Vec<(String, f64)> = (0..self.vocab.len())
            .map(|w| (self.vocab.token(w).unwrap().to_string(), self.phi(topic, w)))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(top_n);
        scored
    }

    /// The frozen topic–word counts, topic-major (`topic_word[k * V + w]`;
    /// binary-codec write path).
    pub(crate) fn topic_word_counts(&self) -> &[u32] {
        &self.topic_word
    }

    /// The per-topic token totals (binary-codec write path).
    pub(crate) fn topic_total_counts(&self) -> &[u32] {
        &self.topic_totals
    }

    /// Reassemble a model from its frozen parts (the binary-codec load
    /// path). Returns `None` when the count buffers do not match the
    /// `num_topics × vocabulary` shape the config implies.
    pub(crate) fn from_parts(
        config: LdaConfig,
        vocab: Vocabulary,
        topic_word: Vec<u32>,
        topic_totals: Vec<u32>,
    ) -> Option<Self> {
        let k = config.num_topics;
        let v = vocab.len().max(1);
        if topic_word.len() != k * v || topic_totals.len() != k {
            return None;
        }
        Some(LdaModel {
            config,
            vocab,
            topic_word,
            topic_totals,
        })
    }

    /// The seed [`Self::infer`] derives from the training seed for serving
    /// inference (shared with the streaming estimate path so both are
    /// bit-identical).
    pub(crate) fn default_infer_seed(&self) -> u64 {
        self.config.seed ^ 0x9e3779b97f4a7c15
    }

    /// Infer the topic distribution ("table topic vector") of an unseen
    /// document by Gibbs sampling against the frozen topic–word counts.
    ///
    /// The result is a probability vector of length `num_topics`; documents
    /// with no known tokens return the uniform distribution.
    pub fn infer(&self, document: &str) -> Vec<f32> {
        let tokens = self.vocab.encode(document);
        self.infer_tokens(&tokens, self.default_infer_seed())
    }

    /// Deterministic inference with an explicit seed (used by property tests).
    pub fn infer_with_seed(&self, document: &str, seed: u64) -> Vec<f32> {
        let tokens = self.vocab.encode(document);
        self.infer_tokens(&tokens, seed)
    }

    /// Build a ready-to-run [`TopicSampler`] for this model. `Dense` has no
    /// state; `SparseAlias` pre-builds the per-word alias tables from the
    /// frozen topic–word term (`O(K·V)`, once per frozen model — never on
    /// the per-token hot path).
    pub fn sampler(&self, kind: SamplerKind) -> TopicSampler {
        match kind {
            SamplerKind::Dense => TopicSampler::Dense,
            SamplerKind::SparseAlias => {
                TopicSampler::SparseAlias(Box::new(SparseAliasTables::build(self)))
            }
            SamplerKind::MetropolisHastings => {
                TopicSampler::MetropolisHastings(Box::new(SparseAliasTables::build(self)))
            }
        }
    }

    /// Infer the topic distribution of a pre-encoded document with the
    /// dense sampler.
    ///
    /// Allocates fresh working buffers per call; hot loops should reuse an
    /// [`LdaInferScratch`] via [`Self::infer_tokens_into`], which this wraps.
    pub fn infer_tokens(&self, tokens: &[usize], seed: u64) -> Vec<f32> {
        let mut out = vec![0.0f32; self.config.num_topics];
        self.infer_tokens_into(
            tokens,
            seed,
            &TopicSampler::Dense,
            &mut LdaInferScratch::new(),
            &mut out,
        );
        out
    }

    /// [`Self::infer_tokens`] with an explicit sampling strategy and
    /// caller-owned working buffers: every Gibbs-sampling intermediate
    /// (including the sparse count structures of the sparse/alias sampler)
    /// lives in `scratch` and the theta vector is written into `out`
    /// (length [`Self::num_topics`]), so a warm call performs **zero** heap
    /// allocations for either sampler (enforced by the counting-allocator
    /// test `crates/topic/tests/alloc_free_infer.rs`).
    ///
    /// With [`TopicSampler::Dense`] the output is bit-identical to
    /// [`Self::infer_tokens`]; with [`TopicSampler::SparseAlias`] it samples
    /// the same per-token conditional through a different decomposition, so
    /// the theta is statistically close but not bit-identical.
    pub fn infer_tokens_into(
        &self,
        tokens: &[usize],
        seed: u64,
        sampler: &TopicSampler,
        scratch: &mut LdaInferScratch,
        out: &mut [f32],
    ) {
        self.config.validate();
        let k = self.config.num_topics;
        assert_eq!(out.len(), k, "topic output width mismatch");
        if tokens.is_empty() {
            out.fill(1.0 / k as f32);
            return;
        }
        match sampler {
            TopicSampler::Dense => self.infer_dense(tokens, seed, scratch, out),
            TopicSampler::SparseAlias(tables) => {
                self.infer_sparse_alias(tokens, seed, tables, scratch, out)
            }
            TopicSampler::MetropolisHastings(tables) => {
                self.infer_mh(tokens, seed, tables, scratch, out)
            }
        }
    }

    /// The collapsed dense sweep: `O(K)` per token, bit-identical to the
    /// historical single-path implementation (the parity oracle).
    fn infer_dense(
        &self,
        tokens: &[usize],
        seed: u64,
        scratch: &mut LdaInferScratch,
        out: &mut [f32],
    ) {
        let k = self.config.num_topics;
        let v = self.vocab.len().max(1);
        let alpha = self.config.alpha;
        let beta = self.config.beta;
        let v_beta = beta * v as f64;
        let mut rng = StdRng::seed_from_u64(seed);

        let LdaInferScratch {
            doc_topic,
            assignments,
            weights,
            accum,
            ..
        } = scratch;
        doc_topic.clear();
        doc_topic.resize(k, 0);
        assignments.clear();
        assignments.extend(tokens.iter().map(|_| rng.gen_range(0..k)));
        for &z in assignments.iter() {
            doc_topic[z] += 1;
        }
        weights.clear();
        weights.resize(k, 0.0);
        accum.clear();
        accum.resize(k, 0.0);
        let denom = tokens.len() as f64 + alpha * k as f64;
        let burn_in = self.config.infer_iterations / 2;

        for iter in 0..self.config.infer_iterations {
            for (i, &w) in tokens.iter().enumerate() {
                let old = assignments[i];
                doc_topic[old] -= 1;
                let mut total = 0.0;
                for (t, wt) in weights.iter_mut().enumerate() {
                    let phi = (self.topic_word[t * v + w] as f64 + beta)
                        / (self.topic_totals[t] as f64 + v_beta);
                    let theta = doc_topic[t] as f64 + alpha;
                    *wt = phi * theta;
                    total += *wt;
                }
                let new = sample_discrete(weights, total, &mut rng);
                assignments[i] = new;
                doc_topic[new] += 1;
            }
            if iter >= burn_in {
                for t in 0..k {
                    accum[t] += (doc_topic[t] as f64 + alpha) / denom;
                }
            }
        }
        finish_theta(&self.config, tokens.len(), scratch, out);
    }

    /// The sparse/alias sweep: the conditional
    /// `p(z = t) ∝ phi_w(t)·(n_{d,t} + α)` splits into the document part
    /// `n_{d,t}·phi_w(t)` — walked over only the `k_d` topics present in
    /// the document — and the static part `α·phi_w(t)`, drawn in `O(1)`
    /// from the pre-built per-word alias table. One uniform draw per token
    /// picks both the branch and the position within it.
    fn infer_sparse_alias(
        &self,
        tokens: &[usize],
        seed: u64,
        tables: &SparseAliasTables,
        scratch: &mut LdaInferScratch,
        out: &mut [f32],
    ) {
        let k = self.config.num_topics;
        tables.assert_matches(k, self.vocab.len());
        let alpha = self.config.alpha;
        let mut rng = StdRng::seed_from_u64(seed);

        let LdaInferScratch {
            doc_topic,
            assignments,
            weights,
            accum,
            nz_topics,
            topic_pos,
        } = scratch;
        doc_topic.clear();
        doc_topic.resize(k, 0);
        topic_pos.clear();
        topic_pos.resize(k, 0);
        nz_topics.clear();
        nz_topics.reserve(k);
        assignments.clear();
        assignments.extend(tokens.iter().map(|_| rng.gen_range(0..k)));
        for &z in assignments.iter() {
            if doc_topic[z] == 0 {
                topic_pos[z] = nz_topics.len() as u32 + 1;
                nz_topics.push(z);
            }
            doc_topic[z] += 1;
        }
        weights.clear();
        weights.resize(k, 0.0);
        accum.clear();
        accum.resize(k, 0.0);
        let denom = tokens.len() as f64 + alpha * k as f64;
        let burn_in = self.config.infer_iterations / 2;

        let mut sampled_sweeps = 0u32;
        for iter in 0..self.config.infer_iterations {
            for (i, &w) in tokens.iter().enumerate() {
                let old = assignments[i];
                // Remove the token from the sparse document counts.
                doc_topic[old] -= 1;
                if doc_topic[old] == 0 {
                    let pos = (topic_pos[old] - 1) as usize;
                    nz_topics.swap_remove(pos);
                    if let Some(&moved) = nz_topics.get(pos) {
                        topic_pos[moved] = pos as u32 + 1;
                    }
                    topic_pos[old] = 0;
                }
                // Document part: O(k_d) fused weight fill + mass.
                let phi_row = tables.phi_row(w);
                let mut r = 0.0;
                for (slot, &t) in nz_topics.iter().enumerate() {
                    let wt = doc_topic[t] as f64 * phi_row[t];
                    weights[slot] = wt;
                    r += wt;
                }
                let s = tables.static_mass(w);
                let total = r + s;
                let u = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
                let new = if u < r {
                    // Same last-bucket rounding fallback as the dense sweep.
                    nz_topics[pick_bucket(&weights[..nz_topics.len()], u)]
                } else {
                    tables.sample_alias(w, (u - r) / s)
                };
                assignments[i] = new;
                if doc_topic[new] == 0 {
                    topic_pos[new] = nz_topics.len() as u32 + 1;
                    nz_topics.push(new);
                }
                doc_topic[new] += 1;
            }
            if iter >= burn_in {
                // Sparse accumulation: only topics present in the document
                // contribute beyond the constant `α / denom`, which is added
                // for all `K` topics once at the end.
                sampled_sweeps += 1;
                for &t in nz_topics.iter() {
                    accum[t] += doc_topic[t] as f64 / denom;
                }
            }
        }
        if self.config.infer_iterations == 0 {
            finish_theta(&self.config, tokens.len(), scratch, out);
            return;
        }
        let samples = f64::from(sampled_sweeps.max(1));
        let alpha_share = alpha / denom;
        for (o, &x) in out.iter_mut().zip(scratch.accum.iter()) {
            *o = ((x / samples) + alpha_share) as f32;
        }
    }

    /// The LightLDA-style cycle Metropolis–Hastings sweep: per token, one
    /// *word proposal* (an `O(1)` alias draw from `q_w(t) ∝ phi_w(t)`) and
    /// one *doc proposal* (an `O(1)` draw from `q_d(t) ∝ ñ_{d,t} + α`,
    /// taken directly off the assignment array), each followed by an
    /// accept/reject step against the target
    /// `π(t) ∝ phi_w(t) · (n^{-i}_{d,t} + α)`.
    ///
    /// For the word proposal the `phi` factors cancel, leaving
    /// `A = (n^{-i}_{t'} + α) / (n^{-i}_{s} + α)`. For the doc proposal the
    /// proposal counts `ñ` include the token's **current** cycle state `s`
    /// (that is the distribution the assignment-array draw actually
    /// samples), giving
    /// `A = [phi(t')·(n^{-i}_{t'} + α)·(ñ_s + α)] /
    ///      [phi(s) ·(n^{-i}_{s}  + α)·(ñ_{t'} + α)]`.
    ///
    /// No per-token walk of any kind remains — amortized `O(1)` per token
    /// versus `O(K)` dense and `O(k_d)` sparse/alias. [`MH_CYCLES`]
    /// word+doc cycles run per token to keep the chain mixing close to the
    /// exact Gibbs conditional.
    fn infer_mh(
        &self,
        tokens: &[usize],
        seed: u64,
        tables: &SparseAliasTables,
        scratch: &mut LdaInferScratch,
        out: &mut [f32],
    ) {
        /// Word+doc proposal cycles per token per sweep — one cycle is
        /// LightLDA's canonical two MH steps (one word proposal + one doc
        /// proposal); still O(1) per token.
        const MH_CYCLES: usize = 1;
        let k = self.config.num_topics;
        tables.assert_matches(k, self.vocab.len());
        let alpha = self.config.alpha;
        let mut rng = StdRng::seed_from_u64(seed);

        let LdaInferScratch {
            doc_topic,
            assignments,
            accum,
            nz_topics,
            topic_pos,
            ..
        } = scratch;
        doc_topic.clear();
        doc_topic.resize(k, 0);
        topic_pos.clear();
        topic_pos.resize(k, 0);
        nz_topics.clear();
        nz_topics.reserve(k);
        // Identical initial-assignment RNG consumption to the other
        // samplers, so a zero-sweep inference is bit-identical to Dense.
        assignments.clear();
        assignments.extend(tokens.iter().map(|_| rng.gen_range(0..k)));
        for &z in assignments.iter() {
            if doc_topic[z] == 0 {
                topic_pos[z] = nz_topics.len() as u32 + 1;
                nz_topics.push(z);
            }
            doc_topic[z] += 1;
        }
        accum.clear();
        accum.resize(k, 0.0);
        let len = tokens.len() as f64;
        let denom = len + alpha * k as f64;
        let doc_proposal_mass = len + alpha * k as f64;
        let burn_in = self.config.infer_iterations / 2;

        let mut sampled_sweeps = 0u32;
        for iter in 0..self.config.infer_iterations {
            for (i, &w) in tokens.iter().enumerate() {
                let old = assignments[i];
                // Remove the token from the sparse document counts (n^{-i}).
                doc_topic[old] -= 1;
                if doc_topic[old] == 0 {
                    let pos = (topic_pos[old] - 1) as usize;
                    nz_topics.swap_remove(pos);
                    if let Some(&moved) = nz_topics.get(pos) {
                        topic_pos[moved] = pos as u32 + 1;
                    }
                    topic_pos[old] = 0;
                }
                let phi_row = tables.phi_row(w);
                let mut s = old;

                for _ in 0..MH_CYCLES {
                    // Word proposal: q_w(t) ∝ phi_w(t), one alias-table
                    // draw. The phi factors of target and proposal cancel.
                    let t_prop = tables.sample_alias(w, rng.gen_range(0.0..1.0));
                    if t_prop != s {
                        let accept =
                            (doc_topic[t_prop] as f64 + alpha) / (doc_topic[s] as f64 + alpha);
                        if accept >= 1.0 || rng.gen_range(0.0..1.0) < accept {
                            s = t_prop;
                        }
                    }

                    // Doc proposal: q_d(t'|s) ∝ ñ_t' + α where ñ counts the
                    // token's current cycle state `s` — exactly what drawing
                    // a slot off the assignment array (with slot `i` read as
                    // `s`) samples. The α·K tail mass maps onto a uniform
                    // topic. For t' ≠ s the forward draw has probability
                    // ∝ n^{-i}_{t'} + α and the reverse move (from a chain
                    // sitting at `t'`, whose slot `i` would read `t'`)
                    // proposes `s` with probability ∝ n^{-i}_s + α, so both
                    // count factors cancel against the target and the
                    // acceptance ratio reduces to phi(t')/phi(s).
                    let u = rng.gen_range(0.0..doc_proposal_mass);
                    let t_prop = if u < len {
                        let idx = (u as usize).min(tokens.len() - 1);
                        if idx == i {
                            s
                        } else {
                            assignments[idx]
                        }
                    } else {
                        (((u - len) / alpha) as usize).min(k - 1)
                    };
                    if t_prop != s {
                        let accept = phi_row[t_prop] / phi_row[s];
                        if accept >= 1.0 || rng.gen_range(0.0..1.0) < accept {
                            s = t_prop;
                        }
                    }
                }

                assignments[i] = s;
                if doc_topic[s] == 0 {
                    topic_pos[s] = nz_topics.len() as u32 + 1;
                    nz_topics.push(s);
                }
                doc_topic[s] += 1;
            }
            if iter >= burn_in {
                // Same sparse accumulation as the sparse/alias sweep.
                sampled_sweeps += 1;
                for &t in nz_topics.iter() {
                    accum[t] += doc_topic[t] as f64 / denom;
                }
            }
        }
        if self.config.infer_iterations == 0 {
            finish_theta(&self.config, tokens.len(), scratch, out);
            return;
        }
        let samples = f64::from(sampled_sweeps.max(1));
        let alpha_share = alpha / denom;
        for (o, &x) in out.iter_mut().zip(scratch.accum.iter()) {
            *o = ((x / samples) + alpha_share) as f32;
        }
    }
}

/// Turn the accumulated post-burn-in samples (or, for
/// `infer_iterations == 0`, the initial assignment) into the output theta —
/// shared by both samplers so the zero-iteration regression fix cannot
/// drift between them.
fn finish_theta(config: &LdaConfig, num_tokens: usize, scratch: &LdaInferScratch, out: &mut [f32]) {
    let k = config.num_topics;
    let denom = num_tokens as f64 + config.alpha * k as f64;
    if config.infer_iterations == 0 {
        // No sweep ran, so `accum` never collected a sample. Report the
        // theta implied by the initial random assignment instead of the
        // all-zero vector the `samples.max(1)` division used to hide.
        for (o, &d) in out.iter_mut().zip(scratch.doc_topic.iter()) {
            *o = ((d as f64 + config.alpha) / denom) as f32;
        }
        return;
    }
    let burn_in = config.infer_iterations / 2;
    let samples = (config.infer_iterations - burn_in).max(1) as f64;
    for (o, &x) in out.iter_mut().zip(scratch.accum.iter()) {
        *o = (x / samples) as f32;
    }
}

/// Caller-owned working buffers for [`LdaModel::infer_tokens_into`]: the
/// document–topic counts, per-token assignments, full-conditional weights
/// and the theta accumulator of one Gibbs inference run, plus the sparse
/// count structures of the sparse/alias sampler (the list of topics present
/// in the document and its positional index). Buffers keep their capacity
/// between documents, so a warm inference allocates nothing with either
/// sampler.
#[derive(Debug, Clone, Default)]
pub struct LdaInferScratch {
    /// `doc_topic[k]`: tokens of the document currently assigned to topic `k`.
    doc_topic: Vec<u32>,
    /// Current topic assignment of every token.
    assignments: Vec<usize>,
    /// Sampling weights: full-conditional per topic (dense sampler) or
    /// document-part per nonzero topic (sparse sampler).
    weights: Vec<f64>,
    /// Post-burn-in theta accumulator, one per topic.
    accum: Vec<f64>,
    /// Sparse sampler: topics with a nonzero document count, unordered.
    nz_topics: Vec<usize>,
    /// Sparse sampler: `topic_pos[t]` is the position of `t` in
    /// [`Self::nz_topics`] plus one, or 0 when `t` is absent.
    topic_pos: Vec<u32>,
}

impl LdaInferScratch {
    /// A fresh workspace with empty (but growable) buffers.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two clearly separated "themes" so a tiny LDA can recover structure.
    fn themed_documents() -> Vec<String> {
        let mut docs = Vec::new();
        for i in 0..30 {
            if i % 2 == 0 {
                docs.push("rock jazz blues album artist guitar song melody".to_string());
            } else {
                docs.push("warsaw london paris city country europe capital river".to_string());
            }
        }
        docs
    }

    #[test]
    fn training_produces_normalised_topics() {
        let model = LdaModel::fit(&themed_documents(), 1, LdaConfig::tiny());
        for k in 0..model.num_topics() {
            let total: f64 = (0..model.vocabulary().len()).map(|w| model.phi(k, w)).sum();
            assert!((total - 1.0).abs() < 1e-6, "topic {k} sums to {total}");
        }
    }

    #[test]
    fn inference_returns_probability_vector() {
        let model = LdaModel::fit(&themed_documents(), 1, LdaConfig::tiny());
        let theta = model.infer("rock jazz album");
        assert_eq!(theta.len(), model.num_topics());
        let sum: f32 = theta.iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "sum={sum}");
        assert!(theta.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn unknown_document_gets_uniform_distribution() {
        let model = LdaModel::fit(&themed_documents(), 1, LdaConfig::tiny());
        let theta = model.infer("zzzz qqqq completely unknown");
        let k = model.num_topics() as f32;
        assert!(theta.iter().all(|&x| (x - 1.0 / k).abs() < 1e-6));
    }

    #[test]
    fn themed_documents_get_different_topic_vectors() {
        let model = LdaModel::fit(&themed_documents(), 1, LdaConfig::tiny());
        let music = model.infer("rock jazz blues artist album");
        let cities = model.infer("warsaw london paris city country");
        // Cosine distance between the two topic vectors should be noticeably
        // below 1 (they concentrate on different topics).
        let dot: f32 = music.iter().zip(&cities).map(|(a, b)| a * b).sum();
        let na: f32 = music.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = cities.iter().map(|x| x * x).sum::<f32>().sqrt();
        let cos = dot / (na * nb);
        assert!(cos < 0.9, "topic vectors should differ, cosine={cos}");
    }

    #[test]
    fn same_document_similar_topics_across_inference_seeds() {
        let model = LdaModel::fit(&themed_documents(), 1, LdaConfig::tiny());
        let a = model.infer_with_seed("rock jazz blues artist album guitar", 1);
        let b = model.infer_with_seed("rock jazz blues artist album guitar", 2);
        let l1: f32 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(l1 < 0.8, "inference unstable across seeds: L1={l1}");
    }

    #[test]
    fn inference_is_deterministic_for_fixed_seed() {
        let model = LdaModel::fit(&themed_documents(), 1, LdaConfig::tiny());
        assert_eq!(model.infer("rock jazz"), model.infer("rock jazz"));
    }

    #[test]
    fn top_words_reflect_topic_content() {
        let model = LdaModel::fit(&themed_documents(), 1, LdaConfig::tiny());
        // Find the topic most associated with "warsaw" and check that its top
        // words contain other city-theme words.
        let w = model.vocabulary().id("warsaw").unwrap();
        let best_topic = (0..model.num_topics())
            .max_by(|&a, &b| model.phi(a, w).partial_cmp(&model.phi(b, w)).unwrap())
            .unwrap();
        let top: Vec<String> = model
            .top_words(best_topic, 8)
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        assert!(
            top.iter()
                .any(|t| t == "city" || t == "london" || t == "europe"),
            "top words of the city topic were {top:?}"
        );
    }

    #[test]
    fn training_is_deterministic_for_a_seed() {
        let a = LdaModel::fit(&themed_documents(), 1, LdaConfig::tiny());
        let b = LdaModel::fit(&themed_documents(), 1, LdaConfig::tiny());
        assert_eq!(a.topic_word, b.topic_word);
    }

    #[test]
    #[should_panic(expected = "at least 2 topics")]
    fn rejects_single_topic() {
        let cfg = LdaConfig {
            num_topics: 1,
            ..LdaConfig::tiny()
        };
        LdaModel::fit(&themed_documents(), 1, cfg);
    }

    #[test]
    #[should_panic(expected = "alpha must be a positive finite Dirichlet prior")]
    fn rejects_non_positive_alpha() {
        let cfg = LdaConfig {
            alpha: 0.0,
            ..LdaConfig::tiny()
        };
        LdaModel::fit(&themed_documents(), 1, cfg);
    }

    #[test]
    #[should_panic(expected = "beta must be a positive finite Dirichlet prior")]
    fn rejects_negative_beta() {
        let cfg = LdaConfig {
            beta: -0.01,
            ..LdaConfig::tiny()
        };
        LdaModel::fit(&themed_documents(), 1, cfg);
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn rejects_nan_prior() {
        let cfg = LdaConfig {
            alpha: f64::NAN,
            ..LdaConfig::tiny()
        };
        cfg.validate();
    }

    /// Regression: with `infer_iterations == 0` the burn-in loop never
    /// sampled, `accum` stayed all-zero, and the `samples.max(1)` division
    /// hid it — inference returned the zero vector instead of a probability
    /// distribution.
    #[test]
    fn zero_infer_iterations_still_returns_a_distribution() {
        let cfg = LdaConfig {
            infer_iterations: 0,
            ..LdaConfig::tiny()
        };
        let model = LdaModel::fit(&themed_documents(), 1, cfg);
        let theta = model.infer("rock jazz album");
        assert_eq!(theta.len(), model.num_topics());
        let sum: f32 = theta.iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "theta does not sum to one: {sum}");
        assert!(theta.iter().all(|&x| x > 0.0), "theta has zero entries");
        // Still deterministic for the fixed serving seed.
        assert_eq!(theta, model.infer("rock jazz album"));
    }

    #[test]
    fn scratch_inference_is_bit_identical_and_reusable() {
        let model = LdaModel::fit(&themed_documents(), 1, LdaConfig::tiny());
        let mut scratch = LdaInferScratch::new();
        let mut out = vec![0.0f32; model.num_topics()];
        let docs = [
            "rock jazz blues artist album",
            "warsaw",                     // one-token document
            "zzzz qqqq entirely unknown", // OOV-only → empty token list
            "",                           // empty document
            "warsaw london paris rock jazz city",
        ];
        for doc in docs {
            let tokens = model.vocabulary().encode(doc);
            for seed in [0u64, 7, 12345] {
                model.infer_tokens_into(
                    &tokens,
                    seed,
                    &TopicSampler::Dense,
                    &mut scratch,
                    &mut out,
                );
                assert_eq!(
                    out,
                    model.infer_tokens(&tokens, seed),
                    "scratch path diverged on {doc:?} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn sparse_alias_sampler_is_deterministic_under_seed() {
        let model = LdaModel::fit(&themed_documents(), 1, LdaConfig::tiny());
        let sampler = model.sampler(SamplerKind::SparseAlias);
        let tokens = model
            .vocabulary()
            .encode("rock jazz blues artist album city");
        let mut scratch = LdaInferScratch::new();
        let mut a = vec![0.0f32; model.num_topics()];
        let mut b = vec![0.0f32; model.num_topics()];
        for seed in [0u64, 7, 12345] {
            model.infer_tokens_into(&tokens, seed, &sampler, &mut scratch, &mut a);
            model.infer_tokens_into(&tokens, seed, &sampler, &mut scratch, &mut b);
            assert_eq!(a, b, "sparse sampler not deterministic for seed {seed}");
        }
        // A rebuilt sampler (fresh alias tables from the same frozen counts)
        // reproduces the same draw chain too.
        let rebuilt = model.sampler(SamplerKind::SparseAlias);
        model.infer_tokens_into(&tokens, 7, &rebuilt, &mut scratch, &mut b);
        model.infer_tokens_into(&tokens, 7, &sampler, &mut scratch, &mut a);
        assert_eq!(a, b, "rebuilt alias tables diverged");
    }

    #[test]
    fn sparse_alias_sampler_returns_valid_distributions() {
        let model = LdaModel::fit(&themed_documents(), 1, LdaConfig::tiny());
        let sampler = model.sampler(SamplerKind::SparseAlias);
        let mut scratch = LdaInferScratch::new();
        let mut out = vec![0.0f32; model.num_topics()];
        let docs = [
            "rock jazz blues artist album",
            "warsaw", // one-token document
            "",       // empty document → uniform
            "warsaw london paris rock jazz city country guitar",
        ];
        for doc in docs {
            let tokens = model.vocabulary().encode(doc);
            model.infer_tokens_into(&tokens, 7, &sampler, &mut scratch, &mut out);
            let sum: f32 = out.iter().sum();
            assert!((sum - 1.0).abs() < 1e-3, "{doc:?}: sum={sum}");
            assert!(out.iter().all(|&x| x >= 0.0), "{doc:?}: negative theta");
        }
        // Empty document is exactly uniform, like the dense sampler.
        let k = model.num_topics() as f32;
        model.infer_tokens_into(&[], 7, &sampler, &mut scratch, &mut out);
        assert!(out.iter().all(|&x| (x - 1.0 / k).abs() < 1e-6));
    }

    /// The sparse sampler draws from the same per-token conditional as the
    /// dense sweep, so its thetas must be statistically close to Dense —
    /// about as close as Dense is to itself under a different seed.
    #[test]
    fn sparse_alias_sampler_is_close_to_dense() {
        let model = LdaModel::fit(&themed_documents(), 1, LdaConfig::tiny());
        let sampler = model.sampler(SamplerKind::SparseAlias);
        let mut scratch = LdaInferScratch::new();
        let k = model.num_topics();
        let (mut dense, mut sparse) = (vec![0.0f32; k], vec![0.0f32; k]);
        let tokens = model
            .vocabulary()
            .encode("rock jazz blues artist album guitar song");
        let mut l1 = 0.0f32;
        let seeds = [1u64, 2, 3, 4, 5];
        for &seed in &seeds {
            model.infer_tokens_into(
                &tokens,
                seed,
                &TopicSampler::Dense,
                &mut scratch,
                &mut dense,
            );
            model.infer_tokens_into(&tokens, seed, &sampler, &mut scratch, &mut sparse);
            l1 += dense
                .iter()
                .zip(&sparse)
                .map(|(a, b)| (a - b).abs())
                .sum::<f32>();
        }
        let mean_l1 = l1 / seeds.len() as f32;
        assert!(
            mean_l1 < 0.8,
            "sparse sampler drifted from dense: mean L1 = {mean_l1}"
        );
    }

    #[test]
    fn sparse_alias_zero_infer_iterations_still_returns_a_distribution() {
        let cfg = LdaConfig {
            infer_iterations: 0,
            ..LdaConfig::tiny()
        };
        let model = LdaModel::fit(&themed_documents(), 1, cfg);
        let sampler = model.sampler(SamplerKind::SparseAlias);
        let tokens = model.vocabulary().encode("rock jazz album");
        let mut scratch = LdaInferScratch::new();
        let mut out = vec![0.0f32; model.num_topics()];
        model.infer_tokens_into(&tokens, 3, &sampler, &mut scratch, &mut out);
        let sum: f32 = out.iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "theta does not sum to one: {sum}");
        assert!(out.iter().all(|&x| x > 0.0), "theta has zero entries");
        // With zero sweeps only the (identically seeded) initial assignment
        // matters, so the two samplers agree exactly.
        let mut dense = vec![0.0f32; model.num_topics()];
        model.infer_tokens_into(&tokens, 3, &TopicSampler::Dense, &mut scratch, &mut dense);
        assert_eq!(out, dense);
    }

    #[test]
    fn mh_sampler_is_deterministic_under_seed() {
        let model = LdaModel::fit(&themed_documents(), 1, LdaConfig::tiny());
        let sampler = model.sampler(SamplerKind::MetropolisHastings);
        let tokens = model
            .vocabulary()
            .encode("rock jazz blues artist album city");
        let mut scratch = LdaInferScratch::new();
        let mut a = vec![0.0f32; model.num_topics()];
        let mut b = vec![0.0f32; model.num_topics()];
        for seed in [0u64, 7, 12345] {
            model.infer_tokens_into(&tokens, seed, &sampler, &mut scratch, &mut a);
            model.infer_tokens_into(&tokens, seed, &sampler, &mut scratch, &mut b);
            assert_eq!(a, b, "MH sampler not deterministic for seed {seed}");
        }
        // A rebuilt sampler (fresh alias tables from the same frozen counts)
        // reproduces the same proposal/accept chain.
        let rebuilt = model.sampler(SamplerKind::MetropolisHastings);
        model.infer_tokens_into(&tokens, 7, &rebuilt, &mut scratch, &mut b);
        model.infer_tokens_into(&tokens, 7, &sampler, &mut scratch, &mut a);
        assert_eq!(a, b, "rebuilt MH tables diverged");
    }

    #[test]
    fn mh_sampler_returns_valid_distributions() {
        let model = LdaModel::fit(&themed_documents(), 1, LdaConfig::tiny());
        let sampler = model.sampler(SamplerKind::MetropolisHastings);
        let mut scratch = LdaInferScratch::new();
        let mut out = vec![0.0f32; model.num_topics()];
        let docs = [
            "rock jazz blues artist album",
            "warsaw", // one-token document
            "",       // empty document → uniform
            "warsaw london paris rock jazz city country guitar",
        ];
        for doc in docs {
            let tokens = model.vocabulary().encode(doc);
            model.infer_tokens_into(&tokens, 7, &sampler, &mut scratch, &mut out);
            let sum: f32 = out.iter().sum();
            assert!((sum - 1.0).abs() < 1e-3, "{doc:?}: sum={sum}");
            assert!(out.iter().all(|&x| x >= 0.0), "{doc:?}: negative theta");
        }
        // Empty document is exactly uniform, like the dense sampler.
        let k = model.num_topics() as f32;
        model.infer_tokens_into(&[], 7, &sampler, &mut scratch, &mut out);
        assert!(out.iter().all(|&x| (x - 1.0 / k).abs() < 1e-6));
    }

    /// The MH cycle targets the exact per-token conditional
    /// `π(t) ∝ phi_w(t) · (n^{-i}_{d,t} + α)`, so after burn-in its thetas
    /// must land statistically close to the dense Gibbs sweep — about as
    /// close as Dense is to itself under a different seed.
    #[test]
    fn mh_sampler_is_close_to_dense() {
        let model = LdaModel::fit(&themed_documents(), 1, LdaConfig::tiny());
        let sampler = model.sampler(SamplerKind::MetropolisHastings);
        let mut scratch = LdaInferScratch::new();
        let k = model.num_topics();
        let (mut dense, mut mh) = (vec![0.0f32; k], vec![0.0f32; k]);
        let tokens = model
            .vocabulary()
            .encode("rock jazz blues artist album guitar song");
        let mut l1 = 0.0f32;
        let seeds = [1u64, 2, 3, 4, 5];
        for &seed in &seeds {
            model.infer_tokens_into(
                &tokens,
                seed,
                &TopicSampler::Dense,
                &mut scratch,
                &mut dense,
            );
            model.infer_tokens_into(&tokens, seed, &sampler, &mut scratch, &mut mh);
            l1 += dense
                .iter()
                .zip(&mh)
                .map(|(a, b)| (a - b).abs())
                .sum::<f32>();
        }
        let mean_l1 = l1 / seeds.len() as f32;
        assert!(
            mean_l1 < 0.8,
            "MH sampler drifted from dense: mean L1 = {mean_l1}"
        );
    }

    #[test]
    fn mh_zero_infer_iterations_matches_dense_exactly() {
        let cfg = LdaConfig {
            infer_iterations: 0,
            ..LdaConfig::tiny()
        };
        let model = LdaModel::fit(&themed_documents(), 1, cfg);
        let sampler = model.sampler(SamplerKind::MetropolisHastings);
        let tokens = model.vocabulary().encode("rock jazz album");
        let mut scratch = LdaInferScratch::new();
        let mut out = vec![0.0f32; model.num_topics()];
        model.infer_tokens_into(&tokens, 3, &sampler, &mut scratch, &mut out);
        let sum: f32 = out.iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "theta does not sum to one: {sum}");
        assert!(out.iter().all(|&x| x > 0.0), "theta has zero entries");
        // With zero sweeps only the (identically seeded) initial assignment
        // matters, so MH and Dense agree bit-for-bit.
        let mut dense = vec![0.0f32; model.num_topics()];
        model.infer_tokens_into(&tokens, 3, &TopicSampler::Dense, &mut scratch, &mut dense);
        assert_eq!(out, dense);
    }
}
