//! Vocabulary construction for the table-as-document topic model.
//!
//! Section 4.2 of the paper: *"Since LDA is an unsupervised model, we only
//! need the vocabulary (i.e., set of all cell values) of the tables without
//! any headers or semantic annotation. We convert numerical values into
//! strings and then concatenate all values in the table sequentially to form
//! a 'document' for each table."*

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A token-to-id mapping with document-frequency based pruning.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocabulary {
    token_to_id: HashMap<String, usize>,
    id_to_token: Vec<String>,
}

/// Tokenize a table "document": lower-cased alphanumeric runs. Numeric cells
/// become numeric tokens, exactly as the paper converts numbers to strings.
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect()
}

impl Vocabulary {
    /// Build a vocabulary from an iterator of documents, keeping tokens that
    /// appear at least `min_count` times in total.
    pub fn build<'a>(documents: impl Iterator<Item = &'a str>, min_count: usize) -> Self {
        let mut counts: HashMap<String, usize> = HashMap::new();
        for doc in documents {
            for token in tokenize(doc) {
                *counts.entry(token).or_insert(0) += 1;
            }
        }
        let mut kept: Vec<(String, usize)> = counts
            .into_iter()
            .filter(|(_, c)| *c >= min_count)
            .collect();
        // Sort for determinism (HashMap iteration order is randomised).
        kept.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

        let mut vocab = Vocabulary::default();
        for (token, _) in kept {
            let id = vocab.id_to_token.len();
            vocab.token_to_id.insert(token.clone(), id);
            vocab.id_to_token.push(token);
        }
        vocab
    }

    /// Number of distinct tokens.
    pub fn len(&self) -> usize {
        self.id_to_token.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.id_to_token.is_empty()
    }

    /// Look up a token id.
    pub fn id(&self, token: &str) -> Option<usize> {
        self.token_to_id.get(token).copied()
    }

    /// Look up a token by id.
    pub fn token(&self, id: usize) -> Option<&str> {
        self.id_to_token.get(id).map(String::as_str)
    }

    /// Encode a document into known token ids (unknown tokens are dropped).
    pub fn encode(&self, text: &str) -> Vec<usize> {
        tokenize(text)
            .into_iter()
            .filter_map(|t| self.id(&t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_lowercases_and_splits() {
        assert_eq!(
            tokenize("Warsaw, 1,777,972"),
            vec!["warsaw", "1", "777", "972"]
        );
        assert!(tokenize("--").is_empty());
    }

    #[test]
    fn build_respects_min_count() {
        let docs = ["rock rock jazz", "rock blues"];
        let vocab = Vocabulary::build(docs.iter().copied(), 2);
        assert!(vocab.id("rock").is_some());
        assert!(vocab.id("jazz").is_none());
        assert!(vocab.id("blues").is_none());
        assert_eq!(vocab.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_round_trip() {
        let docs = ["a b c", "a b", "a"];
        let vocab = Vocabulary::build(docs.iter().copied(), 1);
        assert_eq!(vocab.len(), 3);
        for id in 0..vocab.len() {
            let tok = vocab.token(id).unwrap();
            assert_eq!(vocab.id(tok), Some(id));
        }
        // Most frequent token gets id 0.
        assert_eq!(vocab.token(0), Some("a"));
    }

    #[test]
    fn build_is_deterministic() {
        let docs = ["x y z y", "z z q r s"];
        let a = Vocabulary::build(docs.iter().copied(), 1);
        let b = Vocabulary::build(docs.iter().copied(), 1);
        assert_eq!(a.id_to_token, b.id_to_token);
    }

    #[test]
    fn encode_drops_unknown_tokens() {
        let vocab = Vocabulary::build(["warsaw london"].iter().copied(), 1);
        let ids = vocab.encode("Warsaw unknown London");
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn empty_vocabulary() {
        let vocab = Vocabulary::build(std::iter::empty(), 1);
        assert!(vocab.is_empty());
        assert!(vocab.encode("anything").is_empty());
    }
}
